"""Figure adapter tests (matrix/partition SVG and experiment figures)."""

import xml.etree.ElementTree as ET

import pytest

from repro.core.exceptions import InvalidPartitionError
from repro.core.paper_matrices import equation_2, figure_1b
from repro.solvers.sap import SapOptions, sap_solve
from repro.viz.figures import partition_figure, table1_saturation_svg
from repro.viz.matrix_svg import matrix_svg, partition_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(canvas):
    return ET.fromstring(canvas.to_string())


class TestMatrixSvg:
    def test_plain_matrix_heatmap(self):
        canvas = matrix_svg(equation_2())
        root = parse(canvas)
        rects = root.findall(f"{SVG_NS}rect")
        assert len(rects) == 9  # one per cell

    def test_partition_coloring(self):
        matrix = figure_1b()
        result = sap_solve(matrix, options=SapOptions(trials=10, seed=1))
        canvas = partition_svg(matrix, result.partition)
        root = parse(canvas)
        # 36 cells + 5 legend swatches.
        rects = root.findall(f"{SVG_NS}rect")
        assert len(rects) == 36 + result.partition.depth

    def test_fooling_rings(self):
        matrix = figure_1b()
        result = sap_solve(matrix, options=SapOptions(trials=10, seed=1))
        canvas = partition_figure(
            matrix, result.partition, with_fooling=True, title="Fig 1b"
        )
        root = parse(canvas)
        circles = root.findall(f"{SVG_NS}circle")
        # Figure 1b has a size-5 maximum fooling set.
        assert len(circles) == 5

    def test_shape_mismatch_rejected(self):
        matrix = figure_1b()
        result = sap_solve(equation_2(), options=SapOptions(trials=5, seed=1))
        with pytest.raises(InvalidPartitionError):
            partition_svg(matrix, result.partition)

    def test_fooling_cell_must_be_one(self):
        matrix = equation_2()
        with pytest.raises(InvalidPartitionError):
            partition_svg(matrix, None, fooling_cells=[(0, 2)])


class TestExperimentFigures:
    def test_figure4_svg_structure(self):
        from repro.experiments.figure4 import Figure4Config, run_figure4

        result = run_figure4(
            Figure4Config(scale="quick", top_n=4, smt_time_budget=10.0)
        )
        from repro.viz.figures import figure4_svg

        canvas = figure4_svg(result)
        root = parse(canvas)
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) >= 1  # the real-rank overlay

    def test_figure4_requires_cases(self):
        from repro.experiments.figure4 import Figure4Config, Figure4Result
        from repro.viz.figures import figure4_svg

        with pytest.raises(ValueError):
            figure4_svg(Figure4Result(config=Figure4Config()))

    def test_table1_saturation_curves(self):
        from repro.experiments.table1 import Table1Config, run_table1

        result = run_table1(
            Table1Config(
                scale="quick",
                heuristics=("trivial", "packing:1", "packing:10"),
                smt_time_budget=10.0,
                include_large=False,
            )
        )
        canvas = table1_saturation_svg(result)
        root = parse(canvas)
        assert root.findall(f"{SVG_NS}polyline")
