"""SVG canvas primitive tests."""

import xml.etree.ElementTree as ET

import pytest

from repro.viz.svg import SvgCanvas, _fmt


def parse(canvas: SvgCanvas) -> ET.Element:
    return ET.fromstring(canvas.to_string())


class TestFormatting:
    def test_integers_render_bare(self):
        assert _fmt(10.0) == "10"

    def test_fractions_trimmed(self):
        assert _fmt(10.50) == "10.5"
        assert _fmt(0.25) == "0.25"

    def test_rounding(self):
        assert _fmt(1.005) in ("1", "1.01")  # float repr dependent
        assert _fmt(2.999) == "3"


class TestCanvas:
    def test_rejects_empty_canvas(self):
        with pytest.raises(ValueError):
            SvgCanvas(0, 100)

    def test_document_is_well_formed_xml(self):
        canvas = SvgCanvas(100, 50)
        canvas.rect(0, 0, 10, 10, fill="#ff0000")
        canvas.line(0, 0, 100, 50)
        canvas.circle(5, 5, 2)
        canvas.text(10, 10, "hello & <world>")
        canvas.polyline([(0, 0), (1, 1), (2, 0)])
        root = parse(canvas)
        assert root.tag.endswith("svg")
        assert canvas.num_elements == 5

    def test_text_is_escaped(self):
        canvas = SvgCanvas(10, 10)
        canvas.text(0, 0, "a<b&c")
        assert "a&lt;b&amp;c" in canvas.to_string()

    def test_polyline_needs_two_points(self):
        canvas = SvgCanvas(10, 10)
        with pytest.raises(ValueError):
            canvas.polyline([(0, 0)])

    def test_deterministic_output(self):
        def build():
            canvas = SvgCanvas(64, 64)
            canvas.rect(1, 2, 3, 4, fill="#123456", stroke="#000")
            canvas.text(5, 6, "t", rotate=-90)
            return canvas.to_string()

        assert build() == build()

    def test_viewbox_matches_size(self):
        root = parse(SvgCanvas(320, 200))
        assert root.get("viewBox") == "0 0 320 200"

    def test_write_to_disk(self, tmp_path):
        canvas = SvgCanvas(10, 10)
        canvas.rect(0, 0, 5, 5, fill="#000")
        path = tmp_path / "out.svg"
        canvas.write(str(path))
        assert path.read_text().startswith("<svg")

    def test_optional_attributes(self):
        canvas = SvgCanvas(10, 10)
        canvas.rect(0, 0, 1, 1, opacity=0.5, rx=2)
        canvas.line(0, 0, 1, 1, dash="2,2")
        canvas.circle(0, 0, 1, stroke="#fff")
        text = canvas.to_string()
        assert 'opacity="0.5"' in text
        assert 'stroke-dasharray="2,2"' in text
        parse(canvas)
