"""Chart builder tests."""

import xml.etree.ElementTree as ET

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.viz.charts import (
    BarLayer,
    LineSeries,
    axis_ticks,
    line_chart,
    nice_ceiling,
    stacked_bar_chart,
)

SVG_NS = "{http://www.w3.org/2000/svg}"


def elements(canvas, tag):
    root = ET.fromstring(canvas.to_string())
    return root.findall(f"{SVG_NS}{tag}")


class TestAxisHelpers:
    @pytest.mark.parametrize(
        "value,expected",
        [(0.5, 0.5), (1.0, 1.0), (3.0, 5.0), (7.0, 10.0), (12.0, 20.0),
         (99.0, 100.0), (0.0, 1.0)],
    )
    def test_nice_ceiling(self, value, expected):
        assert nice_ceiling(value) == expected

    @given(st.floats(min_value=1e-6, max_value=1e9))
    @settings(max_examples=60, deadline=None)
    def test_nice_ceiling_dominates(self, value):
        ceiling = nice_ceiling(value)
        assert ceiling >= value
        assert ceiling <= 10 * value

    def test_axis_ticks_span(self):
        ticks = axis_ticks(10.0, count=5)
        assert ticks[0] == 0.0
        assert ticks[-1] == 10.0
        assert len(ticks) == 6

    def test_axis_ticks_zero(self):
        assert axis_ticks(0.0) == [0.0]


class TestStackedBarChart:
    def _chart(self, secondary=None):
        return stacked_bar_chart(
            ["a", "b", "c"],
            [
                BarLayer("packing", [0.1, 0.2, 0.3]),
                BarLayer("smt", [1.0, 2.0, 0.5]),
            ],
            title="t",
            y_label="sec",
            secondary=secondary,
        )

    def test_bar_count(self):
        canvas = self._chart()
        rects = elements(canvas, "rect")
        # 3 categories x 2 layers + 2 legend swatches.
        assert len(rects) == 3 * 2 + 2

    def test_secondary_line_adds_markers(self):
        line = LineSeries("rank", [3, 5, 4])
        canvas = self._chart(secondary=line)
        assert len(elements(canvas, "circle")) == 3
        assert len(elements(canvas, "polyline")) == 1

    def test_requires_matching_lengths(self):
        with pytest.raises(ValueError, match="values"):
            stacked_bar_chart(["a"], [BarLayer("x", [1.0, 2.0])])

    def test_requires_categories(self):
        with pytest.raises(ValueError, match="category"):
            stacked_bar_chart([], [BarLayer("x", [])])

    def test_secondary_length_checked(self):
        with pytest.raises(ValueError, match="secondary"):
            stacked_bar_chart(
                ["a"],
                [BarLayer("x", [1.0])],
                secondary=LineSeries("r", [1, 2]),
            )

    def test_well_formed(self):
        canvas = self._chart(secondary=LineSeries("rank", [1, 2, 3]))
        ET.fromstring(canvas.to_string())


class TestLineChart:
    def test_series_rendering(self):
        canvas = line_chart(
            ["1", "10", "100"],
            [
                LineSeries("g2", [29, 88, 100]),
                LineSeries("g5", [84, 90, 94]),
            ],
            y_max=100.0,
        )
        assert len(elements(canvas, "polyline")) == 2
        # 2 series x 3 markers.
        assert len(elements(canvas, "circle")) == 6

    def test_single_point_series(self):
        canvas = line_chart(["only"], [LineSeries("s", [5])])
        assert len(elements(canvas, "polyline")) == 0
        assert len(elements(canvas, "circle")) == 1

    def test_markers_disabled(self):
        canvas = line_chart(
            ["a", "b"], [LineSeries("s", [1, 2], markers=False)]
        )
        assert len(elements(canvas, "circle")) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([], [LineSeries("s", [])])
        with pytest.raises(ValueError):
            line_chart(["a"], [])
        with pytest.raises(ValueError):
            line_chart(["a"], [LineSeries("s", [1, 2])])

    def test_zero_values_produce_valid_axis(self):
        canvas = line_chart(["a", "b"], [LineSeries("s", [0, 0])])
        ET.fromstring(canvas.to_string())
