"""Unit tests for exact rank over Q (Bareiss)."""

import numpy as np
import pytest

from repro.core.binary_matrix import BinaryMatrix
from repro.linalg.exact_rank import determinant, rank_over_q, real_rank


class TestRankOverQ:
    def test_identity(self):
        assert rank_over_q(np.eye(4, dtype=int)) == 4

    def test_zero(self):
        assert rank_over_q(np.zeros((3, 5), dtype=int)) == 0

    def test_rank_one(self):
        m = np.outer([1, 1, 1], [1, 0, 1])
        assert rank_over_q(m) == 1

    def test_rectangular(self):
        m = [[1, 0, 1, 0], [0, 1, 0, 1], [1, 1, 1, 1]]
        assert rank_over_q(m) == 2

    def test_char2_trap(self):
        """Rank over GF(2) would be 2 here; over Q it is 3."""
        m = [[0, 1, 1], [1, 0, 1], [1, 1, 0]]
        assert rank_over_q(m) == 3

    def test_accepts_binary_matrix(self):
        assert rank_over_q(BinaryMatrix.identity(3)) == 3

    def test_matches_numpy_on_random(self, rng):
        for _ in range(30):
            rows = rng.randint(1, 8)
            cols = rng.randint(1, 8)
            arr = np.array(
                [
                    [rng.randint(0, 1) for _ in range(cols)]
                    for _ in range(rows)
                ]
            )
            assert rank_over_q(arr) == np.linalg.matrix_rank(arr)

    def test_integer_entries_beyond_binary(self):
        m = [[2, 4], [1, 2]]
        assert rank_over_q(m) == 1

    def test_non_integer_rejected(self):
        with pytest.raises(ValueError):
            rank_over_q(np.array([[0.5]]))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            rank_over_q(np.array([1, 2, 3]))

    def test_real_rank_alias(self):
        m = BinaryMatrix.from_strings(["10", "01"])
        assert real_rank(m) == rank_over_q(m)


class TestDeterminant:
    def test_identity(self):
        assert determinant(np.eye(5, dtype=int)) == 1

    def test_known_2x2(self):
        assert determinant([[1, 2], [3, 4]]) == -2

    def test_singular(self):
        assert determinant([[1, 1], [1, 1]]) == 0

    def test_swap_changes_sign(self):
        assert determinant([[0, 1], [1, 0]]) == -1

    def test_empty(self):
        assert determinant([]) == 1

    def test_matches_numpy_on_random(self, rng):
        for _ in range(20):
            n = rng.randint(1, 6)
            arr = np.array(
                [[rng.randint(-3, 3) for _ in range(n)] for _ in range(n)]
            )
            expected = round(float(np.linalg.det(arr)))
            assert determinant(arr) == expected

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            determinant([[1, 2, 3], [4, 5, 6]])
