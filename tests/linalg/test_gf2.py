"""Unit tests for GF(2) linear algebra."""

import numpy as np

from repro.core.binary_matrix import BinaryMatrix
from repro.linalg.gf2 import (
    gf2_in_row_space,
    gf2_nullspace,
    gf2_rank,
    gf2_row_basis,
    gf2_row_reduce,
    gf2_solve,
)


def _np_gf2_rank(arr: np.ndarray) -> int:
    """Reference GF(2) rank by dense elimination."""
    m = (arr % 2).astype(int).tolist()
    rank = 0
    cols = len(m[0]) if m else 0
    row = 0
    for col in range(cols):
        pivot = next(
            (r for r in range(row, len(m)) if m[r][col]), None
        )
        if pivot is None:
            continue
        m[row], m[pivot] = m[pivot], m[row]
        for r in range(len(m)):
            if r != row and m[r][col]:
                m[r] = [(a + b) % 2 for a, b in zip(m[r], m[row])]
        rank += 1
        row += 1
        if row == len(m):
            break
    return rank


class TestGf2Rank:
    def test_identity(self):
        assert gf2_rank(BinaryMatrix.identity(4)) == 4

    def test_zero(self):
        assert gf2_rank(BinaryMatrix.zeros(3, 3)) == 0

    def test_char2_collapse(self):
        m = BinaryMatrix.from_strings(["011", "101", "110"])
        assert gf2_rank(m) == 2  # over Q it is 3

    def test_matches_reference_on_random(self, rng):
        for _ in range(40):
            rows = rng.randint(1, 8)
            cols = rng.randint(1, 8)
            arr = np.array(
                [[rng.randint(0, 1) for _ in range(cols)] for _ in range(rows)]
            )
            assert gf2_rank(arr) == _np_gf2_rank(arr)

    def test_order_insensitive(self, rng):
        m = BinaryMatrix.from_strings(["110", "011", "101", "111"])
        rank = gf2_rank(m)
        for _ in range(5):
            order = list(range(4))
            rng.shuffle(order)
            assert gf2_rank(m.permute_rows(order)) == rank


class TestRowBasisAndReduce:
    def test_basis_size_equals_rank(self):
        m = BinaryMatrix.from_strings(["110", "011", "101"])
        assert len(gf2_row_basis(m)) == gf2_rank(m)

    def test_reduced_pivots_unique(self):
        m = BinaryMatrix.from_strings(["111", "011", "001"])
        reduced = gf2_row_reduce(m)
        pivot_bits = [b & -b for b in reduced]
        assert len(set(pivot_bits)) == len(reduced)
        # fully reduced: no basis vector contains another's pivot bit
        for i, vec in enumerate(reduced):
            for j, other in enumerate(reduced):
                if i != j:
                    assert not (vec & (other & -other))


class TestRowSpaceMembership:
    def test_member(self):
        m = BinaryMatrix.from_strings(["110", "011"])
        assert gf2_in_row_space(m, 0b101)  # 110 ^ 011 (mask form LSB-first)

    def test_non_member(self):
        m = BinaryMatrix.from_strings(["110"])
        assert not gf2_in_row_space(m, 0b100)

    def test_zero_always_member(self):
        assert gf2_in_row_space(BinaryMatrix.zeros(1, 3), 0)


class TestGf2Solve:
    def test_solution_validates(self, rng):
        for _ in range(20):
            rows = rng.randint(1, 6)
            cols = rng.randint(1, 6)
            m = BinaryMatrix(
                [rng.getrandbits(cols) for _ in range(rows)], cols
            )
            # Build rhs from a random row combination.
            selection = rng.getrandbits(rows)
            rhs = 0
            for i in range(rows):
                if (selection >> i) & 1:
                    rhs ^= m.row_mask(i)
            found = gf2_solve(m, rhs)
            assert found is not None
            check = 0
            for i in range(rows):
                if (found >> i) & 1:
                    check ^= m.row_mask(i)
            assert check == rhs

    def test_unsolvable(self):
        m = BinaryMatrix.from_strings(["110"])
        assert gf2_solve(m, 0b100) is None


class TestNullspace:
    def test_dimension(self, rng):
        for _ in range(20):
            rows = rng.randint(1, 6)
            cols = rng.randint(1, 6)
            m = BinaryMatrix(
                [rng.getrandbits(cols) for _ in range(rows)], cols
            )
            null = gf2_nullspace(m)
            assert len(null) == cols - gf2_rank(m)

    def test_vectors_are_in_kernel(self, rng):
        m = BinaryMatrix.from_strings(["110", "011"])
        for vec in gf2_nullspace(m):
            for row in m.row_masks:
                assert bin(row & vec).count("1") % 2 == 0

    def test_identity_has_trivial_kernel(self):
        assert gf2_nullspace(BinaryMatrix.identity(4)) == []
