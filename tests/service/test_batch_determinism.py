"""Determinism regression: batches reproduce byte-for-byte.

``solve_batch`` with a fixed seed must yield identical canonical
provenance (timing fields stripped) across repeated runs and across
pool sizes — 1 in-process worker versus a real multiprocessing pool.
"""

import json

import pytest

from repro.service.batch import as_batch_items, instance_seed, solve_batch
from repro.service.cache import ResultCache
from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import SolverError

MEMBERS = ("trivial", "packing:4", "sap")


def _canonical(records):
    return json.dumps(
        [record.provenance(include_timing=False) for record in records],
        sort_keys=True,
    ).encode()


class TestSeeding:
    def test_instance_seed_depends_only_on_id(self, service_seed):
        a = instance_seed(service_seed, "case-a")
        assert a == instance_seed(service_seed, "case-a")
        assert a != instance_seed(service_seed, "case-b")
        assert a != instance_seed(service_seed + 1, "case-a")
        assert instance_seed(None, "case-a") is None

    def test_duplicate_ids_rejected(self, service_matrices):
        case_id, matrix = service_matrices[0]
        with pytest.raises(SolverError):
            solve_batch([(case_id, matrix), (case_id, matrix)], seed=1)

    def test_malformed_members_rejected_before_solving(self, service_matrices):
        with pytest.raises(SolverError):
            solve_batch(service_matrices, members=("magic:3",), seed=1)
        with pytest.raises(SolverError):
            solve_batch(service_matrices, members=(), seed=1)

    def test_normalization_accepts_mixed_inputs(self, service_matrices):
        case_id, matrix = service_matrices[0]
        items = as_batch_items(
            [matrix, (case_id, matrix)], members=MEMBERS
        )
        assert items[0].case_id == "case-0000"
        assert items[1].case_id == case_id
        assert items[0].members == MEMBERS


class TestByteIdentity:
    def test_identical_across_runs(self, service_matrices, service_seed):
        first = solve_batch(
            service_matrices, members=MEMBERS, seed=service_seed, workers=1
        )
        second = solve_batch(
            service_matrices, members=MEMBERS, seed=service_seed, workers=1
        )
        assert _canonical(first) == _canonical(second)

    def test_identical_across_pool_sizes(self, service_matrices, service_seed):
        solo = solve_batch(
            service_matrices, members=MEMBERS, seed=service_seed, workers=1
        )
        pooled = solve_batch(
            service_matrices, members=MEMBERS, seed=service_seed, workers=3
        )
        assert _canonical(solo) == _canonical(pooled)

    def test_order_of_cases_does_not_change_per_case_records(
        self, service_matrices, service_seed
    ):
        forward = solve_batch(
            service_matrices, members=MEMBERS, seed=service_seed
        )
        backward = solve_batch(
            list(reversed(service_matrices)), members=MEMBERS, seed=service_seed
        )
        by_id = {record.case_id: record for record in backward}
        for record in forward:
            twin = by_id[record.case_id]
            assert (
                record.provenance(include_timing=False)
                == twin.provenance(include_timing=False)
            )

    def test_results_in_input_order(self, service_matrices, service_seed):
        records = solve_batch(
            service_matrices, members=MEMBERS, seed=service_seed, workers=2
        )
        assert [r.case_id for r in records] == [
            case_id for case_id, _ in service_matrices
        ]


class TestCacheInteraction:
    def test_cached_rerun_preserves_canonical_record(
        self, service_matrices, service_seed
    ):
        cache = ResultCache(capacity=64)
        cold = solve_batch(
            service_matrices, members=MEMBERS, seed=service_seed, cache=cache
        )
        warm = solve_batch(
            service_matrices, members=MEMBERS, seed=service_seed, cache=cache
        )
        assert all(not record.from_cache for record in cold)
        assert all(record.from_cache for record in warm)
        for before, after in zip(cold, warm):
            lhs = before.provenance(include_timing=False)
            rhs = after.provenance(include_timing=False)
            # from_cache is the only field allowed to differ.
            lhs.pop("from_cache")
            rhs.pop("from_cache")
            assert lhs == rhs

    def test_cache_never_serves_other_configurations(
        self, service_matrices, service_seed
    ):
        """Same matrices, different member set / seed -> cache misses."""
        cache = ResultCache(capacity=256)
        solve_batch(
            service_matrices, members=("trivial",), seed=service_seed,
            cache=cache,
        )
        other_members = solve_batch(
            service_matrices, members=MEMBERS, seed=service_seed, cache=cache
        )
        assert all(not record.from_cache for record in other_members)
        assert all(record.result.member("sap") for record in other_members)
        other_seed = solve_batch(
            service_matrices, members=MEMBERS, seed=service_seed + 1,
            cache=cache,
        )
        assert all(not record.from_cache for record in other_seed)
        same_again = solve_batch(
            service_matrices, members=MEMBERS, seed=service_seed, cache=cache
        )
        assert all(record.from_cache for record in same_again)

    def test_per_member_budget_survives_budget_object(self, service_matrices):
        from repro.service.budget import PortfolioBudget
        from repro.service.cache import matrix_key
        from repro.service.batch import solve_context

        # per_member_seconds riding on the budget object must reach the
        # worker (observable through the cache-key context).
        _, matrix = service_matrices[0]
        cache = ResultCache(capacity=8)
        solve_batch(
            [("one", matrix)],
            members=("trivial",),
            seed=3,
            cache=cache,
            budget_per_instance=PortfolioBudget(
                60.0, per_member_seconds=5.0
            ),
        )
        context = solve_context(
            ("trivial",), instance_seed(3, "one"), 60.0, 5.0, True
        )
        assert cache.get_by_key(matrix_key(matrix, context)) is not None

    def test_every_record_is_valid_and_attributed(
        self, service_matrices, service_seed
    ):
        records = solve_batch(
            service_matrices, members=MEMBERS, seed=service_seed
        )
        by_id = dict(service_matrices)
        for record in records:
            record.result.partition.validate(by_id[record.case_id])
            assert record.result.winner in MEMBERS
            assert record.result.wall_seconds >= 0.0


@pytest.mark.slow
class TestPoolStress:
    def test_large_batch_across_pool(self, service_seed):
        """A bigger, repetition-heavy batch stays deterministic pooled."""
        from repro.benchgen.random_matrices import random_matrix
        from repro.utils.rng import spawn_seeds

        seeds = spawn_seeds(service_seed, 24, salt="stress")
        cases = [
            (f"stress-{i}", random_matrix(6, 6, 0.5, seed=seeds[i]))
            for i in range(24)
        ]
        solo = solve_batch(cases, members=MEMBERS, seed=service_seed)
        pooled = solve_batch(
            cases, members=MEMBERS, seed=service_seed, workers=4
        )
        assert _canonical(solo) == _canonical(pooled)
