"""Property tests for the content-addressed result cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import SolverError
from repro.service.cache import ResultCache, matrix_key
from repro.service.portfolio import solve_portfolio
from tests.conftest import binary_matrices

MEMBERS = ("trivial", "packing:2")


def _solve(matrix):
    return solve_portfolio(matrix, members=MEMBERS, seed=7)


class TestKeying:
    @given(binary_matrices())
    def test_key_invariant_under_reconstruction(self, matrix):
        """Any equal reconstruction of the matrix hits the same key."""
        rebuilt_strings = BinaryMatrix.from_strings(matrix.to_strings())
        rebuilt_lists = BinaryMatrix.from_rows(matrix.to_lists())
        rebuilt_numpy = BinaryMatrix.from_numpy(matrix.to_numpy())
        assert matrix_key(matrix) == matrix_key(rebuilt_strings)
        assert matrix_key(matrix) == matrix_key(rebuilt_lists)
        assert matrix_key(matrix) == matrix_key(rebuilt_numpy)

    @given(binary_matrices(), binary_matrices())
    def test_key_distinguishes_unequal_matrices(self, a, b):
        if a == b:
            assert matrix_key(a) == matrix_key(b)
        else:
            assert matrix_key(a) != matrix_key(b)

    def test_padding_does_not_collide(self):
        narrow = BinaryMatrix([0b1, 0b0], 1)
        wide = BinaryMatrix([0b1, 0b0], 2)
        assert matrix_key(narrow) != matrix_key(wide)

    @given(binary_matrices())
    def test_context_partitions_the_key_space(self, matrix):
        plain = matrix_key(matrix)
        a = matrix_key(matrix, "members=trivial|seed=1")
        b = matrix_key(matrix, "members=trivial|seed=2")
        assert len({plain, a, b}) == 3
        assert a == matrix_key(matrix, "members=trivial|seed=1")


class TestHitSemantics:
    @given(binary_matrices())
    @settings(max_examples=25)
    def test_hit_returns_equal_partition(self, matrix):
        cache = ResultCache(capacity=4)
        result = _solve(matrix)
        cache.put(matrix, result)
        hit = cache.get(BinaryMatrix.from_strings(matrix.to_strings()))
        assert hit is not None
        assert hit.from_cache
        assert hit.partition == result.partition
        assert hit.depth == result.depth
        assert hit.winner == result.winner
        assert hit.optimal == result.optimal
        assert hit.lower_bound == result.lower_bound
        hit.partition.validate(matrix)

    def test_miss_then_hit_counts(self):
        cache = ResultCache(capacity=4)
        matrix = BinaryMatrix.from_strings(["10", "01"])
        assert cache.get(matrix) is None
        cache.put(matrix, _solve(matrix))
        assert cache.get(matrix) is not None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1


class TestLru:
    @given(
        st.integers(1, 5),
        st.lists(st.integers(0, 10), min_size=1, max_size=30),
    )
    @settings(max_examples=25)
    def test_eviction_never_exceeds_capacity(self, capacity, columns):
        """Insert a stream of matrices; size stays bounded throughout."""
        cache = ResultCache(capacity=capacity)
        matrices = {
            n: BinaryMatrix([(1 << n) - 1], max(n, 1)) for n in range(1, 12)
        }
        for n in columns:
            matrix = matrices[n + 1]
            cache.put(matrix, _solve(matrix))
            assert len(cache) <= capacity
        distinct = len({n + 1 for n in columns})
        assert len(cache) == min(capacity, distinct)

    def test_lru_order_get_refreshes(self):
        cache = ResultCache(capacity=2)
        a = BinaryMatrix.from_strings(["1"])
        b = BinaryMatrix.from_strings(["11"])
        c = BinaryMatrix.from_strings(["111"])
        cache.put(a, _solve(a))
        cache.put(b, _solve(b))
        assert cache.get(a) is not None  # refresh a; b is now LRU
        cache.put(c, _solve(c))  # evicts b
        assert cache.get(a) is not None
        assert cache.get(b) is None
        assert cache.stats.evictions == 1

    def test_bad_capacity_rejected(self):
        with pytest.raises(SolverError):
            ResultCache(capacity=0)


class TestDiskTier:
    @given(binary_matrices())
    @settings(max_examples=15)
    def test_disk_round_trip_preserves_results(self, tmp_path_factory, matrix):
        path = tmp_path_factory.mktemp("cache") / "cache.json"
        cache = ResultCache(capacity=8, path=path)
        result = _solve(matrix)
        cache.put(matrix, result)
        cache.flush()

        reloaded = ResultCache(capacity=8, path=path)
        hit = reloaded.get(matrix)
        assert hit is not None
        assert hit.partition == result.partition
        assert hit.winner == result.winner
        assert hit.optimal == result.optimal
        assert (
            hit.provenance(include_timing=False)["members"]
            == result.provenance(include_timing=False)["members"]
        )

    def test_reload_respects_capacity(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(capacity=8, path=path)
        for n in range(1, 6):
            matrix = BinaryMatrix([(1 << n) - 1], n)
            cache.put(matrix, _solve(matrix))
        cache.flush()
        small = ResultCache(capacity=2, path=path)
        assert len(small) == 2
        assert small.stats.evictions == 3

    def test_round_trip_preserves_lru_order(self, tmp_path):
        """Recency (not hash order) decides evictions after a reload."""
        path = tmp_path / "cache.json"
        cache = ResultCache(capacity=8, path=path)
        matrices = [BinaryMatrix([(1 << n) - 1], n) for n in (1, 2, 3)]
        for matrix in matrices:
            cache.put(matrix, _solve(matrix))
        assert cache.get(matrices[0]) is not None  # oldest becomes hottest
        cache.flush()
        reloaded = ResultCache(capacity=2, path=path)
        # capacity 2 keeps the two most recent: matrices[2], matrices[0]
        assert reloaded.get(matrices[0]) is not None
        assert reloaded.get(matrices[2]) is not None
        assert reloaded.get(matrices[1]) is None

    def test_rejects_foreign_payload(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"type": "something_else", "entries": {}}')
        with pytest.raises(SolverError):
            ResultCache(path=path)
