"""Cross-solver equivalence: every portfolio member must agree.

For every paper matrix and a seeded random sample, each member must
return a *valid* partition (validated both as an EBMF and as a cover),
the exact backends (SAP, branch and bound) must agree on the optimal
depth, and every heuristic must land at or above it.
"""

import pytest

from repro.core.paper_matrices import (
    equation_2,
    figure_1b,
    figure_3,
    section_2_nonbinary_example,
)
from repro.cover.validate import validate_cover
from repro.service.portfolio import (
    run_member,
    member_seed,
    solve_portfolio,
)
from tests.conftest import SERVICE_SEED

HEURISTIC_MEMBERS = ("trivial", "packing:8", "packing_x:4", "greedy:4")
EXACT_MEMBERS = ("sap", "branch_bound")
ALL_MEMBERS = HEURISTIC_MEMBERS + EXACT_MEMBERS

PAPER_CASES = [
    ("figure_1b", figure_1b()),
    ("equation_2", equation_2()),
    ("figure_3", figure_3()),
    ("section_2", section_2_nonbinary_example()),
]

PAPER_OPTIMA = {
    "figure_1b": 5,
    "equation_2": 3,
    "figure_3": 4,
    "section_2": 3,
}


def _all_cases(service_matrices):
    return PAPER_CASES + list(service_matrices)


class TestEveryMemberValid:
    @pytest.mark.parametrize(
        "case_id,matrix", PAPER_CASES, ids=[c[0] for c in PAPER_CASES]
    )
    @pytest.mark.parametrize("member", ALL_MEMBERS)
    def test_member_valid_on_paper_matrices(self, case_id, matrix, member):
        outcome = run_member(
            matrix, member, seed=member_seed(SERVICE_SEED, member)
        )
        assert outcome.error is None
        assert outcome.partition is not None
        outcome.partition.validate(matrix)
        validate_cover(matrix, outcome.partition)
        assert outcome.depth == outcome.partition.depth

    def test_member_valid_on_random_sample(self, service_matrices):
        for case_id, matrix in service_matrices:
            for member in ALL_MEMBERS:
                outcome = run_member(
                    matrix, member, seed=member_seed(SERVICE_SEED, member)
                )
                assert outcome.partition is not None, (case_id, member)
                outcome.partition.validate(matrix)
                validate_cover(matrix, outcome.partition)


class TestExactBackendsAgree:
    def test_exact_agree_and_heuristics_dominate(self, service_matrices):
        for case_id, matrix in _all_cases(service_matrices):
            result = solve_portfolio(
                matrix,
                members=ALL_MEMBERS,
                seed=SERVICE_SEED,
                stop_when_optimal=False,
            )
            depths = result.member_depths()
            exact_depths = {
                name: depths[name]
                for name in EXACT_MEMBERS
                if result.member(name).proved_optimal
            }
            assert set(exact_depths) == set(EXACT_MEMBERS), (
                f"{case_id}: exact member failed to prove optimality"
            )
            optimum = exact_depths["sap"]
            assert exact_depths["branch_bound"] == optimum, case_id
            assert result.optimal
            assert result.depth == optimum
            assert result.lower_bound <= optimum
            for name in HEURISTIC_MEMBERS:
                assert depths[name] >= optimum, (case_id, name)

    def test_paper_optima(self):
        for case_id, matrix in PAPER_CASES:
            result = solve_portfolio(
                matrix,
                members=("packing:8", "sap", "branch_bound"),
                seed=SERVICE_SEED,
                stop_when_optimal=False,
            )
            assert result.depth == PAPER_OPTIMA[case_id], case_id


class TestProvenance:
    def test_every_result_carries_provenance(self, service_matrices):
        for case_id, matrix in _all_cases(service_matrices):
            result = solve_portfolio(
                matrix, members=("trivial", "packing:4", "sap"),
                seed=SERVICE_SEED,
            )
            payload = result.provenance()
            assert payload["winner"] in ("trivial", "packing:4", "sap")
            assert isinstance(payload["wall_seconds"], float)
            assert isinstance(payload["optimal"], bool)
            assert payload["depth"] == result.depth
            assert len(payload["members"]) == 3
            ran = [m for m in payload["members"] if not m["skipped"]]
            assert ran, case_id
            for entry in ran:
                assert entry["seconds"] >= 0.0

    def test_stop_when_optimal_skips_tail(self):
        matrix = equation_2()  # trivial is already optimal (r_B = 3 = rows)
        result = solve_portfolio(
            matrix,
            members=("trivial", "packing:8", "sap"),
            seed=SERVICE_SEED,
            stop_when_optimal=True,
        )
        assert result.optimal
        assert result.member("sap").skipped
        assert result.member("packing:8").skipped

    def test_malformed_member_specs_fail_fast(self):
        from repro.core.exceptions import SolverError

        for bad in (("magic:3",), ("packing:0", "sap"), (), ("trivial", "")):
            with pytest.raises(SolverError):
                solve_portfolio(figure_3(), members=bad, seed=SERVICE_SEED)

    def test_budget_starvation_falls_back_to_trivial(self):
        result = solve_portfolio(
            figure_1b(),
            members=("sap",),
            seed=SERVICE_SEED,
            budget=0.0,
        )
        result.partition.validate(figure_1b())
        assert result.member("sap").skipped
        assert result.winner == "trivial"
