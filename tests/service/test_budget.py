"""Edge cases for the shared portfolio budget.

Satellite coverage: zero/negative budgets, exhaustion mid-race, and the
ledger agreeing with the wall times the provenance records.
"""

import time

import pytest

from repro.core.exceptions import SolverError
from repro.core.paper_matrices import figure_1b, figure_3
from repro.service.budget import PortfolioBudget
from repro.service.portfolio import solve_portfolio
from tests.conftest import SERVICE_SEED


class TestConstruction:
    def test_negative_total_rejected(self):
        with pytest.raises(SolverError):
            PortfolioBudget(-1.0)

    def test_negative_per_member_rejected(self):
        with pytest.raises(SolverError):
            PortfolioBudget(10.0, per_member_seconds=-0.5)

    def test_coerce_accepts_none_numbers_and_budgets(self):
        assert PortfolioBudget.coerce(None).total_seconds is None
        assert PortfolioBudget.coerce(5).total_seconds == 5.0
        assert PortfolioBudget.coerce(2.5).total_seconds == 2.5
        ready = PortfolioBudget(7.0)
        assert PortfolioBudget.coerce(ready) is ready

    def test_coerce_rejects_bool_and_strings(self):
        with pytest.raises(SolverError):
            PortfolioBudget.coerce(True)
        with pytest.raises(SolverError):
            PortfolioBudget.coerce("10s")


class TestZeroBudget:
    def test_zero_budget_expires_immediately(self):
        pot = PortfolioBudget(0.0)
        time.sleep(0.002)  # perf_counter must tick past the deadline
        assert pot.expired()
        assert pot.member_budget() == 0.0
        assert pot.remaining() == 0.0

    def test_unlimited_budget_never_expires(self):
        pot = PortfolioBudget()
        assert not pot.expired()
        assert pot.remaining() is None
        assert pot.member_budget() is None

    def test_per_member_caps_unlimited_pot(self):
        pot = PortfolioBudget(per_member_seconds=3.0)
        assert pot.member_budget() == 3.0

    def test_member_budget_is_min_of_remaining_and_slice(self):
        pot = PortfolioBudget(100.0, per_member_seconds=5.0)
        assert pot.member_budget() == 5.0
        tight = PortfolioBudget(0.0, per_member_seconds=5.0)
        time.sleep(0.002)
        assert tight.member_budget() == 0.0


class TestExhaustionMidRace:
    def test_members_after_exhaustion_are_skipped(self):
        """Budget dies between members: the tail is skipped with an
        explicit reason, and the result still validates."""
        pot = PortfolioBudget(0.001)
        time.sleep(0.01)  # the pot expires before the race starts
        result = solve_portfolio(
            figure_1b(),
            members=("packing:4", "sap"),
            seed=SERVICE_SEED,
            budget=pot,
        )
        result.partition.validate(figure_1b())
        assert result.winner == "trivial"  # fallback
        for name in ("packing:4", "sap"):
            outcome = result.member(name)
            assert outcome.skipped
            assert outcome.error == "portfolio budget exhausted"

    def test_exhaustion_mid_race_concurrent(self):
        pot = PortfolioBudget(0.001)
        time.sleep(0.01)
        result = solve_portfolio(
            figure_1b(),
            members=("packing:4", "sap", "branch_bound"),
            seed=SERVICE_SEED,
            budget=pot,
            race="concurrent",
        )
        result.partition.validate(figure_1b())
        assert result.member("sap").skipped
        assert result.member("branch_bound").skipped

    def test_starved_exact_member_reports_budget_error(self):
        """A member that *starts* with a zero slice fails inside the
        solver (not skipped) and the race still completes."""
        result = solve_portfolio(
            figure_1b(),  # >64 search nodes, so the deadline poll fires
            members=("trivial", "branch_bound"),
            seed=SERVICE_SEED,
            budget=PortfolioBudget(per_member_seconds=0.0),
            stop_when_optimal=False,
        )
        result.partition.validate(figure_1b())
        bb = result.member("branch_bound")
        assert not bb.skipped
        assert bb.error is not None and "budget" in bb.error.lower()


class TestLedger:
    def test_ledger_matches_provenance_seconds(self):
        """Every charged second is attributable to a member outcome and
        vice versa — the ledger and the provenance never drift."""
        pot = PortfolioBudget(60.0)
        result = solve_portfolio(
            figure_1b(),
            members=("trivial", "packing:4", "sap"),
            seed=SERVICE_SEED,
            budget=pot,
            stop_when_optimal=False,
        )
        ran = [o for o in result.outcomes if not o.skipped]
        assert set(pot.ledger) == {o.name for o in ran}
        for outcome in ran:
            assert pot.ledger[outcome.name] == outcome.seconds
        assert pot.spent() == sum(o.seconds for o in ran)
        assert pot.spent() <= result.wall_seconds

    def test_ledger_accumulates_repeated_charges(self):
        pot = PortfolioBudget()
        pot.charge("sap", 1.0)
        pot.charge("sap", 0.5)
        assert pot.ledger == {"sap": 1.5}
        assert pot.spent() == 1.5

    def test_repr_mentions_totals(self):
        pot = PortfolioBudget(2.0)
        pot.charge("x", 0.25)
        text = repr(pot)
        assert "total=2" in text
        assert "members=1" in text
