"""Unit tests for rectangle covers (boolean rank)."""

import math

import pytest

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidPartitionError
from repro.core.paper_matrices import equation_2, figure_1b
from repro.core.partition import Partition
from repro.core.rectangle import Rectangle
from repro.cover import (
    boolean_rank,
    greedy_cover,
    greedy_cover_once,
    is_valid_cover,
    minimum_cover,
    validate_cover,
)
from repro.solvers.branch_bound import binary_rank_branch_bound


class TestValidateCover:
    def test_overlapping_cover_valid(self):
        m = BinaryMatrix.from_strings(["111", "111"])
        cover = Partition(
            [
                Rectangle.from_sets([0, 1], [0, 1]),
                Rectangle.from_sets([0, 1], [1, 2]),
            ],
            (2, 3),
        )
        validate_cover(m, cover)  # overlap on column 1 is fine

    def test_zero_touched_rejected(self):
        m = BinaryMatrix.from_strings(["10"])
        cover = Partition([Rectangle.from_sets([0], [0, 1])], (1, 2))
        with pytest.raises(InvalidPartitionError):
            validate_cover(m, cover)

    def test_uncovered_one_rejected(self):
        m = BinaryMatrix.from_strings(["11"])
        cover = Partition([Rectangle.single(0, 0)], (1, 2))
        assert not is_valid_cover(m, cover)

    def test_shape_mismatch(self):
        m = BinaryMatrix.from_strings(["1"])
        cover = Partition([], (2, 2))
        with pytest.raises(InvalidPartitionError):
            validate_cover(m, cover)


class TestGreedyCover:
    def test_valid_on_random(self, rng):
        for _ in range(25):
            rows, cols = rng.randint(1, 7), rng.randint(1, 7)
            m = BinaryMatrix(
                [rng.getrandbits(cols) for _ in range(rows)], cols
            )
            if m.is_zero():
                continue
            cover = greedy_cover_once(m, seed=rng.randint(0, 999))
            validate_cover(m, cover)

    def test_all_ones_single_rectangle(self):
        cover = greedy_cover(BinaryMatrix.all_ones(4, 4), trials=2, seed=0)
        assert cover.depth == 1

    def test_trials_rejected(self):
        from repro.core.exceptions import SolverError

        with pytest.raises(SolverError):
            greedy_cover(BinaryMatrix.identity(2), trials=0)


class TestMinimumCover:
    def test_zero_matrix(self):
        result = minimum_cover(BinaryMatrix.zeros(2, 2))
        assert result.depth == 0 and result.proved_optimal

    def test_identity_needs_n(self):
        assert boolean_rank(BinaryMatrix.identity(4), seed=0) == 4

    @pytest.mark.parametrize(
        "n,expected",
        [(3, 3), (4, 4), (5, 4), (6, 4)],
    )
    def test_crown_matrices_sperner_bound(self, n, expected):
        """Cover number of J_n - I_n is min{r : C(r, floor(r/2)) >= n} —
        the classical set-basis/Sperner result; the partition number is n.
        """
        m = BinaryMatrix.identity(n).complement()
        result = minimum_cover(m, trials=8, seed=0, time_budget=60)
        assert result.proved_optimal
        assert result.depth == expected
        sperner = next(
            r
            for r in range(1, 10)
            if math.comb(r, r // 2) >= n
        )
        assert result.depth == sperner

    def test_cover_at_most_partition(self, rng):
        for _ in range(12):
            rows, cols = rng.randint(2, 5), rng.randint(2, 5)
            m = BinaryMatrix(
                [rng.getrandbits(cols) for _ in range(rows)], cols
            )
            cover = minimum_cover(m, trials=8, seed=0, time_budget=30)
            partition_rank = binary_rank_branch_bound(m).binary_rank
            assert cover.proved_optimal
            assert cover.depth <= partition_rank

    def test_paper_matrices(self):
        # Figure 1b: the fooling set of size 5 also lower-bounds covers.
        result = minimum_cover(figure_1b(), trials=8, seed=0, time_budget=60)
        assert result.proved_optimal
        assert result.depth == 5
        # Eq. 2 matrix: cover number is 2 (< partition number 3): the two
        # overlapping 2x2 blocks cover the matrix.
        result = minimum_cover(equation_2(), trials=8, seed=0)
        assert result.proved_optimal
        assert result.depth == 2

    def test_boolean_rank_budget_failure(self):
        from repro.core.exceptions import SolverError
        from repro.benchgen.gap import gap_matrix

        m = gap_matrix(10, 10, 4, seed=3)
        try:
            value = boolean_rank(m, trials=2, seed=0, time_budget=0.0)
        except SolverError:
            return
        assert value >= 1  # greedy happened to match the fooling bound
