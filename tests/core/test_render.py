"""Unit tests for ASCII rendering."""

import pytest

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidPartitionError
from repro.core.partition import Partition
from repro.core.rectangle import Rectangle
from repro.core.render import (
    render_matrix,
    render_partition,
    render_side_by_side,
)


class TestRenderMatrix:
    def test_basic(self):
        m = BinaryMatrix.from_strings(["10", "01"])
        assert render_matrix(m) == "#.\n.#"

    def test_custom_glyphs(self):
        m = BinaryMatrix.from_strings(["10"])
        assert render_matrix(m, one="X", zero="_") == "X_"


class TestRenderPartition:
    def test_distinct_markers(self):
        partition = Partition(
            [Rectangle.single(0, 0), Rectangle.single(1, 1)], (2, 2)
        )
        assert render_partition(partition) == "0.\n.1"

    def test_uncovered_ones_marked(self):
        m = BinaryMatrix.from_strings(["11"])
        partition = Partition([Rectangle.single(0, 0)], (1, 2))
        assert render_partition(partition, m) == "0?"

    def test_overlap_marked(self):
        partition = Partition(
            [Rectangle.single(0, 0), Rectangle.single(0, 0)], (1, 1)
        )
        assert render_partition(partition) == "!"

    def test_shape_mismatch(self):
        partition = Partition([Rectangle.single(0, 0)], (1, 1))
        with pytest.raises(InvalidPartitionError):
            render_partition(partition, BinaryMatrix.zeros(2, 2))

    def test_marker_wraparound(self):
        rects = [Rectangle.single(0, j) for j in range(70)]
        partition = Partition(rects, (1, 70))
        text = render_partition(partition)
        assert len(text) == 70  # single row, no crash on marker reuse


class TestSideBySide:
    def test_equal_height(self):
        out = render_side_by_side("ab\ncd", "xy\nzw")
        assert out == "ab   xy\ncd   zw"

    def test_ragged_heights_padded(self):
        out = render_side_by_side("a", "x\ny")
        assert out.splitlines()[1].strip() == "y"

    def test_custom_gap(self):
        out = render_side_by_side("a", "b", gap="|")
        assert out == "a|b"
