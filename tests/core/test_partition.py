"""Unit tests for Partition (EBMF certificates)."""

import numpy as np
import pytest

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidPartitionError
from repro.core.partition import Partition
from repro.core.rectangle import Rectangle


def two_rect_partition():
    """[[1,1],[0,1]] split into the top row and the bottom-right cell."""
    rects = [
        Rectangle.from_sets([0], [0, 1]),
        Rectangle.from_sets([1], [1]),
    ]
    return Partition(rects, (2, 2)), BinaryMatrix.from_strings(["11", "01"])


class TestValidation:
    def test_valid_partition_passes(self):
        partition, matrix = two_rect_partition()
        partition.validate(matrix)
        assert partition.is_valid_for(matrix)

    def test_overlap_detected(self):
        rects = [
            Rectangle.from_sets([0], [0, 1]),
            Rectangle.from_sets([0], [1]),
        ]
        partition = Partition(rects, (1, 2))
        matrix = BinaryMatrix.from_strings(["11"])
        with pytest.raises(InvalidPartitionError, match="overlaps"):
            partition.validate(matrix)

    def test_missing_cell_detected(self):
        partition = Partition([Rectangle.single(0, 0)], (1, 2))
        matrix = BinaryMatrix.from_strings(["11"])
        with pytest.raises(InvalidPartitionError, match="missing"):
            partition.validate(matrix)

    def test_spurious_cell_detected(self):
        partition = Partition([Rectangle.from_sets([0], [0, 1])], (1, 2))
        matrix = BinaryMatrix.from_strings(["10"])
        with pytest.raises(InvalidPartitionError, match="spurious"):
            partition.validate(matrix)

    def test_shape_mismatch_detected(self):
        partition, _ = two_rect_partition()
        with pytest.raises(InvalidPartitionError, match="shape"):
            partition.validate(BinaryMatrix.zeros(3, 3))

    def test_rect_outside_shape_rejected_at_construction(self):
        with pytest.raises(InvalidPartitionError):
            Partition([Rectangle.single(5, 0)], (2, 2))

    def test_empty_partition_of_zero_matrix(self):
        partition = Partition([], (2, 2))
        partition.validate(BinaryMatrix.zeros(2, 2))

    def test_cover_counts(self):
        partition, _ = two_rect_partition()
        counts = partition.cover_counts()
        assert counts.tolist() == [[1, 1], [0, 1]]

    def test_covered_matrix(self):
        partition, matrix = two_rect_partition()
        assert partition.covered_matrix() == matrix


class TestFactors:
    def test_to_factors_reconstructs(self):
        partition, matrix = two_rect_partition()
        h, w = partition.to_factors()
        assert np.array_equal(h @ w, matrix.to_numpy())

    def test_from_factors_round_trip(self):
        partition, matrix = two_rect_partition()
        h, w = partition.to_factors()
        rebuilt = Partition.from_factors(h, w)
        rebuilt.validate(matrix)
        assert rebuilt == partition

    def test_from_factors_skips_zero_columns(self):
        h = np.array([[1, 0], [0, 0]])
        w = np.array([[1, 0], [0, 0]])
        partition = Partition.from_factors(h, w)
        assert partition.depth == 1

    def test_from_factors_rejects_non_binary(self):
        with pytest.raises(InvalidPartitionError):
            Partition.from_factors(np.array([[2]]), np.array([[1]]))

    def test_from_factors_rejects_shape_mismatch(self):
        with pytest.raises(InvalidPartitionError):
            Partition.from_factors(np.ones((2, 2)), np.ones((3, 2)))


class TestAssignment:
    def test_round_trip(self):
        partition, matrix = two_rect_partition()
        labels = partition.to_assignment()
        rebuilt = Partition.from_assignment(matrix, labels)
        assert rebuilt == partition

    def test_from_assignment_merges_labels(self):
        matrix = BinaryMatrix.from_strings(["11"])
        labels = {(0, 0): 7, (0, 1): 7}
        partition = Partition.from_assignment(matrix, labels)
        assert partition.depth == 1
        partition.validate(matrix)


class TestTransforms:
    def test_transpose(self):
        partition, matrix = two_rect_partition()
        transposed = partition.transpose()
        transposed.validate(matrix.transpose())
        assert transposed.depth == partition.depth

    def test_permute_rows(self):
        partition, matrix = two_rect_partition()
        order = [1, 0]
        permuted = partition.permute_rows(order)
        permuted.validate(matrix.permute_rows(order))

    def test_permute_rows_rejects_bad_order(self):
        partition, _ = two_rect_partition()
        with pytest.raises(InvalidPartitionError):
            partition.permute_rows([0, 0])


class TestDunder:
    def test_len_iter_getitem(self):
        partition, _ = two_rect_partition()
        assert len(partition) == 2
        assert partition.depth == 2
        assert list(partition)[0] == partition[0]

    def test_eq_is_order_insensitive(self):
        rects = [
            Rectangle.from_sets([0], [0, 1]),
            Rectangle.from_sets([1], [1]),
        ]
        a = Partition(rects, (2, 2))
        b = Partition(list(reversed(rects)), (2, 2))
        assert a == b and hash(a) == hash(b)

    def test_eq_other_type(self):
        partition, _ = two_rect_partition()
        assert partition != 5
