"""Unit tests for BinaryMatrix."""

import numpy as np
import pytest

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidMatrixError


class TestConstruction:
    def test_from_rows(self):
        m = BinaryMatrix.from_rows([[1, 0], [0, 1]])
        assert m.shape == (2, 2)
        assert m[0, 0] == 1 and m[0, 1] == 0

    def test_from_strings(self):
        m = BinaryMatrix.from_strings(["10", "01"])
        assert m == BinaryMatrix.from_rows([[1, 0], [0, 1]])

    def test_from_strings_ignores_spacers(self):
        m = BinaryMatrix.from_strings(["1 0_1"])
        assert m.shape == (1, 3)
        assert m.count_ones() == 2

    def test_from_numpy_round_trip(self):
        arr = np.array([[1, 0, 1], [0, 1, 1]])
        m = BinaryMatrix.from_numpy(arr)
        assert np.array_equal(m.to_numpy(), arr)

    def test_from_cells(self):
        m = BinaryMatrix.from_cells([(0, 1), (2, 0)], (3, 2))
        assert m[0, 1] == 1 and m[2, 0] == 1
        assert m.count_ones() == 2

    def test_constructors(self):
        assert BinaryMatrix.zeros(2, 3).is_zero()
        assert BinaryMatrix.all_ones(2, 3).count_ones() == 6
        identity = BinaryMatrix.identity(3)
        assert [identity[i, i] for i in range(3)] == [1, 1, 1]
        assert identity.count_ones() == 3

    def test_ragged_rows_rejected(self):
        with pytest.raises(InvalidMatrixError):
            BinaryMatrix.from_rows([[1, 0], [1]])

    def test_non_binary_entry_rejected(self):
        with pytest.raises(InvalidMatrixError):
            BinaryMatrix.from_rows([[2]])

    def test_bad_string_rejected(self):
        with pytest.raises(InvalidMatrixError):
            BinaryMatrix.from_strings(["1x0"])

    def test_out_of_range_mask_rejected(self):
        with pytest.raises(InvalidMatrixError):
            BinaryMatrix([0b100], 2)

    def test_out_of_range_cell_rejected(self):
        with pytest.raises(InvalidMatrixError):
            BinaryMatrix.from_cells([(0, 5)], (1, 2))

    def test_non_2d_numpy_rejected(self):
        with pytest.raises(InvalidMatrixError):
            BinaryMatrix.from_numpy(np.array([1, 0, 1]))

    def test_non_binary_numpy_rejected(self):
        with pytest.raises(InvalidMatrixError):
            BinaryMatrix.from_numpy(np.array([[3]]))


class TestAccessors:
    def test_row_and_col_masks(self):
        m = BinaryMatrix.from_strings(["110", "011"])
        assert m.row_mask(0) == 0b011  # bit j = column j
        assert m.col_mask(1) == 0b11  # both rows have column 1
        assert m.col_masks() == (0b01, 0b11, 0b10)

    def test_col_mask_out_of_range(self):
        m = BinaryMatrix.from_strings(["10"])
        with pytest.raises(IndexError):
            m.col_mask(2)

    def test_ones_row_major(self):
        m = BinaryMatrix.from_strings(["10", "01"])
        assert list(m.ones()) == [(0, 0), (1, 1)]

    def test_occupancy(self):
        m = BinaryMatrix.from_strings(["10", "01"])
        assert m.occupancy() == pytest.approx(0.5)
        assert BinaryMatrix.zeros(0, 0).occupancy() == 0.0

    def test_row_is_zero(self):
        m = BinaryMatrix.from_strings(["00", "01"])
        assert m.row_is_zero(0)
        assert not m.row_is_zero(1)


class TestDerived:
    def test_transpose_involution(self):
        m = BinaryMatrix.from_strings(["110", "001"])
        assert m.transpose().transpose() == m
        assert m.transpose().shape == (3, 2)
        assert m.transpose()[0, 0] == m[0, 0]
        assert m.transpose()[2, 1] == m[1, 2]

    def test_submatrix(self):
        m = BinaryMatrix.from_strings(["101", "010", "111"])
        sub = m.submatrix([0, 2], [0, 2])
        assert sub == BinaryMatrix.from_strings(["11", "11"])

    def test_submatrix_reorders(self):
        m = BinaryMatrix.from_strings(["10", "01"])
        sub = m.submatrix([1, 0], [0, 1])
        assert sub == BinaryMatrix.from_strings(["01", "10"])

    def test_permute_rows(self):
        m = BinaryMatrix.from_strings(["10", "01"])
        assert m.permute_rows([1, 0]) == BinaryMatrix.from_strings(
            ["01", "10"]
        )

    def test_permute_rows_rejects_non_permutation(self):
        m = BinaryMatrix.from_strings(["10", "01"])
        with pytest.raises(InvalidMatrixError):
            m.permute_rows([0, 0])

    def test_tensor_matches_numpy_kron(self):
        a = BinaryMatrix.from_strings(["10", "11"])
        b = BinaryMatrix.from_strings(["01", "10"])
        expected = np.kron(a.to_numpy(), b.to_numpy())
        assert np.array_equal(a.tensor(b).to_numpy(), expected)

    def test_elementwise_ops(self):
        a = BinaryMatrix.from_strings(["10", "11"])
        b = BinaryMatrix.from_strings(["01", "10"])
        assert a.elementwise_or(b) == BinaryMatrix.from_strings(["11", "11"])
        assert a.elementwise_and(b) == BinaryMatrix.from_strings(["00", "10"])

    def test_elementwise_shape_mismatch(self):
        with pytest.raises(InvalidMatrixError):
            BinaryMatrix.zeros(1, 2).elementwise_or(BinaryMatrix.zeros(2, 1))

    def test_complement(self):
        m = BinaryMatrix.from_strings(["10", "01"])
        assert m.complement() == BinaryMatrix.from_strings(["01", "10"])
        assert m.complement().complement() == m


class TestConversionsAndDunder:
    def test_to_strings_round_trip(self):
        strings = ["1010", "0101", "0000"]
        assert BinaryMatrix.from_strings(strings).to_strings() == strings

    def test_to_lists_round_trip(self):
        rows = [[1, 0], [1, 1]]
        assert BinaryMatrix.from_rows(rows).to_lists() == rows

    def test_hashable_and_eq(self):
        a = BinaryMatrix.from_strings(["10"])
        b = BinaryMatrix.from_strings(["10"])
        c = BinaryMatrix.from_strings(["01"])
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "10"

    def test_shape_distinguishes(self):
        # same masks, different widths
        a = BinaryMatrix([0b1], 1)
        b = BinaryMatrix([0b1], 2)
        assert a != b

    def test_pretty(self):
        m = BinaryMatrix.from_strings(["10", "01"])
        assert m.to_pretty() == "#.\n.#"

    def test_repr_mentions_shape(self):
        assert "2x3" in repr(BinaryMatrix.zeros(2, 3))
