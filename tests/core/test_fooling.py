"""Unit tests for fooling sets and the max-clique core."""

from repro.core.binary_matrix import BinaryMatrix
from repro.core.fooling import (
    fooling_number,
    greedy_fooling_set,
    is_fooling_pair,
    max_clique_mask,
    max_fooling_set,
    verify_fooling_set,
)
from repro.core.paper_matrices import equation_2, figure_1b


class TestIsFoolingPair:
    def test_diagonal_cells_of_identity(self):
        m = BinaryMatrix.identity(2)
        assert is_fooling_pair(m, (0, 0), (1, 1))

    def test_same_row_never_fooling(self):
        m = BinaryMatrix.from_strings(["11"])
        assert not is_fooling_pair(m, (0, 0), (0, 1))

    def test_same_col_never_fooling(self):
        m = BinaryMatrix.from_strings(["1", "1"])
        assert not is_fooling_pair(m, (0, 0), (1, 0))

    def test_both_crosses_one_not_fooling(self):
        m = BinaryMatrix.all_ones(2, 2)
        assert not is_fooling_pair(m, (0, 0), (1, 1))


class TestMaxCliqueMask:
    def test_empty_graph(self):
        assert max_clique_mask([]) == 0

    def test_independent_vertices(self):
        mask = max_clique_mask([0, 0, 0])
        assert bin(mask).count("1") == 1

    def test_triangle(self):
        adjacency = [0b110, 0b101, 0b011]
        assert max_clique_mask(adjacency) == 0b111

    def test_path_graph(self):
        # 0-1-2: max clique is an edge
        adjacency = [0b010, 0b101, 0b010]
        mask = max_clique_mask(adjacency)
        assert bin(mask).count("1") == 2

    def test_seed_mask_respected(self):
        adjacency = [0b110, 0b101, 0b011]
        assert max_clique_mask(adjacency, seed_mask=0b111) == 0b111


class TestFoolingSets:
    def test_identity_fooling_number(self):
        assert fooling_number(BinaryMatrix.identity(4)) == 4

    def test_all_ones_fooling_number(self):
        assert fooling_number(BinaryMatrix.all_ones(3, 3)) == 1

    def test_zero_matrix(self):
        assert fooling_number(BinaryMatrix.zeros(2, 2)) == 0
        assert max_fooling_set(BinaryMatrix.zeros(2, 2)) == []

    def test_figure_1b_has_fooling_number_5(self):
        # The paper's Figure 1b marks a fooling set of size 5.
        assert fooling_number(figure_1b()) == 5

    def test_equation_2_fooling_gap(self):
        # Eq. 2: any fooling set has size <= 2 although r_B = 3.
        assert fooling_number(equation_2()) == 2

    def test_greedy_result_is_valid(self):
        m = figure_1b()
        cells = greedy_fooling_set(m, trials=4, seed=0)
        assert verify_fooling_set(m, cells)

    def test_exact_result_is_valid_and_maximal(self):
        m = figure_1b()
        cells = max_fooling_set(m, seed=0)
        assert verify_fooling_set(m, cells)
        assert len(cells) >= len(greedy_fooling_set(m, trials=4, seed=0))

    def test_greedy_fallback_for_large_matrices(self):
        m = BinaryMatrix.identity(12)
        cells = max_fooling_set(m, max_cells=4, seed=0)
        assert verify_fooling_set(m, cells)

    def test_inexact_mode(self):
        assert fooling_number(BinaryMatrix.identity(4), exact=False) >= 1


class TestVerifyFoolingSet:
    def test_rejects_zero_cell(self):
        m = BinaryMatrix.identity(2)
        assert not verify_fooling_set(m, [(0, 1)])

    def test_rejects_non_fooling_pair(self):
        m = BinaryMatrix.all_ones(2, 2)
        assert not verify_fooling_set(m, [(0, 0), (1, 1)])

    def test_accepts_empty(self):
        assert verify_fooling_set(BinaryMatrix.zeros(1, 1), [])
