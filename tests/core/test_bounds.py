"""Unit tests for binary-rank bounds (Eq. 3 and friends)."""

from repro.core.binary_matrix import BinaryMatrix
from repro.core.bounds import (
    binary_rank_bounds,
    fooling_lower_bound,
    rank_lower_bound,
    trivial_upper_bound,
)
from repro.core.paper_matrices import equation_2, figure_1b


class TestRankLowerBound:
    def test_identity(self):
        assert rank_lower_bound(BinaryMatrix.identity(5)) == 5

    def test_all_ones(self):
        assert rank_lower_bound(BinaryMatrix.all_ones(3, 4)) == 1

    def test_zero(self):
        assert rank_lower_bound(BinaryMatrix.zeros(2, 2)) == 0


class TestTrivialUpperBound:
    def test_takes_smaller_side(self):
        m = BinaryMatrix.from_strings(["101", "010"])
        assert trivial_upper_bound(m) == 2

    def test_consolidates_duplicates(self):
        m = BinaryMatrix.from_strings(["101", "101", "101"])
        assert trivial_upper_bound(m) == 1

    def test_column_side_can_win(self):
        m = BinaryMatrix.from_strings(["11", "11", "01"])
        # distinct rows: 2; distinct cols: 2 -> 2 either way
        assert trivial_upper_bound(m) == 2

    def test_zero_matrix(self):
        assert trivial_upper_bound(BinaryMatrix.zeros(3, 3)) == 0


class TestBinaryRankBounds:
    def test_bracket_ordering(self):
        bounds = binary_rank_bounds(figure_1b())
        assert bounds.lower <= bounds.upper
        assert bounds.rank_bound == 4  # figure 1b has real rank 4
        assert bounds.fooling_bound is None

    def test_fooling_strengthens_lower(self):
        bounds = binary_rank_bounds(figure_1b(), use_fooling=True)
        assert bounds.fooling_bound == 5
        assert bounds.lower == 5
        assert bounds.is_tight  # 5 <= r_B <= 5

    def test_fooling_not_always_tight(self):
        bounds = binary_rank_bounds(equation_2(), use_fooling=True)
        # rank 3 beats fooling 2 here
        assert bounds.rank_bound == 3
        assert bounds.fooling_bound == 2
        assert bounds.lower == 3

    def test_zero_matrix(self):
        bounds = binary_rank_bounds(BinaryMatrix.zeros(2, 3))
        assert bounds.lower == 0 and bounds.upper == 0
        assert bounds.is_tight

    def test_fooling_lower_bound_function(self):
        assert fooling_lower_bound(BinaryMatrix.identity(3)) == 3
