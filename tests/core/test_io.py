"""Unit tests for JSON serialization."""

import pytest

from repro.atoms.schedule import AddressingSchedule
from repro.core.binary_matrix import BinaryMatrix
from repro.core.paper_matrices import figure_1b
from repro.core.partition import Partition
from repro.core.rectangle import Rectangle
from repro.io import (
    SerializationError,
    dumps,
    load,
    loads,
    matrix_from_dict,
    matrix_to_dict,
    partition_from_dict,
    partition_to_dict,
    save,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.solvers.sap import sap_solve


class TestMatrixRoundTrip:
    def test_round_trip(self):
        m = figure_1b()
        assert matrix_from_dict(matrix_to_dict(m)) == m

    def test_text_round_trip(self):
        m = BinaryMatrix.from_strings(["10", "01"])
        assert loads(dumps(m)) == m

    def test_shape_mismatch_detected(self):
        payload = matrix_to_dict(BinaryMatrix.identity(2))
        payload["shape"] = [3, 3]
        with pytest.raises(SerializationError):
            matrix_from_dict(payload)


class TestPartitionRoundTrip:
    def test_round_trip(self):
        m = figure_1b()
        partition = sap_solve(m, trials=8, seed=0).partition
        rebuilt = partition_from_dict(partition_to_dict(partition))
        assert rebuilt == partition
        rebuilt.validate(m)

    def test_empty_partition(self):
        partition = Partition([], (2, 2))
        assert loads(dumps(partition)) == partition

    def test_bad_shape(self):
        payload = partition_to_dict(Partition([], (1, 1)))
        payload["shape"] = [1]
        with pytest.raises(SerializationError):
            partition_from_dict(payload)


class TestScheduleRoundTrip:
    def test_round_trip(self):
        partition = Partition(
            [Rectangle.from_sets([0], [0, 1]), Rectangle.single(1, 0)],
            (2, 2),
        )
        schedule = AddressingSchedule.from_partition(partition, theta=0.5)
        rebuilt = schedule_from_dict(schedule_to_dict(schedule))
        assert rebuilt.depth == schedule.depth
        assert rebuilt.shape == schedule.shape
        assert [op.pulse.theta for op in rebuilt] == [0.5, 0.5]

    def test_configuration_preserved(self):
        partition = Partition([Rectangle.from_sets([1], [0, 2])], (2, 3))
        schedule = AddressingSchedule.from_partition(partition, theta=1.0)
        rebuilt = loads(dumps(schedule))
        assert sorted(rebuilt.operations[0].configuration.cols) == [0, 2]


class TestFileHelpers:
    def test_save_load(self, tmp_path):
        m = BinaryMatrix.identity(3)
        path = tmp_path / "matrix.json"
        save(m, str(path))
        assert load(str(path)) == m


class TestErrors:
    def test_unknown_object(self):
        with pytest.raises(SerializationError):
            dumps(42)

    def test_invalid_json(self):
        with pytest.raises(SerializationError):
            loads("{not json")

    def test_untagged_payload(self):
        with pytest.raises(SerializationError):
            loads('{"rows": []}')

    def test_unknown_type_tag(self):
        with pytest.raises(SerializationError):
            loads('{"type": "mystery"}')

    def test_wrong_type_tag(self):
        payload = matrix_to_dict(BinaryMatrix.identity(1))
        with pytest.raises(SerializationError):
            partition_from_dict(payload)

    def test_future_version_rejected(self):
        payload = matrix_to_dict(BinaryMatrix.identity(1))
        payload["version"] = 99
        with pytest.raises(SerializationError):
            matrix_from_dict(payload)
