"""Maximal rectangle enumeration and the fractional-cover LP bound."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen.random_matrices import random_matrix
from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import SolverError
from repro.core.paper_matrices import equation_2, figure_1b
from repro.cover import (
    boolean_rank,
    fractional_cover,
    is_maximal,
    lp_lower_bound,
    maximal_rectangles,
)
from repro.solvers.branch_bound import binary_rank_branch_bound


def crown(n: int) -> BinaryMatrix:
    """J_n - I_n: all ones except the diagonal."""
    return BinaryMatrix.from_rows(
        [[1 if i != j else 0 for j in range(n)] for i in range(n)]
    )


class TestMaximalRectangles:
    def test_zero_matrix(self):
        assert maximal_rectangles(BinaryMatrix.zeros(3, 3)) == []

    def test_all_ones_has_single_maximal(self):
        matrix = BinaryMatrix.from_rows([[1] * 4 for _ in range(3)])
        rects = maximal_rectangles(matrix)
        assert len(rects) == 1
        assert rects[0].rows == (0, 1, 2)
        assert rects[0].cols == (0, 1, 2, 3)

    def test_identity_has_n_maximal(self):
        matrix = BinaryMatrix.identity(4)
        rects = maximal_rectangles(matrix)
        assert len(rects) == 4
        assert all(len(r.rows) == 1 and len(r.cols) == 1 for r in rects)

    def test_equation_2_concepts(self):
        rects = maximal_rectangles(equation_2())
        # Every enumerated rectangle is maximal and inside the 1s.
        matrix = equation_2()
        assert rects
        for rectangle in rects:
            assert is_maximal(matrix, rectangle)

    def test_enumeration_is_deterministic(self):
        matrix = figure_1b()
        first = maximal_rectangles(matrix)
        second = maximal_rectangles(matrix)
        assert [(r.row_mask, r.col_mask) for r in first] == [
            (r.row_mask, r.col_mask) for r in second
        ]

    def test_limit_guard(self):
        matrix = random_matrix(10, 10, occupancy=0.5, seed=5)
        with pytest.raises(SolverError):
            maximal_rectangles(matrix, limit=1)

    @given(st.integers(min_value=0, max_value=5000))
    @settings(max_examples=60, deadline=None)
    def test_every_one_covered_and_all_maximal(self, seed):
        matrix = random_matrix(5, 6, occupancy=0.4, seed=seed)
        rects = maximal_rectangles(matrix)
        covered = set()
        for rectangle in rects:
            assert is_maximal(matrix, rectangle)
            covered.update(
                (i, j) for i in rectangle.rows for j in rectangle.cols
            )
        assert covered == set(matrix.ones())


class TestIsMaximal:
    def test_non_rectangle_rejected(self):
        from repro.core.rectangle import Rectangle

        matrix = BinaryMatrix.identity(2)
        assert not is_maximal(matrix, Rectangle.from_sets([0, 1], [0]))

    def test_extendable_rectangle_not_maximal(self):
        from repro.core.rectangle import Rectangle

        matrix = BinaryMatrix.from_rows([[1, 1], [1, 1]])
        assert not is_maximal(matrix, Rectangle.from_sets([0], [0]))
        assert is_maximal(matrix, Rectangle.from_sets([0, 1], [0, 1]))


class TestLpBound:
    def test_zero_matrix(self):
        assert lp_lower_bound(BinaryMatrix.zeros(2, 2)) == 0
        assert fractional_cover(BinaryMatrix.zeros(2, 2)) is None

    def test_all_ones(self):
        all_ones = BinaryMatrix.from_rows([[1] * 4 for _ in range(4)])
        assert lp_lower_bound(all_ones) == 1

    def test_identity(self):
        assert lp_lower_bound(BinaryMatrix.identity(5)) == 5

    def test_equation_2_bound(self):
        # Eq. 2 matrix: boolean rank is 2 (covers may overlap), so the
        # LP bound must not exceed 2 even though r_B = 3.
        bound = lp_lower_bound(equation_2())
        assert 1 <= bound <= 2

    def test_crown_fractional_value(self):
        # Crown K_5 minus perfect matching: fractional cover is well
        # below n, integral cover needs ~log n; LP stays a valid bound.
        matrix = crown(5)
        result = fractional_cover(matrix)
        assert result is not None
        cover = boolean_rank(matrix, seed=0)
        assert result.lower_bound <= cover

    def test_weights_form_a_fractional_cover(self):
        matrix = figure_1b()
        result = fractional_cover(matrix)
        assert result is not None
        for i, j in matrix.ones():
            total = sum(
                weight
                for rectangle, weight in result.weights
                if i in rectangle.rows and j in rectangle.cols
            )
            assert total >= 1.0 - 1e-6

    @given(st.integers(min_value=0, max_value=3000))
    @settings(max_examples=30, deadline=None)
    def test_lp_sandwich(self, seed):
        """LP bound <= boolean rank <= r_B on random small matrices."""
        matrix = random_matrix(4, 5, occupancy=0.45, seed=seed)
        if matrix.is_zero():
            assert lp_lower_bound(matrix) == 0
            return
        bound = lp_lower_bound(matrix)
        cover = boolean_rank(matrix, seed=seed)
        rank_b = binary_rank_branch_bound(matrix).binary_rank
        assert bound <= cover <= rank_b
