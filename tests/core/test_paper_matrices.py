"""Executable versions of every worked example in the paper."""

from repro.core.fooling import fooling_number
from repro.core.paper_matrices import (
    FIGURE_3_GOOD_ORDER,
    equation_2,
    figure_1b,
    figure_3,
    section_2_nonbinary_example,
)
from repro.linalg.exact_rank import real_rank
from repro.linalg.gf2 import gf2_rank
from repro.solvers.branch_bound import binary_rank_branch_bound
from repro.solvers.row_packing import pack_rows_once
from repro.solvers.sap import sap_solve


class TestFigure1b:
    def test_shape_and_occupancy(self):
        m = figure_1b()
        assert m.shape == (6, 6)
        assert m.count_ones() == 18

    def test_binary_rank_is_5(self):
        result = sap_solve(figure_1b(), trials=16, seed=0)
        assert result.proved_optimal
        assert result.depth == 5

    def test_fooling_set_certifies_optimality(self):
        # "The 5 filled markers indicate a fooling set" — phi = r_B = 5.
        assert fooling_number(figure_1b()) == 5

    def test_real_rank_is_strictly_below(self):
        assert real_rank(figure_1b()) == 4


class TestEquation2:
    def test_binary_rank_3_fooling_2(self):
        m = equation_2()
        assert fooling_number(m) == 2
        result = sap_solve(m, trials=8, seed=0)
        assert result.proved_optimal and result.depth == 3


class TestSection2Example:
    def test_mod2_shortcut_is_not_an_ebmf(self):
        """The complement of I_3 factors with 2 rectangles over GF(2) but
        needs 3 over R (EBMF addition is real addition)."""
        m = section_2_nonbinary_example()
        assert gf2_rank(m) == 2
        assert real_rank(m) == 3
        result = binary_rank_branch_bound(m)
        assert result.binary_rank == 3


class TestFigure3:
    def test_given_order_needs_5(self):
        m = figure_3()
        partition = pack_rows_once(m, [0, 1, 2, 3, 4])
        assert partition.depth == 5

    def test_good_order_needs_4(self):
        m = figure_3()
        partition = pack_rows_once(m, list(FIGURE_3_GOOD_ORDER))
        assert partition.depth == 4

    def test_4_is_optimal(self):
        result = sap_solve(figure_3(), trials=16, seed=0)
        assert result.proved_optimal
        assert result.depth == 4
