"""Unit tests for combinatorial rectangles."""

import numpy as np
import pytest

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidRectangleError
from repro.core.rectangle import Rectangle


class TestConstruction:
    def test_from_sets(self):
        r = Rectangle.from_sets([0, 2], [1])
        assert r.rows == (0, 2)
        assert r.cols == (1,)
        assert r.num_cells == 2

    def test_single(self):
        r = Rectangle.single(3, 4)
        assert r.rows == (3,) and r.cols == (4,)

    def test_empty_rejected(self):
        with pytest.raises(InvalidRectangleError):
            Rectangle(0, 1)
        with pytest.raises(InvalidRectangleError):
            Rectangle(1, 0)


class TestGeometry:
    def test_cells_product(self):
        r = Rectangle.from_sets([0, 1], [2, 3])
        assert set(r.cells()) == {(0, 2), (0, 3), (1, 2), (1, 3)}

    def test_contains(self):
        r = Rectangle.from_sets([1], [0, 2])
        assert r.contains(1, 0)
        assert not r.contains(0, 0)
        assert not r.contains(1, 1)

    def test_overlaps(self):
        a = Rectangle.from_sets([0, 1], [0, 1])
        b = Rectangle.from_sets([1, 2], [1, 2])
        c = Rectangle.from_sets([2], [0])
        assert a.overlaps(b)
        assert not a.overlaps(c)
        # sharing rows but not columns is no overlap
        d = Rectangle.from_sets([0, 1], [5])
        assert not a.overlaps(d)

    def test_within(self):
        m = BinaryMatrix.from_strings(["110", "110", "001"])
        assert Rectangle.from_sets([0, 1], [0, 1]).within(m)
        assert not Rectangle.from_sets([0, 2], [0]).within(m)
        # outside the shape entirely
        assert not Rectangle.from_sets([5], [0]).within(m)
        assert not Rectangle.from_sets([0], [7]).within(m)

    def test_transpose(self):
        r = Rectangle.from_sets([0, 1], [2])
        assert r.transpose() == Rectangle.from_sets([2], [0, 1])


class TestConversion:
    def test_to_matrix(self):
        r = Rectangle.from_sets([0, 2], [1])
        m = r.to_matrix((3, 2))
        assert m == BinaryMatrix.from_strings(["01", "00", "01"])

    def test_to_matrix_shape_check(self):
        with pytest.raises(InvalidRectangleError):
            Rectangle.from_sets([5], [0]).to_matrix((2, 2))

    def test_factor_vectors(self):
        r = Rectangle.from_sets([0, 2], [1])
        assert np.array_equal(r.h_column(3), np.array([1, 0, 1]))
        assert np.array_equal(r.w_row(3), np.array([0, 1, 0]))

    def test_outer_product_equals_matrix(self):
        r = Rectangle.from_sets([1, 2], [0, 3])
        shape = (4, 5)
        outer = np.outer(r.h_column(shape[0]), r.w_row(shape[1]))
        assert np.array_equal(outer, r.to_matrix(shape).to_numpy())


class TestDunder:
    def test_eq_hash(self):
        a = Rectangle.from_sets([0], [1])
        b = Rectangle.single(0, 1)
        assert a == b and hash(a) == hash(b)
        assert a != Rectangle.single(1, 0)
        assert a != "rect"

    def test_repr(self):
        assert "rows=[0]" in repr(Rectangle.single(0, 1))
