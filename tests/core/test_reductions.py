"""Unit tests for matrix reduction (empty/duplicate removal) and lifting."""

import pytest

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidPartitionError
from repro.core.partition import Partition
from repro.core.rectangle import Rectangle
from repro.core.reductions import (
    distinct_nonzero_cols,
    distinct_nonzero_rows,
    reduce_matrix,
)
from repro.linalg.exact_rank import real_rank


class TestReduceMatrix:
    def test_drops_empty_rows_and_cols(self):
        m = BinaryMatrix.from_strings(["000", "010", "000"])
        reduced = reduce_matrix(m)
        assert reduced.matrix.shape == (1, 1)
        assert reduced.row_groups == ((1,),)
        assert reduced.col_groups == ((1,),)

    def test_merges_duplicate_rows(self):
        m = BinaryMatrix.from_strings(["101", "101", "010"])
        reduced = reduce_matrix(m)
        assert reduced.matrix.num_rows == 2
        assert (0, 1) in reduced.row_groups

    def test_merges_duplicate_cols(self):
        m = BinaryMatrix.from_strings(["11", "11", "00"])
        reduced = reduce_matrix(m)
        assert reduced.matrix.shape == (1, 1)
        assert reduced.col_groups == ((0, 1),)

    def test_preserves_real_rank(self):
        m = BinaryMatrix.from_strings(["1100", "1100", "0011", "0000"])
        reduced = reduce_matrix(m)
        assert real_rank(reduced.matrix) == real_rank(m)

    def test_zero_matrix(self):
        reduced = reduce_matrix(BinaryMatrix.zeros(3, 3))
        assert reduced.matrix.shape == (0, 0)

    def test_reduction_is_idempotent(self):
        m = BinaryMatrix.from_strings(["110", "110", "001"])
        once = reduce_matrix(m)
        twice = reduce_matrix(once.matrix)
        assert twice.matrix == once.matrix


class TestLift:
    def test_lift_reconstructs_original(self):
        m = BinaryMatrix.from_strings(["101", "101", "010"])
        reduced = reduce_matrix(m)
        inner = reduced.matrix
        partition = Partition(
            [
                Rectangle(1 << k, inner.row_mask(k))
                for k in range(inner.num_rows)
            ],
            inner.shape,
        )
        lifted = reduced.lift(partition)
        lifted.validate(m)
        assert lifted.depth == partition.depth

    def test_lift_shape_check(self):
        m = BinaryMatrix.from_strings(["11", "11"])
        reduced = reduce_matrix(m)
        bad = Partition([Rectangle.single(0, 0)], (5, 5))
        with pytest.raises(InvalidPartitionError):
            reduced.lift(bad)

    def test_lift_with_column_duplicates(self):
        m = BinaryMatrix.from_strings(["1111", "0011"])
        reduced = reduce_matrix(m)
        # reduced is [[1,1],[0,1]]: rows {0},{1}; col groups (0,1),(2,3)
        partition = Partition(
            [
                Rectangle.from_sets([0], [0]),
                Rectangle.from_sets([0, 1], [1]),
            ],
            reduced.matrix.shape,
        )
        lifted = reduced.lift(partition)
        lifted.validate(m)


class TestDistinctCounts:
    def test_rows(self):
        m = BinaryMatrix.from_strings(["11", "11", "00", "01"])
        assert distinct_nonzero_rows(m) == 2

    def test_cols(self):
        m = BinaryMatrix.from_strings(["110", "110"])
        assert distinct_nonzero_cols(m) == 1

    def test_zero_matrix(self):
        m = BinaryMatrix.zeros(2, 2)
        assert distinct_nonzero_rows(m) == 0
        assert distinct_nonzero_cols(m) == 0
