"""Property-based tests for the exact linear algebra substrates."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.exact_rank import determinant, rank_over_q
from repro.linalg.gf2 import gf2_nullspace, gf2_rank, gf2_row_basis
from tests.conftest import binary_matrices


class TestRankProperties:
    @given(binary_matrices(max_rows=7, max_cols=7))
    def test_matches_numpy(self, m):
        assert rank_over_q(m) == np.linalg.matrix_rank(m.to_numpy())

    @given(binary_matrices())
    def test_transpose_invariant(self, m):
        assert rank_over_q(m) == rank_over_q(m.transpose())

    @given(binary_matrices())
    def test_bounded_by_dimensions(self, m):
        rank = rank_over_q(m)
        assert 0 <= rank <= min(m.num_rows, m.num_cols)

    @given(binary_matrices())
    def test_gf2_rank_at_most_q_rank(self, m):
        assert gf2_rank(m) <= rank_over_q(m)

    @given(binary_matrices())
    def test_gf2_rank_transpose_invariant(self, m):
        assert gf2_rank(m) == gf2_rank(m.transpose())


class TestDeterminantProperties:
    @given(st.integers(1, 5), st.data())
    @settings(max_examples=40)
    def test_transpose_invariant(self, n, data):
        rows = [
            [data.draw(st.integers(-2, 2)) for _ in range(n)]
            for _ in range(n)
        ]
        transposed = [list(col) for col in zip(*rows)]
        assert determinant(rows) == determinant(transposed)

    @given(st.integers(1, 5), st.data())
    @settings(max_examples=40)
    def test_zero_iff_rank_deficient(self, n, data):
        rows = [
            [data.draw(st.integers(-2, 2)) for _ in range(n)]
            for _ in range(n)
        ]
        det = determinant(rows)
        rank = rank_over_q(rows)
        assert (det == 0) == (rank < n)


class TestGf2Properties:
    @given(binary_matrices())
    def test_rank_nullity(self, m):
        assert gf2_rank(m) + len(gf2_nullspace(m)) == m.num_cols

    @given(binary_matrices())
    def test_nullspace_vectors_annihilate(self, m):
        for vec in gf2_nullspace(m):
            for row in m.row_masks:
                assert bin(row & vec).count("1") % 2 == 0

    @given(binary_matrices())
    def test_basis_has_distinct_pivots(self, m):
        basis = gf2_row_basis(m)
        pivots = [b & -b for b in basis]
        assert len(set(pivots)) == len(pivots)
        assert len(basis) == gf2_rank(m)
