"""Property-based tests for the core data model."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.binary_matrix import BinaryMatrix
from repro.core.partition import Partition
from repro.core.reductions import reduce_matrix
from tests.conftest import binary_matrices


class TestBinaryMatrixProperties:
    @given(binary_matrices())
    def test_transpose_involution(self, m):
        assert m.transpose().transpose() == m

    @given(binary_matrices())
    def test_ones_count_consistent(self, m):
        assert len(list(m.ones())) == m.count_ones()
        assert m.count_ones() == m.transpose().count_ones()

    @given(binary_matrices())
    def test_string_round_trip(self, m):
        assert BinaryMatrix.from_strings(m.to_strings()) == m

    @given(binary_matrices())
    def test_numpy_round_trip(self, m):
        assert BinaryMatrix.from_numpy(m.to_numpy()) == m

    @given(binary_matrices())
    def test_complement_involution(self, m):
        assert m.complement().complement() == m
        assert m.count_ones() + m.complement().count_ones() == (
            m.num_rows * m.num_cols
        )

    @given(binary_matrices(max_rows=4, max_cols=4),
           binary_matrices(max_rows=3, max_cols=3))
    def test_tensor_ones_multiply(self, a, b):
        assert a.tensor(b).count_ones() == a.count_ones() * b.count_ones()

    @given(binary_matrices())
    def test_col_masks_match_transpose_rows(self, m):
        assert m.col_masks() == m.transpose().row_masks


class TestReductionProperties:
    @given(binary_matrices())
    def test_reduced_has_no_duplicates_or_empties(self, m):
        reduced = reduce_matrix(m).matrix
        masks = list(reduced.row_masks)
        assert 0 not in masks
        assert len(set(masks)) == len(masks)
        col_masks = list(reduced.col_masks())
        assert 0 not in col_masks
        assert len(set(col_masks)) == len(col_masks)

    @given(binary_matrices())
    def test_groups_partition_nonzero_lines(self, m):
        reduced = reduce_matrix(m)
        covered_rows = [i for group in reduced.row_groups for i in group]
        assert len(covered_rows) == len(set(covered_rows))
        expected = [i for i in range(m.num_rows) if m.row_mask(i) != 0]
        assert sorted(covered_rows) == expected

    @given(binary_matrices())
    def test_ones_preserved_up_to_duplication(self, m):
        reduced = reduce_matrix(m)
        total = 0
        for k, row_group in enumerate(reduced.row_groups):
            for j_reduced in range(reduced.matrix.num_cols):
                if reduced.matrix[k, j_reduced]:
                    total += len(row_group) * len(
                        reduced.col_groups[j_reduced]
                    )
        assert total == m.count_ones()


class TestPartitionProperties:
    @given(binary_matrices(), st.integers(0, 10))
    def test_single_cell_partition_always_valid(self, m, seed):
        rects = [
            __import__("repro.core.rectangle", fromlist=["Rectangle"])
            .Rectangle.single(i, j)
            for i, j in m.ones()
        ]
        partition = Partition(rects, m.shape)
        partition.validate(m)
        assert partition.depth == m.count_ones()
