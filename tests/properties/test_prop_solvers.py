"""Property-based tests for solver invariants (the paper's Section 7
invariants list in DESIGN.md)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    fooling_lower_bound,
    rank_lower_bound,
    trivial_upper_bound,
)
from repro.solvers.branch_bound import binary_rank_branch_bound
from repro.solvers.row_packing import PackingOptions, row_packing
from repro.solvers.sap import SapOptions, sap_solve
from repro.solvers.trivial import trivial_partition
from tests.conftest import binary_matrices, nonzero_binary_matrices


class TestHeuristicInvariants:
    @given(binary_matrices(), st.integers(0, 2**30))
    def test_row_packing_valid_and_bounded(self, m, seed):
        partition = row_packing(
            m, options=PackingOptions(trials=2, seed=seed)
        )
        partition.validate(m)
        assert partition.depth <= trivial_upper_bound(m)
        assert partition.depth >= rank_lower_bound(m) if not m.is_zero() else True

    @given(binary_matrices())
    def test_trivial_valid(self, m):
        partition = trivial_partition(m)
        partition.validate(m)


class TestExactInvariants:
    @given(binary_matrices(max_rows=5, max_cols=5), st.integers(0, 100))
    @settings(max_examples=30)
    def test_sap_bracket(self, m, seed):
        result = sap_solve(m, options=SapOptions(trials=4, seed=seed))
        result.partition.validate(m)
        assert result.proved_optimal
        assert rank_lower_bound(m) <= result.depth
        assert result.depth <= trivial_upper_bound(m)

    @given(binary_matrices(max_rows=4, max_cols=4))
    @settings(max_examples=30)
    def test_sap_matches_branch_bound(self, m):
        sap = sap_solve(m, options=SapOptions(trials=4, seed=0))
        bb = binary_rank_branch_bound(m)
        assert sap.proved_optimal
        assert sap.depth == bb.binary_rank

    @given(nonzero_binary_matrices(max_rows=4, max_cols=4))
    @settings(max_examples=30)
    def test_fooling_number_is_lower_bound(self, m):
        phi = fooling_lower_bound(m)
        rank = binary_rank_branch_bound(m).binary_rank
        assert phi <= rank

    @given(binary_matrices(max_rows=4, max_cols=4))
    @settings(max_examples=30)
    def test_transpose_preserves_binary_rank(self, m):
        a = binary_rank_branch_bound(m).binary_rank
        b = binary_rank_branch_bound(m.transpose()).binary_rank
        assert a == b

    @given(binary_matrices(max_rows=3, max_cols=3),
           binary_matrices(max_rows=2, max_cols=2))
    @settings(max_examples=20)
    def test_tensor_subadditive(self, a, b):
        """r_B(A (x) B) <= r_B(A) * r_B(B)."""
        ra = binary_rank_branch_bound(a).binary_rank
        rb = binary_rank_branch_bound(b).binary_rank
        rab = binary_rank_branch_bound(a.tensor(b)).binary_rank
        assert rab <= ra * rb
