"""Property-based tests for the SAT substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.brute import brute_force_model
from repro.sat.dimacs import parse_dimacs, to_dimacs
from repro.sat.formula import CnfFormula
from repro.sat.solver import CdclSolver, SolveStatus


@st.composite
def cnf_formulas(draw, max_vars=9, max_clauses=30):
    num_vars = draw(st.integers(1, max_vars))
    formula = CnfFormula()
    formula.new_vars(num_vars)
    num_clauses = draw(st.integers(0, max_clauses))
    for _ in range(num_clauses):
        width = draw(st.integers(1, 4))
        clause = [
            draw(st.integers(1, num_vars)) * draw(st.sampled_from([1, -1]))
            for _ in range(width)
        ]
        formula.add_clause(clause)
    return formula


class TestSolverProperties:
    @given(cnf_formulas())
    @settings(max_examples=80)
    def test_agrees_with_brute_force(self, formula):
        expected_sat = brute_force_model(formula) is not None
        solver = CdclSolver.from_formula(formula)
        status = solver.solve()
        assert (status is SolveStatus.SAT) == expected_sat
        if status is SolveStatus.SAT:
            model = solver.model()
            for clause in formula.clauses:
                assert any(model[abs(l)] == (l > 0) for l in clause)

    @given(cnf_formulas(max_vars=6, max_clauses=15))
    @settings(max_examples=40)
    def test_solve_is_repeatable(self, formula):
        solver = CdclSolver.from_formula(formula)
        first = solver.solve()
        second = solver.solve()
        assert first == second

    @given(cnf_formulas())
    @settings(max_examples=40)
    def test_dimacs_round_trip(self, formula):
        parsed = parse_dimacs(to_dimacs(formula))
        assert parsed.num_vars == formula.num_vars
        assert parsed.clauses == formula.clauses

    @given(cnf_formulas(max_vars=6, max_clauses=12), st.data())
    @settings(max_examples=40)
    def test_assumptions_consistent_with_added_units(self, formula, data):
        """solve(assumptions) == solve() of formula + unit clauses."""
        assumption_count = data.draw(st.integers(0, 2))
        assumptions = [
            data.draw(st.integers(1, formula.num_vars))
            * data.draw(st.sampled_from([1, -1]))
            for _ in range(assumption_count)
        ]
        with_units = CnfFormula()
        with_units.new_vars(formula.num_vars)
        for clause in formula.clauses:
            with_units.add_clause(clause)
        for lit in assumptions:
            with_units.add_clause([lit])
        expected_sat = brute_force_model(with_units) is not None
        solver = CdclSolver.from_formula(formula)
        status = solver.solve(assumptions)
        assert (status is SolveStatus.SAT) == expected_sat
