"""Property-based tests for don't-care completion."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.completion.exact import masked_minimum_addressing
from repro.completion.heuristic import masked_row_packing
from repro.completion.masked import (
    MaskedMatrix,
    masked_fooling_number,
    validate_masked_partition,
)
from repro.core.binary_matrix import BinaryMatrix
from repro.solvers.row_packing import PackingOptions
from repro.solvers.sap import sap_solve


@st.composite
def masked_matrices(draw, max_rows=4, max_cols=4):
    rows = draw(st.integers(1, max_rows))
    cols = draw(st.integers(1, max_cols))
    ones_masks, dc_masks = [], []
    for _ in range(rows):
        ones = draw(st.integers(0, (1 << cols) - 1))
        dc = draw(st.integers(0, (1 << cols) - 1)) & ~ones
        ones_masks.append(ones)
        dc_masks.append(dc)
    return MaskedMatrix(
        BinaryMatrix(ones_masks, cols), BinaryMatrix(dc_masks, cols)
    )


class TestCompletionProperties:
    @given(masked_matrices(), st.integers(0, 100))
    @settings(max_examples=30)
    def test_heuristic_always_valid(self, masked, seed):
        partition = masked_row_packing(
            masked, options=PackingOptions(trials=2, seed=seed)
        )
        validate_masked_partition(masked, partition)

    @given(masked_matrices())
    @settings(max_examples=20)
    def test_exact_never_exceeds_plain_rank(self, masked):
        """Adding don't-cares can only reduce the minimum depth."""
        with_dc = masked_minimum_addressing(masked, trials=4, seed=0)
        plain = sap_solve(masked.ones_matrix, trials=4, seed=0)
        assert with_dc.proved_optimal and plain.proved_optimal
        assert with_dc.depth <= plain.depth
        validate_masked_partition(masked, with_dc.partition)

    @given(masked_matrices())
    @settings(max_examples=20)
    def test_fooling_bound_holds(self, masked):
        outcome = masked_minimum_addressing(masked, trials=4, seed=0)
        assert masked_fooling_number(masked) <= outcome.depth or (
            outcome.depth == 0
        )
