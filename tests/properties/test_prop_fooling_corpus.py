"""Property tests for the adversarial ``fooling`` corpus family.

Two contracts: the family is a pure function of its seed (the corpus
determinism guarantee), and every registered solver respects the
fooling-number lower bounds the instances carry (the adversarial
guarantee — a depth below a certified fooling number would mean the
solver returns invalid partitions).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fooling import fooling_number
from repro.corpus.families import FOOLING_EXACT_MAX_CELLS
from repro.corpus.registry import build_corpus
from repro.service.portfolio import run_member

SOLVER_SPECS = (
    "trivial",
    "packing:4",
    "packing_x:4",
    "packing_noupdate:4",
    "packing_sorted:4",
    "greedy:4",
    "sap",
)


class TestFoolingFamilyDeterminism:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_build_is_a_pure_function_of_the_seed(self, seed):
        first = build_corpus(["fooling"], profile="smoke", seed=seed)
        second = build_corpus(["fooling"], profile="smoke", seed=seed)
        assert [inst.case_id for inst in first] == [
            inst.case_id for inst in second
        ]
        for a, b in zip(first, second):
            assert a.matrix.row_masks == b.matrix.row_masks
            assert a.known_lower_bound == b.known_lower_bound

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_recorded_bounds_are_real_fooling_numbers(self, seed):
        """The carried lower bound is the matrix's exact fooling number,
        recomputed — not a stale constant baked into the builder."""
        for inst in build_corpus(["fooling"], profile="smoke", seed=seed):
            assert inst.known_lower_bound is not None
            if inst.params.get("kind") in ("complement", "random"):
                assert inst.known_lower_bound == fooling_number(
                    inst.matrix,
                    max_cells=FOOLING_EXACT_MAX_CELLS,
                    seed=0,
                )

    @given(
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=10, deadline=None)
    def test_structured_instances_are_seed_independent(self, s1, s2):
        """Identity / triangular / complement instances carry proofs by
        construction; the seed only steers the random draws."""
        a = build_corpus(["fooling"], profile="smoke", seed=s1)
        b = build_corpus(["fooling"], profile="smoke", seed=s2)
        for x, y in zip(a, b):
            if x.params.get("kind") != "random":
                assert x.matrix.row_masks == y.matrix.row_masks


class TestEverySolverHonorsTheLowerBound:
    @given(st.sampled_from(SOLVER_SPECS), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_depth_never_beats_the_fooling_bound(self, spec, seed):
        for inst in build_corpus(["fooling"], profile="smoke", seed=2024):
            outcome = run_member(inst.matrix, spec, seed=seed)
            assert outcome.partition is not None
            assert outcome.partition.depth >= inst.lower_bound, (
                f"{spec} beat the fooling bound on {inst.case_id}: "
                f"depth {outcome.partition.depth} < {inst.lower_bound}"
            )

    def test_known_rank_instances_are_solved_exactly_by_sap(self):
        for inst in build_corpus(["fooling"], profile="smoke", seed=2024):
            if inst.known_rank is None:
                continue
            outcome = run_member(inst.matrix, "sap", seed=0)
            assert outcome.partition.depth == inst.known_rank
