"""Property-based tests for the neutral-atom pipeline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atoms.array import QubitArray
from repro.atoms.schedule import AddressingSchedule
from repro.atoms.simulator import AddressingSimulator
from repro.solvers.row_packing import PackingOptions, row_packing
from tests.conftest import binary_matrices


class TestPipelineProperties:
    @given(binary_matrices(), st.integers(0, 1000))
    @settings(max_examples=40)
    def test_packed_schedule_always_verifies(self, target, seed):
        """Any packing of any pattern compiles to a schedule that hits
        each target exactly once — the central soundness property."""
        array = QubitArray.full(*target.shape)
        partition = row_packing(
            target, options=PackingOptions(trials=2, seed=seed)
        )
        schedule = AddressingSchedule.from_partition(partition, theta=1.0)
        report = AddressingSimulator(array).verify(schedule, target)
        assert report.ok
        assert report.depth == partition.depth

    @given(binary_matrices(), st.floats(0.01, 3.0))
    @settings(max_examples=30)
    def test_phases_equal_theta_on_targets(self, target, theta):
        array = QubitArray.full(*target.shape)
        partition = row_packing(
            target, options=PackingOptions(trials=1, seed=0)
        )
        schedule = AddressingSchedule.from_partition(partition, theta=theta)
        phases = AddressingSimulator(array).run(schedule)
        for site, phase in phases.items():
            expected = theta if target[site[0], site[1]] else 0.0
            assert abs(phase - expected) < 1e-9

    @given(binary_matrices())
    @settings(max_examples=30)
    def test_total_tones_bounded(self, target):
        """Each AOD step uses at most (rows + cols) tones."""
        partition = row_packing(
            target, options=PackingOptions(trials=1, seed=0)
        )
        schedule = AddressingSchedule.from_partition(partition, theta=1.0)
        limit = (target.num_rows + target.num_cols) * max(
            1, schedule.depth
        )
        assert schedule.total_tones <= limit
