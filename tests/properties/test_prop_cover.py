"""Property-based tests for covers and enumeration."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import fooling_lower_bound
from repro.cover import greedy_cover, minimum_cover, validate_cover
from repro.smt.enumerate import enumerate_partitions
from repro.solvers.branch_bound import binary_rank_branch_bound
from repro.solvers.row_packing import PackingOptions, row_packing
from tests.conftest import binary_matrices, nonzero_binary_matrices


class TestCoverProperties:
    @given(nonzero_binary_matrices(max_rows=5, max_cols=5),
           st.integers(0, 100))
    @settings(max_examples=30)
    def test_greedy_cover_valid(self, m, seed):
        cover = greedy_cover(m, trials=2, seed=seed)
        validate_cover(m, cover)

    @given(nonzero_binary_matrices(max_rows=4, max_cols=4))
    @settings(max_examples=25)
    def test_boolean_rank_bracket(self, m):
        """phi <= boolean rank <= binary rank."""
        result = minimum_cover(m, trials=4, seed=0, time_budget=30)
        assert result.proved_optimal
        assert fooling_lower_bound(m) <= result.depth
        assert result.depth <= binary_rank_branch_bound(m).binary_rank

    @given(nonzero_binary_matrices(max_rows=5, max_cols=5),
           st.integers(0, 50))
    @settings(max_examples=20)
    def test_any_partition_is_a_cover(self, m, seed):
        partition = row_packing(
            m, options=PackingOptions(trials=1, seed=seed)
        )
        validate_cover(m, partition)


class TestEnumerationProperties:
    @given(nonzero_binary_matrices(max_rows=3, max_cols=3))
    @settings(max_examples=20)
    def test_enumerated_partitions_distinct_and_valid(self, m):
        rank = binary_rank_branch_bound(m).binary_rank
        seen = set()
        for partition in enumerate_partitions(m, rank, limit=50):
            partition.validate(m)
            key = frozenset(partition.rectangles)
            assert key not in seen
            seen.add(key)
        assert len(seen) >= 1

    @given(nonzero_binary_matrices(max_rows=3, max_cols=3))
    @settings(max_examples=15)
    def test_below_rank_yields_nothing(self, m):
        rank = binary_rank_branch_bound(m).binary_rank
        if rank > 0:
            assert (
                list(enumerate_partitions(m, rank - 1, limit=5)) == []
            )
