"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import asyncio
import inspect
import random

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.core.binary_matrix import BinaryMatrix


@pytest.hookimpl(tryfirst=True)
def pytest_pyfunc_call(pyfuncitem):
    """Run coroutine tests via ``asyncio.run`` — no pytest-asyncio needed.

    Each test gets a fresh event loop, which matches production use
    (every CLI invocation is one ``asyncio.run``) and keeps tests from
    leaking loop state into each other.
    """
    test_fn = pyfuncitem.obj
    if not inspect.iscoroutinefunction(test_fn):
        return None
    kwargs = {
        name: pyfuncitem.funcargs[name]
        for name in pyfuncitem._fixtureinfo.argnames
    }
    asyncio.run(test_fn(**kwargs))
    return True


def pytest_collection_modifyitems(items):
    """Auto-mark coroutine tests so `-m asyncio` selects them."""
    for item in items:
        if inspect.iscoroutinefunction(getattr(item, "obj", None)):
            item.add_marker(pytest.mark.asyncio)

# Property tests exercise solvers whose runtime varies by orders of
# magnitude between examples; wall-clock deadlines would be flaky.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=60,
)
settings.load_profile("repro")


@st.composite
def binary_matrices(
    draw,
    min_rows: int = 1,
    max_rows: int = 6,
    min_cols: int = 1,
    max_cols: int = 6,
):
    """Arbitrary small binary matrices (mask-row representation)."""
    num_rows = draw(st.integers(min_rows, max_rows))
    num_cols = draw(st.integers(min_cols, max_cols))
    masks = draw(
        st.lists(
            st.integers(0, (1 << num_cols) - 1),
            min_size=num_rows,
            max_size=num_rows,
        )
    )
    return BinaryMatrix(masks, num_cols)


@st.composite
def nonzero_binary_matrices(draw, max_rows: int = 6, max_cols: int = 6):
    matrix = draw(binary_matrices(max_rows=max_rows, max_cols=max_cols))
    if matrix.is_zero():
        num_cols = matrix.num_cols
        masks = list(matrix.row_masks)
        masks[0] |= 1
        matrix = BinaryMatrix(masks, num_cols)
    return matrix


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


SERVICE_SEED = 20240131
"""Root seed shared by every service-layer test (portfolio/batch/cache)."""


@pytest.fixture(scope="session")
def service_seed() -> int:
    return SERVICE_SEED


@pytest.fixture(scope="session")
def service_matrices():
    """Deterministic (case_id, matrix) sample for the service tests.

    Small random instances across the occupancy range, drawn once per
    session from seeds derived from :data:`SERVICE_SEED` — the batch
    determinism tests rely on these being identical across pool sizes.
    """
    from repro.benchgen.random_matrices import random_nonempty_matrix
    from repro.utils.rng import spawn_seeds

    specs = [
        (5, 5, 0.3),
        (5, 5, 0.6),
        (6, 6, 0.4),
        (6, 6, 0.8),
        (4, 8, 0.5),
        (8, 4, 0.5),
    ]
    seeds = spawn_seeds(SERVICE_SEED, len(specs), salt="service-matrices")
    return [
        (
            f"svc-{rows}x{cols}-occ{occupancy:g}",
            random_nonempty_matrix(rows, cols, occupancy, seed=seed),
        )
        for (rows, cols, occupancy), seed in zip(specs, seeds)
    ]
