"""The paper's five Observations (Section IV-B) as executable checks.

Small-scale but faithful: each test regenerates the phenomenon behind
one observation rather than asserting the paper's exact percentages.
"""

from repro.benchgen.gap import gap_matrix
from repro.benchgen.known_optimal import known_optimal_matrix
from repro.benchgen.random_matrices import random_matrix
from repro.core.bounds import rank_lower_bound
from repro.linalg.exact_rank import real_rank
from repro.sat.solver import SolveStatus
from repro.solvers.registry import make_heuristic
from repro.solvers.sap import SapOptions, sap_solve
from repro.solvers.trivial import trivial_partition


class TestObservation1:
    """Real and binary ranks are equal with high probability for random
    matrices — driven by near-full real rank of wide random draws."""

    def test_wide_random_mostly_full_rank(self):
        full = 0
        for seed in range(20):
            m = random_matrix(10, 30, 0.4, seed=seed)
            if real_rank(m) == 10:
                full += 1
        assert full >= 18

    def test_rank_equality_on_random_sample(self):
        agree = total = 0
        for seed in range(10):
            m = random_matrix(8, 16, 0.4, seed=seed)
            result = sap_solve(
                m, options=SapOptions(trials=16, seed=0, time_budget=20)
            )
            if result.proved_optimal:
                total += 1
                agree += int(result.depth == rank_lower_bound(m))
        assert total >= 8
        assert agree / total >= 0.8


class TestObservation2:
    """The known-optimal benchmarks are easy — even the trivial
    heuristic solves them (column duplication gets recognized)."""

    def test_trivial_solves_known_optimal(self):
        for rank in (2, 4, 6):
            for seed in range(3):
                matrix, _ = known_optimal_matrix(
                    10, 10, rank, seed=seed * 31 + rank
                )
                assert trivial_partition(matrix).depth == rank


class TestObservation3:
    """Row packing is effective: a large jump from trivial to one trial
    on gap matrices, then improvement with more trials, saturating."""

    def test_packing_beats_trivial_on_gap(self):
        trivial_total = packing_total = 0
        for seed in range(10):
            m = gap_matrix(10, 10, 3, seed=seed)
            trivial_total += trivial_partition(m).depth
            packing_total += make_heuristic("packing:1")(m, seed).depth
        assert packing_total < trivial_total

    def test_more_trials_monotone(self):
        totals = {}
        for trials in (1, 10, 50):
            heuristic = make_heuristic(f"packing:{trials}")
            totals[trials] = sum(
                heuristic(gap_matrix(10, 10, 3, seed=s), 7).depth
                for s in range(8)
            )
        assert totals[50] <= totals[10] <= totals[1]


class TestObservation4:
    """Row packing's failure mode: the heuristic introduces at most one
    new basis vector per row, so rows that should split into several new
    vectors at once need a lucky order.  Figure 3's matrix with the
    top-down order is exactly such a case (5 found vs optimum 4)."""

    def test_single_order_can_be_fooled(self):
        from repro.core.paper_matrices import figure_3
        from repro.solvers.row_packing import pack_rows_once

        m = figure_3()
        bad_order = pack_rows_once(m, [0, 1, 2, 3, 4])
        result = sap_solve(m, trials=64, seed=0)
        assert result.proved_optimal and result.depth == 4
        assert bad_order.depth == 5  # the greedy order is fooled

    def test_shuffling_recovers(self):
        from repro.core.paper_matrices import figure_3
        from repro.solvers.row_packing import PackingOptions, row_packing

        m = figure_3()
        partition = row_packing(
            m, options=PackingOptions(trials=64, seed=0)
        )
        assert partition.depth == 4


class TestObservation5:
    """The expensive step is proving UNSAT one below the final depth."""

    def test_unsat_query_dominates_conflicts(self):
        m = gap_matrix(10, 10, 4, seed=3)  # needs a real optimality proof
        result = sap_solve(
            m, options=SapOptions(trials=32, seed=0, time_budget=30)
        )
        assert result.proved_optimal
        assert result.queries
        last = result.queries[-1]
        assert last.status is SolveStatus.UNSAT
        sat_conflicts = sum(
            q.conflicts
            for q in result.queries
            if q.status is SolveStatus.SAT
        )
        assert last.conflicts >= sat_conflicts
