"""Smoke tests: every bundled example must run cleanly end to end.

Each example is executed in a subprocess (fresh interpreter, no shared
state) and must exit 0 with its expected headline in stdout.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", "all targets addressed exactly once"),
    ("row_packing_trace.py", "SAP confirms the optimum: r_B = 4"),
    ("neutral_atom_addressing.py", "don't-care compilation"),
    ("ftqc_two_level.py", "two-level:"),
    ("qldpc_memory.py", "row addressing was optimal"),
    ("cover_vs_partition.py", "Sperner bound"),
    ("aod_hardware_limits.py", "schedule stays correct"),
    ("proof_audit.py", "optimality certificates hold"),
    ("vacancy_dont_cares.py", "all targets addressed exactly once"),
    ("tensor_rank_search.py", "Binary rank under tensor products"),
]


@pytest.mark.parametrize("script,expected", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, expected):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert expected in completed.stdout
