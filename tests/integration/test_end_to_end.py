"""End-to-end integration: pattern -> solve -> schedule -> simulate."""

from repro.atoms.array import QubitArray
from repro.atoms.compiler import compile_addressing
from repro.atoms.simulator import AddressingSimulator
from repro.benchgen.gap import gap_matrix
from repro.benchgen.random_matrices import random_matrix
from repro.core.binary_matrix import BinaryMatrix
from repro.core.paper_matrices import figure_1b
from repro.ftqc.surface_code import SurfaceCodeGrid
from repro.ftqc.two_level import two_level_solve
from repro.atoms.schedule import AddressingSchedule


class TestFigure1Pipeline:
    def test_paper_headline_scenario(self):
        """The exact scenario of Figure 1: 6x6 array, the paper's pattern,
        five AOD configurations, every target hit exactly once."""
        array = QubitArray.full(6, 6)
        result = compile_addressing(
            array, figure_1b(), theta=0.25, strategy="sap", seed=0
        )
        assert result.depth == 5
        assert result.proved_optimal
        report = AddressingSimulator(array).verify(
            result.schedule, figure_1b()
        )
        assert report.ok


class TestRandomPatternsPipeline:
    def test_various_occupancies(self):
        for occupancy in (0.1, 0.4, 0.8):
            target = random_matrix(8, 8, occupancy, seed=17)
            array = QubitArray.full(8, 8)
            result = compile_addressing(
                array, target, strategy="packing", trials=8, seed=0
            )
            report = AddressingSimulator(array).verify(
                result.schedule, target
            )
            assert report.ok

    def test_gap_instance_full_pipeline(self):
        target = gap_matrix(10, 10, 3, seed=2)
        array = QubitArray.full(10, 10)
        result = compile_addressing(
            array, target, strategy="sap", trials=16, seed=0,
            time_budget=20,
        )
        report = AddressingSimulator(array).verify(result.schedule, target)
        assert report.ok


class TestFtqcPipeline:
    def test_surface_code_grid_to_schedule(self):
        grid = SurfaceCodeGrid(2, 2, 3)
        logical = BinaryMatrix.from_strings(["10", "11"])
        physical = grid.physical_pattern(logical)
        result = two_level_solve(physical, (3, 3), seed=0)
        schedule = AddressingSchedule.from_partition(
            result.partition, theta=1.0
        )
        array = QubitArray.full(*physical.shape)
        report = AddressingSimulator(array).verify(schedule, physical)
        assert report.ok
        # transversal patch => depth equals the logical partition depth
        assert result.depth == result.outer_partition.depth
