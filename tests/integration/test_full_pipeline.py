"""One end-to-end sweep across every major subsystem added on top of
the paper's core pipeline: exact solve (assumption descent), audited
UNSAT certificate, hardware-legalized schedule, behavioural
verification, bound instruments, and SVG rendering."""

import xml.etree.ElementTree as ET

from repro.atoms import (
    AddressingSchedule,
    AddressingSimulator,
    AodConstraints,
    QubitArray,
    legalize_schedule,
)
from repro.core.bounds import binary_rank_bounds
from repro.core.paper_matrices import figure_1b
from repro.sat.proof import proof_stats
from repro.sat.solver import SolveStatus
from repro.smt.oracle import RankDecisionOracle
from repro.solvers.sap import SapOptions, sap_solve
from repro.viz.figures import partition_figure


def test_full_pipeline_on_figure_1b(tmp_path):
    pattern = figure_1b()

    # 1. All bound instruments agree on the bracket.
    bounds = binary_rank_bounds(
        pattern, use_fooling=True, use_lp=True, seed=0
    )
    assert bounds.rank_bound == 4
    assert bounds.fooling_bound == 5
    assert bounds.lp_bound is not None and bounds.lp_bound <= 5
    assert bounds.lower == 5 and bounds.upper >= 5

    # 2. Exact solve with the assumption descent.
    result = sap_solve(
        pattern, options=SapOptions(trials=16, seed=0, descent="assumption")
    )
    assert result.proved_optimal and result.depth == 5
    result.partition.validate(pattern)

    # 3. Independent optimality certificate (proof-enabled oracle).
    oracle = RankDecisionOracle(pattern, proof=True)
    status, _ = oracle.check_at_most(4)
    assert status is SolveStatus.UNSAT
    oracle.verify_refutation()
    assert proof_stats(oracle.proof_log)["refuted"] == 1

    # 4. Compile, legalize under hardware limits, and re-verify.
    schedule = AddressingSchedule.from_partition(result.partition, theta=0.5)
    constraints = AodConstraints(
        max_row_tones=2, max_col_tones=2, min_row_spacing=1
    )
    legal = legalize_schedule(schedule, constraints)
    assert legal.depth >= schedule.depth
    assert constraints.schedule_is_legal(legal.schedule)
    report = AddressingSimulator(QubitArray.full(6, 6)).verify(
        legal.schedule, pattern
    )
    assert report.ok, report.summary()
    assert report.depth == legal.depth

    # 5. Render the optimal partition with its fooling certificate.
    canvas = partition_figure(
        pattern, result.partition, with_fooling=True, title="pipeline"
    )
    svg_path = tmp_path / "pipeline.svg"
    canvas.write(str(svg_path))
    root = ET.fromstring(svg_path.read_text())
    rings = root.findall("{http://www.w3.org/2000/svg}circle")
    assert len(rings) == 5  # the size-5 fooling set of Figure 1b
