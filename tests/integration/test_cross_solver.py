"""Cross-solver integration: every exact path agrees on every tiny matrix.

Exhaustively enumerates all binary matrices up to 3x3 (and samples 4x4)
and checks SAP (both encodings), branch and bound, and — where cheap —
the fooling/rank bracket.
"""

import itertools

import pytest

from repro.core.binary_matrix import BinaryMatrix
from repro.core.bounds import fooling_lower_bound, rank_lower_bound
from repro.solvers.branch_bound import binary_rank_branch_bound
from repro.solvers.sap import SapOptions, sap_solve


def all_matrices(num_rows, num_cols):
    for masks in itertools.product(
        range(1 << num_cols), repeat=num_rows
    ):
        yield BinaryMatrix(list(masks), num_cols)


class TestExhaustiveTiny:
    @pytest.mark.parametrize("shape", [(1, 1), (1, 2), (2, 1), (2, 2)])
    def test_all_matrices_up_to_2x2(self, shape):
        for m in all_matrices(*shape):
            bb = binary_rank_branch_bound(m).binary_rank
            sap = sap_solve(m, options=SapOptions(trials=2, seed=0))
            assert sap.proved_optimal
            assert sap.depth == bb
            assert rank_lower_bound(m) <= bb
            assert fooling_lower_bound(m) <= bb

    def test_all_2x3_matrices(self):
        for m in all_matrices(2, 3):
            bb = binary_rank_branch_bound(m).binary_rank
            sap = sap_solve(m, options=SapOptions(trials=2, seed=0))
            assert sap.proved_optimal and sap.depth == bb

    def test_all_3x3_matrices_sampled(self):
        """3x3 has 512^... too many; step through a deterministic sample."""
        count = 0
        for index, m in enumerate(all_matrices(3, 3)):
            if index % 37 != 0:
                continue
            bb = binary_rank_branch_bound(m).binary_rank
            sap = sap_solve(m, options=SapOptions(trials=2, seed=0))
            assert sap.proved_optimal and sap.depth == bb
            count += 1
        assert count > 10


class TestEncodingsAgree:
    def test_direct_vs_binary_on_random(self, rng):
        for _ in range(15):
            rows, cols = rng.randint(2, 5), rng.randint(2, 5)
            m = BinaryMatrix(
                [rng.getrandbits(cols) for _ in range(rows)], cols
            )
            direct = sap_solve(
                m, options=SapOptions(trials=4, seed=0, encoding="direct")
            )
            binary = sap_solve(
                m, options=SapOptions(trials=4, seed=0, encoding="binary")
            )
            assert direct.proved_optimal and binary.proved_optimal
            assert direct.depth == binary.depth

    def test_symmetry_modes_agree_on_random(self, rng):
        for _ in range(10):
            rows, cols = rng.randint(2, 4), rng.randint(2, 4)
            m = BinaryMatrix(
                [rng.getrandbits(cols) for _ in range(rows)], cols
            )
            depths = set()
            for symmetry in ("none", "restricted", "precedence"):
                result = sap_solve(
                    m,
                    options=SapOptions(trials=4, seed=0, symmetry=symmetry),
                )
                assert result.proved_optimal
                depths.add(result.depth)
            assert len(depths) == 1
