"""Deliberately broken module for the lint gate test.

NOT importable production code — this file seeds one violation for each
scope-free rule so ``tests/analysis/test_cli.py`` can prove the gate
fails (exit 1) when a violation is introduced.  It lives under
``tests/`` precisely so the default scan roots never pick it up.
"""

import random
from concurrent.futures import ProcessPoolExecutor


def unseeded_pick():
    # REP001: global RNG outside utils/rng.py.
    return random.random()


def bad_submit(values):
    # REP004: a lambda cannot cross a spawn boundary.
    with ProcessPoolExecutor() as pool:
        return [pool.submit(lambda v: v + 1, v) for v in values]


def rogue_shard_read(shard_path):
    # REP006: shard files are flock-guarded; raw open bypasses that.
    with open(shard_path) as stream:
        return stream.read()
