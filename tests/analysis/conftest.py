"""Fixtures for the static-analysis suite.

``make_project`` builds a throwaway repo-shaped tree under ``tmp_path``
so rules with path scopes (``src/repro/server/...``) can be exercised
without touching the real checkout; ``lint`` runs an
:class:`~repro.analysis.engine.Analyzer` over it with a chosen rule
subset.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict, Optional, Sequence

import pytest

from repro.analysis import Analyzer, Report, select_rules


@pytest.fixture
def make_project(tmp_path):
    def build(files: Dict[str, str]) -> Path:
        for relpath, source in files.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
        return tmp_path

    return build


@pytest.fixture
def lint():
    def run(
        root: Path,
        *,
        rules: Optional[str] = None,
        paths: Optional[Sequence[str]] = None,
    ) -> Report:
        return Analyzer(
            root, rules=select_rules(rules), paths=paths
        ).run()

    return run
