"""End-to-end exit-code and output contracts for ``python -m repro lint``.

Exit codes are the load-bearing interface: 0 clean, 1 findings, 2
internal analyzer errors.  Everything here drives the real
``repro.cli.main`` entry point, same as CI would.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.cli import main

FIXTURE = Path(__file__).parent / "fixtures" / "rep_violations.py"
CLEAN = """
import random

RNG = random.Random(7)

def pick():
    return RNG.random()
"""


def write_clean_project(tmp_path: Path) -> Path:
    target = tmp_path / "src" / "repro" / "solvers" / "foo.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(CLEAN))
    return tmp_path


def test_clean_project_exits_zero(tmp_path, capsys):
    root = write_clean_project(tmp_path)
    assert main(["lint", "--root", str(root)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_violation_exits_one(tmp_path, capsys):
    root = write_clean_project(tmp_path)
    bad = root / "src" / "repro" / "solvers" / "bad.py"
    bad.write_text("import random\nX = random.random()\n")
    assert main(["lint", "--root", str(root)]) == 1
    out = capsys.readouterr().out
    assert "REP001" in out
    assert "bad.py:2" in out


def test_fixture_module_fails_gate(tmp_path, capsys):
    # The checked-in violations file, linted explicitly with an empty
    # baseline: every seeded rule must fire and the gate must fail.
    repo_root = Path(__file__).resolve().parents[2]
    code = main(
        [
            "lint",
            str(FIXTURE),
            "--root",
            str(repo_root),
            "--baseline",
            str(tmp_path / "empty_baseline.json"),
            "--format",
            "json",
        ]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    fired = {finding["rule"] for finding in payload["findings"]}
    assert {"REP001", "REP004", "REP006"} <= fired


def test_json_format_contract(tmp_path, capsys):
    root = write_clean_project(tmp_path)
    assert main(["lint", "--root", str(root), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []
    assert payload["files_scanned"] == 1
    assert "REP001" in payload["rules"]


def test_update_baseline_then_clean(tmp_path, capsys):
    root = write_clean_project(tmp_path)
    bad = root / "src" / "repro" / "solvers" / "bad.py"
    bad.write_text("import random\nX = random.random()\n")
    assert main(["lint", "--root", str(root)]) == 1
    capsys.readouterr()
    assert main(["lint", "--root", str(root), "--update-baseline"]) == 0
    baseline = root / "baselines" / "lint_baseline.json"
    assert baseline.is_file()
    first = baseline.read_bytes()
    assert main(["lint", "--root", str(root)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out
    # A second --update-baseline over the unchanged tree is a no-op
    # byte-for-byte: the file is fit for checking in.
    assert main(["lint", "--root", str(root), "--update-baseline"]) == 0
    assert baseline.read_bytes() == first


def test_fixing_baselined_finding_goes_stale(tmp_path, capsys):
    root = write_clean_project(tmp_path)
    bad = root / "src" / "repro" / "solvers" / "bad.py"
    bad.write_text("import random\nX = random.random()\n")
    assert main(["lint", "--root", str(root), "--update-baseline"]) == 0
    bad.write_text("import random\nX = random.Random(3).random()\n")
    capsys.readouterr()
    assert main(["lint", "--root", str(root)]) == 0
    assert "stale baseline" in capsys.readouterr().out


def test_corrupt_baseline_exits_two(tmp_path, capsys):
    root = write_clean_project(tmp_path)
    baseline = root / "baselines" / "lint_baseline.json"
    baseline.parent.mkdir()
    baseline.write_text("{broken")
    assert main(["lint", "--root", str(root)]) == 2
    assert "error:" in capsys.readouterr().err


def test_unknown_rule_exits_two(tmp_path, capsys):
    root = write_clean_project(tmp_path)
    assert main(["lint", "--root", str(root), "--rules", "REP999"]) == 2
    assert "REP999" in capsys.readouterr().err


def test_missing_path_exits_two(tmp_path, capsys):
    root = write_clean_project(tmp_path)
    assert main(["lint", "no/such/file.py", "--root", str(root)]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "REP001",
        "REP002",
        "REP003",
        "REP004",
        "REP005",
        "REP006",
        "REP007",
        "REP008",
    ):
        assert rule_id in out
