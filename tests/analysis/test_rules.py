"""Per-rule behavior: each REP rule against minimal fixture trees."""

from __future__ import annotations


def rule_ids(report):
    return [finding.rule_id for finding in report.findings]


class TestRep001GlobalRng:
    def test_global_random_call_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/solvers/foo.py": """
                import random

                def pick():
                    return random.randint(0, 5)
                """
            }
        )
        report = lint(root, rules="REP001")
        assert rule_ids(report) == ["REP001"]
        assert "random.randint" in report.findings[0].message

    def test_unseeded_random_constructor_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/solvers/foo.py": """
                import random

                RNG = random.Random()
                """
            }
        )
        report = lint(root, rules="REP001")
        assert rule_ids(report) == ["REP001"]

    def test_seeded_random_ok(self, make_project, lint):
        root = make_project(
            {
                "src/repro/solvers/foo.py": """
                import random

                RNG = random.Random(2024)
                """
            }
        )
        assert lint(root, rules="REP001").findings == []

    def test_from_import_of_global_fn_flagged(self, make_project, lint):
        root = make_project(
            {
                "examples/demo.py": """
                from random import shuffle

                def mix(items):
                    shuffle(items)
                """
            }
        )
        report = lint(root, rules="REP001")
        assert rule_ids(report) == ["REP001"]
        assert "shuffle" in report.findings[0].message

    def test_from_import_of_random_class_ok(self, make_project, lint):
        root = make_project(
            {
                "examples/demo.py": """
                from random import Random

                RNG = Random(7)
                """
            }
        )
        assert lint(root, rules="REP001").findings == []

    def test_np_random_flagged(self, make_project, lint):
        root = make_project(
            {
                "benchmarks/bench_x.py": """
                import numpy as np

                def noise(n):
                    return np.random.rand(n)
                """
            }
        )
        report = lint(root, rules="REP001")
        assert rule_ids(report) == ["REP001"]
        assert "np.random.rand" in report.findings[0].message

    def test_rng_home_is_exempt(self, make_project, lint):
        root = make_project(
            {
                "src/repro/utils/rng.py": """
                import random

                def fresh():
                    return random.Random()
                """
            }
        )
        assert lint(root, rules="REP001").findings == []


class TestRep002WallClock:
    def test_time_time_in_scope_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/service/foo.py": """
                import time

                def deadline():
                    return time.time() + 5
                """
            }
        )
        report = lint(root, rules="REP002")
        assert rule_ids(report) == ["REP002"]

    def test_monotonic_ok(self, make_project, lint):
        root = make_project(
            {
                "src/repro/service/foo.py": """
                import time

                def deadline():
                    return time.monotonic() + 5
                """
            }
        )
        assert lint(root, rules="REP002").findings == []

    def test_out_of_scope_not_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/viz/foo.py": """
                import time

                def stamp():
                    return time.time()
                """
            }
        )
        assert lint(root, rules="REP002").findings == []

    def test_datetime_now_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/solvers/foo.py": """
                from datetime import datetime

                def stamp():
                    return datetime.now()
                """
            }
        )
        report = lint(root, rules="REP002")
        assert rule_ids(report) == ["REP002"]

    def test_from_time_import_time_flagged(self, make_project, lint):
        root = make_project(
            {
                "benchmarks/bench_y.py": """
                from time import time
                """
            }
        )
        report = lint(root, rules="REP002")
        assert rule_ids(report) == ["REP002"]


class TestRep003BlockingInAsync:
    def test_sleep_in_coroutine_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/server/foo.py": """
                import time

                async def handler():
                    time.sleep(1)
                """
            }
        )
        report = lint(root, rules="REP003")
        assert rule_ids(report) == ["REP003"]

    def test_subprocess_and_flock_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/server/foo.py": """
                import fcntl
                import subprocess

                async def handler(handle):
                    subprocess.run(["ls"])
                    fcntl.flock(handle, fcntl.LOCK_EX)
                """
            }
        )
        assert rule_ids(lint(root, rules="REP003")) == ["REP003", "REP003"]

    def test_locked_file_helper_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/server/foo.py": """
                from repro.utils.fileio import locked_file

                async def handler(path):
                    with locked_file(path):
                        pass
                """
            }
        )
        assert rule_ids(lint(root, rules="REP003")) == ["REP003"]

    def test_sync_function_not_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/server/foo.py": """
                import time

                def helper():
                    time.sleep(1)
                """
            }
        )
        assert lint(root, rules="REP003").findings == []

    def test_nested_sync_def_is_executor_thunk(self, make_project, lint):
        root = make_project(
            {
                "src/repro/server/foo.py": """
                import asyncio
                import time

                async def handler(loop):
                    def thunk():
                        time.sleep(1)

                    await loop.run_in_executor(None, thunk)
                """
            }
        )
        assert lint(root, rules="REP003").findings == []

    def test_outside_server_not_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/service/foo.py": """
                import time

                async def handler():
                    time.sleep(1)
                """
            }
        )
        assert lint(root, rules="REP003").findings == []


class TestRep004SpawnSafety:
    def test_lambda_submit_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/service/foo.py": """
                from concurrent.futures import ProcessPoolExecutor

                def run(values):
                    with ProcessPoolExecutor() as pool:
                        return [pool.submit(lambda v: v + 1, v) for v in values]
                """
            }
        )
        report = lint(root, rules="REP004")
        assert rule_ids(report) == ["REP004"]
        assert "lambda" in report.findings[0].message

    def test_nested_function_submit_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/service/foo.py": """
                from concurrent.futures import ProcessPoolExecutor

                def run(value):
                    def work():
                        return value + 1

                    with ProcessPoolExecutor() as pool:
                        return pool.submit(work)
                """
            }
        )
        report = lint(root, rules="REP004")
        assert rule_ids(report) == ["REP004"]
        assert "work" in report.findings[0].message

    def test_module_level_callable_ok(self, make_project, lint):
        root = make_project(
            {
                "src/repro/service/foo.py": """
                from concurrent.futures import ProcessPoolExecutor

                def work(value):
                    return value + 1

                def run(value):
                    with ProcessPoolExecutor() as pool:
                        return pool.submit(work, value)
                """
            }
        )
        assert lint(root, rules="REP004").findings == []

    def test_thread_only_module_not_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/service/foo.py": """
                from concurrent.futures import ThreadPoolExecutor

                def run(values):
                    with ThreadPoolExecutor() as pool:
                        return [pool.submit(lambda v: v + 1, v) for v in values]
                """
            }
        )
        assert lint(root, rules="REP004").findings == []

    def test_partial_over_lambda_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/service/foo.py": """
                from functools import partial
                from concurrent.futures import ProcessPoolExecutor

                def run(value):
                    with ProcessPoolExecutor() as pool:
                        return pool.submit(partial(lambda v: v, value))
                """
            }
        )
        assert rule_ids(lint(root, rules="REP004")) == ["REP004"]


class TestRep005SortedJson:
    def test_missing_sort_keys_flagged(self, make_project, lint):
        root = make_project(
            {
                "benchmarks/bench_z.py": """
                import json

                def record(payload, stream):
                    json.dump(payload, stream, indent=2)
                """
            }
        )
        report = lint(root, rules="REP005")
        assert rule_ids(report) == ["REP005"]

    def test_sort_keys_false_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/corpus/foo.py": """
                import json

                def record(payload, stream):
                    json.dump(payload, stream, sort_keys=False)
                """
            }
        )
        assert rule_ids(lint(root, rules="REP005")) == ["REP005"]

    def test_sort_keys_true_ok(self, make_project, lint):
        root = make_project(
            {
                "benchmarks/bench_z.py": """
                import json

                def record(payload, stream):
                    json.dump(payload, stream, sort_keys=True)
                """
            }
        )
        assert lint(root, rules="REP005").findings == []

    def test_forwarded_sort_keys_ok(self, make_project, lint):
        root = make_project(
            {
                "src/repro/utils/foo.py": """
                import json

                def record(payload, stream, sort_keys):
                    json.dump(payload, stream, sort_keys=sort_keys)
                """
            }
        )
        assert lint(root, rules="REP005").findings == []

    def test_out_of_scope_not_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/atoms/foo.py": """
                import json

                def record(payload, stream):
                    json.dump(payload, stream)
                """
            }
        )
        assert lint(root, rules="REP005").findings == []


class TestRep006ShardIo:
    def test_shard_open_outside_helpers_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/service/foo.py": """
                def peek(shard_path):
                    with open(shard_path) as stream:
                        return stream.read()
                """
            }
        )
        report = lint(root, rules="REP006")
        assert rule_ids(report) == ["REP006"]

    def test_shards_module_helpers_allowed(self, make_project, lint):
        root = make_project(
            {
                "src/repro/server/shards.py": """
                def _read_shard(shard):
                    with open(shard) as stream:
                        return stream.read()

                def rogue(shard):
                    with open(shard) as stream:
                        return stream.read()
                """
            }
        )
        report = lint(root, rules="REP006")
        assert rule_ids(report) == ["REP006"]
        assert report.findings[0].line_text.startswith("with open(shard)")

    def test_non_shard_open_ok(self, make_project, lint):
        root = make_project(
            {
                "src/repro/service/foo.py": """
                def peek(path):
                    with open(path) as stream:
                        return stream.read()
                """
            }
        )
        assert lint(root, rules="REP006").findings == []


class TestRep007SilentExcept:
    def test_bare_except_pass_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/server/foo.py": """
                def recover(work):
                    try:
                        work()
                    except:
                        pass
                """
            }
        )
        report = lint(root, rules="REP007")
        assert rule_ids(report) == ["REP007"]
        assert "bare except" in report.findings[0].message

    def test_broad_tuple_pass_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/service/foo.py": """
                def recover(work):
                    try:
                        work()
                    except (ValueError, Exception):
                        pass
                """
            }
        )
        assert rule_ids(lint(root, rules="REP007")) == ["REP007"]

    def test_narrow_except_pass_ok(self, make_project, lint):
        root = make_project(
            {
                "src/repro/server/foo.py": """
                def recover(work):
                    try:
                        work()
                    except OSError:
                        pass
                """
            }
        )
        assert lint(root, rules="REP007").findings == []

    def test_logged_broad_except_ok(self, make_project, lint):
        root = make_project(
            {
                "src/repro/server/foo.py": """
                import logging

                def recover(work):
                    try:
                        work()
                    except Exception:
                        logging.getLogger(__name__).warning("recovering")
                """
            }
        )
        assert lint(root, rules="REP007").findings == []

    def test_out_of_scope_not_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/core/foo.py": """
                def recover(work):
                    try:
                        work()
                    except Exception:
                        pass
                """
            }
        )
        assert lint(root, rules="REP007").findings == []


FAULTS_STUB = """
from dataclasses import dataclass
from typing import Optional


@dataclass
class FaultPlan:
    kill_worker_on_case: Optional[str] = None
    corrupt_shard_on_write: bool = False
"""


class TestRep008SeamCoverage:
    def test_uncovered_seam_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/service/faults.py": FAULTS_STUB,
                "tests/chaos/test_kill.py": """
                def test_kill():
                    assert "kill_worker_on_case"
                """,
            }
        )
        report = lint(root, rules="REP008")
        assert rule_ids(report) == ["REP008"]
        assert "corrupt_shard_on_write" in report.findings[0].message

    def test_all_seams_covered_ok(self, make_project, lint):
        root = make_project(
            {
                "src/repro/service/faults.py": FAULTS_STUB,
                "tests/chaos/test_kill.py": """
                def test_kill():
                    assert "kill_worker_on_case" and "corrupt_shard_on_write"
                """,
            }
        )
        assert lint(root, rules="REP008").findings == []

    def test_missing_chaos_suite_flagged(self, make_project, lint):
        root = make_project(
            {"src/repro/service/faults.py": FAULTS_STUB}
        )
        report = lint(root, rules="REP008")
        assert rule_ids(report) == ["REP008"]
        assert "no tests at all" in report.findings[0].message

    def test_uncovered_delay_site_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/service/faults.py": FAULTS_STUB,
                "src/repro/service/worker.py": """
                from repro.service import faults

                def work():
                    faults.delay("worker.obscure")
                """,
                "tests/chaos/test_kill.py": """
                def test_kill():
                    assert "kill_worker_on_case" and "corrupt_shard_on_write"
                """,
            }
        )
        report = lint(root, rules="REP008")
        assert rule_ids(report) == ["REP008"]
        assert "worker.obscure" in report.findings[0].message
        assert report.findings[0].path == "src/repro/service/worker.py"

    def test_partial_scan_skips_rule(self, make_project, lint):
        root = make_project(
            {
                "src/repro/solvers/foo.py": "X = 1\n",
            }
        )
        assert lint(root, rules="REP008").findings == []


class TestRep009StoreArtifactWrites:
    def test_journal_write_outside_helpers_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/server/foo.py": """
                from repro.utils.fileio import atomic_write_json

                def checkpoint(tier, payload):
                    atomic_write_json(tier.journal_path(), payload)
                """
            }
        )
        report = lint(root, rules="REP009")
        assert rule_ids(report) == ["REP009"]
        assert "journal_path" in report.findings[0].message

    def test_raw_index_open_for_write_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/service/foo.py": """
                def stamp(root):
                    with open(root / "cache-index.json", "w") as stream:
                        stream.write("{}")
                """
            }
        )
        report = lint(root, rules="REP009")
        assert rule_ids(report) == ["REP009"]

    def test_write_text_on_store_config_flagged(self, make_project, lint):
        root = make_project(
            {
                "src/repro/server/foo.py": """
                def configure(root):
                    (root / "store-config.json").write_text("{}")
                """
            }
        )
        report = lint(root, rules="REP009")
        assert rule_ids(report) == ["REP009"]

    def test_allowlisted_helpers_pass(self, make_project, lint):
        root = make_project(
            {
                "src/repro/server/store_gc.py": """
                from repro.utils.fileio import atomic_write_json

                def _write_journal(tier, payload):
                    atomic_write_json(tier.journal_path(), payload)
                """,
                "src/repro/server/shards.py": """
                from repro.utils.fileio import atomic_write_json

                def _write_index(self, payload):
                    atomic_write_json(self.index_path(), payload)

                def _persist_limits(self, limits):
                    atomic_write_json(self.config_path(), limits)
                """,
            }
        )
        assert lint(root, rules="REP009").findings == []

    def test_same_function_name_elsewhere_still_flagged(
        self, make_project, lint
    ):
        # The allowlist is (module, function) pairs, not bare names.
        root = make_project(
            {
                "src/repro/service/foo.py": """
                from repro.utils.fileio import atomic_write_json

                def _write_journal(tier, payload):
                    atomic_write_json(tier.journal_path(), payload)
                """
            }
        )
        report = lint(root, rules="REP009")
        assert rule_ids(report) == ["REP009"]

    def test_reads_and_unrelated_writes_ok(self, make_project, lint):
        root = make_project(
            {
                "src/repro/server/foo.py": """
                from repro.utils.fileio import atomic_write_json

                def read_journal(tier):
                    with open(tier.journal_path()) as stream:
                        return stream.read()

                def write_report(path, payload):
                    atomic_write_json(path, payload)

                def write_notes(root):
                    (root / "notes.txt").write_text("hi")
                """
            }
        )
        assert lint(root, rules="REP009").findings == []


class TestParseErrors:
    def test_syntax_error_reported_as_rep000(self, make_project, lint):
        root = make_project(
            {"src/repro/solvers/broken.py": "def broken(:\n    pass\n"}
        )
        report = lint(root)
        assert rule_ids(report) == ["REP000"]
        assert "does not parse" in report.findings[0].message
