"""Suppression syntax and baseline lifecycle for ``repro lint``."""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import (
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from repro.analysis.engine import Analyzer
from repro.analysis.findings import fingerprint_findings
from repro.analysis.rules import select_rules
from repro.core.exceptions import AnalysisError


VIOLATION = """
import random

def pick():
    return random.random()
"""


def rule_ids(report):
    return [finding.rule_id for finding in report.findings]


class TestSuppressionSyntax:
    def test_same_line_disable(self, make_project, lint):
        root = make_project(
            {
                "src/repro/solvers/foo.py": """
                import random

                def pick():
                    return random.random()  # repro-lint: disable=REP001 (demo)
                """
            }
        )
        report = lint(root, rules="REP001")
        assert report.findings == []
        assert rule_ids_of(report.suppressed) == ["REP001"]

    def test_comment_line_above_disable(self, make_project, lint):
        root = make_project(
            {
                "src/repro/solvers/foo.py": """
                import random

                def pick():
                    # repro-lint: disable=REP001 (demo)
                    return random.random()
                """
            }
        )
        report = lint(root, rules="REP001")
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_disable_file(self, make_project, lint):
        root = make_project(
            {
                "src/repro/solvers/foo.py": """
                # repro-lint: disable-file=REP001 (demo module)
                import random

                A = random.random()
                B = random.random()
                """
            }
        )
        report = lint(root, rules="REP001")
        assert report.findings == []
        assert len(report.suppressed) == 2

    def test_wrong_rule_id_does_not_suppress(self, make_project, lint):
        root = make_project(
            {
                "src/repro/solvers/foo.py": """
                import random

                def pick():
                    return random.random()  # repro-lint: disable=REP002
                """
            }
        )
        report = lint(root, rules="REP001")
        assert rule_ids(report) == ["REP001"]
        assert report.suppressed == []

    def test_star_suppresses_all_rules(self, make_project, lint):
        root = make_project(
            {
                "src/repro/service/foo.py": """
                import random
                import time

                def pick():
                    # repro-lint: disable=* (kitchen sink)
                    return random.random() + time.time()
                """
            }
        )
        report = lint(root, rules="REP001,REP002")
        assert report.findings == []
        assert len(report.suppressed) == 2

    def test_directive_only_covers_next_line(self, make_project, lint):
        root = make_project(
            {
                "src/repro/solvers/foo.py": """
                import random

                def pick():
                    # repro-lint: disable=REP001
                    first = random.random()
                    second = random.random()
                    return first + second
                """
            }
        )
        report = lint(root, rules="REP001")
        assert len(report.findings) == 1
        assert "second" in report.findings[0].line_text

    def test_directive_in_string_literal_ignored(self, make_project, lint):
        root = make_project(
            {
                "src/repro/solvers/foo.py": """
                import random

                DOC = "# repro-lint: disable-file=REP001"
                A = random.random()
                """
            }
        )
        assert rule_ids(lint(root, rules="REP001")) == ["REP001"]


class TestBaselineLifecycle:
    def _report(self, make_project, lint):
        root = make_project({"src/repro/solvers/foo.py": VIOLATION})
        return root, lint(root, rules="REP001")

    def test_update_baseline_round_trips_byte_identically(
        self, make_project, lint, tmp_path
    ):
        root, report = self._report(make_project, lint)
        target = tmp_path / "baseline.json"
        write_baseline(target, report.findings)
        first = target.read_bytes()
        write_baseline(target, report.findings)
        assert target.read_bytes() == first
        payload = json.loads(first)
        assert payload["type"] == "repro_lint_baseline"
        assert len(payload["findings"]) == 1

    def test_baselined_finding_is_filtered(self, make_project, lint, tmp_path):
        root, report = self._report(make_project, lint)
        target = tmp_path / "baseline.json"
        write_baseline(target, report.findings)
        baseline = load_baseline(target)
        new, grandfathered, stale = split_by_baseline(
            report.findings, baseline
        )
        assert new == []
        assert len(grandfathered) == 1
        assert stale == []

    def test_fingerprint_survives_line_drift(self, make_project, lint):
        root, report = self._report(make_project, lint)
        baseline = {
            fp: {} for fp, _ in fingerprint_findings(report.findings)
        }
        shifted = make_project(
            {
                "src/repro/solvers/foo.py": "# a new leading comment\n"
                + VIOLATION
            }
        )
        drifted = lint(shifted, rules="REP001")
        assert drifted.findings[0].line != report.findings[0].line
        new, grandfathered, stale = split_by_baseline(
            drifted.findings, baseline
        )
        assert new == []
        assert len(grandfathered) == 1

    def test_new_violation_not_covered_by_old_baseline(
        self, make_project, lint, tmp_path
    ):
        root, report = self._report(make_project, lint)
        target = tmp_path / "baseline.json"
        write_baseline(target, report.findings)
        grown = make_project(
            {
                "src/repro/solvers/foo.py": VIOLATION
                + "\ndef pick_again():\n    return random.randint(0, 9)\n"
            }
        )
        new, grandfathered, stale = split_by_baseline(
            lint(grown, rules="REP001").findings, load_baseline(target)
        )
        assert len(new) == 1
        assert "random.randint" in new[0].message
        assert len(grandfathered) == 1

    def test_stale_entries_surface(self, make_project, lint, tmp_path):
        root, report = self._report(make_project, lint)
        target = tmp_path / "baseline.json"
        write_baseline(target, report.findings)
        new, grandfathered, stale = split_by_baseline(
            [], load_baseline(target)
        )
        assert new == [] and grandfathered == []
        assert len(stale) == 1

    def test_absent_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "missing.json") == {}

    def test_corrupt_baseline_raises(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text("{not json")
        with pytest.raises(AnalysisError):
            load_baseline(target)

    def test_wrong_type_raises(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"type": "something_else"}))
        with pytest.raises(AnalysisError):
            load_baseline(target)


class TestEngineErrors:
    def test_crashing_rule_becomes_analysis_error(self, make_project):
        class ExplodingRule(select_rules("REP001")[0].__class__):
            def check(self, ctx):
                raise RuntimeError("boom")

        root = make_project({"src/repro/solvers/foo.py": "X = 1\n"})
        with pytest.raises(AnalysisError, match="REP001.*boom"):
            Analyzer(root, rules=[ExplodingRule()]).run()

    def test_unknown_rule_spec_raises(self):
        with pytest.raises(AnalysisError, match="REP999"):
            select_rules("REP999")

    def test_empty_rule_spec_raises(self):
        with pytest.raises(AnalysisError):
            select_rules(" , ")


def rule_ids_of(findings):
    return [finding.rule_id for finding in findings]
