"""The tier-1 lint gate: the real checkout must lint clean.

This is the test that makes ``repro lint`` an invariant rather than a
suggestion — a PR that introduces an unseeded RNG, a wall-clock read in
budget math, or an uncovered fault seam fails here.  Fixes belong in
the offending code; deliberate exceptions belong in an inline
suppression (with a reason) or, as a last resort, the baseline.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import Analyzer
from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    split_by_baseline,
)

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_gate():
    report = Analyzer(REPO_ROOT).run()
    baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE)
    new, grandfathered, stale = split_by_baseline(
        report.findings, baseline
    )
    return report, new, grandfathered, stale


def test_repo_lints_clean():
    report, new, _, _ = run_gate()
    assert report.files_scanned > 100
    assert new == [], "new lint findings:\n" + "\n".join(
        finding.format() for finding in new
    )


def test_baseline_is_not_stale():
    _, _, grandfathered, stale = run_gate()
    assert stale == [], (
        "baseline entries no longer match any finding — "
        "run `python -m repro lint --update-baseline`: "
        f"{stale}"
    )
    # The baseline is a debt ledger, not a dumping ground — and as of
    # the injectable-clock work (repro.utils.clock) the ledger is paid
    # off.  New debt needs a written reason in docs/static-analysis.md,
    # and this assertion loosened on purpose in the same PR.
    assert len(grandfathered) == 0


def test_every_fault_seam_has_chaos_coverage():
    # REP008 alone over the real tree: FaultPlan fields and delay sites
    # must all be referenced somewhere in tests/chaos/.
    from repro.analysis.rules.robustness import FaultSeamCoverageRule

    report = Analyzer(
        REPO_ROOT, rules=[FaultSeamCoverageRule()]
    ).run()
    assert report.findings == [], "\n".join(
        finding.format() for finding in report.findings
    )
