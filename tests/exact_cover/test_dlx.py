"""Unit tests for Algorithm X / dancing links."""

import pytest

from repro.core.exceptions import SolverError
from repro.exact_cover.dlx import DancingLinks, exact_cover_masks


class TestDancingLinks:
    def test_knuth_example(self):
        """The classic 7-column example from Knuth's paper."""
        dlx = DancingLinks(7)
        rows = {
            "A": [0, 3, 6],
            "B": [0, 3],
            "C": [3, 4, 6],
            "D": [2, 4, 5],
            "E": [1, 2, 5, 6],
            "F": [1, 6],
        }
        for name, cols in rows.items():
            dlx.add_row(name, cols)
        solution = dlx.solve()
        assert solution is not None
        assert sorted(solution) == ["B", "D", "F"]

    def test_no_solution(self):
        dlx = DancingLinks(2)
        dlx.add_row("a", [0])
        assert dlx.solve() is None

    def test_multiple_solutions_counted(self):
        dlx = DancingLinks(2)
        dlx.add_row("ab", [0, 1])
        dlx.add_row("a", [0])
        dlx.add_row("b", [1])
        assert dlx.count_solutions() == 2

    def test_solutions_cover_exactly(self):
        dlx = DancingLinks(4)
        dlx.add_row("left", [0, 1])
        dlx.add_row("right", [2, 3])
        dlx.add_row("middle", [1, 2])
        dlx.add_row("zero", [0])
        dlx.add_row("three", [3])
        for solution in dlx.solutions():
            covered = []
            rows = {
                "left": [0, 1],
                "right": [2, 3],
                "middle": [1, 2],
                "zero": [0],
                "three": [3],
            }
            for name in solution:
                covered.extend(rows[name])
            assert sorted(covered) == [0, 1, 2, 3]

    def test_empty_universe(self):
        dlx = DancingLinks(0)
        assert dlx.solve() == []

    def test_duplicate_row_name_rejected(self):
        dlx = DancingLinks(2)
        dlx.add_row("a", [0])
        with pytest.raises(SolverError):
            dlx.add_row("a", [1])

    def test_empty_row_rejected(self):
        with pytest.raises(SolverError):
            DancingLinks(2).add_row("empty", [])

    def test_out_of_range_column_rejected(self):
        with pytest.raises(SolverError):
            DancingLinks(2).add_row("bad", [5])

    def test_negative_universe_rejected(self):
        with pytest.raises(SolverError):
            DancingLinks(-1)

    def test_count_limit(self):
        dlx = DancingLinks(1)
        dlx.add_row("a", [0])
        dlx.add_row("b", [0])
        assert dlx.count_solutions(limit=1) == 1


class TestExactCoverMasks:
    def test_simple_cover(self):
        result = exact_cover_masks(
            0b1111, {"lo": 0b0011, "hi": 0b1100, "mid": 0b0110}
        )
        assert result is not None
        assert sorted(result) == ["hi", "lo"]

    def test_zero_universe(self):
        assert exact_cover_masks(0, {"a": 0b1}) == []

    def test_no_cover(self):
        assert exact_cover_masks(0b111, {"a": 0b001, "b": 0b011}) is None

    def test_candidates_outside_universe_skipped(self):
        result = exact_cover_masks(0b011, {"fits": 0b011, "outside": 0b100})
        assert result == ["fits"]

    def test_no_usable_candidates(self):
        assert exact_cover_masks(0b11, {"outside": 0b100}) is None

    def test_sparse_universe(self):
        # universe with gaps: bits 0, 2, 5
        universe = 0b100101
        result = exact_cover_masks(
            universe, {"a": 0b000101, "b": 0b100000}
        )
        assert sorted(result) == ["a", "b"]
