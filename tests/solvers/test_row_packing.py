"""Unit tests for the row packing heuristic (Algorithm 2)."""

import pytest

from repro.core.binary_matrix import BinaryMatrix
from repro.core.bounds import trivial_upper_bound
from repro.core.exceptions import SolverError
from repro.core.paper_matrices import FIGURE_3_GOOD_ORDER, figure_3
from repro.solvers.row_packing import (
    PackingOptions,
    PackingTrace,
    pack_rows_once,
    row_packing,
)


class TestPackRowsOnce:
    def test_identity_order(self):
        m = figure_3()
        partition = pack_rows_once(m, range(5))
        partition.validate(m)
        assert partition.depth == 5

    def test_figure_3b_order(self):
        m = figure_3()
        partition = pack_rows_once(m, list(FIGURE_3_GOOD_ORDER))
        partition.validate(m)
        assert partition.depth == 4

    def test_duplicate_rows_grow_vertically(self):
        m = BinaryMatrix.from_strings(["110", "110", "110"])
        partition = pack_rows_once(m, range(3))
        assert partition.depth == 1

    def test_row_decomposition(self):
        # third row = row0 + row1 disjointly
        m = BinaryMatrix.from_strings(["1100", "0011", "1111"])
        partition = pack_rows_once(m, range(3))
        partition.validate(m)
        assert partition.depth == 2

    def test_basis_update_splits_rectangles(self):
        # big row first, then a sub-row: update shrinks the big rectangle
        m = BinaryMatrix.from_strings(["1111", "1100", "0011"])
        partition = pack_rows_once(m, range(3))
        partition.validate(m)
        assert partition.depth == 2

    def test_without_basis_update_worse_on_split_rows(self):
        m = BinaryMatrix.from_strings(["1111", "1100", "0011"])
        partition = pack_rows_once(m, range(3), basis_update=False)
        partition.validate(m)
        assert partition.depth == 3

    def test_zero_rows_skipped(self):
        m = BinaryMatrix.from_strings(["00", "11"])
        partition = pack_rows_once(m, range(2))
        partition.validate(m)
        assert partition.depth == 1

    def test_bad_order_rejected(self):
        with pytest.raises(SolverError):
            pack_rows_once(figure_3(), [0, 0, 1, 2, 3])

    def test_trace_records_events(self):
        trace = PackingTrace()
        m = figure_3()
        pack_rows_once(m, list(FIGURE_3_GOOD_ORDER), trace=trace)
        kinds = [kind for kind, _ in trace.events]
        assert "new_rectangle" in kinds
        assert "shrink" in kinds  # figure 3b relies on the basis update
        assert "grow" in kinds
        rendered = trace.render(m)
        assert "new rectangle" in rendered


class TestRowPacking:
    def test_always_valid(self, rng):
        for _ in range(30):
            rows, cols = rng.randint(1, 7), rng.randint(1, 7)
            m = BinaryMatrix(
                [rng.getrandbits(cols) for _ in range(rows)], cols
            )
            partition = row_packing(
                m, options=PackingOptions(trials=3, seed=rng.randint(0, 999))
            )
            partition.validate(m)

    def test_never_worse_than_trivial(self, rng):
        for _ in range(30):
            rows, cols = rng.randint(1, 7), rng.randint(1, 7)
            m = BinaryMatrix(
                [rng.getrandbits(cols) for _ in range(rows)], cols
            )
            partition = row_packing(
                m, options=PackingOptions(trials=1, seed=rng.randint(0, 999))
            )
            assert partition.depth <= trivial_upper_bound(m)

    def test_more_trials_never_hurt(self):
        m = figure_3()
        few = row_packing(m, options=PackingOptions(trials=1, seed=7))
        many = row_packing(m, options=PackingOptions(trials=50, seed=7))
        assert many.depth <= few.depth

    def test_figure_3_reaches_4_with_enough_trials(self):
        m = figure_3()
        partition = row_packing(m, options=PackingOptions(trials=64, seed=0))
        assert partition.depth == 4

    def test_orderings(self):
        m = figure_3()
        for ordering in ("given", "sparse_first", "shuffle"):
            partition = row_packing(
                m,
                options=PackingOptions(trials=2, seed=1, ordering=ordering),
            )
            partition.validate(m)

    def test_transpose_can_win(self):
        # 2 distinct columns, 4 distinct rows: transpose side packs better
        m = BinaryMatrix.from_strings(["10", "01", "11", "10"])
        partition = row_packing(m, options=PackingOptions(trials=4, seed=0))
        partition.validate(m)
        assert partition.depth <= 3

    def test_no_transpose_option(self):
        m = figure_3()
        partition = row_packing(
            m,
            options=PackingOptions(trials=2, seed=0, use_transpose=False),
        )
        partition.validate(m)

    def test_kwargs_form(self):
        partition = row_packing(figure_3(), trials=2, seed=3)
        partition.validate(figure_3())

    def test_options_and_kwargs_conflict(self):
        with pytest.raises(SolverError):
            row_packing(
                figure_3(), options=PackingOptions(trials=1), trials=2
            )

    def test_invalid_options(self):
        with pytest.raises(SolverError):
            PackingOptions(trials=0)
        with pytest.raises(SolverError):
            PackingOptions(ordering="bogus")

    def test_deterministic_given_seed(self):
        m = figure_3()
        a = row_packing(m, options=PackingOptions(trials=5, seed=42))
        b = row_packing(m, options=PackingOptions(trials=5, seed=42))
        assert a.depth == b.depth
