"""Unit tests for partition post-optimization (merge pass)."""

from repro.core.binary_matrix import BinaryMatrix
from repro.core.partition import Partition
from repro.core.rectangle import Rectangle
from repro.solvers.postopt import improve_partition, merge_rectangles


class TestMergeRectangles:
    def test_same_rows_merge(self):
        rects = [
            Rectangle.from_sets([0, 1], [0]),
            Rectangle.from_sets([0, 1], [2]),
        ]
        merged = merge_rectangles(Partition(rects, (2, 3)))
        assert merged.depth == 1
        assert merged[0] == Rectangle.from_sets([0, 1], [0, 2])

    def test_same_cols_merge(self):
        rects = [
            Rectangle.from_sets([0], [1, 2]),
            Rectangle.from_sets([2], [1, 2]),
        ]
        merged = merge_rectangles(Partition(rects, (3, 3)))
        assert merged.depth == 1

    def test_cascading_merges(self):
        """Row-merge creates a column-merge opportunity: fixed point."""
        rects = [
            Rectangle.from_sets([0], [0]),
            Rectangle.from_sets([0], [1]),  # merges with first: rows {0}
            Rectangle.from_sets([1], [0, 1]),  # then merges by columns
        ]
        merged = merge_rectangles(Partition(rects, (2, 2)))
        assert merged.depth == 1
        assert merged[0] == Rectangle.from_sets([0, 1], [0, 1])

    def test_no_merge_when_incompatible(self):
        rects = [
            Rectangle.from_sets([0], [0]),
            Rectangle.from_sets([1], [1]),
        ]
        merged = merge_rectangles(Partition(rects, (2, 2)))
        assert merged.depth == 2

    def test_empty_partition(self):
        assert merge_rectangles(Partition([], (2, 2))).depth == 0

    def test_merge_preserves_covered_cells(self, rng):
        from repro.solvers.row_packing import PackingOptions, row_packing

        for _ in range(20):
            rows, cols = rng.randint(1, 6), rng.randint(1, 6)
            m = BinaryMatrix(
                [rng.getrandbits(cols) for _ in range(rows)], cols
            )
            partition = row_packing(
                m, options=PackingOptions(trials=1, seed=0)
            )
            merged = merge_rectangles(partition)
            merged.validate(m)
            assert merged.depth <= partition.depth


class TestImprovePartition:
    def test_returns_input_when_no_merge(self):
        m = BinaryMatrix.identity(2)
        partition = Partition(
            [Rectangle.single(0, 0), Rectangle.single(1, 1)], (2, 2)
        )
        assert improve_partition(partition, m) is partition

    def test_improves_and_validates(self):
        m = BinaryMatrix.from_strings(["101"])
        partition = Partition(
            [Rectangle.single(0, 0), Rectangle.single(0, 2)], (1, 3)
        )
        improved = improve_partition(partition, m)
        assert improved.depth == 1
        improved.validate(m)
