"""SAP with the optional lower-bound strengtheners (fooling / LP)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen.random_matrices import random_matrix
from repro.core.paper_matrices import equation_2, figure_1b
from repro.solvers.sap import SapOptions, sap_solve


class TestLpBoundInSap:
    def test_lp_bound_does_not_change_the_answer(self):
        for matrix in (equation_2(), figure_1b()):
            plain = sap_solve(matrix, options=SapOptions(trials=16, seed=1))
            with_lp = sap_solve(
                matrix,
                options=SapOptions(trials=16, seed=1, use_lp_bound=True),
            )
            assert plain.depth == with_lp.depth
            assert plain.proved_optimal and with_lp.proved_optimal

    def test_lp_bound_recorded_in_lower_bound(self):
        result = sap_solve(
            figure_1b(),
            options=SapOptions(trials=16, seed=1, use_lp_bound=True),
        )
        # Figure 1b: rank 4, fooling 5, LP <= cover = 5.  The recorded
        # lower bound must dominate the plain rank bound.
        assert result.lower_bound >= 4

    def test_all_strengtheners_together(self):
        result = sap_solve(
            figure_1b(),
            options=SapOptions(
                trials=16,
                seed=1,
                use_fooling_bound=True,
                use_lp_bound=True,
            ),
        )
        assert result.proved_optimal
        assert result.depth == 5
        # Fooling number of Figure 1b is 5: the bound meets the optimum,
        # so no oracle query was needed at all.
        assert result.lower_bound == 5
        assert not result.queries

    @given(st.integers(min_value=0, max_value=2000))
    @settings(max_examples=20, deadline=None)
    def test_strengthened_bounds_agree_with_plain(self, seed):
        matrix = random_matrix(5, 5, occupancy=0.5, seed=seed)
        plain = sap_solve(matrix, options=SapOptions(trials=8, seed=seed))
        strengthened = sap_solve(
            matrix,
            options=SapOptions(
                trials=8,
                seed=seed,
                use_fooling_bound=True,
                use_lp_bound=True,
            ),
        )
        assert plain.proved_optimal and strengthened.proved_optimal
        assert plain.depth == strengthened.depth
        assert strengthened.lower_bound >= plain.lower_bound
