"""Tests for SAP's binary-search descent mode."""

import pytest

from repro.benchgen.gap import gap_matrix
from repro.core.binary_matrix import BinaryMatrix
from repro.core.paper_matrices import equation_2, figure_1b
from repro.solvers.sap import SapOptions, SapStatus, sap_solve


class TestBinaryDescent:
    def test_paper_examples(self):
        for matrix, expected in ((equation_2(), 3), (figure_1b(), 5)):
            result = sap_solve(
                matrix,
                options=SapOptions(trials=16, seed=0, descent="binary"),
            )
            assert result.proved_optimal
            assert result.depth == expected

    def test_agrees_with_linear_on_random(self, rng):
        for _ in range(15):
            rows, cols = rng.randint(2, 5), rng.randint(2, 5)
            m = BinaryMatrix(
                [rng.getrandbits(cols) for _ in range(rows)], cols
            )
            linear = sap_solve(
                m, options=SapOptions(trials=4, seed=0, descent="linear")
            )
            binary = sap_solve(
                m, options=SapOptions(trials=4, seed=0, descent="binary")
            )
            assert linear.proved_optimal and binary.proved_optimal
            assert linear.depth == binary.depth

    def test_agrees_on_gap_instances(self):
        for seed in range(4):
            m = gap_matrix(10, 10, 3, seed=seed)
            linear = sap_solve(
                m,
                options=SapOptions(
                    trials=16, seed=0, descent="linear", time_budget=30
                ),
            )
            binary = sap_solve(
                m,
                options=SapOptions(
                    trials=16, seed=0, descent="binary", time_budget=30
                ),
            )
            if linear.proved_optimal and binary.proved_optimal:
                assert linear.depth == binary.depth

    def test_budget_interruption_keeps_valid_partition(self):
        m = gap_matrix(10, 10, 4, seed=3)
        result = sap_solve(
            m,
            options=SapOptions(
                trials=4, seed=0, descent="binary", time_budget=0.0
            ),
        )
        result.partition.validate(m)
        assert result.status in (SapStatus.OPTIMAL, SapStatus.FEASIBLE)

    def test_fewer_queries_when_heuristic_is_weak(self):
        """With a deliberately bad upper bound, bisection takes
        O(log(gap)) queries while linear descent walks the whole gap."""
        m = figure_1b()
        weak = SapOptions(trials=1, seed=99, descent="binary")
        result = sap_solve(m, options=weak)
        assert result.proved_optimal and result.depth == 5
        if result.heuristic_depth - result.lower_bound > 2:
            assert len(result.queries) <= result.heuristic_depth - result.lower_bound

    def test_unknown_descent_rejected(self):
        with pytest.raises(ValueError):
            SapOptions(descent="ternary")
