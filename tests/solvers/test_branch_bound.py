"""Unit tests for the exact branch-and-bound solver."""

import pytest

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import BudgetExceeded
from repro.core.paper_matrices import equation_2, figure_1b, figure_3
from repro.solvers.branch_bound import binary_rank_branch_bound


class TestKnownRanks:
    def test_zero_matrix(self):
        result = binary_rank_branch_bound(BinaryMatrix.zeros(2, 2))
        assert result.binary_rank == 0
        assert result.optimal

    def test_single_cell(self):
        result = binary_rank_branch_bound(BinaryMatrix.from_strings(["1"]))
        assert result.binary_rank == 1

    def test_identity(self):
        result = binary_rank_branch_bound(BinaryMatrix.identity(4))
        assert result.binary_rank == 4

    def test_all_ones(self):
        result = binary_rank_branch_bound(BinaryMatrix.all_ones(3, 4))
        assert result.binary_rank == 1

    def test_equation_2(self):
        assert binary_rank_branch_bound(equation_2()).binary_rank == 3

    def test_figure_3(self):
        assert binary_rank_branch_bound(figure_3()).binary_rank == 4

    def test_figure_1b(self):
        assert binary_rank_branch_bound(figure_1b()).binary_rank == 5

    def test_complement_of_identity(self):
        m = BinaryMatrix.from_strings(["011", "101", "110"])
        assert binary_rank_branch_bound(m).binary_rank == 3


class TestCertificates:
    def test_partition_is_valid(self, rng):
        for _ in range(15):
            rows, cols = rng.randint(1, 5), rng.randint(1, 5)
            m = BinaryMatrix(
                [rng.getrandbits(cols) for _ in range(rows)], cols
            )
            result = binary_rank_branch_bound(m)
            result.partition.validate(m)
            assert result.partition.depth == result.binary_rank

    def test_nodes_counted(self):
        result = binary_rank_branch_bound(equation_2())
        assert result.nodes > 0


class TestBudgets:
    def test_node_budget_exhausted(self):
        m = figure_1b()
        with pytest.raises(BudgetExceeded):
            binary_rank_branch_bound(m, node_budget=1)

    def test_time_budget_zero(self):
        m = figure_1b()
        with pytest.raises(BudgetExceeded):
            binary_rank_branch_bound(m, time_budget=0.0)
