"""Unit tests for the trivial heuristic."""

from repro.core.binary_matrix import BinaryMatrix
from repro.core.bounds import trivial_upper_bound
from repro.core.paper_matrices import figure_1b
from repro.solvers.trivial import trivial_partition


class TestTrivialPartition:
    def test_zero_matrix(self):
        partition = trivial_partition(BinaryMatrix.zeros(3, 3))
        assert partition.depth == 0

    def test_identity(self):
        m = BinaryMatrix.identity(4)
        partition = trivial_partition(m)
        partition.validate(m)
        assert partition.depth == 4

    def test_duplicate_rows_consolidated(self):
        m = BinaryMatrix.from_strings(["101", "101", "101"])
        partition = trivial_partition(m)
        partition.validate(m)
        assert partition.depth == 1

    def test_chooses_column_side_when_narrower(self):
        m = BinaryMatrix.from_strings(["10", "10", "01", "01", "11"])
        partition = trivial_partition(m)
        partition.validate(m)
        assert partition.depth == 2  # 2 distinct columns < 3 distinct rows

    def test_matches_trivial_upper_bound(self, rng):
        for _ in range(25):
            rows, cols = rng.randint(1, 7), rng.randint(1, 7)
            m = BinaryMatrix(
                [rng.getrandbits(cols) for _ in range(rows)], cols
            )
            partition = trivial_partition(m)
            partition.validate(m)
            assert partition.depth == trivial_upper_bound(m)

    def test_figure_1b(self):
        m = figure_1b()
        partition = trivial_partition(m)
        partition.validate(m)
        # 6 distinct rows but only 5 distinct columns (col 0 == col 2),
        # so the trivial heuristic picks the column side.
        assert partition.depth == 5
