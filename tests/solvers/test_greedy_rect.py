"""Unit tests for the greedy maximal-rectangle baseline."""

import pytest

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import SolverError
from repro.core.paper_matrices import figure_1b
from repro.solvers.greedy_rect import greedy_rectangle, greedy_rectangle_once


class TestGreedyOnce:
    def test_always_valid(self, rng):
        for _ in range(30):
            rows, cols = rng.randint(1, 7), rng.randint(1, 7)
            m = BinaryMatrix(
                [rng.getrandbits(cols) for _ in range(rows)], cols
            )
            partition = greedy_rectangle_once(m, seed=rng.randint(0, 999))
            partition.validate(m)

    def test_zero_matrix(self):
        assert greedy_rectangle_once(BinaryMatrix.zeros(3, 3)).depth == 0

    def test_all_ones_single_rectangle(self):
        partition = greedy_rectangle_once(
            BinaryMatrix.all_ones(4, 5), seed=0
        )
        assert partition.depth == 1

    def test_block_diagonal(self):
        m = BinaryMatrix.from_strings(["1100", "1100", "0011", "0011"])
        partition = greedy_rectangle_once(m, seed=0)
        partition.validate(m)
        assert partition.depth == 2


class TestGreedyBestOfTrials:
    def test_valid_and_improves_with_trials(self):
        m = figure_1b()
        one = greedy_rectangle(m, trials=1, seed=5)
        many = greedy_rectangle(m, trials=30, seed=5)
        one.validate(m)
        many.validate(m)
        assert many.depth <= one.depth
        assert many.depth >= 5  # can never beat r_B

    def test_bad_trials_rejected(self):
        with pytest.raises(SolverError):
            greedy_rectangle(BinaryMatrix.identity(2), trials=0)

    def test_registry_spec(self):
        from repro.solvers.registry import make_heuristic

        heuristic = make_heuristic("greedy:4")
        partition = heuristic(figure_1b(), 0)
        partition.validate(figure_1b())

    def test_never_covers_zeros(self, rng):
        for _ in range(15):
            rows, cols = rng.randint(2, 6), rng.randint(2, 6)
            m = BinaryMatrix(
                [rng.getrandbits(cols) for _ in range(rows)], cols
            )
            partition = greedy_rectangle(m, trials=2, seed=1)
            for rect in partition:
                assert rect.within(m)
