"""Unit tests for SAP (Algorithm 1)."""

import pytest

from repro.benchgen.gap import gap_matrix
from repro.core.binary_matrix import BinaryMatrix
from repro.core.paper_matrices import equation_2, figure_1b
from repro.sat.solver import SolveStatus
from repro.solvers.sap import SapOptions, SapStatus, binary_rank, sap_solve


class TestBasics:
    def test_zero_matrix(self):
        result = sap_solve(BinaryMatrix.zeros(3, 3))
        assert result.depth == 0
        assert result.status is SapStatus.OPTIMAL

    def test_equation_2(self):
        result = sap_solve(equation_2(), trials=8, seed=0)
        assert result.proved_optimal
        assert result.depth == 3
        assert result.binary_rank == 3
        result.partition.validate(equation_2())

    def test_figure_1b(self):
        result = sap_solve(figure_1b(), trials=16, seed=0)
        assert result.proved_optimal and result.depth == 5

    def test_lower_bound_recorded(self):
        result = sap_solve(figure_1b(), trials=16, seed=0)
        assert result.lower_bound == 4  # the real rank; r_B is 5

    def test_heuristic_depth_recorded(self):
        result = sap_solve(figure_1b(), trials=16, seed=0)
        assert result.heuristic_depth >= result.depth

    def test_binary_rank_none_when_not_proven(self):
        matrix = gap_matrix(10, 10, 4, seed=5)
        result = sap_solve(matrix, trials=4, seed=0, time_budget=0.0)
        if not result.proved_optimal:
            assert result.binary_rank is None


class TestQueryDescent:
    def test_unsat_proof_recorded(self):
        """Eq. 2: rank 3 == r_B, so packing already matches the bound and
        no query is needed.  Figure 1b needs a real UNSAT proof at 4."""
        result = sap_solve(figure_1b(), trials=16, seed=0)
        assert result.queries, "expected SMT queries for figure 1b"
        assert result.queries[-1].status is SolveStatus.UNSAT
        assert result.queries[-1].bound == 4

    def test_descending_bounds(self):
        result = sap_solve(figure_1b(), trials=1, seed=12)
        bounds = [q.bound for q in result.queries]
        assert bounds == sorted(bounds, reverse=True)

    def test_early_exit_when_heuristic_hits_rank(self):
        m = BinaryMatrix.identity(5)
        result = sap_solve(m, trials=2, seed=0)
        assert result.proved_optimal
        assert not result.queries  # no SMT needed


class TestOptions:
    def test_binary_encoding(self):
        result = sap_solve(
            figure_1b(),
            options=SapOptions(trials=16, seed=0, encoding="binary"),
        )
        assert result.proved_optimal and result.depth == 5

    def test_no_reduce(self):
        result = sap_solve(
            figure_1b(), options=SapOptions(trials=16, seed=0, reduce=False)
        )
        assert result.proved_optimal and result.depth == 5

    def test_non_incremental(self):
        result = sap_solve(
            figure_1b(),
            options=SapOptions(trials=16, seed=0, incremental=False),
        )
        assert result.proved_optimal and result.depth == 5

    def test_fooling_bound_tightens(self):
        result = sap_solve(
            figure_1b(),
            options=SapOptions(trials=16, seed=0, use_fooling_bound=True),
        )
        assert result.lower_bound == 5
        assert result.proved_optimal
        assert not result.queries  # fooling bound closes the gap upfront

    def test_symmetry_modes(self):
        for symmetry in ("none", "restricted", "precedence"):
            result = sap_solve(
                equation_2(),
                options=SapOptions(trials=4, seed=0, symmetry=symmetry),
            )
            assert result.proved_optimal and result.depth == 3

    def test_options_kwargs_conflict(self):
        with pytest.raises(ValueError):
            sap_solve(equation_2(), options=SapOptions(), trials=3)


class TestBudget:
    def test_zero_budget_still_returns_valid_partition(self):
        matrix = gap_matrix(10, 10, 3, seed=3)
        result = sap_solve(matrix, trials=4, seed=0, time_budget=0.0)
        result.partition.validate(matrix)
        assert result.status in (SapStatus.OPTIMAL, SapStatus.FEASIBLE)

    def test_phase_seconds_keys(self):
        result = sap_solve(figure_1b(), trials=8, seed=0)
        assert "packing" in result.phase_seconds
        assert "bounds" in result.phase_seconds
        assert result.packing_seconds >= 0.0
        assert result.smt_seconds >= 0.0


class TestBinaryRankHelper:
    def test_value(self):
        assert binary_rank(equation_2(), trials=8, seed=0) == 3

    def test_raises_on_budget_failure(self):
        matrix = gap_matrix(10, 10, 4, seed=11)
        try:
            rank = binary_rank(matrix, trials=2, seed=0, time_budget=0.0)
        except TimeoutError:
            return
        assert rank >= 1  # solved instantly (rank matched heuristic)


class TestAgainstBranchAndBound:
    def test_agreement_on_small_random(self, rng):
        from repro.solvers.branch_bound import binary_rank_branch_bound

        for _ in range(20):
            rows, cols = rng.randint(1, 5), rng.randint(1, 5)
            m = BinaryMatrix(
                [rng.getrandbits(cols) for _ in range(rows)], cols
            )
            sap = sap_solve(m, trials=8, seed=1)
            assert sap.proved_optimal
            assert sap.depth == binary_rank_branch_bound(m).binary_rank
