"""Unit tests for the Algorithm X row-packing variant."""

from repro.core.binary_matrix import BinaryMatrix
from repro.core.bounds import trivial_upper_bound
from repro.core.paper_matrices import figure_3
from repro.solvers.row_packing import PackingOptions, pack_rows_once
from repro.solvers.row_packing_x import pack_rows_once_x, row_packing_x


class TestPackRowsOnceX:
    def test_exact_cover_beats_greedy_order(self):
        """A row decomposable only by skipping an early basis vector:
        greedy first-fit fragments it, Algorithm X covers it exactly.

        basis after three rows: v0=1110, v1=1100, v2=0011.
        row 1111 greedy: v0 fits -> residue 0001 -> new rectangle.
        exact cover finds v1 + v2.
        """
        m = BinaryMatrix.from_strings(["1110", "1100", "0011", "1111"])
        greedy = pack_rows_once(m, range(4))
        exact = pack_rows_once_x(m, range(4))
        greedy.validate(m)
        exact.validate(m)
        assert exact.depth <= greedy.depth
        assert exact.depth == 3

    def test_matches_plain_packing_when_no_cover_needed(self):
        m = figure_3()
        plain = pack_rows_once(m, range(5))
        with_x = pack_rows_once_x(m, range(5))
        with_x.validate(m)
        assert with_x.depth <= plain.depth

    def test_fallback_to_greedy_with_residue(self):
        m = BinaryMatrix.from_strings(["1100", "0111"])
        partition = pack_rows_once_x(m, range(2))
        partition.validate(m)

    def test_zero_matrix(self):
        m = BinaryMatrix.zeros(2, 2)
        assert pack_rows_once_x(m, range(2)).depth == 0


class TestRowPackingX:
    def test_always_valid(self, rng):
        for _ in range(20):
            rows, cols = rng.randint(1, 6), rng.randint(1, 6)
            m = BinaryMatrix(
                [rng.getrandbits(cols) for _ in range(rows)], cols
            )
            partition = row_packing_x(
                m, options=PackingOptions(trials=3, seed=rng.randint(0, 99))
            )
            partition.validate(m)

    def test_never_worse_than_trivial(self, rng):
        for _ in range(20):
            rows, cols = rng.randint(1, 6), rng.randint(1, 6)
            m = BinaryMatrix(
                [rng.getrandbits(cols) for _ in range(rows)], cols
            )
            partition = row_packing_x(
                m, options=PackingOptions(trials=2, seed=0)
            )
            assert partition.depth <= trivial_upper_bound(m)
