"""Unit tests for the heuristic registry."""

import pytest

from repro.core.exceptions import SolverError
from repro.core.paper_matrices import figure_3
from repro.solvers.registry import TABLE1_HEURISTICS, make_heuristic


class TestMakeHeuristic:
    def test_trivial(self):
        heuristic = make_heuristic("trivial")
        partition = heuristic(figure_3(), None)
        partition.validate(figure_3())

    @pytest.mark.parametrize(
        "spec",
        ["packing:1", "packing:10", "packing_x:2", "packing_noupdate:2",
         "packing_sorted:2"],
    )
    def test_packing_variants(self, spec):
        heuristic = make_heuristic(spec)
        partition = heuristic(figure_3(), 0)
        partition.validate(figure_3())

    def test_unknown_spec(self):
        with pytest.raises(SolverError):
            make_heuristic("magic")

    def test_bad_trial_count(self):
        with pytest.raises(SolverError):
            make_heuristic("packing:many")

    def test_unknown_kind_with_trials(self):
        with pytest.raises(SolverError):
            make_heuristic("sap:3")

    def test_table1_list(self):
        assert TABLE1_HEURISTICS[0] == "trivial"
        for spec in TABLE1_HEURISTICS:
            make_heuristic(spec)

    def test_seed_determinism(self):
        heuristic = make_heuristic("packing:5")
        a = heuristic(figure_3(), 123).depth
        b = heuristic(figure_3(), 123).depth
        assert a == b
