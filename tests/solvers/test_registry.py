"""Unit tests for the heuristic registry."""

import pytest

from repro.core.exceptions import SolverError
from repro.core.paper_matrices import figure_3
from repro.solvers.registry import TABLE1_HEURISTICS, make_heuristic


class TestMakeHeuristic:
    def test_trivial(self):
        heuristic = make_heuristic("trivial")
        partition = heuristic(figure_3(), None)
        partition.validate(figure_3())

    @pytest.mark.parametrize(
        "spec",
        ["packing:1", "packing:10", "packing_x:2", "packing_noupdate:2",
         "packing_sorted:2"],
    )
    def test_packing_variants(self, spec):
        heuristic = make_heuristic(spec)
        partition = heuristic(figure_3(), 0)
        partition.validate(figure_3())

    def test_unknown_spec(self):
        with pytest.raises(SolverError):
            make_heuristic("magic")

    def test_bad_trial_count(self):
        with pytest.raises(SolverError):
            make_heuristic("packing:many")

    def test_unknown_kind_with_trials(self):
        with pytest.raises(SolverError):
            make_heuristic("sap:3")

    @pytest.mark.parametrize(
        "spec",
        [
            "",  # empty name
            "   ",  # whitespace-only name
            "packing:0",  # zero trials
            "packing:-5",  # negative trials
            "packing_x:0",
            "greedy:-1",
            "packing:",  # missing trial count
            "packing:1.5",  # non-integer trial count
            ":5",  # empty kind
            "trivial:5",  # trivial takes no trial count
            "Packing:3",  # kinds are case-sensitive
            "packing:1:2",  # trailing garbage
        ],
    )
    def test_malformed_specs_raise_at_build_time(self, spec):
        """Every malformed spec fails eagerly in make_heuristic, never
        from inside the returned callable."""
        with pytest.raises(SolverError):
            make_heuristic(spec)

    @pytest.mark.parametrize(
        "spec,fragment",
        [
            ("", "empty spec"),
            ("magic", "unknown name"),
            ("sap:3", "unknown kind"),
            ("packing:many", "not an integer"),
            ("packing:0", "must be >= 1"),
        ],
    )
    def test_error_messages_are_uniform(self, spec, fragment):
        with pytest.raises(SolverError) as excinfo:
            make_heuristic(spec)
        message = str(excinfo.value)
        assert message.startswith(f"bad heuristic spec {spec!r}")
        assert fragment in message
        assert "expected 'trivial' or KIND:TRIALS" in message

    def test_known_kinds_all_buildable(self):
        from repro.solvers.registry import KNOWN_KINDS

        for kind in KNOWN_KINDS:
            heuristic = make_heuristic(f"{kind}:2")
            partition = heuristic(figure_3(), 0)
            partition.validate(figure_3())

    def test_table1_list(self):
        assert TABLE1_HEURISTICS[0] == "trivial"
        for spec in TABLE1_HEURISTICS:
            make_heuristic(spec)

    def test_seed_determinism(self):
        heuristic = make_heuristic("packing:5")
        a = heuristic(figure_3(), 123).depth
        b = heuristic(figure_3(), 123).depth
        assert a == b
