"""Unsat-core extraction over assumptions (analyzeFinal) tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import SolverError
from repro.sat import CdclSolver, CnfFormula, SolveStatus, brute_force_model


class TestCoreBasics:
    def test_no_core_without_assumption_unsat(self):
        solver = CdclSolver()
        a = solver.new_var()
        solver.add_clause([a])
        assert solver.solve() is SolveStatus.SAT
        with pytest.raises(SolverError):
            solver.core()

    def test_contradictory_assumptions(self):
        solver = CdclSolver()
        a, b = solver.new_vars(2)
        solver.add_clause([a, b])
        status = solver.solve(assumptions=[a, -a])
        assert status is SolveStatus.UNSAT
        assert solver.unsat_due_to_assumptions
        assert sorted(solver.core(), key=abs) in ([a, -a], [-a, a])
        assert set(map(abs, solver.core())) == {a}

    def test_core_excludes_irrelevant_assumptions(self):
        solver = CdclSolver()
        a, b, c, d = solver.new_vars(4)
        solver.add_clause([-a, b])
        solver.add_clause([-b, c])
        # d is unrelated; assuming [d, a, -c] fails because a -> c.
        status = solver.solve(assumptions=[d, a, -c])
        assert status is SolveStatus.UNSAT
        core = set(solver.core())
        assert core <= {a, -c}
        assert core  # non-empty
        assert d not in core and -d not in core

    def test_formula_implied_failure_gives_singleton(self):
        solver = CdclSolver()
        a = solver.new_var()
        solver.add_clause([-a])
        status = solver.solve(assumptions=[a])
        assert status is SolveStatus.UNSAT
        assert solver.core() == [a]

    def test_core_is_itself_unsat_with_formula(self):
        solver = CdclSolver()
        a, b, c = solver.new_vars(3)
        solver.add_clause([-a, -b, c])
        status = solver.solve(assumptions=[a, b, -c])
        assert status is SolveStatus.UNSAT
        core = solver.core()
        # Re-solving under just the core must still be UNSAT.
        assert solver.solve(assumptions=core) is SolveStatus.UNSAT
        # And the solver recovers for unconstrained solving.
        assert solver.solve() is SolveStatus.SAT


@st.composite
def cnf_with_assumptions(draw):
    num_vars = draw(st.integers(min_value=2, max_value=6))
    num_clauses = draw(st.integers(min_value=1, max_value=12))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=min(3, num_vars)))
        variables = draw(
            st.lists(
                st.integers(min_value=1, max_value=num_vars),
                min_size=width,
                max_size=width,
                unique=True,
            )
        )
        signs = draw(st.lists(st.booleans(), min_size=width, max_size=width))
        clauses.append([v if s else -v for v, s in zip(variables, signs)])
    assumed_vars = draw(
        st.lists(
            st.integers(min_value=1, max_value=num_vars),
            min_size=1,
            max_size=num_vars,
            unique=True,
        )
    )
    assumed_signs = draw(
        st.lists(st.booleans(), min_size=len(assumed_vars), max_size=len(assumed_vars))
    )
    assumptions = [
        v if s else -v for v, s in zip(assumed_vars, assumed_signs)
    ]
    return num_vars, clauses, assumptions


class TestCoreFuzz:
    @given(cnf_with_assumptions())
    @settings(max_examples=150, deadline=None)
    def test_core_soundness(self, instance):
        """Whenever the solver blames the assumptions, the reported core
        must itself be inconsistent with the formula (checked by brute
        force), and must be a subset of the assumptions."""
        num_vars, clauses, assumptions = instance
        solver = CdclSolver()
        solver.new_vars(num_vars)
        ok = True
        for clause in clauses:
            if not solver.add_clause(clause):
                ok = False
                break
        if not ok:
            return  # formula UNSAT outright; no assumption core involved
        status = solver.solve(assumptions=assumptions)
        if status is not SolveStatus.UNSAT or not solver.unsat_due_to_assumptions:
            return
        core = solver.core()
        assert set(core) <= set(assumptions)
        formula = CnfFormula()
        formula.new_vars(num_vars)
        formula.add_clauses(clauses)
        for lit in core:
            formula.add_clause([lit])
        assert brute_force_model(formula) is None
