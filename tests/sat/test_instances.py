"""Canonical CNF instance generator tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import EncodingError
from repro.sat import (
    CdclSolver,
    SolveStatus,
    brute_force_model,
    pigeonhole,
    random_ksat,
    xor_chain,
)


def solve(formula):
    solver = CdclSolver.from_formula(formula)
    return solver.solve()


class TestPigeonhole:
    @pytest.mark.parametrize("holes", [1, 2, 3])
    def test_one_extra_pigeon_unsat(self, holes):
        assert solve(pigeonhole(holes)) is SolveStatus.UNSAT

    @pytest.mark.parametrize("holes", [1, 2, 3, 4])
    def test_equal_pigeons_sat(self, holes):
        assert solve(pigeonhole(holes, pigeons=holes)) is SolveStatus.SAT

    def test_variable_count(self):
        formula = pigeonhole(3, pigeons=4)
        assert formula.num_vars == 12

    def test_invalid_holes(self):
        with pytest.raises(EncodingError):
            pigeonhole(0)


class TestXorChain:
    @pytest.mark.parametrize("length", [2, 5, 16])
    def test_parity_one_unsat(self, length):
        assert solve(xor_chain(length, parity=1)) is SolveStatus.UNSAT

    @pytest.mark.parametrize("length", [2, 5, 16])
    def test_parity_zero_sat(self, length):
        assert solve(xor_chain(length, parity=0)) is SolveStatus.SAT

    def test_validation(self):
        with pytest.raises(EncodingError):
            xor_chain(1)
        with pytest.raises(EncodingError):
            xor_chain(4, parity=2)


class TestRandomKsat:
    def test_deterministic_with_seed(self):
        first = random_ksat(8, 20, seed=5)
        second = random_ksat(8, 20, seed=5)
        assert first.clauses == second.clauses

    def test_clause_shape(self):
        formula = random_ksat(10, 30, k=3, seed=1)
        assert formula.num_vars == 10
        assert formula.num_clauses == 30
        for clause in formula.clauses:
            assert len(clause) == 3
            assert len({abs(lit) for lit in clause}) == 3
            assert all(1 <= abs(lit) <= 10 for lit in clause)

    def test_too_few_vars(self):
        with pytest.raises(EncodingError):
            random_ksat(2, 5, k=3)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_solver_agrees_with_brute_force(self, seed):
        formula = random_ksat(6, 26, k=3, seed=seed)  # near threshold
        expected = brute_force_model(formula)
        status = solve(formula)
        if expected is None:
            assert status is SolveStatus.UNSAT
        else:
            assert status is SolveStatus.SAT
