"""Unit tests for Tseitin gates (semantics checked by enumeration)."""

import itertools

import pytest

from repro.core.exceptions import EncodingError
from repro.sat.brute import brute_force_model
from repro.sat.formula import CnfFormula
from repro.sat.solver import CdclSolver, SolveStatus
from repro.sat.tseitin import (
    encode_less_than_constant,
    gate_and,
    gate_equals,
    gate_iff,
    gate_or,
    gate_xor,
    implies,
)


def assert_gate_semantics(build_gate, truth_function, arity):
    """Check gate output against ``truth_function`` on all inputs."""
    for inputs in itertools.product([False, True], repeat=arity):
        formula = CnfFormula()
        in_vars = formula.new_vars(arity)
        gate = build_gate(formula, in_vars)
        solver = CdclSolver.from_formula(formula)
        assumptions = [
            v if value else -v for v, value in zip(in_vars, inputs)
        ]
        assert solver.solve(assumptions) is SolveStatus.SAT
        assert solver.model_value(gate) == truth_function(inputs)


class TestGates:
    def test_and2(self):
        assert_gate_semantics(
            lambda f, xs: gate_and(f, xs), lambda ins: all(ins), 2
        )

    def test_and3(self):
        assert_gate_semantics(
            lambda f, xs: gate_and(f, xs), lambda ins: all(ins), 3
        )

    def test_or2(self):
        assert_gate_semantics(
            lambda f, xs: gate_or(f, xs), lambda ins: any(ins), 2
        )

    def test_or3(self):
        assert_gate_semantics(
            lambda f, xs: gate_or(f, xs), lambda ins: any(ins), 3
        )

    def test_xor(self):
        assert_gate_semantics(
            lambda f, xs: gate_xor(f, xs[0], xs[1]),
            lambda ins: ins[0] != ins[1],
            2,
        )

    def test_iff(self):
        assert_gate_semantics(
            lambda f, xs: gate_iff(f, xs[0], xs[1]),
            lambda ins: ins[0] == ins[1],
            2,
        )

    def test_equals_width2(self):
        assert_gate_semantics(
            lambda f, xs: gate_equals(f, xs[:2], xs[2:]),
            lambda ins: ins[:2] == ins[2:],
            4,
        )

    def test_empty_inputs_rejected(self):
        with pytest.raises(EncodingError):
            gate_and(CnfFormula(), [])
        with pytest.raises(EncodingError):
            gate_or(CnfFormula(), [])
        with pytest.raises(EncodingError):
            gate_equals(CnfFormula(), [], [])

    def test_equals_width_mismatch(self):
        formula = CnfFormula()
        xs = formula.new_vars(3)
        with pytest.raises(EncodingError):
            gate_equals(formula, xs[:1], xs[1:])


class TestImplies:
    def test_conjunction_implication(self):
        formula = CnfFormula()
        a, b, c = formula.new_vars(3)
        implies(formula, [a, b], c)
        solver = CdclSolver.from_formula(formula)
        assert solver.solve([a, b, -c]) is SolveStatus.UNSAT
        assert solver.solve([a, -b, -c]) is SolveStatus.SAT


class TestLessThanConstant:
    @pytest.mark.parametrize("width,constant", [(3, 1), (3, 4), (3, 5), (3, 7), (4, 11)])
    def test_exact_range(self, width, constant):
        formula = CnfFormula()
        bits = formula.new_vars(width)
        encode_less_than_constant(formula, bits, constant)
        allowed = set()
        solver = CdclSolver.from_formula(formula)
        while solver.solve() is SolveStatus.SAT:
            model = solver.model()
            value = sum(
                (1 << i) for i, v in enumerate(bits) if model[v]
            )
            allowed.add(value)
            solver.add_clause(
                [(-v if model[v] else v) for v in bits]
            )
        assert allowed == set(range(constant))

    def test_constant_above_range_is_noop(self):
        formula = CnfFormula()
        bits = formula.new_vars(2)
        encode_less_than_constant(formula, bits, 4)
        assert formula.num_clauses == 0

    def test_nonpositive_rejected(self):
        formula = CnfFormula()
        bits = formula.new_vars(2)
        with pytest.raises(EncodingError):
            encode_less_than_constant(formula, bits, 0)


class TestBruteForceHelper:
    def test_brute_model_satisfies(self):
        formula = CnfFormula()
        a, b = formula.new_vars(2)
        formula.add_clause([a, b])
        formula.add_clause([-a])
        model = brute_force_model(formula)
        assert model is not None and model[b]
