"""Tests for learned-clause database reduction (exercised via a tiny
reduction threshold)."""

import random

from repro.sat.brute import brute_force_model
from repro.sat.formula import CnfFormula
from repro.sat.solver import CdclSolver, SolveStatus


def pigeonhole(holes: int) -> CnfFormula:
    formula = CnfFormula()
    var = [
        [formula.new_var() for _ in range(holes)]
        for _ in range(holes + 1)
    ]
    for pigeon in var:
        formula.add_clause(pigeon)
    for h in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                formula.add_clause([-var[p1][h], -var[p2][h]])
    return formula


class TestReduceDb:
    def test_reduction_triggered_and_still_unsat(self):
        formula = pigeonhole(6)
        solver = CdclSolver.from_formula(formula)
        solver._max_learned = 50  # force frequent reductions
        assert solver.solve() is SolveStatus.UNSAT
        assert solver.stats.deleted_clauses > 0

    def test_constructor_threshold(self):
        formula = pigeonhole(5)
        solver = CdclSolver(max_learned=30)
        solver.new_vars(formula.num_vars)
        for clause in formula.clauses:
            solver.add_clause(clause)
        assert solver.solve() is SolveStatus.UNSAT
        assert solver.stats.deleted_clauses > 0

    def test_reduction_does_not_affect_answers(self):
        rng = random.Random(17)
        for _ in range(25):
            n = rng.randint(3, 10)
            formula = CnfFormula()
            formula.new_vars(n)
            for _ in range(rng.randint(5, 45)):
                width = rng.randint(1, 3)
                formula.add_clause(
                    [
                        rng.choice([1, -1]) * rng.randint(1, n)
                        for _ in range(width)
                    ]
                )
            expected = brute_force_model(formula) is not None
            solver = CdclSolver.from_formula(formula, max_learned=5)
            assert (solver.solve() is SolveStatus.SAT) == expected

    def test_incremental_after_reduction(self):
        formula = pigeonhole(5)
        solver = CdclSolver.from_formula(formula, max_learned=20)
        assert solver.solve() is SolveStatus.UNSAT
        # Solver with a permanently-false flag stays consistent.
        assert solver.solve() is SolveStatus.UNSAT
