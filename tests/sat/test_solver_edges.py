"""Edge-case regressions for the CDCL solver."""

from repro.sat.formula import CnfFormula
from repro.sat.solver import CdclSolver, SolveStatus


class TestClauseEdgeCases:
    def test_long_clause_watch_migration(self):
        """A wide clause whose watches must walk through many false
        literals before finding support."""
        solver = CdclSolver()
        xs = solver.new_vars(12)
        solver.add_clause(xs)  # at least one true
        for x in xs[:-1]:
            solver.add_clause([-x])
        assert solver.solve() is SolveStatus.SAT
        assert solver.model_value(xs[-1])

    def test_binary_clause_chain(self):
        """Implication chain x1 -> x2 -> ... -> xn with x1 forced."""
        solver = CdclSolver()
        xs = solver.new_vars(30)
        solver.add_clause([xs[0]])
        for a, b in zip(xs, xs[1:]):
            solver.add_clause([-a, b])
        assert solver.solve() is SolveStatus.SAT
        assert all(solver.model_value(x) for x in xs)

    def test_conflicting_chain_unsat(self):
        solver = CdclSolver()
        xs = solver.new_vars(10)
        solver.add_clause([xs[0]])
        for a, b in zip(xs, xs[1:]):
            solver.add_clause([-a, b])
        solver.add_clause([-xs[-1]])
        assert solver.solve() is SolveStatus.UNSAT

    def test_clause_with_all_false_literals_at_level_zero(self):
        solver = CdclSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([-a])
        solver.add_clause([-b])
        # adding (a | b) now contradicts the level-0 assignment
        assert not solver.add_clause([a, b])
        assert solver.solve() is SolveStatus.UNSAT

    def test_variables_never_constrained(self):
        solver = CdclSolver()
        solver.new_vars(5)
        assert solver.solve() is SolveStatus.SAT
        model = solver.model()
        assert len(model) == 5

    def test_repeated_solve_stability(self):
        formula = CnfFormula()
        xs = formula.new_vars(6)
        formula.add_clause([xs[0], xs[1]])
        formula.add_clause([-xs[0], xs[2]])
        solver = CdclSolver.from_formula(formula)
        results = {solver.solve() for _ in range(5)}
        assert results == {SolveStatus.SAT}

    def test_model_after_unsat_then_relax(self):
        """UNSAT under assumptions must not poison later models."""
        solver = CdclSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        assert solver.solve([-a, -b]) is SolveStatus.UNSAT
        assert solver.solve([-a]) is SolveStatus.SAT
        assert solver.model_value(b)

    def test_duplicate_clause_additions(self):
        solver = CdclSolver()
        a, b = solver.new_var(), solver.new_var()
        for _ in range(10):
            solver.add_clause([a, b])
            solver.add_clause([-a, -b])
        assert solver.solve() is SolveStatus.SAT
        assert solver.model_value(a) != solver.model_value(b)
