"""Unit and property tests for CNF preprocessing."""

import random

from repro.sat.brute import brute_force_model
from repro.sat.formula import CnfFormula
from repro.sat.preprocess import preprocess
from repro.sat.solver import CdclSolver, SolveStatus


def formula_of(num_vars, clauses):
    formula = CnfFormula()
    formula.new_vars(num_vars)
    for clause in clauses:
        formula.add_clause(clause)
    return formula


class TestSubsumption:
    def test_superset_removed(self):
        formula = formula_of(3, [[1], [1, 2], [1, 2, 3]])
        reduced, stats = preprocess(formula)
        assert reduced.clauses == [[1]]
        assert stats["subsumed"] == 2

    def test_duplicates_removed(self):
        formula = formula_of(2, [[1, 2], [2, 1]])
        reduced, _ = preprocess(formula)
        assert len(reduced.clauses) == 1

    def test_tautologies_removed(self):
        formula = formula_of(2, [[1, -1], [2]])
        reduced, _ = preprocess(formula)
        assert reduced.clauses == [[2]]

    def test_independent_clauses_kept(self):
        formula = formula_of(4, [[1, 2], [3, 4]])
        reduced, stats = preprocess(formula)
        assert len(reduced.clauses) == 2
        assert stats["subsumed"] == 0


class TestStrengthening:
    def test_self_subsuming_resolution(self):
        # (1 2) and (1 -2 3): resolving on 2 strengthens to (1 3)
        formula = formula_of(3, [[1, 2], [1, -2, 3]])
        reduced, stats = preprocess(formula)
        clause_sets = {frozenset(c) for c in reduced.clauses}
        assert frozenset([1, 3]) in clause_sets
        assert stats["strengthened"] >= 1

    def test_unit_strengthening_cascades(self):
        # (1) strengthens (-1 2) to (2), which strengthens (-2 3) to (3)
        formula = formula_of(3, [[1], [-1, 2], [-2, 3]])
        reduced, _ = preprocess(formula)
        clause_sets = {frozenset(c) for c in reduced.clauses}
        assert frozenset([2]) in clause_sets
        assert frozenset([3]) in clause_sets

    def test_strengthen_disabled(self):
        formula = formula_of(3, [[1, 2], [1, -2, 3]])
        reduced, stats = preprocess(formula, strengthen=False)
        assert stats["strengthened"] == 0
        assert len(reduced.clauses) == 2


class TestEquivalence:
    def test_random_formulas_equivalent(self):
        rng = random.Random(5)
        for _ in range(60):
            num_vars = rng.randint(1, 8)
            clauses = []
            for _ in range(rng.randint(0, 20)):
                width = rng.randint(1, 3)
                clauses.append(
                    [
                        rng.choice([1, -1]) * rng.randint(1, num_vars)
                        for _ in range(width)
                    ]
                )
            formula = formula_of(num_vars, clauses)
            reduced, _ = preprocess(formula)
            # Equivalence: identical model sets over the original vars.
            original_models = _model_set(formula)
            reduced_models = _model_set(reduced)
            assert original_models == reduced_models

    def test_solver_agrees_after_preprocessing(self):
        rng = random.Random(11)
        for _ in range(30):
            num_vars = rng.randint(2, 9)
            clauses = [
                [
                    rng.choice([1, -1]) * rng.randint(1, num_vars)
                    for _ in range(rng.randint(1, 4))
                ]
                for _ in range(rng.randint(1, 25))
            ]
            formula = formula_of(num_vars, clauses)
            reduced, _ = preprocess(formula)
            expected = brute_force_model(formula) is not None
            solver = CdclSolver.from_formula(reduced)
            assert (solver.solve() is SolveStatus.SAT) == expected


def _model_set(formula):
    models = set()
    solver = CdclSolver.from_formula(formula)
    while solver.solve() is SolveStatus.SAT:
        model = solver.model()
        bits = tuple(
            model[v] for v in range(1, formula.num_vars + 1)
        )
        models.add(bits)
        solver.add_clause(
            [(-v if model[v] else v) for v in range(1, formula.num_vars + 1)]
        )
    return models
