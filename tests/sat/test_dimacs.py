"""Unit tests for DIMACS serialization."""

import io

import pytest

from repro.core.exceptions import SolverError
from repro.sat.dimacs import parse_dimacs, to_dimacs, write_dimacs
from repro.sat.formula import CnfFormula


def sample_formula() -> CnfFormula:
    formula = CnfFormula()
    a, b, c = formula.new_vars(3)
    formula.add_clause([a, -b])
    formula.add_clause([b, c])
    return formula


class TestToDimacs:
    def test_header(self):
        text = to_dimacs(sample_formula())
        assert "p cnf 3 2" in text

    def test_clauses_terminated(self):
        text = to_dimacs(sample_formula())
        assert "1 -2 0" in text
        assert "2 3 0" in text

    def test_comments(self):
        text = to_dimacs(sample_formula(), comments=["hello"])
        assert text.startswith("c hello")

    def test_write_stream(self):
        stream = io.StringIO()
        write_dimacs(sample_formula(), stream)
        assert "p cnf" in stream.getvalue()


class TestParseDimacs:
    def test_round_trip(self):
        original = sample_formula()
        parsed = parse_dimacs(to_dimacs(original))
        assert parsed.num_vars == original.num_vars
        assert parsed.clauses == original.clauses

    def test_multiline_clause(self):
        text = "p cnf 3 1\n1 2\n3 0\n"
        parsed = parse_dimacs(text)
        assert parsed.clauses == [[1, 2, 3]]

    def test_comments_skipped(self):
        text = "c hi\np cnf 1 1\nc mid\n1 0\n"
        assert parse_dimacs(text).clauses == [[1]]

    def test_missing_problem_line(self):
        with pytest.raises(SolverError):
            parse_dimacs("1 2 0\n")

    def test_unterminated_clause(self):
        with pytest.raises(SolverError):
            parse_dimacs("p cnf 2 1\n1 2\n")

    def test_clause_count_mismatch(self):
        with pytest.raises(SolverError):
            parse_dimacs("p cnf 2 2\n1 0\n")

    def test_malformed_problem_line(self):
        with pytest.raises(SolverError):
            parse_dimacs("p dnf 2 1\n1 0\n")
