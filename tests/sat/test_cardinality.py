"""Unit tests for cardinality encodings (exactly-one, at-most-k)."""

import itertools

import pytest

from repro.core.exceptions import EncodingError
from repro.sat.brute import brute_force_count
from repro.sat.cardinality import (
    at_least_one,
    at_most_k_sequential,
    at_most_one,
    at_most_one_commander,
    at_most_one_pairwise,
    at_most_one_sequential,
    exactly_one,
)
from repro.sat.formula import CnfFormula
from repro.sat.solver import CdclSolver, SolveStatus


def count_models_projected(formula: CnfFormula, num_original: int) -> int:
    """Count satisfying assignments projected onto the first
    ``num_original`` variables (aux vars may allow multiple extensions —
    a correct AMO encoding admits >= 1 extension per legal projection)."""
    solver = CdclSolver.from_formula(formula)
    projections = set()
    while solver.solve() is SolveStatus.SAT:
        model = solver.model()
        projection = tuple(model[v] for v in range(1, num_original + 1))
        projections.add(projection)
        solver.add_clause(
            [
                (-v if model[v] else v)
                for v in range(1, num_original + 1)
            ]
        )
    return len(projections)


@pytest.mark.parametrize(
    "encoder",
    [at_most_one_pairwise, at_most_one_sequential, at_most_one_commander],
    ids=["pairwise", "sequential", "commander"],
)
@pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
def test_at_most_one_model_count(encoder, n):
    formula = CnfFormula()
    lits = formula.new_vars(n)
    encoder(formula, lits)
    # Legal projections: all-false plus n one-hot assignments.
    assert count_models_projected(formula, n) == n + 1


@pytest.mark.parametrize("encoding", ["pairwise", "sequential", "commander", "auto"])
@pytest.mark.parametrize("n", [1, 2, 4, 7])
def test_exactly_one_model_count(encoding, n):
    formula = CnfFormula()
    lits = formula.new_vars(n)
    exactly_one(formula, lits, encoding=encoding)
    assert count_models_projected(formula, n) == n


def test_at_least_one_empty_rejected():
    with pytest.raises(EncodingError):
        at_least_one(CnfFormula(), [])


def test_at_most_one_unknown_encoding():
    formula = CnfFormula()
    lits = formula.new_vars(3)
    with pytest.raises(EncodingError):
        at_most_one(formula, lits, encoding="nope")


def test_commander_bad_group_size():
    formula = CnfFormula()
    lits = formula.new_vars(3)
    with pytest.raises(EncodingError):
        at_most_one_commander(formula, lits, group_size=1)


def test_at_most_one_with_negated_literals():
    formula = CnfFormula()
    a, b = formula.new_vars(2)
    at_most_one(formula, [-a, -b], encoding="pairwise")
    # at most one of {~a, ~b} true -> at least one of {a, b} true
    solver = CdclSolver.from_formula(formula)
    assert solver.solve([-a, -b]) is SolveStatus.UNSAT
    assert solver.solve([a, -b]) is SolveStatus.SAT


@pytest.mark.parametrize("n,k", [(4, 2), (5, 1), (5, 3), (3, 0), (4, 4)])
def test_at_most_k_sequential(n, k):
    formula = CnfFormula()
    lits = formula.new_vars(n)
    at_most_k_sequential(formula, lits, k)
    projections = count_models_projected(formula, n)
    expected = sum(
        1
        for bits in itertools.product([0, 1], repeat=n)
        if sum(bits) <= k
    )
    assert projections == expected


def test_at_most_k_negative_rejected():
    formula = CnfFormula()
    lits = formula.new_vars(2)
    with pytest.raises(EncodingError):
        at_most_k_sequential(formula, lits, -1)


def test_brute_force_count_agrees_for_pairwise():
    # pairwise adds no aux vars, so raw model count is exact
    formula = CnfFormula()
    lits = formula.new_vars(4)
    at_most_one_pairwise(formula, lits)
    assert brute_force_count(formula) == 5
