"""Unit and fuzz tests for the CDCL SAT solver."""

import random

import pytest

from repro.core.exceptions import SolverError
from repro.sat.brute import brute_force_model
from repro.sat.formula import CnfFormula
from repro.sat.solver import CdclSolver, SolveStatus, luby


class TestLuby:
    def test_prefix(self):
        assert [luby(1, i) for i in range(9)] == [1, 1, 2, 1, 1, 2, 4, 1, 1]

    def test_base_scaling(self):
        assert luby(100, 2) == 200


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert CdclSolver().solve() is SolveStatus.SAT

    def test_unit_propagation(self):
        s = CdclSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a])
        s.add_clause([-a, b])
        assert s.solve() is SolveStatus.SAT
        assert s.model_value(a) and s.model_value(b)

    def test_simple_unsat(self):
        s = CdclSolver()
        a = s.new_var()
        s.add_clause([a])
        assert not s.add_clause([-a])
        assert s.solve() is SolveStatus.UNSAT

    def test_empty_clause_is_unsat(self):
        s = CdclSolver()
        s.new_var()
        assert not s.add_clause([])
        assert s.solve() is SolveStatus.UNSAT

    def test_tautological_clause_ignored(self):
        s = CdclSolver()
        a = s.new_var()
        assert s.add_clause([a, -a])
        assert s.solve() is SolveStatus.SAT

    def test_duplicate_literals_collapse(self):
        s = CdclSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, a, b])
        s.add_clause([-a])
        assert s.solve() is SolveStatus.SAT
        assert s.model_value(b)

    def test_invalid_literal_rejected(self):
        s = CdclSolver()
        with pytest.raises(SolverError):
            s.add_clause([0])
        with pytest.raises(SolverError):
            s.add_clause([5])

    def test_model_unavailable_before_sat(self):
        s = CdclSolver()
        s.new_var()
        with pytest.raises(SolverError):
            s.model_value(1)

    def test_model_unknown_variable(self):
        s = CdclSolver()
        a = s.new_var()
        s.add_clause([a])
        s.solve()
        with pytest.raises(SolverError):
            s.model_value(7)

    def test_model_dict(self):
        s = CdclSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a])
        s.add_clause([-b])
        assert s.solve() is SolveStatus.SAT
        assert s.model() == {a: True, b: False}


class TestUnsatInstances:
    def test_xor_chain_unsat(self):
        """x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1 is unsatisfiable."""
        s = CdclSolver()
        x = [s.new_var() for _ in range(3)]
        for a, b in [(0, 1), (1, 2), (0, 2)]:
            s.add_clause([x[a], x[b]])
            s.add_clause([-x[a], -x[b]])
        assert s.solve() is SolveStatus.UNSAT

    def test_pigeonhole_4_into_3(self):
        s = CdclSolver()
        holes = 3
        var = [[s.new_var() for _ in range(holes)] for _ in range(holes + 1)]
        for pigeon in var:
            s.add_clause(pigeon)
        for h in range(holes):
            for p1 in range(holes + 1):
                for p2 in range(p1 + 1, holes + 1):
                    s.add_clause([-var[p1][h], -var[p2][h]])
        assert s.solve() is SolveStatus.UNSAT
        assert s.stats.conflicts > 0


class TestBudgets:
    def test_conflict_budget_returns_unknown(self):
        s = CdclSolver()
        holes = 7
        var = [[s.new_var() for _ in range(holes)] for _ in range(holes + 1)]
        for pigeon in var:
            s.add_clause(pigeon)
        for h in range(holes):
            for p1 in range(holes + 1):
                for p2 in range(p1 + 1, holes + 1):
                    s.add_clause([-var[p1][h], -var[p2][h]])
        assert s.solve(conflict_budget=5) is SolveStatus.UNKNOWN
        # Solver stays usable and eventually proves UNSAT.
        assert s.solve() is SolveStatus.UNSAT

    def test_time_budget_zero_returns_quickly(self):
        s = CdclSolver()
        holes = 8
        var = [[s.new_var() for _ in range(holes)] for _ in range(holes + 1)]
        for pigeon in var:
            s.add_clause(pigeon)
        for h in range(holes):
            for p1 in range(holes + 1):
                for p2 in range(p1 + 1, holes + 1):
                    s.add_clause([-var[p1][h], -var[p2][h]])
        status = s.solve(time_budget=0.0)
        assert status in (SolveStatus.UNKNOWN, SolveStatus.UNSAT)


class TestAssumptions:
    def test_assumption_forces_value(self):
        s = CdclSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve([-a]) is SolveStatus.SAT
        assert s.model_value(b)

    def test_conflicting_assumptions(self):
        s = CdclSolver()
        a = s.new_var()
        assert s.solve([a, -a]) is SolveStatus.UNSAT
        assert s.unsat_due_to_assumptions
        # No permanent damage:
        assert s.solve() is SolveStatus.SAT

    def test_assumption_against_unit(self):
        s = CdclSolver()
        a = s.new_var()
        s.add_clause([a])
        assert s.solve([-a]) is SolveStatus.UNSAT
        assert s.solve() is SolveStatus.SAT

    def test_incremental_growth(self):
        s = CdclSolver()
        a, b, c = s.new_var(), s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve() is SolveStatus.SAT
        s.add_clause([-a])
        s.add_clause([-b, c])
        assert s.solve() is SolveStatus.SAT
        assert s.model_value(b) and s.model_value(c)
        s.add_clause([-c])
        assert s.solve() is SolveStatus.UNSAT

    def test_clause_addition_mid_search_rejected(self):
        # White-box: simulate being mid-search by pushing a level.
        s = CdclSolver()
        s.new_var()
        s._new_decision_level()
        with pytest.raises(SolverError):
            s.add_clause([1])
        s._backtrack(0)


class TestFuzzAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_formulas(self, seed):
        rng = random.Random(seed)
        for _ in range(40):
            n = rng.randint(1, 10)
            clause_count = rng.randint(1, 38)
            formula = CnfFormula()
            formula.new_vars(n)
            for _ in range(clause_count):
                width = rng.randint(1, 4)
                clause = [
                    rng.choice([1, -1]) * rng.randint(1, n)
                    for _ in range(width)
                ]
                formula.add_clause(clause)
            expected = brute_force_model(formula) is not None
            solver = CdclSolver.from_formula(formula)
            status = solver.solve()
            assert (status is SolveStatus.SAT) == expected
            if status is SolveStatus.SAT:
                model = solver.model()
                for clause in formula.clauses:
                    assert any(
                        model[abs(lit)] == (lit > 0) for lit in clause
                    )

    def test_incremental_fuzz(self):
        rng = random.Random(99)
        for _ in range(25):
            n = rng.randint(2, 8)
            solver = CdclSolver()
            solver.new_vars(n)
            reference = CnfFormula()
            reference.new_vars(n)
            for _phase in range(3):
                for _ in range(rng.randint(1, 10)):
                    width = rng.randint(1, 3)
                    clause = [
                        rng.choice([1, -1]) * rng.randint(1, n)
                        for _ in range(width)
                    ]
                    reference.add_clause(clause)
                    solver.add_clause(clause)
                expected = brute_force_model(reference) is not None
                assert (solver.solve() is SolveStatus.SAT) == expected
                if not expected:
                    break


class TestStats:
    def test_counters_move(self):
        s = CdclSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.solve()
        assert s.stats.solve_calls == 1
        assert s.stats.decisions >= 1
        stats = s.stats.as_dict()
        assert set(stats) >= {"conflicts", "decisions", "propagations"}
