"""Unit tests for the brute-force reference solver."""

import pytest

from repro.core.exceptions import SolverError
from repro.sat.brute import brute_force_count, brute_force_model
from repro.sat.formula import CnfFormula


def formula_of(num_vars, clauses):
    formula = CnfFormula()
    formula.new_vars(num_vars)
    for clause in clauses:
        formula.add_clause(clause)
    return formula


class TestBruteForceModel:
    def test_sat(self):
        model = brute_force_model(formula_of(2, [[1, 2], [-1]]))
        assert model == {1: False, 2: True}

    def test_unsat(self):
        assert brute_force_model(formula_of(1, [[1], [-1]])) is None

    def test_empty_formula(self):
        model = brute_force_model(formula_of(0, []))
        assert model == {}

    def test_too_many_vars_rejected(self):
        with pytest.raises(SolverError):
            brute_force_model(formula_of(26, []))


class TestBruteForceCount:
    def test_free_variables(self):
        assert brute_force_count(formula_of(3, [])) == 8

    def test_xor_count(self):
        formula = formula_of(2, [[1, 2], [-1, -2]])
        assert brute_force_count(formula) == 2

    def test_unsat_count(self):
        assert brute_force_count(formula_of(1, [[1], [-1]])) == 0

    def test_too_many_vars_rejected(self):
        with pytest.raises(SolverError):
            brute_force_count(formula_of(26, []))


class TestCnfFormula:
    def test_literal_zero_rejected(self):
        formula = CnfFormula()
        formula.new_var()
        with pytest.raises(Exception):
            formula.add_clause([0])

    def test_unknown_variable_rejected(self):
        formula = CnfFormula()
        with pytest.raises(Exception):
            formula.add_clause([1])

    def test_repr(self):
        formula = formula_of(2, [[1, 2]])
        assert "vars=2" in repr(formula)
