"""Proof logging (DRUP-style) and RUP verification tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ProofError
from repro.sat import (
    CdclSolver,
    ProofLog,
    RupChecker,
    SolveStatus,
    brute_force_model,
    check_refutation,
    is_valid_refutation,
    pigeonhole,
    proof_stats,
    random_ksat,
    xor_chain,
)


def solve_with_proof(formula):
    log = ProofLog()
    solver = CdclSolver(proof=log)
    solver.new_vars(formula.num_vars)
    for clause in formula.clauses:
        solver.add_clause(clause)
    status = solver.solve()
    return status, log


class TestProofLog:
    def test_events_recorded_in_order(self):
        log = ProofLog()
        log.axiom([1, 2])
        log.learn([1])
        log.empty()
        kinds = [event.kind for event in log.events]
        assert kinds == ["axiom", "learn", "empty"]
        assert log.refuted

    def test_empty_is_idempotent(self):
        log = ProofLog()
        log.empty()
        log.empty()
        assert sum(1 for e in log.events if e.kind == "empty") == 1

    def test_to_drup_omits_axioms(self):
        log = ProofLog()
        log.axiom([1, 2])
        log.learn([-1])
        log.delete([-1])
        log.empty()
        text = log.to_drup()
        assert "-1 0" in text
        assert "d -1 0" in text
        assert text.strip().endswith("0")
        assert "1 2 0" not in text.splitlines()[0] or text.startswith("-1")

    def test_accessors(self):
        log = ProofLog()
        log.axiom([1])
        log.axiom([-1])
        log.learn([2, 3])
        assert log.num_axioms == 2
        assert log.num_learned == 1
        assert log.axioms() == [(1,), (-1,)]
        assert log.learned() == [(2, 3)]

    def test_stats(self):
        log = ProofLog()
        log.axiom([1])
        log.learn([2, 3])
        log.delete([2, 3])
        log.empty()
        stats = proof_stats(log)
        assert stats["axioms"] == 1
        assert stats["learned"] == 1
        assert stats["deleted"] == 1
        assert stats["learned_literals"] == 2
        assert stats["refuted"] == 1


class TestRupChecker:
    def test_unit_conflict(self):
        checker = RupChecker()
        checker.add_clause([1])
        checker.add_clause([-1])
        assert checker.refuted

    def test_rup_of_implied_unit(self):
        checker = RupChecker()
        checker.add_clause([1, 2])
        checker.add_clause([1, -2])
        assert checker.check_rup([1])
        assert not checker.check_rup([2])

    def test_check_is_side_effect_free(self):
        checker = RupChecker()
        checker.add_clause([1, 2])
        checker.add_clause([1, -2])
        assert checker.check_rup([1])
        # A failed check must not leave assignments behind either.
        assert not checker.check_rup([-2])
        assert checker.check_rup([1])

    def test_tautology_is_trivially_rup(self):
        checker = RupChecker()
        checker.add_clause([1, 2])
        assert checker.check_rup([3, -3])

    def test_satisfied_clause_dropped(self):
        checker = RupChecker()
        checker.add_clause([1])
        checker.add_clause([1, 2])  # root-satisfied, should not matter
        assert not checker.check_rup([2])

    def test_admit_checked_extends_database(self):
        checker = RupChecker()
        checker.add_clause([1, 2])
        checker.add_clause([1, -2])
        checker.add_clause([-1, 3])
        assert checker.admit_checked([1])
        # Now the root forces 1 and hence 3.
        assert checker.check_rup([3])

    def test_zero_literal_rejected(self):
        checker = RupChecker()
        with pytest.raises(ProofError):
            checker.add_clause([1, 0])


class TestSolverProofs:
    def test_trivial_unsat_units(self):
        log = ProofLog()
        solver = CdclSolver(proof=log)
        a = solver.new_var()
        solver.add_clause([a])
        assert solver.add_clause([-a]) is False
        assert log.refuted
        check_refutation(log)

    def test_xor_chain_unsat_proof(self):
        status, log = solve_with_proof(xor_chain(8, parity=1))
        assert status is SolveStatus.UNSAT
        check_refutation(log)

    def test_xor_chain_sat_has_no_refutation(self):
        status, log = solve_with_proof(xor_chain(8, parity=0))
        assert status is SolveStatus.SAT
        assert not log.refuted
        with pytest.raises(ProofError):
            check_refutation(log)

    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_pigeonhole_proof(self, holes):
        status, log = solve_with_proof(pigeonhole(holes))
        assert status is SolveStatus.UNSAT
        assert log.num_learned > 0
        check_refutation(log)

    def test_pigeonhole_sat_direction(self):
        status, log = solve_with_proof(pigeonhole(3, pigeons=3))
        assert status is SolveStatus.SAT
        assert not log.refuted

    def test_assumption_unsat_is_not_a_refutation(self):
        log = ProofLog()
        solver = CdclSolver(proof=log)
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        status = solver.solve(assumptions=[-a, -b])
        assert status is SolveStatus.UNSAT
        assert solver.unsat_due_to_assumptions
        assert not log.refuted
        # The formula itself is still satisfiable.
        assert solver.solve() is SolveStatus.SAT

    def test_incremental_axioms_interleave(self):
        """Clauses added between solve calls are part of the proof."""
        log = ProofLog()
        solver = CdclSolver(proof=log)
        a, b, c = solver.new_vars(3)
        solver.add_clause([a, b])
        solver.add_clause([-a, c])
        assert solver.solve() is SolveStatus.SAT
        solver.add_clause([-c])
        solver.add_clause([-b])
        solver.add_clause([a, c])
        status = solver.solve()
        assert status is SolveStatus.UNSAT
        check_refutation(log)

    def test_proof_overhead_only_when_enabled(self):
        formula = xor_chain(6, parity=1)
        plain = CdclSolver()
        plain.new_vars(formula.num_vars)
        for clause in formula.clauses:
            plain.add_clause(clause)
        assert plain.solve() is SolveStatus.UNSAT
        # No proof attribute populated.
        assert plain._proof is None


class TestTamperedProofs:
    def _unsat_log(self):
        status, log = solve_with_proof(pigeonhole(3))
        assert status is SolveStatus.UNSAT
        return log

    def test_dropping_axioms_breaks_proof(self):
        log = self._unsat_log()
        log.events = [e for e in log.events if e.kind != "axiom"]
        assert not is_valid_refutation(log)

    def test_injecting_bogus_lemma_is_caught(self):
        from repro.sat.proof import ProofEvent

        log = ProofLog()
        log.axiom([1, 2])
        log.events.append(ProofEvent("learn", (1,)))  # not RUP
        log.empty()
        with pytest.raises(ProofError, match="not RUP"):
            check_refutation(log)

    def test_premature_empty_is_caught(self):
        log = ProofLog()
        log.axiom([1, 2])
        log.axiom([-1, 2])
        log.empty()
        with pytest.raises(ProofError, match="empty clause"):
            check_refutation(log)

    def test_missing_empty_is_caught(self):
        log = self._unsat_log()
        log.events = [e for e in log.events if e.kind != "empty"]
        # refuted flag still set; stream no longer justifies it.
        with pytest.raises(ProofError, match="ended without"):
            check_refutation(log)

    def test_unknown_event_kind(self):
        from repro.sat.proof import ProofEvent

        log = ProofLog()
        log.events.append(ProofEvent("frobnicate", (1,)))
        log.refuted = True
        with pytest.raises(ProofError):
            check_refutation(log)


def _as_formula(num_vars, clauses):
    from repro.sat import CnfFormula

    formula = CnfFormula()
    formula.new_vars(num_vars)
    formula.add_clauses(clauses)
    return formula


@st.composite
def small_cnf(draw):
    num_vars = draw(st.integers(min_value=1, max_value=6))
    num_clauses = draw(st.integers(min_value=1, max_value=14))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=min(3, num_vars)))
        variables = draw(
            st.lists(
                st.integers(min_value=1, max_value=num_vars),
                min_size=width,
                max_size=width,
                unique=True,
            )
        )
        signs = draw(
            st.lists(st.booleans(), min_size=width, max_size=width)
        )
        clauses.append(
            [v if s else -v for v, s in zip(variables, signs)]
        )
    return num_vars, clauses


class TestProofFuzz:
    @given(small_cnf())
    @settings(max_examples=120, deadline=None)
    def test_unsat_proofs_always_verify(self, cnf):
        num_vars, clauses = cnf
        reference = brute_force_model(_as_formula(num_vars, clauses))
        log = ProofLog()
        solver = CdclSolver(proof=log)
        solver.new_vars(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        status = solver.solve()
        if reference is None:
            assert status is SolveStatus.UNSAT
            check_refutation(log)
        else:
            assert status is SolveStatus.SAT
            assert not log.refuted

    @given(small_cnf(), small_cnf())
    @settings(max_examples=40, deadline=None)
    def test_incremental_two_phase_proofs(self, first, second):
        """Add a second batch of clauses after an initial solve."""
        num_vars = max(first[0], second[0])
        log = ProofLog()
        solver = CdclSolver(proof=log)
        solver.new_vars(num_vars)
        for clause in first[1]:
            solver.add_clause(clause)
        solver.solve()
        for clause in second[1]:
            if not solver.add_clause(clause):
                break
        status = solver.solve()
        combined = first[1] + second[1]
        reference = brute_force_model(_as_formula(num_vars, combined))
        if reference is None:
            assert status is SolveStatus.UNSAT
            check_refutation(log)
        else:
            assert status is SolveStatus.SAT


class TestEbmfProofIntegration:
    def test_eq2_matrix_unsat_at_two_has_proof(self):
        """Eq. 2's matrix has binary rank 3; b=2 must be UNSAT and the
        refutation must verify."""
        from repro.core.paper_matrices import equation_2
        from repro.smt.encoder import DirectEncoder

        matrix = equation_2()
        log = ProofLog()
        encoder = DirectEncoder(matrix, 2, proof=log)
        assert encoder.solve() is SolveStatus.UNSAT
        check_refutation(log)

    def test_narrowing_clauses_enter_proof(self):
        """SAP-style descent: SAT at 3, narrowed to 2, UNSAT verified."""
        from repro.core.paper_matrices import equation_2
        from repro.smt.encoder import DirectEncoder

        matrix = equation_2()
        log = ProofLog()
        encoder = DirectEncoder(matrix, 3, proof=log)
        assert encoder.solve() is SolveStatus.SAT
        encoder.narrow_to(2)
        assert encoder.solve() is SolveStatus.UNSAT
        check_refutation(log)


class TestProofExport:
    def test_dimacs_drup_pair_roundtrip(self, tmp_path):
        """Exported (CNF, DRUP) files parse back and re-verify."""
        status, log = solve_with_proof(pigeonhole(3))
        assert status is SolveStatus.UNSAT
        cnf_path = tmp_path / "formula.cnf"
        drup_path = tmp_path / "proof.drup"
        log.write_files(str(cnf_path), str(drup_path))

        from repro.sat import parse_dimacs

        formula = parse_dimacs(cnf_path.read_text())
        assert formula.num_clauses == log.num_axioms

        # Replay: axioms first (as an external checker would see them),
        # then the derivation lines.
        replay = ProofLog()
        for clause in formula.clauses:
            replay.axiom(clause)
        for line in drup_path.read_text().splitlines():
            if line == "0":
                replay.empty()
            elif line.startswith("d "):
                replay.delete(
                    [int(t) for t in line[2:].split()[:-1]]
                )
            else:
                replay.learn([int(t) for t in line.split()[:-1]])
        check_refutation(replay)

    def test_dimacs_export_of_empty_log(self):
        log = ProofLog()
        text = log.to_dimacs()
        assert "p cnf 0 0" in text
        assert log.to_drup() == ""

    def test_incremental_axioms_hoisted_soundly(self, tmp_path):
        """Axioms added between solves still yield a checkable pair."""
        log = ProofLog()
        solver = CdclSolver(proof=log)
        a, b = solver.new_vars(2)
        solver.add_clause([a, b])
        assert solver.solve() is SolveStatus.SAT
        solver.add_clause([-a])
        solver.add_clause([-b])
        assert solver.solve() is SolveStatus.UNSAT

        replay = ProofLog()
        from repro.sat import parse_dimacs

        for clause in parse_dimacs(log.to_dimacs()).clauses:
            replay.axiom(clause)
        for event in log.events:
            if event.kind in ("learn", "empty"):
                if event.kind == "learn":
                    replay.learn(list(event.literals))
                else:
                    replay.empty()
        check_refutation(replay)
