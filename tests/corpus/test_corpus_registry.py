"""Corpus registry: registration, determinism, and suite deduplication."""

import pytest

from repro.benchgen.suite import (
    TABLE1_SET_BUILDERS,
    flatten_suites,
)
from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import SolverError
from repro.corpus.registry import (
    PROFILES,
    CorpusInstance,
    build_corpus,
    family_names,
    get_family,
    instance_from_case,
    register_family,
    thin,
    validate_profile,
)

EXPECTED_FAMILIES = {
    "table1-rand",
    "table1-opt",
    "table1-gap",
    "paper",
    "fooling",
    "surface-code",
    "qldpc",
    "scale-sweep",
}


class TestRegistration:
    def test_builtin_families_registered(self):
        names = set(family_names())
        assert EXPECTED_FAMILIES <= names
        # The acceptance bar: at least five distinct corpus families.
        assert len(names) >= 5

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SolverError, match="already registered"):
            register_family("paper", "imposter")(
                lambda profile, seed: []
            )

    def test_unknown_family_lookup(self):
        with pytest.raises(SolverError, match="unknown corpus family"):
            get_family("does-not-exist")

    def test_family_descriptions_nonempty(self):
        for name in family_names():
            assert get_family(name).description.strip()


class TestDeterminism:
    @pytest.mark.parametrize("profile", PROFILES[:2])  # smoke, quick
    def test_build_is_pure_in_profile_and_seed(self, profile):
        first = build_corpus(profile=profile, seed=2024)
        second = build_corpus(profile=profile, seed=2024)
        assert [inst.case_id for inst in first] == [
            inst.case_id for inst in second
        ]
        for a, b in zip(first, second):
            assert a.matrix.row_masks == b.matrix.row_masks
            assert a.known_rank == b.known_rank
            assert a.known_lower_bound == b.known_lower_bound

    def test_seed_reaches_random_families(self):
        a = build_corpus(["scale-sweep"], profile="smoke", seed=1)
        b = build_corpus(["scale-sweep"], profile="smoke", seed=2)
        assert any(
            x.matrix.row_masks != y.matrix.row_masks
            for x, y in zip(a, b)
        )

    def test_case_ids_unique_across_whole_corpus(self):
        corpus = build_corpus(profile="quick", seed=2024)
        ids = [inst.case_id for inst in corpus]
        assert len(ids) == len(set(ids))

    def test_instances_carry_their_family_stamp(self):
        for inst in build_corpus(profile="smoke", seed=2024):
            assert inst.family in EXPECTED_FAMILIES


class TestSuiteDeduplication:
    """table1-* corpus families and table1_suites share one enumeration."""

    @pytest.mark.slow
    @pytest.mark.parametrize("set_name", sorted(TABLE1_SET_BUILDERS))
    def test_full_profile_matches_paper_suites(self, set_name):
        builder = TABLE1_SET_BUILDERS[set_name]
        if set_name == "rand":
            suites = builder("paper", 2024, include_large=True)
        else:
            suites = builder("paper", 2024)
        expected = flatten_suites(suites)
        corpus = build_corpus(
            [f"table1-{set_name}"], profile="full", seed=2024
        )
        assert [c.case_id for c in corpus] == [
            c.case_id for c in expected
        ]
        for inst, case in zip(corpus, expected):
            assert inst.matrix.row_masks == case.matrix.row_masks

    @pytest.mark.parametrize("set_name", sorted(TABLE1_SET_BUILDERS))
    def test_capped_profiles_are_subsequences(self, set_name):
        builder = TABLE1_SET_BUILDERS[set_name]
        if set_name == "rand":
            suites = builder("quick", 2024, include_large=False)
        else:
            suites = builder("quick", 2024)
        universe = [c.case_id for c in flatten_suites(suites)]
        smoke = build_corpus(
            [f"table1-{set_name}"], profile="smoke", seed=2024
        )
        assert len(smoke) <= 3
        positions = [universe.index(c.case_id) for c in smoke]
        assert positions == sorted(positions)


class TestThin:
    def test_uncapped_passthrough(self):
        items = list(range(7))
        assert thin(items, None) == items
        assert thin(items, 10) == items

    def test_capped_is_spread_subsequence(self):
        items = list(range(100))
        sample = thin(items, 5)
        assert len(sample) == 5
        assert sample[0] == 0
        assert sample == sorted(sample)
        # evenly spread, not a prefix
        assert sample[-1] >= 80


class TestCorpusInstance:
    def test_instance_from_case_maps_known_rank(self):
        from repro.benchgen.suite import BenchmarkCase

        case = BenchmarkCase(
            case_id="x",
            family="ignored",
            matrix=BinaryMatrix.identity(3),
            known_binary_rank=3,
        )
        inst = instance_from_case(case, family="f", seed=7)
        assert inst.family == "f"
        assert inst.known_rank == 3
        assert inst.lower_bound == 3
        assert inst.seed == 7

    def test_lower_bound_prefers_known_rank(self):
        inst = CorpusInstance(
            case_id="x",
            family="f",
            matrix=BinaryMatrix.identity(3),
            known_rank=3,
            known_lower_bound=2,
        )
        assert inst.lower_bound == 3

    def test_inconsistent_bounds_rejected(self):
        with pytest.raises(SolverError, match="lower bound"):
            CorpusInstance(
                case_id="x",
                family="f",
                matrix=BinaryMatrix.identity(3),
                known_rank=2,
                known_lower_bound=3,
            )

    def test_validate_profile(self):
        validate_profile("smoke")
        with pytest.raises(SolverError, match="profile"):
            validate_profile("huge")
