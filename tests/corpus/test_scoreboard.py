"""Scoreboard engine: scoring, tallies, caching, and serialization."""

from repro.corpus.registry import build_corpus
from repro.corpus.scoreboard import (
    ScoreboardReport,
    report_from_dict,
    run_scoreboard,
)
from repro.service.cache import ResultCache
from repro.service.schema import SOLVER_SCHEMA_VERSION

MEMBERS = ("trivial", "packing:4")


def smoke_report(**overrides) -> ScoreboardReport:
    options = dict(profile="smoke", seed=2024, members=MEMBERS)
    options.update(overrides)
    return run_scoreboard(**options)


class TestScoring:
    def test_covers_whole_corpus(self):
        report = smoke_report()
        corpus = build_corpus(profile="smoke", seed=2024)
        assert [row.case_id for row in report.rows] == [
            inst.case_id for inst in corpus
        ]
        # The acceptance bar: at least five named families scored.
        assert len(set(row.family for row in report.rows)) >= 5

    def test_ratios_at_least_one_and_bounds_respected(self):
        report = smoke_report()
        assert report.lower_bound_violations() == []
        for row in report.rows:
            assert row.ratio >= 1.0
            assert row.depth >= row.best_known
            assert row.depth >= row.lower_bound

    def test_known_rank_instances_score_exactly(self):
        """Ground-truth instances measure the solver against the paper's
        published ranks, not against the run's own output."""
        report = smoke_report()
        row = report.row("paper-figure1b")
        assert row.best_known == 5
        row = report.row("fool-identity-4")
        assert row.best_known == 4
        assert row.lower_bound == 4

    def test_tally_matches_engine_metrics_shape(self):
        """The scoreboard emits the exact wire shape the daemon/gateway
        ``metrics`` op exposes — one vocabulary for both surfaces."""
        report = smoke_report()
        payload = report.tally.as_dict()
        assert set(payload) == {"solved", "wins", "win_rates"}
        assert payload["solved"] == len(report.rows)
        assert sum(payload["wins"].values()) == payload["solved"]
        assert abs(sum(payload["win_rates"].values()) - 1.0) < 1e-9

    def test_family_summary_counts(self):
        report = smoke_report()
        summary = report.family_summary()
        assert sum(e["instances"] for e in summary.values()) == len(
            report.rows
        )
        for entry in summary.values():
            assert 1.0 <= entry["mean_ratio"] <= entry["max_ratio"]

    def test_family_subset(self):
        report = smoke_report(families=["paper", "fooling"])
        assert report.families == ("paper", "fooling")
        assert set(row.family for row in report.rows) == {
            "paper",
            "fooling",
        }


class TestCaching:
    def test_cache_hits_do_not_inflate_the_tally(self, tmp_path):
        cache = ResultCache(path=tmp_path / "cache.json")
        first = smoke_report(cache=cache)
        assert first.tally.solved == len(first.rows)
        second = smoke_report(cache=cache)
        assert all(row.from_cache for row in second.rows)
        assert second.tally.solved == 0
        assert [row.depth for row in second.rows] == [
            row.depth for row in first.rows
        ]


class TestSerialization:
    def test_round_trip(self):
        report = smoke_report()
        rebuilt = report_from_dict(report.as_dict())
        assert rebuilt.profile == report.profile
        assert rebuilt.seed == report.seed
        assert rebuilt.members == report.members
        assert rebuilt.schema_version == SOLVER_SCHEMA_VERSION
        assert [r.as_dict() for r in rebuilt.rows] == [
            r.as_dict() for r in report.rows
        ]
        assert rebuilt.tally.as_dict() == report.tally.as_dict()

    def test_deterministic_slice_is_run_independent(self):
        """Two fresh runs agree on everything but wall-clock — the
        property the byte-identical baseline contract rests on."""
        a = smoke_report().as_dict(include_timing=False)
        b = smoke_report().as_dict(include_timing=False)
        assert a == b

    def test_timing_fields_only_in_timed_payloads(self):
        report = smoke_report()
        timed = report.as_dict()
        bare = report.as_dict(include_timing=False)
        assert "wall_seconds" in timed and "family_summary" in timed
        assert "wall_seconds" not in bare
        assert all("wall_seconds" not in row for row in bare["rows"])
