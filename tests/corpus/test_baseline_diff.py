"""Baseline format and differ: the regression gate must actually gate."""

import copy
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.exceptions import SolverError
from repro.corpus.baseline import (
    baseline_from_report,
    diff_against_baseline,
    format_diff,
    load_baseline,
    write_baseline,
)
from repro.corpus.scoreboard import run_scoreboard

REPO_ROOT = Path(__file__).resolve().parents[2]
CHECKED_IN_BASELINE = REPO_ROOT / "baselines" / "scoreboard_smoke.json"

MEMBERS = ("trivial", "packing:4")


@pytest.fixture(scope="module")
def report():
    return run_scoreboard(profile="smoke", seed=2024, members=MEMBERS)


@pytest.fixture(scope="module")
def baseline(report):
    return baseline_from_report(report)


class TestDiff:
    def test_clean_run_passes(self, report, baseline):
        diff = diff_against_baseline(report, baseline)
        assert not diff.failed
        assert diff.clean
        assert diff.compared == len(report.rows)
        assert "-> ok" in format_diff(diff)

    def test_injected_depth_regression_fails(self, report, baseline):
        rigged = copy.deepcopy(baseline)
        case_id = report.rows[0].case_id
        rigged["entries"][case_id]["depth"] -= 1
        diff = diff_against_baseline(report, rigged)
        assert diff.failed
        assert [e["case_id"] for e in diff.regressions] == [case_id]
        assert "REGRESSIONS" in format_diff(diff)

    def test_added_proof_is_an_improvement(self, report, baseline):
        rigged = copy.deepcopy(baseline)
        optimal_id = next(
            row.case_id for row in report.rows if row.optimal
        )
        # Baseline says this instance used to be un-proven at a worse
        # depth; the current run both improves the depth and adds the
        # proof — an improvement, not a regression.
        rigged["entries"][optimal_id]["depth"] += 1
        rigged["entries"][optimal_id]["optimal"] = False
        diff = diff_against_baseline(report, rigged)
        assert [e["case_id"] for e in diff.improvements] == [optimal_id]
        assert not diff.failed

    def test_lost_optimality_proof_is_a_regression(self, report, baseline):
        from repro.corpus.scoreboard import report_from_dict

        payload = report.as_dict()
        # Same depth, but the run no longer proves optimality the
        # baseline recorded — that lost certificate must gate.
        payload["rows"][0]["optimal"] = False
        demoted = report_from_dict(payload)
        diff = diff_against_baseline(demoted, baseline)
        assert diff.failed
        assert [e["case_id"] for e in diff.regressions] == [
            report.rows[0].case_id
        ]

    def test_removed_instance_fails_added_does_not(self, report, baseline):
        rigged = copy.deepcopy(baseline)
        case_id = report.rows[0].case_id
        entry = rigged["entries"].pop(case_id)
        diff = diff_against_baseline(report, rigged)
        assert diff.added == [case_id]
        assert not diff.failed
        rigged["entries"][case_id] = entry
        rigged["entries"]["ghost-instance"] = entry
        diff = diff_against_baseline(report, rigged)
        assert diff.removed == ["ghost-instance"]
        assert diff.failed

    def test_schema_mismatch_fails_closed(self, report, baseline):
        rigged = copy.deepcopy(baseline)
        rigged["schema_version"] = report.schema_version + 1
        diff = diff_against_baseline(report, rigged)
        assert diff.failed
        assert diff.schema_mismatch
        assert diff.compared == 0
        assert "SCHEMA MISMATCH" in format_diff(diff)

    def test_config_mismatch_fails_closed(self, report, baseline):
        rigged = copy.deepcopy(baseline)
        rigged["seed"] = 999
        diff = diff_against_baseline(report, rigged)
        assert diff.failed
        assert diff.config_mismatch

    def test_slowdown_gate_requires_timing(self, report, baseline):
        diff = diff_against_baseline(report, baseline, max_slowdown=2.0)
        assert diff.failed
        assert "timing" in diff.config_mismatch

    def test_slowdown_gate_with_timing(self, report):
        timed = baseline_from_report(report, include_timing=True)
        ok = diff_against_baseline(report, timed, max_slowdown=1.5)
        assert not ok.failed
        rigged = copy.deepcopy(timed)
        for case_id in rigged["timing"]:
            rigged["timing"][case_id] = 1e-9
        slow = diff_against_baseline(report, rigged, max_slowdown=1.5)
        assert slow.slowdowns
        assert slow.failed


class TestFileFormat:
    def test_write_then_load_round_trips(self, baseline, tmp_path):
        path = write_baseline(tmp_path / "b.json", baseline)
        assert load_baseline(path) == baseline

    def test_rejects_foreign_payloads(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"type": "something_else"}))
        with pytest.raises(SolverError, match="not a scoreboard baseline"):
            load_baseline(path)

    def test_rejects_newer_format_versions(self, baseline, tmp_path):
        rigged = dict(baseline, version=99)
        path = write_baseline(tmp_path / "b.json", rigged)
        with pytest.raises(SolverError, match="newer than supported"):
            load_baseline(path)

    def test_writes_are_byte_identical(self, baseline, tmp_path):
        a = write_baseline(tmp_path / "a.json", baseline)
        scrambled = {
            key: baseline[key] for key in reversed(list(baseline))
        }
        b = write_baseline(tmp_path / "b.json", scrambled)
        assert a.read_bytes() == b.read_bytes()

    def test_checked_in_baseline_reproduces_byte_identically(
        self, tmp_path
    ):
        """The repo's smoke baseline regenerates exactly from its pinned
        profile/seed/members — the acceptance criterion for the whole
        baseline format."""
        checked_in = load_baseline(CHECKED_IN_BASELINE)
        report = run_scoreboard(
            profile=checked_in["profile"],
            seed=checked_in["seed"],
            members=checked_in["members"],
        )
        regenerated = write_baseline(
            tmp_path / "regen.json", baseline_from_report(report)
        )
        assert (
            regenerated.read_bytes() == CHECKED_IN_BASELINE.read_bytes()
        )


class TestCli:
    def run_cli(self, *argv, capsys=None) -> int:
        return main(list(argv))

    def base_args(self, subcommand, baseline_path):
        return [
            "scoreboard", subcommand,
            "--smoke",
            "--members", ",".join(MEMBERS),
            "--baseline", str(baseline_path),
        ]

    def test_update_then_diff_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "baseline.json"
        assert main(self.base_args("update-baseline", path)) == 0
        assert main(self.base_args("diff", path)) == 0
        assert "-> ok" in capsys.readouterr().out

    def test_update_twice_is_byte_identical(self, tmp_path):
        path = tmp_path / "baseline.json"
        assert main(self.base_args("update-baseline", path)) == 0
        first = path.read_bytes()
        assert main(self.base_args("update-baseline", path)) == 0
        assert path.read_bytes() == first

    def test_diff_exits_nonzero_on_injected_regression(
        self, tmp_path, capsys
    ):
        path = tmp_path / "baseline.json"
        assert main(self.base_args("update-baseline", path)) == 0
        payload = json.loads(path.read_text())
        case_id = next(iter(payload["entries"]))
        payload["entries"][case_id]["depth"] -= 1
        path.write_text(json.dumps(payload))
        assert main(self.base_args("diff", path)) == 1
        out = capsys.readouterr().out
        assert "REGRESSIONS" in out and case_id in out

    def test_run_gates_on_baseline_too(self, tmp_path, capsys):
        path = tmp_path / "baseline.json"
        assert main(self.base_args("update-baseline", path)) == 0
        assert main(self.base_args("run", path)) == 0
        payload = json.loads(path.read_text())
        case_id = next(iter(payload["entries"]))
        payload["entries"][case_id]["depth"] -= 1
        path.write_text(json.dumps(payload))
        assert main(self.base_args("run", path)) == 1
        capsys.readouterr()

    def test_missing_baseline_is_a_clean_error(self, tmp_path, capsys):
        assert (
            main(self.base_args("diff", tmp_path / "missing.json")) == 2
        )
        assert "error:" in capsys.readouterr().err
