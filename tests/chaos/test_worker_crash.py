"""Worker death mid-batch: the batch finishes, results are identical.

The acceptance contract (ISSUE 8): with
``FaultPlan(kill_worker_on_case=n)`` a 20-case ``solve_batch`` still
returns 20 results — 19 byte-identical to a fault-free run and exactly
one marked ``retried`` (itself byte-identical in *content*; only the
status differs).  The engine variant is weaker by design: its shared
process pool means a crash can poison collateral in-flight cases, so
the assertion there is "every lost case retried, every result
byte-identical", not "exactly one".
"""

from repro.benchgen.random_matrices import random_matrix
from repro.server.engine import (
    DONE,
    WORKER_CRASHED,
    AsyncSolveEngine,
)
from repro.service import faults
from repro.service.batch import (
    STATUS_OK,
    STATUS_RETRIED,
    solve_batch,
)
MEMBERS = ("trivial", "packing:2")


def _content(result):
    """Byte-identity in this repo's sense: provenance minus wall time.

    (The same canonicalization the determinism suite pins — wall-clock
    fields legitimately differ across runs, everything else must not.)
    """
    return result.provenance(include_timing=False)


def _cases(count):
    return [
        (f"c{i:02d}", random_matrix(5, 6, 0.4, seed=100 + i))
        for i in range(count)
    ]


class TestBatchWorkerCrash:
    def test_twenty_case_batch_survives_a_worker_kill(self):
        """The ISSUE 8 acceptance test, verbatim."""
        cases = _cases(20)
        baseline = solve_batch(cases, members=MEMBERS, seed=7, workers=2)
        assert all(r.status == STATUS_OK for r in baseline)

        crashes = []
        with faults.injected(faults.FaultPlan(kill_worker_on_case=11)):
            records = solve_batch(
                cases,
                members=MEMBERS,
                seed=7,
                workers=2,
                on_fault=crashes.append,
            )

        assert len(records) == 20
        assert [r.case_id for r in records] == [c for c, _ in cases]

        retried = [r for r in records if r.status == STATUS_RETRIED]
        assert [r.case_id for r in retried] == ["c11"]
        assert sum(r.status == STATUS_OK for r in records) == 19

        assert len(crashes) == 1
        assert crashes[0]["event"] == WORKER_CRASHED
        assert crashes[0]["case_id"] == "c11"
        assert crashes[0]["will_retry"] is True

        # Byte-identical provenance, crash or no crash: the bulkhead
        # slots isolate the blast radius and per-case seeding makes the
        # retry deterministic.
        expected = {r.case_id: _content(r.result) for r in baseline}
        for record in records:
            assert (
                _content(record.result) == expected[record.case_id]
            ), record.case_id

    def test_kill_plan_never_kills_the_in_process_path(self):
        """``workers=1`` solves in the caller's process; the kill seam
        must refuse to fire there (it would take down the test run)."""
        cases = _cases(3)
        with faults.injected(faults.FaultPlan(kill_worker_on_case="c01")):
            records = solve_batch(cases, members=MEMBERS, seed=7, workers=1)
        assert len(records) == 3
        assert all(r.status == STATUS_OK for r in records)

    def test_out_of_range_kill_index_is_disarmed(self):
        cases = _cases(2)
        with faults.injected(faults.FaultPlan(kill_worker_on_case=99)):
            records = solve_batch(cases, members=MEMBERS, seed=7, workers=2)
        assert all(r.status == STATUS_OK for r in records)


class TestEngineWorkerCrash:
    async def test_process_pool_crash_recovers_all_cases(self):
        """A poisoned shared pool may cost several in-flight cases; all
        of them must come back, byte-identical, after one respawn."""
        cases = _cases(6)

        async with AsyncSolveEngine(
            members=MEMBERS, seed=7, workers=2, executor="process"
        ) as engine:
            baseline = {}
            async for event in engine.stream(cases):
                if event.kind == DONE:
                    baseline[event.case_id] = _content(event.record.result)
        assert len(baseline) == 6

        # The plan must be live before the executor spawns: spawned
        # workers read the env mirror once, at first seam check.
        with faults.injected(faults.FaultPlan(kill_worker_on_case=3)):
            async with AsyncSolveEngine(
                members=MEMBERS, seed=7, workers=2, executor="process"
            ) as engine:
                events = []
                async for event in engine.stream(cases):
                    events.append(event)
                stats = engine.stats()

        crashes = [e for e in events if e.kind == WORKER_CRASHED]
        assert crashes, "no worker_crashed event surfaced"
        done = [e for e in events if e.kind == DONE]
        assert {e.case_id for e in done} == {c for c, _ in cases}

        # The killed case is always among the retried; a shared pool may
        # add collateral (all futures in flight when it broke).
        retried = {e.case_id for e in done if e.retried}
        assert "c03" in retried
        assert retried == {e.case_id for e in crashes}
        assert stats["worker_crashes"] == 1

        for event in done:
            assert (
                _content(event.record.result) == baseline[event.case_id]
            ), event.case_id


class TestDelaySeam:
    def test_delay_site_stretches_the_worker(self):
        import time

        cases = _cases(1)
        start = time.monotonic()
        solve_batch(cases, members=MEMBERS, seed=7)
        fast = time.monotonic() - start

        with faults.injected(
            faults.FaultPlan(delay_seconds=0.3, delay_site="worker.solve")
        ):
            start = time.monotonic()
            solve_batch(cases, members=MEMBERS, seed=7)
            slowed = time.monotonic() - start
        assert slowed >= fast + 0.25
