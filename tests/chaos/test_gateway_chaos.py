"""Gateway under fire: vanished clients, dropped connections, overload.

Same topology as ``tests/server/test_gateway.py`` — server on a
background thread's event loop, synchronous client in the test thread,
real TCP in between — but every test here breaks something on purpose.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.benchgen.random_matrices import random_matrix
from repro.core.exceptions import SolverError
from repro.core.paper_matrices import equation_2, figure_1b, figure_3
from repro.server import client
from repro.server.engine import AsyncSolveEngine
from repro.server.gateway import SolveGateway
from repro.server.tenancy import (
    HEALTH_DEGRADED,
    HEALTH_READY,
    AdmissionController,
)
from repro.service import faults

SLOW_MATRIX = random_matrix(12, 12, 0.6, seed=3)
"""Dense enough that the exact members reliably burn their full budget."""


def _start(gateway):
    thread = threading.Thread(
        target=lambda: asyncio.run(gateway.run()), daemon=True
    )
    thread.start()
    deadline = time.time() + 60
    while gateway.port == 0 and time.time() < deadline:
        time.sleep(0.01)
    if gateway.port == 0:
        pytest.fail("gateway never bound a port")
    return thread


def _stop(gateway, thread):
    try:
        client.request_once(
            ("127.0.0.1", gateway.port), {"op": "shutdown"}, timeout=5
        )
    except SolverError:
        pass
    thread.join(timeout=20)
    assert not thread.is_alive()


def _metrics(gateway):
    return client.fetch_metrics(("127.0.0.1", gateway.port), timeout=5)


class TestDisconnectCancelsSolve:
    def test_vanished_client_cancels_a_long_solve(self):
        """Acceptance: killing the client mid-stream cancels the solve.

        The case is budgeted at 20s and solved by ``branch_bound``
        (which polls its deadline/cancel token every 64 nodes, so a
        cancel lands promptly); if the disconnect did NOT cancel it,
        the admission slot would stay held for the full budget.  We
        require it back within a small fraction of that.
        """
        instance = SolveGateway(
            AsyncSolveEngine(members=("branch_bound",), workers=2),
            port=0,
            admission=AdmissionController(max_in_flight=1, max_waiting=0),
        )
        thread = _start(instance)
        address = ("127.0.0.1", instance.port)
        try:
            request = {
                "op": "solve",
                "cases": [{"case_id": "slow", "rows": []}],
                "budget_per_instance": 20.0,
            }
            request["cases"][0]["rows"] = [
                format(mask, f"0{SLOW_MATRIX.num_cols}b")[::-1]
                for mask in SLOW_MATRIX.row_masks
            ]
            with socket.create_connection(address, timeout=10) as sock:
                sock.sendall(json.dumps(request).encode() + b"\n")
                sock.recv(64)  # the solve is live; now vanish
            disconnect_at = time.monotonic()

            deadline = disconnect_at + 10
            while time.monotonic() < deadline:
                metrics = _metrics(instance)
                if (
                    metrics["queue"]["active"] == 0
                    and metrics["connections"]["disconnects"] >= 1
                ):
                    break
                time.sleep(0.05)
            else:
                pytest.fail(
                    "solve slot not released after client disconnect "
                    "(cancellation did not propagate)"
                )
            # Far inside the 20s budget: the solve was cancelled, not
            # run to completion.
            assert time.monotonic() - disconnect_at < 10.0
        finally:
            _stop(instance, thread)


class TestDropConnectionAndResume:
    def test_client_resumes_after_injected_drops(self):
        """The server drops the stream after N events; a RetryPolicy
        client reconnects, re-submits only unfinished cases, and still
        delivers one terminal event per case plus a synthesized
        batch_done."""
        instance = SolveGateway(
            AsyncSolveEngine(members=("trivial", "packing:4"), seed=7, workers=2),
            port=0,
        )
        thread = _start(instance)
        address = ("127.0.0.1", instance.port)
        cases = [
            ("fig1b", figure_1b()),
            ("eq2", equation_2()),
            ("fig3", figure_3()),
        ]
        try:
            events = []
            with faults.injected(
                faults.FaultPlan(drop_connection_after_events=4)
            ):
                policy = client.RetryPolicy(
                    max_attempts=6, base_delay=0.05, jitter=0.0
                )
                for event in client.submit(
                    address, cases, timeout=30, retry=policy
                ):
                    events.append(event)
                    if event["event"] == "client_retry":
                        # One injected drop is the scenario under test;
                        # disarm so the retry can finish the stream.
                        faults.disarm("drop_connection_after_events")

            retries = [e for e in events if e["event"] == "client_retry"]
            assert retries, "the injected drop never triggered a retry"
            done = [e for e in events if e["event"] == "done"]
            assert sorted(e["case_id"] for e in done) == [
                "eq2",
                "fig1b",
                "fig3",
            ]
            assert events[-1]["event"] == "batch_done"
            assert events[-1]["completed"] == 3
            assert events[-1]["retries"] == len(retries)
        finally:
            _stop(instance, thread)


class TestDegradedMode:
    def test_sustained_saturation_flips_to_heuristic_serving(self):
        instance = SolveGateway(
            AsyncSolveEngine(members=("packing:4", "sap"), workers=2),
            port=0,
            admission=AdmissionController(max_in_flight=1, max_waiting=0),
        )
        thread = _start(instance)
        address = ("127.0.0.1", instance.port)
        try:
            health = client.request_once(
                address, {"op": "health"}, timeout=5
            )
            assert health["status"] == HEALTH_READY

            slow_events = []

            def hold_the_slot():
                slow_events.extend(
                    client.submit(
                        address,
                        [("slow", SLOW_MATRIX)],
                        timeout=60,
                        budget_per_instance=4.0,
                    )
                )

            slow = threading.Thread(target=hold_the_slot, daemon=True)
            slow.start()
            deadline = time.time() + 10
            while time.time() < deadline:
                if _metrics(instance)["queue"]["active"] >= 1:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("slow request never took the solve slot")

            # Four saturations are rejections; the fifth trips the
            # controller (threshold 5 in-window) and that very request
            # is served degraded instead of refused.
            for _ in range(4):
                with pytest.raises(client.DaemonError) as excinfo:
                    list(
                        client.submit(
                            address, [("fast", figure_3())], timeout=10
                        )
                    )
                assert excinfo.value.code == "saturated"

            health = client.request_once(
                address, {"op": "health"}, timeout=5
            )
            assert health["status"] == HEALTH_READY

            events = list(
                client.submit(
                    address, [("served", figure_3())], timeout=30
                )
            )
            health = client.request_once(
                address, {"op": "health"}, timeout=5
            )
            assert health["status"] == HEALTH_DEGRADED
            done = [e for e in events if e["event"] == "done"]
            assert len(done) == 1
            assert done[0]["degraded"] is True
            # Heuristic-only: every exact member was stripped from the
            # portfolio before solving (of this gateway's members, sap
            # is the exact one; packing is a heuristic and survives).
            ran = [m["name"] for m in done[0]["provenance"]["members"]]
            assert ran == ["packing:4"]
            assert events[-1]["event"] == "batch_done"
            assert events[-1]["degraded"] is True

            metrics = _metrics(instance)
            assert metrics["requests"]["degraded"] >= 1
            assert metrics["degraded_mode"]["entered_total"] >= 1

            slow.join(timeout=60)
            assert not slow.is_alive()
            assert slow_events[-1]["event"] == "batch_done"
        finally:
            _stop(instance, thread)
