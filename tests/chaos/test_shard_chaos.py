"""Injected cache corruption: quarantine, cold reads, metrics.

The write seam truncates a shard *after* the atomic replace — i.e. it
simulates what atomic writes cannot prevent (disk damage, manual
edits), not a torn write.  The contract: the next reader moves the
damage aside and proceeds with a cold shard; no solve ever fails
because of a corrupt cache file.
"""

from repro.core.binary_matrix import BinaryMatrix
from repro.service import faults
from repro.service.cache import ResultCache
from repro.service.portfolio import solve_portfolio

MEMBERS = ("trivial", "packing:2")

MATRIX = BinaryMatrix([0b110, 0b011, 0b101], 3)


def _result():
    return solve_portfolio(MATRIX, members=MEMBERS, seed=7)


class TestCorruptShardOnWrite:
    def test_next_reader_quarantines_and_reads_cold(self, tmp_path):
        root = tmp_path / "cache"
        writer = ResultCache.sharded(root)
        result = _result()
        with faults.injected(faults.FaultPlan(corrupt_shard_on_write=True)):
            writer.put(MATRIX, result)
            writer.flush()  # the seam truncates the shard just written

        reader = ResultCache.sharded(root)
        assert reader.get(MATRIX) is None  # damage -> cold, not an error
        assert reader.stats.quarantines == 1
        assert list(root.glob("shard-*.json.corrupt-*"))

        # The shard is usable again immediately.
        reader.put(MATRIX, result)
        reader.flush()
        assert ResultCache.sharded(root).get(MATRIX) is not None

    def test_seam_is_one_shot(self, tmp_path):
        root = tmp_path / "cache"
        other = BinaryMatrix([0b11, 0b01], 2)
        with faults.injected(faults.FaultPlan(corrupt_shard_on_write=True)):
            writer = ResultCache.sharded(root)
            writer.put(MATRIX, _result())
            writer.flush()  # consumes the one-shot fault
            writer.put(other, solve_portfolio(other, members=MEMBERS, seed=7))
            writer.flush()  # must write cleanly

        reader = ResultCache.sharded(root)
        assert reader.get(other) is not None
        assert reader.get(MATRIX) is None
        assert reader.stats.quarantines == 1

    def test_single_file_tier_quarantines_on_load(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path=path)
        cache.put(MATRIX, _result())
        cache.flush()
        path.write_text('{"version": 1, "type": "portfolio_')  # truncate

        reopened = ResultCache(path=path)
        assert reopened.get(MATRIX) is None
        assert reopened.stats.quarantines == 1
        assert not path.exists()
        assert list(tmp_path.glob("cache.json.corrupt-*"))
