"""Chaos-suite plumbing: marker, hard per-test timeout, fault hygiene.

Every test here injects faults through :mod:`repro.service.faults` and
asserts the serving stack *recovers* — so a regression tends to look
like a hang (a batch waiting on a dead worker, a client retrying
forever), not a failure.  The SIGALRM fixture converts those hangs into
loud timeouts, and the hygiene fixture guarantees no fault plan leaks
into later tests (or, via the env mirror, into later processes).
"""

import signal

import pytest

from repro.service import faults

CHAOS_TEST_TIMEOUT = 120
"""Hard per-test ceiling (seconds) — generous, because the suite spawns
process pools on a possibly loaded CI box; a healthy test finishes in a
small fraction of this."""


def pytest_collection_modifyitems(items):
    for item in items:
        if "tests/chaos/" in str(item.fspath).replace("\\", "/"):
            item.add_marker(pytest.mark.chaos)


@pytest.fixture(autouse=True)
def _hard_timeout():
    def _expired(signum, frame):
        raise TimeoutError(
            f"chaos test exceeded {CHAOS_TEST_TIMEOUT}s — a recovery "
            f"path is probably hanging instead of failing"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(CHAOS_TEST_TIMEOUT)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def _fault_hygiene():
    faults.clear()
    try:
        yield
    finally:
        faults.clear()
