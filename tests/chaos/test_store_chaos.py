"""Cache-store lifecycle under fire: GC killed at every journal state.

The bounded store's contract (docs/cache-lifecycle.md): a SIGKILL at
any instant during GC/compaction loses *zero servable entries* — every
key ever written is afterwards either still servable (byte-identical)
or recorded in the journal's eviction plan — and the configured caps
hold once the interrupted pass is resumed.  These tests kill a real
``python -m repro cache gc`` subprocess at each journal state via the
``crash_gc_at`` fault seam (``os._exit`` — same on-disk state as
``kill -9``), then let the auto-resume path finish the pass.

Also covered here: the ``corrupt_index_on_write`` seam (a torn index
must fall back to rebuild-from-shards, never serve wrong answers) and
``ttl_skew_seconds`` (a clock-skewed reader treats entries as expired
without destroying the stamps on disk).
"""

import hashlib
import json
import multiprocessing
import subprocess
import sys
from pathlib import Path

from repro.server import store_gc
from repro.server.shards import ShardedDiskTier, StoreLimits
from repro.service import faults
from repro.utils.clock import FixedClock, installed

REPO_ROOT = Path(__file__).resolve().parents[2]


def _key(i: int) -> str:
    return hashlib.sha256(f"entry-{i}".encode()).hexdigest()


def _payload(i: int, filler: int = 100) -> dict:
    return {"depth": i, "case": f"entry-{i}", "filler": "x" * filler}


def _write_range(root: str, start: int, count: int) -> None:
    """Writer-process body: merge ``count`` entries into the store."""
    tier = ShardedDiskTier(root)
    tier.store(
        {_key(i): _payload(i) for i in range(start, start + count)}
    )


def _run_cli(*args: str, env_extra=None) -> subprocess.CompletedProcess:
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop(faults.FAULTS_ENV, None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-m", "repro", "cache", *args],
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )


def _fill_concurrently(root: Path, total: int = 100, writers: int = 4):
    """Populate the store from several concurrent writer processes."""
    ctx = multiprocessing.get_context("fork")
    per = total // writers
    procs = [
        ctx.Process(target=_write_range, args=(str(root), w * per, per))
        for w in range(writers)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    return {_key(i) for i in range(total)}


class TestGcKilledAtEveryJournalState:
    # crash seam -> journal state the crash must leave on disk
    STATES = [
        ("planned", store_gc.STATE_PLANNED),
        ("mid-sweep", store_gc.STATE_SWEEPING),
        ("committed", store_gc.STATE_COMMITTED),
    ]

    def test_no_servable_entry_lost_and_caps_hold(self, tmp_path):
        root = tmp_path / "store"
        written = _fill_concurrently(root, total=100)
        evicted: set = set()
        # Tightening entry caps so every round has fresh evictions to
        # plan — a pass with an empty plan never reaches mid-sweep.
        for (seam_state, journal_state), cap in zip(self.STATES, (60, 35, 15)):
            plan = faults.FaultPlan(crash_gc_at=seam_state)
            proc = _run_cli(
                "gc", str(root), "--max-entries", str(cap),
                env_extra={
                    faults.FAULTS_ENV: json.dumps(plan.as_dict())
                },
            )
            assert proc.returncode == faults.WORKER_KILL_EXIT_CODE, (
                proc.stdout + proc.stderr
            )
            journal = json.loads((root / store_gc.JOURNAL_NAME).read_text())
            assert journal["state"] == journal_state
            evicted.update(journal["evict"])

            # The acceptance probe: the store must be openable and
            # servable with the crash debris still on disk — opening
            # resumes and finishes the interrupted pass.
            probe = _run_cli("stats", str(root))
            assert probe.returncode == 0, probe.stdout + probe.stderr
            assert not (root / store_gc.JOURNAL_NAME).exists()

            tier = ShardedDiskTier(root)
            assert tier.entry_count() <= cap
            survivors = tier.keys()
            # Zero lost servable entries: everything ever written is
            # accounted for — still present, or in an eviction plan.
            assert survivors | evicted == written
            assert survivors.isdisjoint(evicted)

        # Survivors are byte-identical, integrity checks and all.
        tier = ShardedDiskTier(root)
        for key in sorted(tier.keys())[:5]:
            i = int(
                next(
                    n for n in range(100) if _key(n) == key
                )
            )
            assert tier.get(key) == _payload(i)

    def test_resume_is_idempotent(self, tmp_path):
        # Re-entering a journal that was already fully executed (crash
        # after commit) must be a no-op, not a second eviction pass.
        root = tmp_path / "store"
        tier = ShardedDiskTier(root)
        tier.store({_key(i): _payload(i) for i in range(20)})
        plan = faults.FaultPlan(crash_gc_at="committed")
        proc = _run_cli(
            "gc", str(root), "--max-entries", "10",
            env_extra={faults.FAULTS_ENV: json.dumps(plan.as_dict())},
        )
        assert proc.returncode == faults.WORKER_KILL_EXIT_CODE
        before = ShardedDiskTier(root).keys()  # resumes on open
        after = ShardedDiskTier(root).keys()  # journal gone: no-op
        assert before == after
        assert len(after) == 10


class TestSustainedWritesNeverExceedCap:
    def test_single_writer_cap_holds_after_every_flush(self, tmp_path):
        cap = 4000
        tier = ShardedDiskTier(
            tmp_path / "store", limits=StoreLimits(max_bytes=cap)
        )
        for i in range(60):
            tier.store({_key(i): _payload(i)})
            # The write path GC-collects synchronously when it pushes
            # the store over cap, so the bound holds *continuously*,
            # not just at the end of the run.
            assert tier.bytes_used() <= cap
        assert tier.gc_runs > 0
        assert tier.store_evictions > 0
        survivors = tier.keys()
        assert 0 < len(survivors) < 60
        for key in survivors:
            i = next(n for n in range(60) if _key(n) == key)
            assert tier.get(key) == _payload(i)

    def test_concurrent_writers_settle_under_cap(self, tmp_path):
        root = tmp_path / "store"
        cap = 4000
        # Persist the cap first so every writer process enforces it.
        ShardedDiskTier(root, limits=StoreLimits(max_bytes=cap))
        written = _fill_concurrently(root, total=80, writers=4)
        tier = ShardedDiskTier(root)
        report = store_gc.run_gc(tier, block=True)
        assert report.ran
        assert tier.bytes_used() <= cap
        survivors = tier.keys()
        assert survivors <= written
        probe = _run_cli("stats", str(root))
        assert probe.returncode == 0, probe.stdout + probe.stderr


class TestCorruptIndexOnWrite:
    def test_reader_rebuilds_index_from_shards(self, tmp_path):
        root = tmp_path / "store"
        tier = ShardedDiskTier(root)
        tier.store({_key(i): _payload(i) for i in range(6)})
        with faults.injected(
            faults.FaultPlan(corrupt_index_on_write=True)
        ):
            tier.store({_key(6): _payload(6)})  # seam truncates the index

        reopened = ShardedDiskTier(root)  # quarantines + rebuilds at open
        assert reopened.quarantined >= 1
        assert list(root.glob("cache-index.json.corrupt-*"))
        assert reopened.entry_count() == 7
        for i in range(7):
            assert reopened.get(_key(i)) == _payload(i)

    def test_seam_is_one_shot(self, tmp_path):
        root = tmp_path / "store"
        with faults.injected(
            faults.FaultPlan(corrupt_index_on_write=True)
        ):
            tier = ShardedDiskTier(root)
            tier.store({_key(0): _payload(0)})  # consumes the fault
            tier.store({_key(1): _payload(1)})  # must write cleanly
        fresh = ShardedDiskTier(root)
        assert fresh.entry_count() == 2


class TestTtlClockSkew:
    def test_ttl_skew_seconds_expires_reads_and_gc(self, tmp_path):
        clock = FixedClock(1_000_000.0)
        with installed(clock):
            tier = ShardedDiskTier(
                tmp_path / "store",
                limits=StoreLimits(ttl_seconds=100.0),
            )
            key = _key(0)
            tier.store({key: _payload(0)})
            assert tier.get(key) == _payload(0)  # age 0: servable

            # An NTP jump on the reading host: the entry's stamps are
            # untouched, but the skewed clock judges it past TTL.
            with faults.injected(
                faults.FaultPlan(ttl_skew_seconds=200.0)
            ):
                assert tier.get(key) is None
                report = store_gc.run_gc(tier)
                assert key in report.expired_keys
                assert key in report.evicted_keys

            # Post-GC the entry is gone for real, skew or not.
            assert tier.get(key) is None
            assert tier.entry_count() == 0

    def test_no_skew_no_expiry(self, tmp_path):
        clock = FixedClock(1_000_000.0)
        with installed(clock):
            tier = ShardedDiskTier(
                tmp_path / "store",
                limits=StoreLimits(ttl_seconds=100.0),
            )
            key = _key(0)
            tier.store({key: _payload(0)})
            clock.advance(99.0)  # inside TTL
            assert tier.get(key) == _payload(0)
            report = store_gc.run_gc(tier)
            assert report.evicted_keys == []
            clock.advance(2.0)  # now past TTL
            assert tier.get(key) is None
