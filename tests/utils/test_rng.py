"""Unit tests for deterministic RNG handling."""

import random

import pytest

from repro.utils.rng import ensure_rng, spawn_seeds


class TestEnsureRng:
    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random()
        b = ensure_rng(42).random()
        assert a == b

    def test_passthrough_of_random_instance(self):
        rng = random.Random(1)
        assert ensure_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), random.Random)


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(7, 5) == spawn_seeds(7, 5)

    def test_salt_changes_stream(self):
        assert spawn_seeds(7, 5, salt="a") != spawn_seeds(7, 5, salt="b")

    def test_distinct_children(self):
        seeds = spawn_seeds(7, 100)
        assert len(set(seeds)) == 100

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(7, -1)

    def test_zero_count(self):
        assert spawn_seeds(7, 0) == []
