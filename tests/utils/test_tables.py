"""Unit tests for table rendering."""

import pytest

from repro.utils.tables import format_percent, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert lines[2].startswith("a")

    def test_title(self):
        text = format_table(["x"], [["1"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_right_alignment_of_numeric_columns(self):
        text = format_table(["label", "n"], [["a", 5], ["b", 500]])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("  5".rstrip()) or rows[0].endswith("5")
        # both rows end-align on the same column
        assert len(rows[0]) == len(rows[0].rstrip())

    def test_mismatched_row_width_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatPercent:
    def test_rounding(self):
        assert format_percent(1, 3) == "33%"
        assert format_percent(2, 3) == "67%"

    def test_full(self):
        assert format_percent(5, 5) == "100%"

    def test_zero_denominator(self):
        assert format_percent(0, 0) == "n/a"
