"""Unit tests for bit-mask helpers."""

import pytest

from repro.utils.bitops import (
    bit_indices,
    bits_from_indices,
    is_subset,
    iter_submasks,
    lowest_set_bit,
    mask_to_tuple,
    popcount,
)


class TestPopcount:
    def test_zero(self):
        assert popcount(0) == 0

    def test_single_bits(self):
        for k in range(70):
            assert popcount(1 << k) == 1

    def test_full_mask(self):
        assert popcount((1 << 100) - 1) == 100


class TestBitIndices:
    def test_empty(self):
        assert list(bit_indices(0)) == []

    def test_ascending_order(self):
        assert list(bit_indices(0b101101)) == [0, 2, 3, 5]

    def test_large_index(self):
        assert list(bit_indices(1 << 200)) == [200]


class TestMaskRoundTrip:
    def test_round_trip(self):
        mask = 0b1011001
        assert bits_from_indices(mask_to_tuple(mask)) == mask

    def test_from_indices_duplicates_collapse(self):
        assert bits_from_indices([1, 1, 3]) == 0b1010

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            bits_from_indices([-1])


class TestIsSubset:
    def test_subset(self):
        assert is_subset(0b0101, 0b1101)

    def test_not_subset(self):
        assert not is_subset(0b0101, 0b1001)

    def test_zero_subset_of_everything(self):
        assert is_subset(0, 0)
        assert is_subset(0, 0b111)


class TestIterSubmasks:
    def test_counts(self):
        mask = 0b1011
        subs = list(iter_submasks(mask))
        assert len(subs) == 2 ** popcount(mask)
        assert len(set(subs)) == len(subs)
        assert all(is_subset(s, mask) for s in subs)

    def test_zero(self):
        assert list(iter_submasks(0)) == [0]


class TestLowestSetBit:
    def test_basic(self):
        assert lowest_set_bit(0b1010100) == 2

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            lowest_set_bit(0)
