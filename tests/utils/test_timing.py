"""Unit tests for the stopwatch and deadline helpers."""

import time

import pytest

from repro.utils.timing import Deadline, Stopwatch


class TestStopwatch:
    def test_accumulates_phases(self):
        watch = Stopwatch()
        with watch.time("a"):
            pass
        with watch.time("a"):
            pass
        with watch.time("b"):
            pass
        assert watch.total("a") >= 0
        assert set(watch.totals) == {"a", "b"}
        assert watch.total() == pytest.approx(
            watch.total("a") + watch.total("b")
        )

    def test_unknown_phase_total_is_zero(self):
        assert Stopwatch().total("missing") == 0.0

    def test_double_start_rejected(self):
        watch = Stopwatch()
        watch.start("x")
        with pytest.raises(RuntimeError):
            watch.start("x")

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop("x")

    def test_measures_elapsed_time(self):
        watch = Stopwatch()
        with watch.time("sleep"):
            time.sleep(0.01)
        assert watch.total("sleep") >= 0.005


class TestDeadline:
    def test_none_never_expires(self):
        deadline = Deadline(None)
        assert not deadline.expired()
        assert deadline.remaining() is None

    def test_zero_budget_expires(self):
        deadline = Deadline(0.0)
        time.sleep(0.001)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_generous_budget_not_expired(self):
        assert not Deadline(60.0).expired()

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)
