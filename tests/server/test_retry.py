"""Client retry policy: backoff math and the ``retry_after`` round trip.

No sockets anywhere — the wire is simulated by feeding
:meth:`RequestRejected.as_event` output straight into
:meth:`DaemonError.from_event`, which is exactly what the client does
with a received ``error`` line.  The acceptance contract: a server
``retry_after`` hint survives the gateway's structured rejection intact
and *floors* the client's sleep decision.
"""

import socket

import pytest

from repro.core.exceptions import SolverError
from repro.server.client import (
    ConnectFailed,
    DaemonError,
    RetryPolicy,
    StreamInterrupted,
    case_fingerprint,
)
from repro.core.binary_matrix import BinaryMatrix
from repro.server.tenancy import (
    REJECT_DENIED,
    REJECT_QUOTA,
    REJECT_SATURATED,
    REJECT_TENANT_SATURATED,
    RequestRejected,
)


def _round_trip(exc: RequestRejected) -> DaemonError:
    """Server-side rejection -> wire event -> client-side error."""
    event = exc.as_event()
    assert event["event"] == "error"
    return DaemonError.from_event(event)


class TestRetryAfterRoundTrip:
    def test_hint_survives_the_wire(self):
        err = _round_trip(
            RequestRejected(
                "server saturated",
                code=REJECT_SATURATED,
                retry_after=1.25,
            )
        )
        assert err.code == REJECT_SATURATED
        assert err.retry_after == pytest.approx(1.25)
        assert err.transient

    def test_hint_is_rounded_not_dropped(self):
        # as_event rounds to milliseconds; the client must still see a
        # usable float, not None.
        err = _round_trip(
            RequestRejected(
                "quota", code=REJECT_QUOTA, retry_after=0.123456
            )
        )
        assert err.retry_after == pytest.approx(0.123, abs=1e-9)

    def test_permanent_rejection_has_no_hint(self):
        err = _round_trip(
            RequestRejected("no such tenant", code=REJECT_DENIED)
        )
        assert err.retry_after is None
        assert not err.transient

    @pytest.mark.parametrize(
        "code", [REJECT_SATURATED, REJECT_TENANT_SATURATED, REJECT_QUOTA]
    )
    def test_transient_codes_are_retryable(self, code):
        err = _round_trip(
            RequestRejected("busy", code=code, retry_after=0.5)
        )
        assert RetryPolicy().retryable(err)

    def test_denied_is_not_retryable(self):
        err = _round_trip(RequestRejected("denied", code=REJECT_DENIED))
        assert not RetryPolicy().retryable(err)


class TestBackoffMath:
    def test_exponential_with_cap(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=1.0, jitter=0.0
        )
        delays = [policy.backoff(n) for n in range(1, 7)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8, 1.0, 1.0])

    def test_retry_after_floors_the_backoff(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.0)
        # Hint above the curve wins...
        assert policy.backoff(1, retry_after=2.5) == pytest.approx(2.5)
        # ...but a hint below the curve never *lowers* the wait.
        assert policy.backoff(4, retry_after=0.05) == pytest.approx(0.8)

    def test_jitter_only_stretches(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=7)
        base = RetryPolicy(base_delay=0.1, jitter=0.0)
        for attempt in (1, 2, 3):
            jittered = policy.backoff(attempt)
            plain = base.backoff(attempt)
            assert plain <= jittered <= plain * 1.5

    def test_seeded_jitter_is_deterministic(self):
        a = RetryPolicy(jitter=0.3, seed=42)
        b = RetryPolicy(jitter=0.3, seed=42)
        assert [a.backoff(n) for n in (1, 2, 3)] == [
            b.backoff(n) for n in (1, 2, 3)
        ]

    def test_attempt_must_be_positive(self):
        with pytest.raises(SolverError):
            RetryPolicy().backoff(0)


class TestSleepDecisions:
    def test_pause_sleeps_the_floored_hint(self):
        slept = []
        policy = RetryPolicy(
            base_delay=0.1, jitter=0.0, sleep=slept.append
        )
        err = _round_trip(
            RequestRejected(
                "busy", code=REJECT_SATURATED, retry_after=1.25
            )
        )
        delay = policy.pause(1, err.retry_after)
        assert slept == [pytest.approx(1.25)]
        assert delay == pytest.approx(1.25)

    def test_pause_without_hint_follows_the_curve(self):
        slept = []
        policy = RetryPolicy(
            base_delay=0.2, multiplier=2.0, jitter=0.0, sleep=slept.append
        )
        policy.pause(2, None)
        assert slept == [pytest.approx(0.4)]


class TestRetryableClassification:
    def test_transport_failures_are_retryable(self):
        policy = RetryPolicy()
        assert policy.retryable(ConnectFailed("refused"))
        assert policy.retryable(StreamInterrupted("eof mid-stream"))
        assert policy.retryable(ConnectionResetError())
        assert policy.retryable(socket.timeout())

    def test_plain_solver_errors_are_not(self):
        policy = RetryPolicy()
        assert not policy.retryable(SolverError("bad request"))
        assert not policy.retryable(DaemonError("malformed", code=None))


class TestFingerprint:
    def test_equal_matrices_share_a_fingerprint(self):
        a = BinaryMatrix([0b101, 0b011], 3)
        b = BinaryMatrix(list(a.row_masks), a.num_cols)
        assert case_fingerprint("c0", a) == case_fingerprint("c0", b)

    def test_fingerprint_covers_case_id_and_content(self):
        m = BinaryMatrix([0b101, 0b011], 3)
        assert case_fingerprint("c0", m) != case_fingerprint("c1", m)
        assert case_fingerprint(
            "c0", BinaryMatrix([0b101, 0b111], 3)
        ) != case_fingerprint("c0", m)
