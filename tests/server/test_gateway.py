"""Gateway round trips over real TCP connections.

Same topology as ``test_daemon.py`` — the server on a background
thread's event loop, the synchronous client in the test thread — but
over TCP with the tenancy policy engaged.  The process-executor test is
the acceptance path for the streaming bugfix: ``member_finished``
events must cross the process boundary and reach a remote client
*before* that case's ``done``.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.benchgen.random_matrices import random_matrix
from repro.core.exceptions import SolverError
from repro.core.paper_matrices import equation_2, figure_1b, figure_3
from repro.server import client
from repro.server.engine import AsyncSolveEngine
from repro.server.gateway import (
    SolveGateway,
    parse_priority,
    validate_overrides,
)
from repro.server.tenancy import (
    REJECT_DENIED,
    REJECT_QUOTA,
    REJECT_SATURATED,
    REJECT_UNKNOWN_TENANT,
    AdmissionController,
    TenantConfig,
    TenantRegistry,
    TenantState,
)

MEMBERS = ("trivial", "packing:4", "sap")

SLOW_MATRIX = random_matrix(12, 12, 0.6, seed=3)
"""Dense enough that the exact members reliably consume their budget."""


def _start(gateway: SolveGateway) -> threading.Thread:
    thread = threading.Thread(
        target=lambda: asyncio.run(gateway.run()), daemon=True
    )
    thread.start()
    deadline = time.time() + 60
    while gateway.port == 0 and time.time() < deadline:
        time.sleep(0.01)
    if gateway.port == 0:
        pytest.fail("gateway never bound a port")
    return thread


def _stop(gateway: SolveGateway, thread: threading.Thread) -> None:
    try:
        client.request_once(
            ("127.0.0.1", gateway.port), {"op": "shutdown"}, timeout=5
        )
    except SolverError:
        pass
    thread.join(timeout=20)
    assert not thread.is_alive()


@pytest.fixture
def gateway():
    """A live TCP gateway with tenancy + admission control engaged."""
    tenants = TenantRegistry(
        [
            TenantConfig("acme", priority=1),
            TenantConfig("metered", quota_seconds=1e-9),
            TenantConfig("secret", key="s3cret"),
        ]
    )
    instance = SolveGateway(
        AsyncSolveEngine(members=MEMBERS, seed=7, workers=2),
        port=0,
        tenants=tenants,
        admission=AdmissionController(max_in_flight=2, max_waiting=4),
    )
    thread = _start(instance)
    yield instance
    _stop(instance, thread)


def _address(gateway: SolveGateway):
    return ("127.0.0.1", gateway.port)


class TestRoundTrip:
    def test_solve_streams_and_terminates(self, gateway):
        cases = [("fig1b", figure_1b()), ("eq2", equation_2())]
        events = list(
            client.submit(
                _address(gateway), cases, timeout=30, tenant="acme"
            )
        )
        kinds = [e["event"] for e in events]
        assert kinds[-1] == "batch_done"
        assert events[-1]["tenant"] == "acme"
        done = [e for e in events if e["event"] == "done"]
        assert {e["case_id"] for e in done} == {"fig1b", "eq2"}
        for record in done:
            assert record["provenance"]["optimal"] is True

    def test_tcp_url_address_form(self, gateway):
        reply = client.request_once(
            f"tcp://127.0.0.1:{gateway.port}", {"op": "ping"}, timeout=5
        )
        assert reply["event"] == "pong"

    def test_bad_tcp_url_is_rejected_client_side(self):
        with pytest.raises(SolverError, match="bad TCP address"):
            client.request_once("tcp://nowhere", {"op": "ping"})

    def test_metrics_surface(self, gateway):
        list(
            client.submit(
                _address(gateway),
                [("fig3", figure_3())],
                timeout=30,
                tenant="acme",
            )
        )
        metrics = client.fetch_metrics(_address(gateway), timeout=5)
        # Queue depth from admission control.
        queue = metrics["queue"]
        assert queue["max_in_flight"] == 2
        assert queue["max_waiting"] == 4
        assert queue["depth"] == queue["active"] + queue["waiting"]
        # Connection gauge vs lifetime counter.
        connections = metrics["connections"]
        assert connections["total"] >= 2
        assert connections["active"] <= connections["total"]
        # Cache hit rate and per-solver win rates.
        assert 0.0 <= metrics["cache_hit_rate"] <= 1.0
        solvers = metrics["solvers"]
        assert solvers["solved"] >= 1
        assert sum(solvers["wins"].values()) == solvers["solved"]
        assert solvers["win_rates"]
        for rate in solvers["win_rates"].values():
            assert 0.0 < rate <= 1.0
        # Per-tenant usage.
        acme = metrics["tenants"]["acme"]
        assert acme["requests"] == 1
        assert acme["cases_completed"] == 1
        assert acme["quota"]["lifetime_seconds"] >= 0.0

    def test_stats_op_reports_both_layers(self, gateway):
        reply = client.request_once(
            _address(gateway), {"op": "stats"}, timeout=5
        )
        assert reply["stats"]["members"] == list(MEMBERS)
        assert "connections" in reply["server"]


class TestTenancyOverTheWire:
    def test_quota_exhaustion_rejects_with_retry_after(self, gateway):
        address = _address(gateway)
        # First request burns the (absurdly small) quota...
        list(
            client.submit(
                address, [("a", figure_3())], timeout=30, tenant="metered"
            )
        )
        # ...so the next one is refused with a refill hint.
        with pytest.raises(client.DaemonError) as excinfo:
            list(
                client.submit(
                    address,
                    [("b", figure_1b())],
                    timeout=30,
                    tenant="metered",
                )
            )
        assert excinfo.value.code == REJECT_QUOTA
        assert excinfo.value.retry_after is not None
        assert 0 <= excinfo.value.retry_after <= 60.0
        metrics = client.fetch_metrics(address, timeout=5)
        assert metrics["tenants"]["metered"]["rejected"] == 1
        assert metrics["requests"]["rejected"] == 1

    def test_wrong_key_is_denied(self, gateway):
        with pytest.raises(client.DaemonError) as excinfo:
            list(
                client.submit(
                    _address(gateway),
                    [("a", figure_3())],
                    timeout=10,
                    tenant="secret",
                    key="wrong",
                )
            )
        assert excinfo.value.code == REJECT_DENIED

    def test_right_key_is_served(self, gateway):
        records = client.collect(
            _address(gateway),
            [("a", figure_3())],
            timeout=30,
            tenant="secret",
            key="s3cret",
        )
        assert len(records) == 1

    def test_closed_registry_rejects_unknown_tenant(self):
        instance = SolveGateway(
            AsyncSolveEngine(members=("trivial",), workers=1),
            port=0,
            tenants=TenantRegistry(
                [TenantConfig("acme")], allow_unknown=False
            ),
        )
        thread = _start(instance)
        try:
            with pytest.raises(client.DaemonError) as excinfo:
                list(
                    client.submit(
                        _address(instance),
                        [("a", figure_3())],
                        timeout=10,
                        tenant="stranger",
                    )
                )
            assert excinfo.value.code == REJECT_UNKNOWN_TENANT
        finally:
            _stop(instance, thread)

    def test_saturation_rejects_with_retry_after(self):
        # One solve slot, no waiting room: a slow budgeted solve holds
        # the slot while a second request arrives and must be refused.
        instance = SolveGateway(
            AsyncSolveEngine(members=("packing:4", "sap"), workers=2),
            port=0,
            admission=AdmissionController(max_in_flight=1, max_waiting=0),
        )
        thread = _start(instance)
        address = _address(instance)
        slow_events = []

        def slow_request() -> None:
            slow_events.extend(
                client.submit(
                    address,
                    [("slow", SLOW_MATRIX)],
                    timeout=60,
                    budget_per_instance=3.0,
                )
            )

        slow = threading.Thread(target=slow_request, daemon=True)
        try:
            slow.start()
            deadline = time.time() + 10
            while time.time() < deadline:
                metrics = client.fetch_metrics(address, timeout=5)
                if metrics["queue"]["active"] >= 1:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("slow request never took the solve slot")
            with pytest.raises(client.DaemonError) as excinfo:
                list(
                    client.submit(
                        address, [("fast", figure_3())], timeout=10
                    )
                )
            assert excinfo.value.code == REJECT_SATURATED
            assert excinfo.value.retry_after > 0
            slow.join(timeout=60)
            assert not slow.is_alive()
            assert slow_events[-1]["event"] == "batch_done"
        finally:
            _stop(instance, thread)


class TestFailurePaths:
    def test_malformed_override_is_one_clean_error_line(self, gateway):
        for overrides in (
            {"budget_per_instance": "lots"},
            {"members": []},
            {"race": "warp"},
            {"seed": "seven"},
            {"priority": "first"},
        ):
            events = list(
                client.stream_request(
                    _address(gateway),
                    {
                        "op": "solve",
                        "cases": [{"case_id": "a", "rows": ["10", "01"]}],
                        **overrides,
                    },
                    timeout=10,
                )
            )
            assert len(events) == 1
            assert events[0]["event"] == "error"

    def test_bad_json_line_is_answered(self, gateway):
        with socket.create_connection(_address(gateway), timeout=10) as sock:
            sock.sendall(b"{not json\n")
            reply = json.loads(sock.makefile("r").readline())
        assert reply["event"] == "error"
        assert "bad JSON" in reply["error"]

    def test_non_object_request_is_answered(self, gateway):
        with socket.create_connection(_address(gateway), timeout=10) as sock:
            sock.sendall(b'["op", "solve"]\n')
            reply = json.loads(sock.makefile("r").readline())
        assert reply["event"] == "error"
        assert "must be an object" in reply["error"]

    def test_mid_stream_disconnect_leaves_server_healthy(self, gateway):
        address = _address(gateway)
        request = {
            "op": "solve",
            "cases": [
                {"case_id": f"c{i}", "rows": ["110", "011", "101"]}
                for i in range(4)
            ],
        }
        with socket.create_connection(address, timeout=10) as sock:
            sock.sendall(json.dumps(request).encode() + b"\n")
            sock.recv(64)  # read a fragment, then vanish mid-stream
        # The server must shrug it off and keep serving.
        reply = client.request_once(address, {"op": "ping"}, timeout=10)
        assert reply["event"] == "pong"
        deadline = time.time() + 10
        while time.time() < deadline:
            metrics = client.fetch_metrics(address, timeout=5)
            if metrics["connections"]["active"] == 1:
                break  # only the metrics connection itself remains
            time.sleep(0.05)
        else:
            pytest.fail("abandoned connection never released its gauge")


class TestProcessExecutorEndToEnd:
    def test_member_events_stream_before_done(self):
        """Acceptance: the process pool's member_finished events reach a
        remote client live, each before its case's ``done``."""
        instance = SolveGateway(
            AsyncSolveEngine(
                members=("trivial", "packing:4"),
                seed=7,
                workers=2,
                executor="process",
            ),
            port=0,
        )
        thread = _start(instance)
        try:
            cases = [("fig1b", figure_1b()), ("eq2", equation_2())]
            events = list(
                client.submit(
                    _address(instance), cases, timeout=120, tenant="acme"
                )
            )
            assert events[-1]["event"] == "batch_done"
            assert events[-1]["completed"] == 2
            for case_id in ("fig1b", "eq2"):
                kinds = [
                    e["event"]
                    for e in events
                    if e.get("case_id") == case_id
                ]
                assert kinds.count("member_finished") >= 1
                assert kinds.index("member_finished") < kinds.index(
                    "done"
                ), kinds
            stats = client.request_once(
                _address(instance), {"op": "stats"}, timeout=10
            )["stats"]
            assert stats["executor"] == "process"
            assert stats["solved"] == 2
        finally:
            _stop(instance, thread)


class TestRequestParsing:
    def test_validate_overrides_passes_good_values(self):
        overrides = validate_overrides(
            {
                "members": ["trivial", "packing:4"],
                "seed": 11,
                "budget_per_instance": 2,
                "stop_when_optimal": False,
                "race": "concurrent",
                "cases": [],  # not an override; ignored
            }
        )
        assert overrides["members"] == ("trivial", "packing:4")
        assert overrides["budget_per_instance"] == 2.0
        assert overrides["stop_when_optimal"] is False

    def test_validate_overrides_rejects_bad_types(self):
        bad = [
            {"members": "trivial"},
            {"seed": True},
            {"budget_per_member": -1},
            {"stop_when_optimal": "yes"},
            {"race": "warp"},
        ]
        for request in bad:
            with pytest.raises(SolverError):
                validate_overrides(request)

    def test_priority_clamps_to_tenant_class(self):
        tenant = TenantState(TenantConfig("t", priority=5))
        assert parse_priority({}, tenant) == 5
        # May deprioritize itself below its class...
        assert parse_priority({"priority": 9}, tenant) == 9
        # ...but never jump above it.
        assert parse_priority({"priority": 1}, tenant) == 5
        with pytest.raises(SolverError):
            parse_priority({"priority": "high"}, tenant)
