"""Bounded-store lifecycle: limits, metadata, integrity, TTL, index.

Unit-level coverage for the shard-format-v2 machinery in
:mod:`repro.server.shards` — the chaos suite
(``tests/chaos/test_store_chaos.py``) proves the crash story end to
end; these tests pin the individual contracts it is built from.
"""

import hashlib
import json

import pytest

from repro.core.exceptions import SolverError
from repro.server.shards import (
    INDEX_NAME,
    ShardedDiskTier,
    StoreLimits,
    canonical_payload_bytes,
    entry_hash,
    make_entry_meta,
    verify_entry,
)
from repro.service.cache import ResultCache
from repro.service.schema import SOLVER_SCHEMA_VERSION
from repro.utils.clock import FixedClock, installed

pytestmark = pytest.mark.cache


def _key(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


def _payload(tag: str) -> dict:
    return {"type": "portfolio_result", "tag": tag}


class TestStoreLimits:
    def test_validation(self):
        with pytest.raises(SolverError):
            StoreLimits(max_bytes=0)
        with pytest.raises(SolverError):
            StoreLimits(max_entries=-1)
        with pytest.raises(SolverError):
            StoreLimits(ttl_seconds=0)

    def test_round_trip_and_unknown_fields(self):
        limits = StoreLimits(max_bytes=10, ttl_seconds=5.0)
        assert StoreLimits.from_dict(limits.as_dict()).as_dict() == {
            "max_bytes": 10,
            "max_entries": None,
            "ttl_seconds": 5.0,
        }
        with pytest.raises(SolverError):
            StoreLimits.from_dict({"max_bytez": 10})

    def test_legacy_entries_never_ttl_expire(self):
        limits = StoreLimits(ttl_seconds=1.0)
        assert not limits.expired(None, 1e9)
        assert not limits.expired(0, 1e9)
        assert limits.expired(1.0, 1e9)

    def test_persisted_limits_apply_to_later_openers(self, tmp_path):
        root = tmp_path / "store"
        ShardedDiskTier(root, limits=StoreLimits(max_entries=3))
        reopened = ShardedDiskTier(root)  # no explicit limits
        assert reopened.limits.max_entries == 3

    def test_explicit_limits_overwrite_persisted(self, tmp_path):
        root = tmp_path / "store"
        ShardedDiskTier(root, limits=StoreLimits(max_entries=3))
        ShardedDiskTier(root, limits=StoreLimits(max_entries=9))
        assert ShardedDiskTier(root).limits.max_entries == 9

    def test_corrupt_store_config_degrades_to_unbounded(self, tmp_path):
        root = tmp_path / "store"
        ShardedDiskTier(root, limits=StoreLimits(max_entries=3))
        (root / "store-config.json").write_text("{torn")
        reopened = ShardedDiskTier(root)
        assert reopened.limits.max_entries is None
        assert reopened.quarantined == 1
        assert list(root.glob("store-config.json.corrupt-*"))


class TestEntryIntegrity:
    def test_hash_is_schema_version_keyed(self):
        blob = canonical_payload_bytes({"depth": 3})
        assert entry_hash(blob, 1) != entry_hash(blob, 2)

    def test_verify_uses_stored_schema_version(self):
        # An entry hashed under an older schema era must verify against
        # that era, not the reader's — otherwise every schema bump
        # would quarantine the whole store.
        payload = {"depth": 3}
        old = SOLVER_SCHEMA_VERSION - 1
        meta = {
            "h": entry_hash(canonical_payload_bytes(payload), old),
            "v": old,
        }
        assert verify_entry(payload, meta)

    def test_legacy_meta_passes_trivially(self):
        assert verify_entry({"depth": 3}, {})

    def test_tampered_payload_is_quarantined_on_read(self, tmp_path):
        tier = ShardedDiskTier(tmp_path / "store")
        key = _key("victim")
        bystander = _key("bystander")
        tier.store({key: _payload("victim"), bystander: _payload("bystander")})
        shard = tier.shard_path(key)
        raw = json.loads(shard.read_text())
        raw["entries"][key]["tag"] = "tampered"
        shard.write_text(json.dumps(raw))

        assert tier.get(key) is None
        assert tier.integrity_failures == 1
        assert tier.quarantined == 1
        assert list(
            (tmp_path / "store").glob(f"entry-{key[:16]}.corrupt-*")
        )
        # Only the damaged entry died; shard-mates are untouched.
        if bystander in json.loads(shard.read_text()).get("entries", {}):
            assert tier.get(bystander) == _payload("bystander")
        # The entry is gone from the shard, so the next read is a
        # plain miss, not a second quarantine.
        assert tier.get(key) is None
        assert tier.integrity_failures == 1

    def test_quarantine_record_preserves_evidence(self, tmp_path):
        tier = ShardedDiskTier(tmp_path / "store")
        key = _key("evidence")
        tier.store({key: _payload("evidence")})
        shard = tier.shard_path(key)
        raw = json.loads(shard.read_text())
        raw["entries"][key]["tag"] = "tampered"
        shard.write_text(json.dumps(raw))
        tier.get(key)
        record_path = next(
            (tmp_path / "store").glob(f"entry-{key[:16]}.corrupt-*")
        )
        record = json.loads(record_path.read_text())
        assert record["key"] == key
        assert record["entry"]["tag"] == "tampered"
        assert "integrity" in record["reason"]


class TestTtlOnRead:
    def test_expired_entry_reads_as_miss(self, tmp_path):
        clock = FixedClock(1_000.0)
        with installed(clock):
            tier = ShardedDiskTier(
                tmp_path / "store", limits=StoreLimits(ttl_seconds=60.0)
            )
            key = _key("aging")
            tier.store({key: _payload("aging")})
            clock.advance(59.0)
            assert tier.get(key) == _payload("aging")
            clock.advance(2.0)
            assert tier.get(key) is None
            # Refused, not destroyed: only GC removes it.
            assert key in tier.keys()


class TestLegacyShards:
    @staticmethod
    def _write_v1_shard(tier, key, payload):
        shard = tier.shard_path(key)
        shard.parent.mkdir(parents=True, exist_ok=True)
        shard.write_text(
            json.dumps(
                {
                    "version": 1,
                    "type": "portfolio_cache_shard",
                    "entries": {key: payload},
                }
            )
        )

    def test_v1_entries_serve_without_meta(self, tmp_path):
        tier = ShardedDiskTier(tmp_path / "store")
        key = _key("legacy")
        self._write_v1_shard(tier, key, _payload("legacy"))
        assert tier.get(key) == _payload("legacy")

    def test_rewrite_backfills_meta(self, tmp_path):
        tier = ShardedDiskTier(tmp_path / "store")
        legacy_key = _key("legacy")
        self._write_v1_shard(tier, legacy_key, _payload("legacy"))
        # Any merge into the same shard stamps the stragglers.
        sibling = next(
            _key(f"sib-{i}")
            for i in range(1000)
            if tier.shard_path(_key(f"sib-{i}"))
            == tier.shard_path(legacy_key)
        )
        tier.store({sibling: _payload("sibling")})
        raw = json.loads(tier.shard_path(legacy_key).read_text())
        assert raw["version"] == 2
        assert legacy_key in raw["meta"]
        assert raw["meta"][legacy_key]["h"]


class TestIndex:
    def test_index_matches_scan(self, tmp_path):
        tier = ShardedDiskTier(tmp_path / "store")
        entries = {_key(f"i-{n}"): _payload(f"i-{n}") for n in range(8)}
        tier.store(entries)
        assert tier.entry_count() == 8
        assert tier.bytes_used() == sum(
            len(canonical_payload_bytes(p)) for p in entries.values()
        )

    def test_missing_index_rebuilds_from_shards(self, tmp_path):
        root = tmp_path / "store"
        tier = ShardedDiskTier(root)
        tier.store({_key("a"): _payload("a"), _key("b"): _payload("b")})
        (root / INDEX_NAME).unlink()
        reopened = ShardedDiskTier(root)
        assert reopened.entry_count() == 2

    def test_stale_index_rebuilds_under_verify(self, tmp_path):
        root = tmp_path / "store"
        tier = ShardedDiskTier(root)
        tier.store({_key("a"): _payload("a")})
        # A foreign writer replaces the index with a fabricated one.
        (root / INDEX_NAME).write_text(
            json.dumps(
                {
                    "type": "portfolio_cache_index",
                    "version": 1,
                    "entries": {},
                    "shards": {},
                }
            )
        )
        fresh = ShardedDiskTier(root)
        assert fresh.load_index(verify=True)["entries"]
        assert fresh.entry_count() == 1

    def test_touch_stamps_batch_into_index(self, tmp_path):
        clock = FixedClock(1_000.0)
        with installed(clock):
            tier = ShardedDiskTier(tmp_path / "store")
            key = _key("touched")
            tier.store({key: _payload("touched")})
            clock.advance(50.0)
            tier.get(key)
            tier.sync_index()
            index = tier.load_index()
            assert index["entries"][key]["a"] == 1_050.0


class TestResultCacheLifecycleStats:
    def test_counters_surface_through_refresh(self, tmp_path):
        cache = ResultCache.sharded(
            tmp_path / "store", max_bytes=1_000_000
        )
        from repro.core.binary_matrix import BinaryMatrix
        from repro.service.portfolio import solve_portfolio

        matrix = BinaryMatrix([0b11, 0b01], 2)
        cache.put(matrix, solve_portfolio(matrix, members=("trivial",)))
        cache.flush()
        stats = cache.refresh_stats()
        assert stats.bytes_used > 0
        assert stats.gc_runs == 0
        assert stats.integrity_failures == 0
        assert set(stats.as_dict()) >= {
            "store_evictions",
            "gc_runs",
            "integrity_failures",
            "bytes_used",
        }

    def test_sharded_limits_kwargs_persist(self, tmp_path):
        root = tmp_path / "store"
        ResultCache.sharded(root, max_entries=5, ttl_seconds=60.0)
        tier = ShardedDiskTier(root)
        assert tier.limits.max_entries == 5
        assert tier.limits.ttl_seconds == 60.0


class TestMetaHelpers:
    def test_make_entry_meta_is_clock_driven(self):
        with installed(FixedClock(123.0)):
            meta = make_entry_meta({"depth": 1})
        assert meta["c"] == 123.0
        assert meta["a"] == 123.0
        assert meta["v"] == SOLVER_SCHEMA_VERSION
        assert verify_entry({"depth": 1}, meta)
