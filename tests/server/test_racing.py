"""Intra-instance racing: equivalence with sequential mode + cancellation.

The acceptance contract: ``race="concurrent"`` must produce
byte-identical winner/optimality provenance (the
``race_provenance()`` projection) to sequential mode on the
cross-solver equivalence suite, while actually cancelling losers.
"""

import json
import threading

import pytest

from repro.core.exceptions import SolverError
from repro.core.paper_matrices import (
    equation_2,
    figure_1b,
    figure_3,
    section_2_nonbinary_example,
)
from repro.server.racing import RaceToken, race_members
from repro.service.portfolio import member_seed, solve_portfolio
from tests.conftest import SERVICE_SEED

MEMBERS = ("trivial", "packing:8", "sap", "branch_bound")

PAPER_CASES = [
    ("figure_1b", figure_1b()),
    ("equation_2", equation_2()),
    ("figure_3", figure_3()),
    ("section_2", section_2_nonbinary_example()),
]


def _race_bytes(result):
    return json.dumps(result.race_provenance(), sort_keys=True).encode()


class TestEquivalence:
    def test_byte_identical_on_paper_cases(self):
        for case_id, matrix in PAPER_CASES:
            sequential = solve_portfolio(
                matrix, members=MEMBERS, seed=SERVICE_SEED,
                race="sequential",
            )
            concurrent = solve_portfolio(
                matrix, members=MEMBERS, seed=SERVICE_SEED,
                race="concurrent",
            )
            assert _race_bytes(sequential) == _race_bytes(concurrent), (
                case_id
            )
            assert concurrent.optimal, case_id
            concurrent.partition.validate(matrix)

    def test_byte_identical_on_service_suite(self, service_matrices):
        for case_id, matrix in service_matrices:
            sequential = solve_portfolio(
                matrix, members=MEMBERS, seed=SERVICE_SEED,
                race="sequential",
            )
            concurrent = solve_portfolio(
                matrix, members=MEMBERS, seed=SERVICE_SEED,
                race="concurrent",
            )
            assert _race_bytes(sequential) == _race_bytes(concurrent), (
                case_id
            )
            concurrent.partition.validate(matrix)

    def test_concurrent_outcomes_cover_every_member(self):
        result = solve_portfolio(
            figure_1b(), members=MEMBERS, seed=SERVICE_SEED,
            race="concurrent",
        )
        assert [o.name for o in result.outcomes] == list(MEMBERS)
        # Losers are either skipped (pre-race certification), finished,
        # or cancelled — but always present and attributed.
        for outcome in result.outcomes:
            assert outcome.name in MEMBERS

    def test_repeated_concurrent_runs_are_stable(self):
        matrix = figure_1b()
        baselines = [
            _race_bytes(
                solve_portfolio(
                    matrix, members=MEMBERS, seed=SERVICE_SEED,
                    race="concurrent",
                )
            )
            for _ in range(3)
        ]
        assert len(set(baselines)) == 1

    def test_bad_race_mode_rejected(self):
        with pytest.raises(SolverError):
            solve_portfolio(figure_3(), members=MEMBERS, race="turbo")


class TestCancellation:
    def test_loser_is_cancelled_or_agrees(self):
        """When SAP certifies, branch_bound either finished with the
        same optimum or was cancelled mid-search — never a third state."""
        result = solve_portfolio(
            figure_1b(),
            members=("packing:8", "sap", "branch_bound"),
            seed=SERVICE_SEED,
            race="concurrent",
        )
        assert result.optimal
        loser = result.member("branch_bound")
        if loser.proved_optimal:
            assert loser.depth == result.depth
        else:
            assert loser.error is not None
            assert "cancelled" in loser.error or "budget" in loser.error

    def test_external_cancel_skips_everything(self):
        token = RaceToken()
        token.set()
        result = solve_portfolio(
            figure_3(),
            members=MEMBERS,
            seed=SERVICE_SEED,
            race="concurrent",
            cancel=token,
        )
        # All members cancelled -> trivial fallback still yields a
        # valid partition.
        result.partition.validate(figure_3())
        assert result.winner == "trivial"
        for name in MEMBERS:
            assert result.member(name).skipped

    def test_external_cancel_skips_sequential_too(self):
        token = RaceToken()
        token.set()
        result = solve_portfolio(
            figure_3(),
            members=("packing:4", "sap"),
            seed=SERVICE_SEED,
            race="sequential",
            cancel=token,
        )
        result.partition.validate(figure_3())
        assert all(o.skipped for o in result.outcomes[:2])

    def test_race_token_chains_to_parent(self):
        parent = RaceToken()
        child = RaceToken(parent=parent)
        assert not child.is_set()
        parent.set()
        assert child.is_set()
        # Setting a child never propagates upward.
        other = RaceToken(parent=RaceToken())
        other.set()
        assert other.is_set()


class TestRaceMembers:
    def test_outcomes_in_spec_order(self):
        matrix = figure_1b()
        outcomes = race_members(
            matrix,
            ("sap", "branch_bound"),
            seeds={
                name: member_seed(SERVICE_SEED, name)
                for name in ("sap", "branch_bound")
            },
        )
        assert [o.name for o in outcomes] == ["sap", "branch_bound"]
        assert outcomes[0].proved_optimal

    def test_single_member_runs_inline(self):
        matrix = figure_3()
        before = threading.active_count()
        outcomes = race_members(matrix, ("sap",))
        assert threading.active_count() == before
        assert len(outcomes) == 1
        assert outcomes[0].proved_optimal

    def test_empty_race_is_empty(self):
        assert race_members(figure_3(), ()) == []

    def test_on_member_callback_order_sequential(self):
        seen = []
        solve_portfolio(
            figure_3(),
            members=("trivial", "packing:4", "sap"),
            seed=SERVICE_SEED,
            stop_when_optimal=False,
            on_member=lambda outcome: seen.append(outcome.name),
        )
        assert seen == ["trivial", "packing:4", "sap"]

    def test_on_member_callback_concurrent_covers_members(self):
        seen = []
        solve_portfolio(
            figure_3(),
            members=MEMBERS,
            seed=SERVICE_SEED,
            race="concurrent",
            on_member=lambda outcome: seen.append(outcome.name),
        )
        assert seen == list(MEMBERS)
