"""Traffic-policy layer: quotas, tenant identity, admission control.

Everything here runs against fake clocks and in-memory state — no
sockets, no engine.  The gateway round trips that exercise the same
policy over a real connection live in ``test_gateway.py``.
"""

import asyncio

import pytest

from repro.core.exceptions import SolverError
from repro.server.tenancy import (
    DEFAULT_TENANT,
    REJECT_DENIED,
    REJECT_QUOTA,
    REJECT_SATURATED,
    REJECT_TENANT_SATURATED,
    REJECT_UNKNOWN_TENANT,
    AdmissionController,
    RequestRejected,
    ServerMetrics,
    TenantConfig,
    TenantRegistry,
    TenantState,
)
from repro.service.budget import QuotaWindow


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# QuotaWindow (the rolling ledger tenancy is built on)
# ----------------------------------------------------------------------
class TestQuotaWindow:
    def test_unlimited_quota_never_exhausts(self):
        clock = FakeClock()
        window = QuotaWindow(None, clock=clock)
        window.charge("a", 1e6)
        assert window.remaining() is None
        assert not window.exhausted()

    def test_spend_accumulates_within_window(self):
        clock = FakeClock()
        window = QuotaWindow(10.0, window_seconds=60.0, clock=clock)
        window.charge("a", 3.0)
        window.charge("b", 4.0)
        assert window.spent() == pytest.approx(7.0)
        assert window.remaining() == pytest.approx(3.0)
        assert not window.exhausted()
        window.charge("c", 5.0)
        assert window.exhausted()

    def test_window_roll_refills_quota(self):
        clock = FakeClock()
        window = QuotaWindow(5.0, window_seconds=60.0, clock=clock)
        window.charge("a", 5.0)
        assert window.exhausted()
        clock.advance(59.9)
        assert window.exhausted()
        clock.advance(0.2)
        assert not window.exhausted()
        assert window.spent() == 0.0

    def test_lifetime_totals_survive_rolls(self):
        clock = FakeClock()
        window = QuotaWindow(5.0, window_seconds=10.0, clock=clock)
        window.charge("a", 2.0)
        clock.advance(11.0)
        window.charge("b", 3.0)
        assert window.spent() == pytest.approx(3.0)
        assert window.lifetime_seconds == pytest.approx(5.0)
        assert window.lifetime_charges == 2

    def test_retry_after_counts_down_to_the_roll(self):
        clock = FakeClock()
        window = QuotaWindow(1.0, window_seconds=30.0, clock=clock)
        clock.advance(10.0)
        assert window.retry_after() == pytest.approx(20.0)
        clock.advance(25.0)  # rolls; fresh window just began
        assert window.retry_after() == pytest.approx(30.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(SolverError):
            QuotaWindow(-1.0)
        with pytest.raises(SolverError):
            QuotaWindow(1.0, window_seconds=0.0)

    def test_as_dict_shape(self):
        window = QuotaWindow(2.0, clock=FakeClock())
        window.charge("a", 0.5)
        payload = window.as_dict()
        assert payload["quota_seconds"] == 2.0
        assert payload["window_spent"] == pytest.approx(0.5)
        assert payload["window_remaining"] == pytest.approx(1.5)


# ----------------------------------------------------------------------
# Tenant configuration and registry
# ----------------------------------------------------------------------
class TestTenantConfig:
    def test_validation(self):
        with pytest.raises(SolverError):
            TenantConfig("")
        with pytest.raises(SolverError):
            TenantConfig("t", quota_window_seconds=0)
        with pytest.raises(SolverError):
            TenantConfig("t", quota_seconds=-1)
        with pytest.raises(SolverError):
            TenantConfig("t", max_in_flight=0)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(SolverError, match="unknown keys"):
            TenantConfig.from_dict("t", {"priotity": 1})

    def test_from_dict_builds_config(self):
        config = TenantConfig.from_dict(
            "acme", {"priority": 1, "quota_seconds": 30, "key": "s3cret"}
        )
        assert config.priority == 1
        assert config.quota_seconds == 30
        assert config.key == "s3cret"


class TestTenantRegistry:
    def test_anonymous_default(self):
        registry = TenantRegistry()
        state = registry.resolve(None)
        assert state.config.name == DEFAULT_TENANT
        # Same identity resolves to the same live state.
        assert registry.resolve(None) is state

    def test_unknown_tenants_materialize_under_default_policy(self):
        registry = TenantRegistry(
            default=TenantConfig(DEFAULT_TENANT, priority=20)
        )
        state = registry.resolve("walk-in")
        assert state.config.name == "walk-in"
        assert state.config.priority == 20

    def test_closed_registry_rejects_unknown(self):
        registry = TenantRegistry(
            [TenantConfig("acme")], allow_unknown=False
        )
        assert registry.resolve("acme").config.name == "acme"
        with pytest.raises(RequestRejected) as excinfo:
            registry.resolve("stranger")
        assert excinfo.value.code == REJECT_UNKNOWN_TENANT

    def test_key_must_match(self):
        registry = TenantRegistry([TenantConfig("acme", key="s3cret")])
        assert registry.resolve("acme", "s3cret").config.name == "acme"
        for bad in (None, "wrong"):
            with pytest.raises(RequestRejected) as excinfo:
                registry.resolve("acme", bad)
            assert excinfo.value.code == REJECT_DENIED

    def test_duplicate_tenants_rejected(self):
        with pytest.raises(SolverError, match="duplicate"):
            TenantRegistry([TenantConfig("a"), TenantConfig("a")])

    def test_from_mapping_round_trip(self):
        registry = TenantRegistry.from_mapping(
            {
                "allow_unknown": False,
                "default": {"priority": 15},
                "tenants": {
                    "acme": {"priority": 1, "quota_seconds": 30},
                    "guest": {"max_in_flight": 1},
                },
            }
        )
        assert registry.resolve("acme").config.priority == 1
        assert registry.resolve("guest").config.max_in_flight == 1
        with pytest.raises(RequestRejected):
            registry.resolve("nobody")

    def test_from_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text('{"tenants": {"acme": {"priority": 2}}}')
        registry = TenantRegistry.from_file(path)
        assert registry.resolve("acme").config.priority == 2

    def test_from_file_errors_are_clear(self, tmp_path):
        with pytest.raises(SolverError, match="cannot read"):
            TenantRegistry.from_file(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(SolverError, match="bad JSON"):
            TenantRegistry.from_file(bad)

    def test_usage_reports_every_tenant(self):
        registry = TenantRegistry([TenantConfig("a"), TenantConfig("b")])
        usage = registry.usage()
        assert sorted(usage) == ["a", "b"]
        assert usage["a"]["requests"] == 0


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
def _tenant(name: str = "t", **kwargs) -> TenantState:
    return TenantState(TenantConfig(name, **kwargs))


class TestAdmissionController:
    async def test_admits_up_to_the_window(self):
        admission = AdmissionController(max_in_flight=2, max_waiting=0)
        tenant = _tenant()
        await admission.admit(tenant, 10)
        await admission.admit(tenant, 10)
        assert admission.snapshot()["active"] == 2
        with pytest.raises(RequestRejected) as excinfo:
            await admission.admit(tenant, 10)
        assert excinfo.value.code == REJECT_SATURATED
        assert excinfo.value.retry_after > 0

    async def test_released_slot_goes_to_best_priority_waiter(self):
        admission = AdmissionController(max_in_flight=1, max_waiting=4)
        tenant = _tenant()
        await admission.admit(tenant, 10)

        order = []

        async def waiter(label: str, priority: int) -> None:
            await admission.admit(tenant, priority)
            order.append(label)

        # Submission order low-pri first; wake order must be by class.
        tasks = [
            asyncio.create_task(waiter("low", 20)),
            asyncio.create_task(waiter("high", 1)),
            asyncio.create_task(waiter("mid", 10)),
        ]
        await asyncio.sleep(0)  # park all three in the heap
        assert admission.snapshot()["waiting"] == 3

        for expected in ("high", "mid", "low"):
            admission.release(tenant, 0.01)
            await asyncio.sleep(0)
            assert order[-1] == expected
        for task in tasks:
            await task

    async def test_arrival_order_breaks_priority_ties(self):
        admission = AdmissionController(max_in_flight=1, max_waiting=4)
        tenant = _tenant()
        await admission.admit(tenant, 10)
        order = []

        async def waiter(label: str) -> None:
            await admission.admit(tenant, 5)
            order.append(label)

        tasks = [
            asyncio.create_task(waiter("first")),
            asyncio.create_task(waiter("second")),
        ]
        await asyncio.sleep(0)
        admission.release(tenant, 0.01)
        admission.release(tenant, 0.01)
        await asyncio.sleep(0)
        assert order == ["first", "second"]
        for task in tasks:
            await task

    async def test_tenant_in_flight_cap(self):
        admission = AdmissionController(max_in_flight=8, max_waiting=8)
        greedy = _tenant("greedy", max_in_flight=1)
        await admission.admit(greedy, 10)
        with pytest.raises(RequestRejected) as excinfo:
            await admission.admit(greedy, 10)
        assert excinfo.value.code == REJECT_TENANT_SATURATED
        assert greedy.rejected == 1
        # Other tenants are unaffected by one tenant's cap.
        await admission.admit(_tenant("other"), 10)

    async def test_quota_exhaustion_rejects_with_refill_hint(self):
        admission = AdmissionController()
        tenant = _tenant("metered", quota_seconds=1.0)
        tenant.charge("solve", 2.0)
        with pytest.raises(RequestRejected) as excinfo:
            await admission.admit(tenant, 10)
        assert excinfo.value.code == REJECT_QUOTA
        assert 0 <= excinfo.value.retry_after <= 60.0

    async def test_release_updates_service_ewma(self):
        admission = AdmissionController(max_in_flight=1)
        tenant = _tenant()
        await admission.admit(tenant, 10)
        admission.release(tenant, 2.0)
        assert admission.snapshot()["service_seconds_ewma"] == 2.0
        await admission.admit(tenant, 10)
        admission.release(tenant, 4.0)
        # EWMA with alpha 0.2: 2.0 + 0.2 * (4.0 - 2.0)
        assert admission.snapshot()["service_seconds_ewma"] == pytest.approx(
            2.4
        )

    async def test_cancelled_waiter_does_not_eat_the_slot(self):
        admission = AdmissionController(max_in_flight=1, max_waiting=2)
        tenant = _tenant()
        await admission.admit(tenant, 10)

        async def waiter() -> None:
            await admission.admit(tenant, 10)

        task = asyncio.create_task(waiter())
        await asyncio.sleep(0)
        task.cancel()
        await asyncio.sleep(0)
        # The freed slot must skip the dead waiter and return to the pool.
        admission.release(tenant, 0.01)
        assert admission.snapshot()["active"] == 0
        await admission.admit(tenant, 10)

    def test_rejects_bad_parameters(self):
        with pytest.raises(SolverError):
            AdmissionController(max_in_flight=0)
        with pytest.raises(SolverError):
            AdmissionController(max_waiting=-1)

    def test_rejection_event_wire_shape(self):
        exc = RequestRejected(
            "busy", code=REJECT_SATURATED, retry_after=1.23456
        )
        assert exc.as_event() == {
            "event": "error",
            "error": "busy",
            "code": REJECT_SATURATED,
            "retry_after": 1.235,
        }


# ----------------------------------------------------------------------
# Shared metrics
# ----------------------------------------------------------------------
class TestServerMetrics:
    def test_gauge_and_lifetime_counter_are_separate(self):
        metrics = ServerMetrics()
        metrics.connection_opened()
        metrics.connection_opened()
        metrics.connection_closed()
        assert metrics.connections_active == 1
        assert metrics.connections_total == 2
        payload = metrics.as_dict()
        assert payload["connections"]["active"] == 1
        assert payload["connections"]["total"] == 2

    def test_terminal_counters(self):
        metrics = ServerMetrics()
        metrics.record_terminal("done", from_cache=False)
        metrics.record_terminal("done", from_cache=True)
        metrics.record_terminal("failed", from_cache=False)
        metrics.record_terminal("cancelled", from_cache=False)
        cases = metrics.as_dict()["cases"]
        assert cases["completed"] == 2
        assert cases["from_cache"] == 1
        assert cases["failed"] == 1
        assert cases["cancelled"] == 1
