"""AsyncSolveEngine: streaming order, equivalence, backpressure, cancel.

Coroutine tests run under plain pytest through the asyncio.run hook in
tests/conftest.py (no pytest-asyncio).
"""

import asyncio

import pytest

from repro.benchgen.random_matrices import random_matrix
from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import SolverError
from repro.server.engine import (
    CANCELLED,
    DONE,
    FAILED,
    MEMBER_FINISHED,
    QUEUED,
    STARTED,
    AsyncSolveEngine,
    SolveEvent,
)
from repro.service.batch import BatchItem, solve_batch
from repro.service.cache import ResultCache

MEMBERS = ("trivial", "packing:4", "sap")

SLOW_MATRIX = random_matrix(12, 12, 0.6, seed=3)
"""SAP needs far more than the per-member budget here, so with a budget
of B seconds this instance reliably takes ~B seconds — a deliberately
skewed suite's slow end, bounded so the test stays fast."""

FAST_MATRICES = [
    BinaryMatrix.from_strings(["10", "01"]),
    BinaryMatrix.from_strings(["11", "11"]),
    BinaryMatrix.from_strings(["110", "011", "111"]),
]


async def _collect(engine, cases, **overrides):
    events = []
    async for event in engine.stream(cases, **overrides):
        events.append(event)
    return events


def _kinds(events, case_id):
    return [e.kind for e in events if e.case_id == case_id]


class TestStreamingOrder:
    async def test_per_case_event_grammar(self, service_matrices):
        async with AsyncSolveEngine(
            members=MEMBERS, seed=7, workers=2
        ) as engine:
            events = await _collect(engine, service_matrices)
        for case_id, _ in service_matrices:
            kinds = _kinds(events, case_id)
            assert kinds[0] == QUEUED
            assert kinds[1] == STARTED
            assert kinds[-1] == DONE
            members_seen = [
                e.member
                for e in events
                if e.case_id == case_id and e.kind == MEMBER_FINISHED
            ]
            assert members_seen == list(MEMBERS)

    async def test_queued_events_in_submission_order(self, service_matrices):
        async with AsyncSolveEngine(
            members=("trivial",), seed=7, workers=1
        ) as engine:
            events = await _collect(engine, service_matrices)
        queued = [e.case_id for e in events if e.kind == QUEUED]
        assert queued == [case_id for case_id, _ in service_matrices]

    async def test_first_done_beats_the_slowest_instance(self):
        """Acceptance: a skewed suite yields its first ``done`` long
        before the slow instance finishes — streaming, not a barrier."""
        cases = [BatchItem("slow", SLOW_MATRIX, ("packing:4", "sap"))] + [
            BatchItem(f"fast-{i}", matrix, ("trivial",))
            for i, matrix in enumerate(FAST_MATRICES)
        ]
        async with AsyncSolveEngine(
            seed=7, workers=2, budget_per_member=1.5
        ) as engine:
            done_order = []
            async for event in engine.stream(cases):
                if event.kind == DONE:
                    done_order.append(event.case_id)
        # The slow case was submitted first but must finish last; every
        # fast case streams out while it is still solving.
        assert done_order[-1] == "slow"
        assert set(done_order[:-1]) == {"fast-0", "fast-1", "fast-2"}

    async def test_backpressure_bounds_in_flight(self, service_matrices):
        workers = 2
        async with AsyncSolveEngine(
            members=MEMBERS, seed=7, workers=workers
        ) as engine:
            in_flight = 0
            peak = 0
            async for event in engine.stream(service_matrices):
                if event.kind == STARTED:
                    in_flight += 1
                    peak = max(peak, in_flight)
                elif event.terminal:
                    in_flight -= 1
            assert peak <= workers
            assert peak >= 1


class TestProcessExecutor:
    async def test_member_events_cross_the_process_boundary(self):
        """The bug this engine shipped with: ``executor="process"``
        solved correctly but silently swallowed every member_finished.
        Each case must now stream its member events live, all of them
        before its terminal event."""
        cases = [
            ("a", FAST_MATRICES[2]),
            ("b", FAST_MATRICES[0]),
        ]
        async with AsyncSolveEngine(
            members=("trivial", "packing:4"),
            seed=7,
            workers=2,
            executor="process",
        ) as engine:
            events = await _collect(engine, cases)
        for case_id, _ in cases:
            kinds = _kinds(events, case_id)
            assert kinds[0] == QUEUED
            assert kinds[-1] == DONE
            members_seen = [
                e.member
                for e in events
                if e.case_id == case_id and e.kind == MEMBER_FINISHED
            ]
            assert members_seen == ["trivial", "packing:4"]

    async def test_process_stream_matches_thread_provenance(self):
        cases = [("a", FAST_MATRICES[2])]
        async with AsyncSolveEngine(
            members=("trivial", "packing:4"), seed=7, executor="process"
        ) as engine:
            via_process = await engine.solve(cases)
        async with AsyncSolveEngine(
            members=("trivial", "packing:4"), seed=7, executor="thread"
        ) as engine:
            via_thread = await engine.solve(cases)
        assert via_process[0].provenance(
            include_timing=False
        ) == via_thread[0].provenance(include_timing=False)

    async def test_win_and_cache_hit_rates(self, tmp_path):
        cache = ResultCache(capacity=8, path=tmp_path / "cache.json")
        async with AsyncSolveEngine(
            members=("trivial",), seed=7, cache=cache
        ) as engine:
            await _collect(engine, [("a", FAST_MATRICES[0])])
            await _collect(engine, [("a", FAST_MATRICES[0])])
            stats = engine.stats()
        assert stats["solved"] == 1
        assert stats["cache_hits"] == 1
        assert stats["cache_hit_rate"] == 0.5
        assert stats["wins"] == {"trivial": 1}
        assert stats["win_rates"] == {"trivial": 1.0}


class TestBatchEquivalence:
    async def test_stream_matches_solve_batch_provenance(
        self, service_matrices, service_seed
    ):
        """The async engine must be a *transport*, not a different
        solver: canonical provenance equals the barriered batch."""
        batch = solve_batch(
            service_matrices, members=MEMBERS, seed=service_seed
        )
        async with AsyncSolveEngine(
            members=MEMBERS, seed=service_seed, workers=2
        ) as engine:
            records = await engine.solve(service_matrices)
        assert [r.case_id for r in records] == [r.case_id for r in batch]
        for ours, theirs in zip(records, batch):
            assert (
                ours.provenance(include_timing=False)
                == theirs.provenance(include_timing=False)
            )

    async def test_cache_round_trip_and_flush(
        self, tmp_path, service_matrices, service_seed
    ):
        cache = ResultCache(capacity=64, path=tmp_path / "cache.json")
        async with AsyncSolveEngine(
            members=MEMBERS, seed=service_seed, workers=1, cache=cache
        ) as engine:
            cold = await _collect(engine, service_matrices)
            warm = await _collect(engine, service_matrices)
        assert all(
            not e.from_cache for e in cold if e.kind == DONE
        )
        assert all(e.from_cache for e in warm if e.kind == DONE)
        # Cache hits skip the executor entirely: no started events.
        assert not [e for e in warm if e.kind == STARTED]
        assert (tmp_path / "cache.json").exists()

    async def test_per_stream_overrides(self, service_matrices):
        async with AsyncSolveEngine(
            members=("trivial",), seed=7, workers=1
        ) as engine:
            events = await _collect(
                engine,
                service_matrices[:2],
                members=("trivial", "packing:2"),
            )
        finished = [e.member for e in events if e.kind == MEMBER_FINISHED]
        assert "packing:2" in finished

    async def test_failure_event_instead_of_hang(self):
        async with AsyncSolveEngine(members=MEMBERS, seed=7) as engine:
            # A zero-row matrix with mismatched masks cannot be built,
            # so fail inside the stream via a bogus member override.
            events = []
            with pytest.raises(SolverError):
                async for event in engine.stream(
                    [("x", FAST_MATRICES[0])], members=("magic:3",)
                ):
                    events.append(event)


class TestCancellation:
    async def test_cancel_before_start(self, service_matrices):
        async with AsyncSolveEngine(
            members=MEMBERS, seed=7, workers=1
        ) as engine:
            events = []
            cancelled = False
            async for event in engine.stream(service_matrices):
                events.append(event)
                if not cancelled and event.kind == QUEUED:
                    # Cancel the *last* case before workers=1 reaches it.
                    target = service_matrices[-1][0]
                    assert engine.cancel(target)
                    cancelled = True
            last_id = service_matrices[-1][0]
            kinds = _kinds(events, last_id)
            assert kinds[-1] == CANCELLED
            assert STARTED not in kinds

    async def test_cancel_mid_solve(self):
        # branch_bound polls its deadline every 64 nodes, so a running
        # instance aborts promptly once cancelled.
        cases = [BatchItem("grind", SLOW_MATRIX, ("branch_bound",))]
        async with AsyncSolveEngine(
            seed=7, workers=1, budget_per_member=30.0
        ) as engine:

            async def consume():
                events = []
                async for event in engine.stream(cases):
                    events.append(event)
                    if event.kind == STARTED:
                        assert engine.cancel(event.case_id)
                return events

            events = await asyncio.wait_for(consume(), timeout=60)
        kinds = [e.kind for e in events]
        assert kinds[-1] == CANCELLED
        assert STARTED in kinds

    async def test_cancel_unknown_case_is_false(self):
        engine = AsyncSolveEngine(members=MEMBERS)
        assert engine.cancel("no-such-case") is False

    def test_cancellation_affected_policy(self):
        """Late cancels keep complete results; true aborts drop them."""
        from repro.server.engine import cancellation_affected
        from repro.server.racing import RaceToken
        from repro.service.portfolio import solve_portfolio

        # Untouched solve: complete, must be kept (cached / done).
        clean = solve_portfolio(
            FAST_MATRICES[2], members=MEMBERS, seed=7
        )
        assert not cancellation_affected(clean)

        # Cancel observed before members ran: skipped markers -> affected.
        token = RaceToken()
        token.set()
        aborted = solve_portfolio(
            FAST_MATRICES[2], members=MEMBERS, seed=7, cancel=token
        )
        assert cancellation_affected(aborted)

    async def test_stats_shape(self):
        engine = AsyncSolveEngine(members=MEMBERS, workers=3)
        stats = engine.stats()
        assert stats["workers"] == 3
        assert stats["members"] == list(MEMBERS)
        assert stats["active"] == 0


class TestValidation:
    def test_bad_workers_rejected(self):
        with pytest.raises(SolverError):
            AsyncSolveEngine(workers=0)

    def test_bad_race_rejected(self):
        with pytest.raises(SolverError):
            AsyncSolveEngine(race="warp")

    def test_bad_executor_rejected(self):
        with pytest.raises(SolverError):
            AsyncSolveEngine(executor="fiber")

    def test_bad_members_rejected(self):
        with pytest.raises(SolverError):
            AsyncSolveEngine(members=("magic:3",))

    def test_event_wire_form(self):
        event = SolveEvent(kind=QUEUED, case_id="a")
        assert event.as_dict() == {"event": "queued", "case_id": "a"}
        failed = SolveEvent(kind=FAILED, case_id="b", error="boom")
        assert failed.as_dict()["error"] == "boom"
        assert failed.terminal
