"""GC planning, journal protocol, and compaction — in-process units.

The chaos suite kills real GC subprocesses; these tests pin the
deterministic pieces: eviction *order* (TTL-expired first, then LRU,
legacy entries before anything stamped), stamp-matched sweeps that
spare refreshed entries, journal resume from each state, and the
compaction inventory (orphan tempfiles, aged quarantine files, empty
shards).
"""

import hashlib
import json

import pytest

from repro.server import store_gc
from repro.server.shards import ShardedDiskTier, StoreLimits
from repro.utils.clock import FixedClock, installed

pytestmark = pytest.mark.cache


def _key(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


def _payload(tag: str, filler: int = 50) -> dict:
    return {"tag": tag, "filler": "x" * filler}


def _bounded(root, **limits) -> ShardedDiskTier:
    return ShardedDiskTier(root, limits=StoreLimits(**limits))


class TestEvictionOrder:
    def test_lru_goes_first(self, tmp_path):
        clock = FixedClock(1_000.0)
        with installed(clock):
            tier = ShardedDiskTier(tmp_path / "store")
            for tag in ("old", "mid", "new"):
                tier.store({_key(tag): _payload(tag)})
                clock.advance(10.0)
            tier.get(_key("old"))  # now the most recently used
            tier.sync_index()
            tier.limits = StoreLimits(max_entries=1)
            report = store_gc.run_gc(tier)
        assert set(report.evicted_keys) == {_key("mid"), _key("new")}
        assert tier.keys() == {_key("old")}

    def test_expired_evicted_even_under_cap(self, tmp_path):
        clock = FixedClock(1_000.0)
        with installed(clock):
            tier = _bounded(
                tmp_path / "store", max_entries=100, ttl_seconds=30.0
            )
            tier.store({_key("stale"): _payload("stale")})
            clock.advance(60.0)
            tier.store({_key("fresh"): _payload("fresh")})
            report = store_gc.run_gc(tier)
        assert report.expired_keys == [_key("stale")]
        assert _key("stale") in report.evicted_keys
        assert tier.keys() == {_key("fresh")}

    def test_byte_cap_math_uses_canonical_sizes(self, tmp_path):
        tier = _bounded(tmp_path / "store", max_bytes=10_000)
        entries = {
            _key(f"b-{i}"): _payload(f"b-{i}", filler=400)
            for i in range(40)
        }
        # Unbounded merge first, then one explicit pass: the plan must
        # land the store at or under the cap in a single sweep.
        tier.limits = StoreLimits()
        tier.store(entries)
        tier.limits = StoreLimits(max_bytes=10_000)
        report = store_gc.run_gc(tier)
        assert report.passes == 1
        assert 0 < tier.bytes_used() <= 10_000


class TestStampMatchedSweep:
    def test_refreshed_entry_survives_a_stale_plan(self, tmp_path):
        clock = FixedClock(1_000.0)
        with installed(clock):
            tier = ShardedDiskTier(tmp_path / "store")
            key = _key("racer")
            tier.store({key: _payload("racer")})
            journal = {
                "type": store_gc.JOURNAL_TYPE,
                "version": store_gc.JOURNAL_FORMAT_VERSION,
                "state": store_gc.STATE_PLANNED,
                # A plan taken before the entry was refreshed: the
                # stamp it recorded no longer matches.
                "evict": {key: 123.0},
                "planned_at": 999.0,
            }
            store_gc._write_journal(tier, journal)
            report = store_gc.resume_pending(tier)
        assert report is not None and report.resumed
        assert report.evicted_keys == []
        assert key in tier.keys()

    def test_matching_stamp_is_swept(self, tmp_path):
        clock = FixedClock(1_000.0)
        with installed(clock):
            tier = ShardedDiskTier(tmp_path / "store")
            key = _key("doomed")
            tier.store({key: _payload("doomed")})
            journal = {
                "type": store_gc.JOURNAL_TYPE,
                "version": store_gc.JOURNAL_FORMAT_VERSION,
                "state": store_gc.STATE_PLANNED,
                "evict": {key: 1_000.0},
                "planned_at": 1_000.0,
            }
            store_gc._write_journal(tier, journal)
            report = store_gc.resume_pending(tier)
        assert report.evicted_keys == [key]
        assert key not in tier.keys()


class TestJournalProtocol:
    def test_committed_journal_resume_is_cleanup_only(self, tmp_path):
        tier = ShardedDiskTier(tmp_path / "store")
        key = _key("kept")
        tier.store({key: _payload("kept")})
        journal = {
            "type": store_gc.JOURNAL_TYPE,
            "version": store_gc.JOURNAL_FORMAT_VERSION,
            "state": store_gc.STATE_COMMITTED,
            "evict": {key: 0.0},  # already executed; must NOT re-sweep
            "planned_at": 0.0,
        }
        store_gc._write_journal(tier, journal)
        report = store_gc.resume_pending(tier)
        assert report.resumed
        assert report.evicted_keys == []
        assert key in tier.keys()
        assert not tier.journal_path().exists()

    def test_corrupt_journal_quarantined_not_executed(self, tmp_path):
        root = tmp_path / "store"
        tier = ShardedDiskTier(root)
        key = _key("survivor")
        tier.store({key: _payload("survivor")})
        tier.journal_path().write_text('{"state": "planned", "evi')
        report = store_gc.resume_pending(tier)
        assert report is None
        assert tier.quarantined == 1
        assert list(root.glob("gc-journal.json.corrupt-*"))
        assert key in tier.keys()

    def test_open_resumes_pending_journal(self, tmp_path):
        root = tmp_path / "store"
        tier = ShardedDiskTier(root)
        key = _key("victim")
        tier.store({key: _payload("victim")})
        index_meta = tier.load_index()["entries"][key]
        journal = {
            "type": store_gc.JOURNAL_TYPE,
            "version": store_gc.JOURNAL_FORMAT_VERSION,
            "state": store_gc.STATE_SWEEPING,
            "evict": {key: index_meta["c"]},
            "planned_at": index_meta["c"],
        }
        store_gc._write_journal(tier, journal)
        reopened = ShardedDiskTier(root)  # resume happens inside _open
        assert not reopened.journal_path().exists()
        assert key not in reopened.keys()


class TestCompaction:
    def test_orphan_tmp_and_aged_corrupt_removed(self, tmp_path):
        root = tmp_path / "store"
        tier = ShardedDiskTier(root)
        tier.store({_key("live"): _payload("live")})
        (root / ".shard-aa.json.zz.tmp").write_text("{}")
        (root / "shard-bb.json.corrupt-100").write_text("junk")
        fresh_tmp = root / ".shard-cc.json.yy.tmp"
        fresh_tmp.write_text("{}")
        now = 1_000_000_000.0
        import os

        os.utime(root / ".shard-aa.json.zz.tmp", (now - 600, now - 600))
        os.utime(root / "shard-bb.json.corrupt-100", (now - 8 * 86400,) * 2)
        os.utime(fresh_tmp, (now, now))
        with installed(FixedClock(now)):
            report = store_gc.run_gc(tier)
        assert report.removed_tmp == 1
        assert report.removed_corrupt == 1
        assert fresh_tmp.exists()  # young tempfile: a live write

    def test_empty_shards_removed(self, tmp_path):
        tier = _bounded(tmp_path / "store", max_entries=1)
        tier.limits = StoreLimits()
        entries = {_key(f"e-{i}"): _payload(f"e-{i}") for i in range(6)}
        tier.store(entries)
        tier.limits = StoreLimits(max_entries=1)
        report = store_gc.run_gc(tier)
        assert report.removed_empty_shards >= 4
        assert tier.entry_count() == 1


class TestRunGc:
    def test_noop_pass_reports_cleanly(self, tmp_path):
        tier = ShardedDiskTier(tmp_path / "store")
        tier.store({_key("a"): _payload("a")})
        report = store_gc.run_gc(tier)
        assert report.ran and report.passes == 1
        assert report.evicted_keys == []
        assert json.dumps(report.as_dict(), sort_keys=True)
        assert tier.gc_runs == 1

    def test_cap_trigger_on_write_path(self, tmp_path):
        tier = _bounded(tmp_path / "store", max_entries=4)
        for i in range(12):
            tier.store({_key(f"w-{i}"): _payload(f"w-{i}")})
        assert tier.entry_count() <= 4
        assert tier.gc_runs > 0
        assert tier.store_evictions >= 8
