"""``python -m repro cache {stats|gc|prewarm}`` — the operational CLI.

Driven in-process through ``repro.cli.main`` (fast, and exit codes are
asserted directly); the chaos suite exercises the same commands as real
subprocesses under fault injection.
"""

import hashlib
import json

import pytest

from repro.cli import main
from repro.server.shards import ShardedDiskTier, StoreLimits

pytestmark = pytest.mark.cache


def _key(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


def _fill(root, count: int, filler: int = 50) -> None:
    tier = ShardedDiskTier(root)
    tier.store(
        {
            _key(f"cli-{i}"): {"tag": f"cli-{i}", "filler": "x" * filler}
            for i in range(count)
        }
    )


class TestCacheStats:
    def test_empty_store_exits_zero(self, tmp_path, capsys):
        assert main(["cache", "stats", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "cache store" in out

    def test_json_inventory(self, tmp_path, capsys):
        root = tmp_path / "store"
        _fill(root, 5)
        assert main(["cache", "stats", str(root), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 5
        assert payload["bytes_used"] > 0
        assert payload["gc_journal_pending"] is False
        assert payload["legacy_entries"] == 0

    def test_pending_journal_noted(self, tmp_path, capsys):
        root = tmp_path / "store"
        _fill(root, 2)
        # stats must not *resume* pending work it can see is live: a
        # journal dropped after open is reported, not swallowed.
        from repro.server import store_gc

        tier = ShardedDiskTier(root)
        store_gc._write_journal(
            tier,
            {
                "type": store_gc.JOURNAL_TYPE,
                "version": store_gc.JOURNAL_FORMAT_VERSION,
                "state": store_gc.STATE_COMMITTED,
                "evict": {},
                "planned_at": 0.0,
            },
        )
        assert main(["cache", "stats", str(root)]) == 0
        # (opening inside the command resumed the committed journal)
        assert not tier.journal_path().exists()


class TestCacheGc:
    def test_gc_enforces_and_persists_limits(self, tmp_path, capsys):
        root = tmp_path / "store"
        _fill(root, 20)
        assert (
            main(["cache", "gc", str(root), "--max-entries", "5"]) == 0
        )
        out = capsys.readouterr().out
        assert "evicted" in out
        assert ShardedDiskTier(root).entry_count() == 5
        # The cap stuck: later opens enforce it with no flags.
        assert ShardedDiskTier(root).limits.max_entries == 5

    def test_gc_json_report(self, tmp_path, capsys):
        root = tmp_path / "store"
        _fill(root, 8)
        assert (
            main(
                ["cache", "gc", str(root), "--max-entries", "3", "--json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["evicted"] == 5
        assert payload["entries_after"] == 3
        assert payload["limits"]["max_entries"] == 3

    def test_oversized_entry_is_evicted_not_tolerated(self, tmp_path, capsys):
        root = tmp_path / "store"
        tier = ShardedDiskTier(root)
        big = {"tag": "big", "filler": "x" * 500}
        tier.store({_key("big"): big})
        # A cap smaller than any single entry still holds: the cap is
        # the contract, so the store empties rather than stay over it.
        ShardedDiskTier(root, limits=StoreLimits(max_bytes=10))
        rc = main(["cache", "gc", str(root)])
        capsys.readouterr()
        assert rc == 0
        assert ShardedDiskTier(root).entry_count() == 0


class TestCachePrewarm:
    def test_prewarm_populates_store(self, tmp_path, capsys):
        root = tmp_path / "store"
        rc = main(
            [
                "cache",
                "prewarm",
                str(root),
                "--profile",
                "smoke",
                "--families",
                "paper",
                "--members",
                "trivial",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "prewarmed" in out
        tier = ShardedDiskTier(root)
        assert tier.entry_count() > 0

    def test_prewarm_is_idempotent_via_cache_hits(self, tmp_path, capsys):
        root = tmp_path / "store"
        args = [
            "cache", "prewarm", str(root),
            "--profile", "smoke", "--families", "paper",
            "--members", "trivial",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "0 solved fresh" in out
