"""Sharded disk tier: round trips, migration, concurrent writers.

The acceptance contract: two concurrent processes hammering one shard
directory lose no entries and never deadlock (single-CPU-safe — the
processes genuinely interleave on one core).
"""

import hashlib
import json
import multiprocessing

import pytest

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import SolverError
from repro.server.shards import ShardedDiskTier, atomic_write_json
from repro.service.cache import ResultCache
from repro.service.portfolio import solve_portfolio

MEMBERS = ("trivial", "packing:2")


def _key(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


def _payload(tag: str) -> dict:
    return {"type": "portfolio_result", "tag": tag}


def _write_entries(root: str, start: int, count: int) -> None:
    """Worker for the concurrent-writer tests (module-level: picklable)."""
    tier = ShardedDiskTier(root)
    for index in range(start, start + count):
        tier.store({_key(f"entry-{index}"): _payload(f"entry-{index}")})


class TestTierBasics:
    def test_store_get_round_trip(self, tmp_path):
        tier = ShardedDiskTier(tmp_path / "cache")
        key = _key("a")
        tier.store({key: _payload("a")})
        assert tier.get(key) == _payload("a")
        assert tier.get(_key("missing")) is None
        assert tier.keys() == {key}

    def test_store_merges_instead_of_overwriting(self, tmp_path):
        """Two tier handles (think: two processes) never clobber each
        other's entries — the core no-lost-entries property."""
        root = tmp_path / "cache"
        first = ShardedDiskTier(root)
        second = ShardedDiskTier(root)
        first.store({_key("a"): _payload("a")})
        second.store({_key("b"): _payload("b")})
        assert ShardedDiskTier(root).keys() == {_key("a"), _key("b")}

    def test_dirty_filter_restricts_writes(self, tmp_path):
        tier = ShardedDiskTier(tmp_path / "cache")
        entries = {_key("a"): _payload("a"), _key("b"): _payload("b")}
        tier.store(entries, dirty={_key("a")})
        assert tier.keys() == {_key("a")}

    def test_no_temp_files_left_behind(self, tmp_path):
        tier = ShardedDiskTier(tmp_path / "cache")
        for tag in "abcdef":
            tier.store({_key(tag): _payload(tag)})
        leftovers = [
            p for p in (tmp_path / "cache").iterdir()
            if p.suffix == ".tmp"
        ]
        assert leftovers == []

    def test_rejects_non_hex_keys(self, tmp_path):
        tier = ShardedDiskTier(tmp_path / "cache")
        with pytest.raises(SolverError):
            tier.store({"not-a-digest": _payload("x")})

    def test_rejects_bad_prefix_len(self, tmp_path):
        with pytest.raises(SolverError):
            ShardedDiskTier(tmp_path / "cache", prefix_len=0)

    def test_quarantines_foreign_shard_file(self, tmp_path):
        # A non-shard payload inside the shard directory is damage:
        # it is moved aside and the shard reads cold (PR 5 changed
        # this from raising, which failed every solve on the shard).
        root = tmp_path / "cache"
        tier = ShardedDiskTier(root)
        key = _key("a")
        shard = tier.shard_path(key)
        atomic_write_json(shard, {"type": "something_else"})
        assert tier.get(key) is None
        assert tier.quarantined == 1
        assert not shard.exists()
        assert list(root.glob("shard-*.json.corrupt-*"))

    def test_newer_shard_version_still_raises(self, tmp_path):
        # A *newer* format version is healthy data this build cannot
        # parse — destroying it via quarantine would be data loss.
        root = tmp_path / "cache"
        tier = ShardedDiskTier(root)
        key = _key("a")
        shard = tier.shard_path(key)
        atomic_write_json(
            shard,
            {
                "type": "portfolio_cache_shard",
                "version": 999,
                "entries": {},
            },
        )
        with pytest.raises(SolverError):
            tier.get(key)
        assert shard.exists()
        assert tier.quarantined == 0


class TestMigration:
    def test_single_file_cache_migrates_in_place(self, tmp_path):
        path = tmp_path / "cache.json"
        legacy = ResultCache(capacity=8, path=path)
        matrices = [
            BinaryMatrix([(1 << n) - 1], n) for n in (1, 2, 3)
        ]
        results = {}
        for matrix in matrices:
            result = solve_portfolio(matrix, members=MEMBERS, seed=7)
            legacy.put(matrix, result)
            results[matrix] = result
        legacy.flush()
        assert path.is_file()

        sharded = ResultCache.sharded(path, capacity=8)
        assert path.is_dir()  # the file was resharded in place
        for matrix, result in results.items():
            hit = sharded.get(matrix)
            assert hit is not None
            assert hit.depth == result.depth
            assert hit.winner == result.winner

    def test_migration_refuses_foreign_files(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"type": "something_else", "entries": {}}')
        with pytest.raises(SolverError):
            ResultCache.sharded(path)
        assert path.is_file()  # untouched

    def test_fresh_directory_is_created(self, tmp_path):
        root = tmp_path / "deep" / "cache"
        ShardedDiskTier(root)
        assert root.is_dir()

    def test_crashed_migration_resumes_from_sidecar(self, tmp_path):
        """A crash between the rename-aside and the shard writes leaves
        the `.migrating` sidecar; the next open finishes the job."""
        path = tmp_path / "cache.json"
        legacy = ResultCache(capacity=8, path=path)
        matrix = BinaryMatrix([0b11, 0b01], 2)
        result = solve_portfolio(matrix, members=MEMBERS, seed=7)
        legacy.put(matrix, result)
        legacy.flush()
        # Simulate the crash point: file moved aside, no shards yet.
        path.rename(tmp_path / "cache.json.migrating")

        recovered = ResultCache.sharded(path, capacity=8)
        assert not (tmp_path / "cache.json.migrating").exists()
        hit = recovered.get(matrix)
        assert hit is not None
        assert hit.depth == result.depth

    @staticmethod
    def _legacy_file(path, tags):
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "type": "portfolio_cache",
                    "entries": {
                        _key(tag): _payload(tag) for tag in tags
                    },
                }
            )
        )

    def test_crash_mid_migration_with_partial_shards(self, tmp_path):
        """A crash *between shard writes* leaves the sidecar plus some
        already-resharded entries; resume must finish without losing or
        duplicating either group."""
        tags = ["mig-a", "mig-b", "mig-c", "mig-d"]
        # A completed migration elsewhere donates one genuine shard
        # file, reproducing the exact on-disk shape of an interrupted
        # _merge loop.
        donor = tmp_path / "donor.json"
        self._legacy_file(donor, tags)
        ShardedDiskTier(donor)
        donor_shards = sorted(donor.glob("shard-*.json"))
        assert donor_shards

        path = tmp_path / "cache.json"
        self._legacy_file(path, tags)
        path.rename(tmp_path / "cache.json.migrating")
        path.mkdir()
        partial = donor_shards[0]
        (path / partial.name).write_bytes(partial.read_bytes())

        tier = ShardedDiskTier(path)
        assert not (tmp_path / "cache.json.migrating").exists()
        assert tier.keys() == {_key(tag) for tag in tags}
        for tag in tags:
            assert tier.get(_key(tag)) == _payload(tag)

    def test_migration_reentry_is_idempotent(self, tmp_path):
        """Re-running a migration over fully-migrated shards (a crash
        after the last shard write but before the sidecar unlink) is a
        no-op merge, not a second copy."""
        tags = ["rep-a", "rep-b", "rep-c"]
        path = tmp_path / "cache.json"
        self._legacy_file(path, tags)
        sidecar_bytes = path.read_bytes()
        ShardedDiskTier(path)  # full migration

        # Crash point: every entry resharded, sidecar still present.
        (tmp_path / "cache.json.migrating").write_bytes(sidecar_bytes)
        tier = ShardedDiskTier(path)
        assert not (tmp_path / "cache.json.migrating").exists()
        assert tier.keys() == {_key(tag) for tag in tags}
        for tag in tags:
            assert tier.get(_key(tag)) == _payload(tag)


class TestResultCacheIntegration:
    def test_sharded_cache_read_through(self, tmp_path, service_matrices):
        root = tmp_path / "cache"
        writer = ResultCache.sharded(root, capacity=64)
        for case_id, matrix in service_matrices:
            writer.put(matrix, solve_portfolio(matrix, members=MEMBERS, seed=7))
        writer.flush()

        reader = ResultCache.sharded(root, capacity=64)
        assert len(reader) == 0  # cold memory tier; disk has the data
        for case_id, matrix in service_matrices:
            hit = reader.get(matrix)
            assert hit is not None, case_id
            assert hit.from_cache
        assert reader.stats.disk_hits == len(service_matrices)

    def test_eviction_does_not_lose_dirty_entries(self, tmp_path):
        """A memory tier smaller than the batch must still flush every
        fresh result to disk."""
        root = tmp_path / "cache"
        cache = ResultCache.sharded(root, capacity=2)
        matrices = [BinaryMatrix([(1 << n) - 1], n) for n in (1, 2, 3, 4, 5)]
        for matrix in matrices:
            cache.put(matrix, solve_portfolio(matrix, members=MEMBERS, seed=7))
        cache.flush()
        reopened = ResultCache.sharded(root, capacity=8)
        for matrix in matrices:
            assert reopened.get(matrix) is not None


class TestConcurrentWriters:
    def test_two_processes_lose_no_entries(self, tmp_path):
        """Acceptance: concurrent writers on one shard directory — all
        entries survive, nobody deadlocks."""
        root = str(tmp_path / "cache")
        count = 30
        workers = [
            multiprocessing.Process(
                target=_write_entries, args=(root, start, count)
            )
            for start in (0, count)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
        assert all(not worker.is_alive() for worker in workers), (
            "writer deadlocked"
        )
        assert all(worker.exitcode == 0 for worker in workers)
        expected = {_key(f"entry-{i}") for i in range(2 * count)}
        assert ShardedDiskTier(root).keys() == expected

    def test_overlapping_keys_settle_consistently(self, tmp_path):
        """Writers racing on the *same* keys: last writer wins per key,
        and every shard file stays valid JSON."""
        root = str(tmp_path / "cache")
        workers = [
            multiprocessing.Process(
                target=_write_entries, args=(root, 0, 20)
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
        assert all(worker.exitcode == 0 for worker in workers)
        tier = ShardedDiskTier(root)
        assert tier.keys() == {_key(f"entry-{i}") for i in range(20)}
        for shard in sorted((tmp_path / "cache").glob("shard-*.json")):
            json.loads(shard.read_text())  # no torn writes
