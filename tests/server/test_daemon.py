"""Daemon/client round trips over a real unix socket.

The daemon runs on a background thread's event loop (exactly how
``python -m repro serve`` hosts it) while the synchronous client talks
to it from the test thread — the same topology as production.
"""

import asyncio
import os
import socket
import threading
import time

import pytest

from repro.core.paper_matrices import equation_2, figure_1b, figure_3
from repro.server import client
from repro.server.daemon import (
    SolveDaemon,
    check_socket_path,
    default_socket_path,
    parse_case,
)
from repro.server.engine import AsyncSolveEngine
from repro.core.exceptions import SolverError

MEMBERS = ("trivial", "packing:4", "sap")


@pytest.fixture
def daemon(tmp_path):
    """A live daemon on a tmp socket; torn down via the shutdown op."""
    import asyncio

    socket_path = tmp_path / "solve.sock"
    engine = AsyncSolveEngine(members=MEMBERS, seed=7, workers=2)
    instance = SolveDaemon(socket_path, engine)

    def run() -> None:
        asyncio.run(instance.run())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    for _ in range(200):
        if socket_path.exists():
            break
        time.sleep(0.01)
    else:
        pytest.fail("daemon socket never appeared")
    yield socket_path
    try:
        client.request_once(socket_path, {"op": "shutdown"}, timeout=5)
    except SolverError:
        pass  # already shut down by the test
    thread.join(timeout=10)
    assert not thread.is_alive()


class TestOps:
    def test_ping_reports_engine_stats(self, daemon):
        reply = client.request_once(daemon, {"op": "ping"}, timeout=5)
        assert reply["event"] == "pong"
        assert reply["stats"]["members"] == list(MEMBERS)

    def test_unknown_op_is_an_error(self, daemon):
        with pytest.raises(client.DaemonError):
            client.request_once(daemon, {"op": "frobnicate"}, timeout=5)

    def test_cancel_unknown_case(self, daemon):
        reply = client.request_once(
            daemon, {"op": "cancel", "case_id": "nope"}, timeout=5
        )
        assert reply == {
            "event": "cancel", "case_id": "nope", "cancelled": False,
        }

    def test_solve_streams_events_and_terminates(self, daemon):
        cases = [("fig1b", figure_1b()), ("eq2", equation_2())]
        events = list(
            client.submit(daemon, cases, timeout=30, race="concurrent")
        )
        kinds = [e["event"] for e in events]
        assert kinds[-1] == "batch_done"
        done = [e for e in events if e["event"] == "done"]
        assert {e["case_id"] for e in done} == {"fig1b", "eq2"}
        for record in done:
            assert record["provenance"]["optimal"] is True
            assert "members" in record["provenance"]

    def test_repeated_requests_share_the_engine(self, daemon):
        cases = [("fig3", figure_3())]
        list(client.submit(daemon, cases, timeout=30))
        list(client.submit(daemon, cases, timeout=30))
        reply = client.request_once(daemon, {"op": "stats"}, timeout=5)
        assert reply["stats"]["solved"] == 2

    def test_collect_returns_done_records(self, daemon):
        records = client.collect(
            daemon, [("fig1b", figure_1b())], timeout=30
        )
        assert len(records) == 1
        assert records[0]["provenance"]["winner"] in MEMBERS

    def test_solve_rejects_bad_members(self, daemon):
        with pytest.raises(client.DaemonError):
            list(
                client.submit(
                    daemon,
                    [("x", figure_3())],
                    timeout=30,
                    members=("magic:3",),
                )
            )

    def test_solve_rejects_empty_cases(self, daemon):
        # stream_request exposes raw error events; submit raises on them.
        events = list(
            client.stream_request(
                daemon, {"op": "solve", "cases": []}, timeout=5
            )
        )
        assert events[0]["event"] == "error"

    def test_malformed_overrides_always_get_an_answer(self, daemon):
        # These used to blow up inside the engine after the stream had
        # begun, killing the connection with no error line at all.
        for overrides in (
            {"budget_per_instance": "cheap"},
            {"seed": 1.5},
            {"members": 7},
            {"stop_when_optimal": "maybe"},
        ):
            events = list(
                client.stream_request(
                    daemon,
                    {
                        "op": "solve",
                        "cases": [{"case_id": "a", "rows": ["10", "01"]}],
                        **overrides,
                    },
                    timeout=10,
                )
            )
            assert len(events) == 1, overrides
            assert events[0]["event"] == "error", overrides

    def test_stats_split_active_and_lifetime_connections(self, daemon):
        client.request_once(daemon, {"op": "ping"}, timeout=5)
        reply = client.request_once(daemon, {"op": "stats"}, timeout=5)
        connections = reply["server"]["connections"]
        # The stats connection itself is the only active one; the ping
        # (and the fixture's startup traffic) count toward the total.
        assert connections["active"] == 1
        assert connections["total"] >= 2
        assert connections["total"] > connections["active"]


class TestSocketPaths:
    def test_overlong_socket_path_is_a_clear_error(self, tmp_path):
        deep = tmp_path / ("x" * 120) / "solve.sock"
        with pytest.raises(SolverError, match="AF_UNIX"):
            check_socket_path(deep)

    def test_daemon_refuses_overlong_path_before_binding(self, tmp_path):
        deep = tmp_path / ("x" * 120) / "solve.sock"
        daemon = SolveDaemon(
            deep, AsyncSolveEngine(members=("trivial",), workers=1)
        )
        with pytest.raises(SolverError, match="AF_UNIX"):
            asyncio.run(daemon.run())

    def test_default_socket_path_prefers_runtime_dir(self, monkeypatch):
        monkeypatch.setenv("XDG_RUNTIME_DIR", "/run/user/1000")
        assert default_socket_path().startswith("/run/user/1000/")

    def test_default_socket_path_falls_back_to_tmp(self, monkeypatch):
        monkeypatch.setenv("XDG_RUNTIME_DIR", "/run/" + "deep/" * 30)
        path = default_socket_path()
        assert path.startswith("/tmp/")
        check_socket_path(path)  # the fallback must itself be bindable

    def test_stale_socket_is_reclaimed(self, tmp_path):
        socket_path = tmp_path / "solve.sock"
        # A dead daemon's leftover: a bound-then-abandoned socket file.
        stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        stale.bind(str(socket_path))
        stale.close()
        assert socket_path.exists()

        daemon = SolveDaemon(
            socket_path,
            AsyncSolveEngine(members=("trivial",), workers=1),
        )
        thread = threading.Thread(
            target=lambda: asyncio.run(daemon.run()), daemon=True
        )
        thread.start()
        try:
            for _ in range(500):
                try:
                    reply = client.request_once(
                        socket_path, {"op": "ping"}, timeout=2
                    )
                    break
                except SolverError:
                    time.sleep(0.01)
            else:
                pytest.fail("daemon never reclaimed the stale socket")
            assert reply["event"] == "pong"
        finally:
            try:
                client.request_once(
                    socket_path, {"op": "shutdown"}, timeout=5
                )
            except SolverError:
                pass
            thread.join(timeout=10)

    def test_live_socket_is_not_stolen(self, daemon):
        second = SolveDaemon(
            daemon, AsyncSolveEngine(members=("trivial",), workers=1)
        )
        with pytest.raises(SolverError, match="already serving"):
            asyncio.run(second.run())


class TestWireParsing:
    def test_parse_case_rows(self):
        item = parse_case({"case_id": "a", "rows": ["10", "01"]}, 0)
        assert item.case_id == "a"
        assert item.matrix.shape == (2, 2)

    def test_parse_case_masks(self):
        item = parse_case({"row_masks": [3, 1], "num_cols": 2}, 4)
        assert item.case_id == "case-0004"
        assert item.matrix.row_masks == (3, 1)

    def test_parse_case_rejects_garbage(self):
        with pytest.raises(SolverError):
            parse_case({"case_id": "x"}, 0)
        with pytest.raises(SolverError):
            parse_case("not-an-object", 0)

    def test_client_reports_missing_daemon(self, tmp_path):
        with pytest.raises(SolverError, match="cannot reach"):
            client.request_once(
                tmp_path / "absent.sock", {"op": "ping"}, timeout=2
            )
