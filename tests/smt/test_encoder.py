"""Unit tests for the EBMF CNF encoders (Eq. 4)."""

import pytest

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import EncodingError
from repro.core.paper_matrices import equation_2, figure_1b
from repro.sat.solver import SolveStatus
from repro.smt.encoder import (
    BinaryLabelEncoder,
    DirectEncoder,
    make_encoder,
)
from repro.solvers.branch_bound import binary_rank_branch_bound

ENCODER_IDS = ["direct-precedence", "direct-restricted", "direct-none", "binary"]


def encoders_for(matrix, bound):
    return [
        DirectEncoder(matrix, bound, symmetry="precedence"),
        DirectEncoder(matrix, bound, symmetry="restricted"),
        DirectEncoder(matrix, bound, symmetry="none"),
        BinaryLabelEncoder(matrix, bound),
    ]


class TestDecisionCorrectness:
    @pytest.mark.parametrize("index", range(4), ids=ENCODER_IDS)
    def test_equation_2_boundary(self, index):
        """Eq. 2 matrix: r_B = 3, so bound 3 is SAT and bound 2 UNSAT."""
        m = equation_2()
        sat_encoder = encoders_for(m, 3)[index]
        assert sat_encoder.solve() is SolveStatus.SAT
        partition = sat_encoder.extract_partition()
        partition.validate(m)
        assert partition.depth <= 3

        unsat_encoder = encoders_for(m, 2)[index]
        assert unsat_encoder.solve() is SolveStatus.UNSAT

    @pytest.mark.parametrize("index", range(4), ids=ENCODER_IDS)
    def test_figure_1b_boundary(self, index):
        m = figure_1b()
        assert encoders_for(m, 5)[index].solve() is SolveStatus.SAT
        assert encoders_for(m, 4)[index].solve() is SolveStatus.UNSAT

    @pytest.mark.parametrize("index", range(4), ids=ENCODER_IDS)
    def test_matches_branch_and_bound_on_random(self, index, rng):
        for _ in range(10):
            rows, cols = rng.randint(2, 4), rng.randint(2, 4)
            m = BinaryMatrix(
                [rng.getrandbits(cols) for _ in range(rows)], cols
            )
            if m.is_zero():
                continue
            truth = binary_rank_branch_bound(m).binary_rank
            at_truth = encoders_for(m, truth)[index]
            assert at_truth.solve() is SolveStatus.SAT
            if truth > 1:
                below = encoders_for(m, truth - 1)[index]
                assert below.solve() is SolveStatus.UNSAT


class TestNarrowing:
    def test_incremental_descent_direct(self):
        m = figure_1b()
        encoder = DirectEncoder(m, 6)
        assert encoder.solve() is SolveStatus.SAT
        encoder.narrow_to(5)
        assert encoder.solve() is SolveStatus.SAT
        encoder.narrow_to(4)
        assert encoder.solve() is SolveStatus.UNSAT

    def test_incremental_descent_binary(self):
        m = equation_2()
        encoder = BinaryLabelEncoder(m, 4)
        assert encoder.solve() is SolveStatus.SAT
        encoder.narrow_to(3)
        assert encoder.solve() is SolveStatus.SAT
        encoder.narrow_to(2)
        assert encoder.solve() is SolveStatus.UNSAT

    def test_widening_rejected(self):
        encoder = DirectEncoder(equation_2(), 3)
        with pytest.raises(EncodingError):
            encoder.narrow_to(4)

    def test_narrow_to_zero_with_cells_is_unsat(self):
        encoder = DirectEncoder(equation_2(), 3)
        encoder.narrow_to(0)
        assert encoder.solve() is SolveStatus.UNSAT


class TestEdgeCases:
    def test_zero_matrix_any_bound_sat(self):
        m = BinaryMatrix.zeros(3, 3)
        encoder = DirectEncoder(m, 0)
        assert encoder.solve() is SolveStatus.SAT
        assert encoder.extract_partition().depth == 0

    def test_bound_zero_nonzero_matrix_unsat(self):
        encoder = DirectEncoder(BinaryMatrix.identity(2), 0)
        assert encoder.solve() is SolveStatus.UNSAT

    def test_negative_bound_rejected(self):
        with pytest.raises(EncodingError):
            DirectEncoder(BinaryMatrix.identity(2), -1)
        with pytest.raises(EncodingError):
            BinaryLabelEncoder(BinaryMatrix.identity(2), -1)

    def test_unknown_symmetry_rejected(self):
        with pytest.raises(EncodingError):
            DirectEncoder(BinaryMatrix.identity(2), 2, symmetry="magic")

    def test_bound_larger_than_cells(self):
        m = BinaryMatrix.identity(2)
        encoder = DirectEncoder(m, 10)
        assert encoder.solve() is SolveStatus.SAT
        partition = encoder.extract_partition()
        partition.validate(m)
        assert partition.depth == 2

    def test_single_cell(self):
        m = BinaryMatrix.from_strings(["010"])
        encoder = DirectEncoder(m, 1)
        assert encoder.solve() is SolveStatus.SAT
        assert encoder.extract_partition().depth == 1


class TestAmoEncodings:
    @pytest.mark.parametrize(
        "amo", ["pairwise", "sequential", "commander", "auto"]
    )
    def test_all_amo_encodings_agree(self, amo):
        m = equation_2()
        sat = DirectEncoder(m, 3, amo_encoding=amo)
        assert sat.solve() is SolveStatus.SAT
        partition = sat.extract_partition()
        partition.validate(m)
        unsat = DirectEncoder(m, 2, amo_encoding=amo)
        assert unsat.solve() is SolveStatus.UNSAT


class TestFactory:
    def test_direct(self):
        assert isinstance(
            make_encoder(equation_2(), 3, encoding="direct"), DirectEncoder
        )

    def test_binary(self):
        assert isinstance(
            make_encoder(equation_2(), 3, encoding="binary"),
            BinaryLabelEncoder,
        )

    def test_unknown(self):
        with pytest.raises(EncodingError):
            make_encoder(equation_2(), 3, encoding="cp")
