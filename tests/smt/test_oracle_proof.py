"""Proof-enabled oracle tests (the audited SAP descent)."""

import pytest

from repro.core.exceptions import ProofError
from repro.core.paper_matrices import equation_2, figure_1b
from repro.sat.solver import SolveStatus
from repro.smt.oracle import RankDecisionOracle


class TestOracleProof:
    def test_descent_produces_verifiable_refutation(self):
        oracle = RankDecisionOracle(figure_1b(), proof=True)
        status, partition = oracle.check_at_most(5)
        assert status is SolveStatus.SAT and partition.depth == 5
        status, _ = oracle.check_at_most(4)
        assert status is SolveStatus.UNSAT
        oracle.verify_refutation()  # must not raise

    def test_verify_without_proof_raises(self):
        oracle = RankDecisionOracle(equation_2())
        oracle.check_at_most(2)
        with pytest.raises(ProofError):
            oracle.verify_refutation()

    def test_sat_only_descent_has_no_refutation(self):
        oracle = RankDecisionOracle(equation_2(), proof=True)
        status, _ = oracle.check_at_most(3)
        assert status is SolveStatus.SAT
        with pytest.raises(ProofError):
            oracle.verify_refutation()

    def test_non_incremental_proof_rebuilds_log(self):
        oracle = RankDecisionOracle(
            equation_2(), incremental=False, proof=True
        )
        oracle.check_at_most(3)
        first_log = oracle.proof_log
        status, _ = oracle.check_at_most(2)
        assert status is SolveStatus.UNSAT
        # Fresh solver per query: the log was replaced, and the current
        # one holds the complete (single-query) refutation.
        assert oracle.proof_log is not first_log
        oracle.verify_refutation()

    def test_assumption_mode_unsat_is_not_a_refutation(self):
        oracle = RankDecisionOracle(
            equation_2(), query_mode="assumption", proof=True
        )
        oracle.prime(3)
        status, _ = oracle.check_at_most(2)
        assert status is SolveStatus.UNSAT
        # Conditional on the assumption literal: no standalone proof.
        with pytest.raises(ProofError):
            oracle.verify_refutation()
