"""Unit tests for the incremental rank decision oracle."""

import pytest

from repro.core.exceptions import EncodingError
from repro.core.paper_matrices import equation_2, figure_1b
from repro.sat.solver import SolveStatus
from repro.smt.oracle import RankDecisionOracle


class TestIncrementalOracle:
    def test_descent_records_queries(self):
        oracle = RankDecisionOracle(figure_1b())
        status, partition = oracle.check_at_most(6)
        assert status is SolveStatus.SAT
        assert partition is not None and partition.depth <= 6
        status, partition = oracle.check_at_most(5)
        assert status is SolveStatus.SAT
        status, partition = oracle.check_at_most(4)
        assert status is SolveStatus.UNSAT
        assert partition is None
        assert [q.bound for q in oracle.queries] == [6, 5, 4]
        assert oracle.total_seconds >= 0.0

    def test_widening_rejected_in_incremental_mode(self):
        oracle = RankDecisionOracle(equation_2())
        oracle.check_at_most(3)
        with pytest.raises(EncodingError):
            oracle.check_at_most(4)

    def test_non_incremental_mode_allows_any_order(self):
        oracle = RankDecisionOracle(equation_2(), incremental=False)
        assert oracle.check_at_most(3)[0] is SolveStatus.SAT
        assert oracle.check_at_most(4)[0] is SolveStatus.SAT
        assert oracle.check_at_most(2)[0] is SolveStatus.UNSAT

    def test_binary_encoding_oracle(self):
        oracle = RankDecisionOracle(equation_2(), encoding="binary")
        assert oracle.check_at_most(3)[0] is SolveStatus.SAT
        assert oracle.check_at_most(2)[0] is SolveStatus.UNSAT

    def test_partitions_are_validated(self):
        oracle = RankDecisionOracle(figure_1b())
        _, partition = oracle.check_at_most(5)
        partition.validate(figure_1b())

    def test_conflict_budget_unknown(self):
        # A very tight conflict budget on a hard UNSAT query.
        oracle = RankDecisionOracle(figure_1b(), symmetry="none")
        status, partition = oracle.check_at_most(4, conflict_budget=1)
        assert status in (SolveStatus.UNKNOWN, SolveStatus.UNSAT)
        if status is SolveStatus.UNKNOWN:
            assert partition is None
