"""Assumption-based bound queries (indicator variables) tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import EncodingError
from repro.core.paper_matrices import equation_2, figure_1b
from repro.sat.solver import SolveStatus
from repro.smt.encoder import DirectEncoder, make_encoder
from repro.smt.oracle import RankDecisionOracle
from repro.solvers.branch_bound import binary_rank_branch_bound
from repro.solvers.sap import SapOptions, sap_solve


class TestIndicatorEncoding:
    def test_indicators_off_by_default(self):
        encoder = DirectEncoder(equation_2(), 3)
        assert not encoder.has_indicators
        with pytest.raises(EncodingError):
            encoder.assumption_for(2)

    def test_assumption_for_bounds(self):
        encoder = DirectEncoder(equation_2(), 4, indicators=True)
        assert encoder.has_indicators
        assert encoder.assumption_for(4) == []
        assert encoder.assumption_for(5) == []
        assert len(encoder.assumption_for(3)) == 1
        with pytest.raises(EncodingError):
            encoder.assumption_for(-1)

    def test_assumption_queries_match_known_ranks(self):
        """Eq. 2 matrix: r_B = 3.  One encoder answers all bounds."""
        matrix = equation_2()
        encoder = DirectEncoder(matrix, 4, indicators=True)
        assert encoder.solve(assumptions=encoder.assumption_for(3)) is SolveStatus.SAT
        assert encoder.solve(assumptions=encoder.assumption_for(2)) is SolveStatus.UNSAT
        # Back up again: unlike narrowing, this must still be SAT.
        assert encoder.solve(assumptions=encoder.assumption_for(3)) is SolveStatus.SAT
        partition = encoder.extract_partition()
        partition.validate(matrix)
        assert partition.depth == 3

    def test_figure_1b_assumption_descent(self):
        matrix = figure_1b()
        encoder = DirectEncoder(matrix, 6, indicators=True)
        assert encoder.solve(assumptions=encoder.assumption_for(5)) is SolveStatus.SAT
        assert encoder.solve(assumptions=encoder.assumption_for(4)) is SolveStatus.UNSAT

    def test_make_encoder_rejects_binary_indicators(self):
        with pytest.raises(EncodingError):
            make_encoder(equation_2(), 3, encoding="binary", indicators=True)

    def test_zero_bound_matrix_with_indicators(self):
        zero = BinaryMatrix.zeros(3, 3)
        encoder = DirectEncoder(zero, 2, indicators=True)
        assert encoder.solve() is SolveStatus.SAT


class TestAssumptionOracle:
    def test_bound_can_move_both_ways(self):
        oracle = RankDecisionOracle(equation_2(), query_mode="assumption")
        oracle.prime(4)
        status, _ = oracle.check_at_most(2)
        assert status is SolveStatus.UNSAT
        status, partition = oracle.check_at_most(3)
        assert status is SolveStatus.SAT
        assert partition is not None and partition.depth == 3

    def test_cannot_exceed_primed_bound(self):
        oracle = RankDecisionOracle(equation_2(), query_mode="assumption")
        oracle.prime(3)
        oracle.check_at_most(3)
        with pytest.raises(EncodingError):
            oracle.check_at_most(4)

    def test_requires_direct_encoding(self):
        with pytest.raises(EncodingError):
            RankDecisionOracle(
                equation_2(), encoding="binary", query_mode="assumption"
            )

    def test_requires_incremental(self):
        with pytest.raises(EncodingError):
            RankDecisionOracle(
                equation_2(), incremental=False, query_mode="assumption"
            )

    def test_rejects_unknown_mode(self):
        with pytest.raises(EncodingError):
            RankDecisionOracle(equation_2(), query_mode="bogus")

    def test_narrow_and_assumption_agree(self):
        matrix = figure_1b()
        narrow = RankDecisionOracle(matrix)
        assumption = RankDecisionOracle(matrix, query_mode="assumption")
        assumption.prime(6)
        for bound in (5, 4):
            status_n, _ = narrow.check_at_most(bound)
            status_a, _ = assumption.check_at_most(bound)
            assert status_n is status_a


class TestAssumptionDescent:
    def test_options_accept_assumption(self):
        options = SapOptions(descent="assumption")
        assert options.descent == "assumption"

    def test_options_reject_unknown(self):
        with pytest.raises(ValueError):
            SapOptions(descent="bogus")

    @pytest.mark.parametrize("descent", ["linear", "binary", "assumption"])
    def test_descents_agree_on_paper_matrices(self, descent):
        for matrix in (equation_2(), figure_1b()):
            result = sap_solve(
                matrix, options=SapOptions(trials=20, seed=7, descent=descent)
            )
            assert result.proved_optimal
            reference = binary_rank_branch_bound(matrix).binary_rank
            assert result.depth == reference
            result.partition.validate(matrix)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_descents_agree_on_random_matrices(self, seed):
        from repro.benchgen.random_matrices import random_matrix

        matrix = random_matrix(5, 5, occupancy=0.5, seed=seed)
        depths = set()
        for descent in ("linear", "binary", "assumption"):
            result = sap_solve(
                matrix,
                options=SapOptions(trials=10, seed=seed, descent=descent),
            )
            assert result.proved_optimal
            result.partition.validate(matrix)
            depths.add(result.depth)
        assert len(depths) == 1

    def test_assumption_descent_reuses_one_solver(self):
        matrix = figure_1b()
        result = sap_solve(
            matrix, options=SapOptions(trials=5, seed=3, descent="assumption")
        )
        assert result.proved_optimal
        assert result.depth == 5
        # All queries ran against a single primed encoder, so every
        # recorded query bound sits within the initial priming bound.
        assert all(q.bound <= result.heuristic_depth - 1 for q in result.queries)
