"""Unit tests for partition enumeration."""

import pytest

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import EncodingError
from repro.core.paper_matrices import equation_2, figure_3
from repro.smt.enumerate import count_optimal_partitions, enumerate_partitions


class TestEnumeratePartitions:
    def test_identity_unique(self):
        partitions = list(
            enumerate_partitions(BinaryMatrix.identity(3), 3)
        )
        assert len(partitions) == 1
        partitions[0].validate(BinaryMatrix.identity(3))

    def test_all_ones_unique(self):
        assert (
            len(list(enumerate_partitions(BinaryMatrix.all_ones(2, 3), 1)))
            == 1
        )

    def test_figure_3_has_unique_optimum(self):
        assert count_optimal_partitions(figure_3()) == 1

    def test_equation_2_has_six_optima(self):
        """[[1,1,0],[0,1,1],[1,1,1]] at depth 3: each of the 2x choices
        of attaching the middle column's cells yields a distinct
        partition — 6 total (verified independently by hand/B&B)."""
        assert count_optimal_partitions(equation_2()) == 6

    def test_all_distinct_and_valid(self):
        m = equation_2()
        seen = set()
        for partition in enumerate_partitions(m, 3):
            partition.validate(m)
            key = frozenset(partition.rectangles)
            assert key not in seen
            seen.add(key)

    def test_limit_respected(self):
        count = sum(1 for _ in enumerate_partitions(equation_2(), 3, limit=2))
        assert count == 2

    def test_depth_above_optimum_enumerates_more(self):
        at_opt = len(list(enumerate_partitions(equation_2(), 3)))
        above = len(list(enumerate_partitions(equation_2(), 4)))
        assert above >= at_opt

    def test_zero_matrix(self):
        partitions = list(enumerate_partitions(BinaryMatrix.zeros(2, 2), 0))
        assert len(partitions) == 1
        assert partitions[0].depth == 0

    def test_infeasible_depth_yields_nothing(self):
        assert list(enumerate_partitions(BinaryMatrix.identity(2), 1)) == []

    def test_negative_depth_rejected(self):
        with pytest.raises(EncodingError):
            list(enumerate_partitions(BinaryMatrix.identity(2), -1))


class TestCountOptimal:
    def test_known_rank_path(self):
        assert (
            count_optimal_partitions(
                BinaryMatrix.identity(3), binary_rank=3
            )
            == 1
        )

    def test_budget_failure_raises(self):
        from repro.benchgen.gap import gap_matrix

        m = gap_matrix(10, 10, 4, seed=3)
        with pytest.raises(EncodingError):
            count_optimal_partitions(m, time_budget=0.0)
