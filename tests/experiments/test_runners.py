"""Integration tests for the experiment runners (tiny configurations)."""

import json

from repro.experiments.common import case_seed, resolve_scale, write_json
from repro.experiments.figure4 import Figure4Config, run_figure4
from repro.experiments.ftqc_experiment import FtqcConfig, run_ftqc
from repro.experiments.qldpc_experiment import QldpcConfig, run_qldpc
from repro.experiments.table1 import (
    Table1Config,
    evaluate_case,
    run_table1,
)
from repro.benchgen.suite import gap_suite


class TestCommon:
    def test_resolve_scale_explicit(self):
        assert resolve_scale("paper") == "paper"
        assert resolve_scale("quick") == "quick"

    def test_resolve_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert resolve_scale() == "paper"
        monkeypatch.setenv("REPRO_FULL", "0")
        assert resolve_scale() == "quick"

    def test_case_seed_deterministic(self):
        assert case_seed(1, "x", "s") == case_seed(1, "x", "s")
        assert case_seed(1, "x", "s") != case_seed(1, "y", "s")

    def test_write_json(self, tmp_path):
        path = tmp_path / "out" / "r.json"
        write_json(str(path), {"a": 1})
        assert json.loads(path.read_text()) == {"a": 1}


class TestTable1:
    def test_evaluate_case_gap(self):
        config = Table1Config(
            scale="quick",
            heuristics=("trivial", "packing:2"),
            smt_time_budget=10.0,
        )
        case = gap_suite((8, 8), 2, 1, seed=0)[0]
        record = evaluate_case(case, config)
        assert record.real_rank >= 1
        assert set(record.heuristic_depths) == {"trivial", "packing:2"}
        if record.optimal_depth is not None:
            assert record.optimal_depth >= record.real_rank
            assert record.rank_equals_binary in (True, False)

    def test_run_tiny_table(self):
        config = Table1Config(
            scale="quick",
            heuristics=("trivial", "packing:2"),
            smt_time_budget=10.0,
            include_large=False,
        )
        # shrink: monkey-free approach — run on a small custom suite via
        # evaluate_case is covered above; here exercise the aggregation.
        result = run_table1(config)
        rendered = result.render()
        assert "Table I" in rendered
        assert "10x10, rand" in rendered
        payload = result.as_json()
        assert payload["rows"]
        assert payload["cases"]

    def test_percentages_well_formed(self):
        config = Table1Config(
            scale="quick",
            heuristics=("packing:2",),
            smt_time_budget=10.0,
            include_large=False,
        )
        result = run_table1(config)
        for family in result.families():
            row = result.row(family)
            assert row["packing:2"].endswith("%") or row["packing:2"] == "n/a"


class TestFigure4:
    def test_run_and_render(self):
        config = Figure4Config(scale="quick", top_n=3, smt_time_budget=10.0)
        result = run_figure4(config)
        assert result.cases
        top = result.top_cases()
        assert len(top) <= 3
        totals = [c.total_seconds for c in top]
        assert totals == sorted(totals, reverse=True)
        rendered = result.render()
        assert "Figure 4" in rendered
        assert "Observation 5" in rendered
        assert result.as_json()["cases"]


class TestFtqc:
    def test_run_and_render(self):
        config = FtqcConfig(
            scale="quick",
            samples=1,
            distance=2,
            patch_rows=2,
            patch_cols=2,
            smt_time_budget=10.0,
        )
        result = run_ftqc(config)
        assert len(result.cases) == 3  # three patch kinds
        for case in result.cases:
            if case.eq5_upper is not None:
                assert case.two_level_depth == case.eq5_upper
                assert case.eq5_lower <= case.eq5_upper
        assert "Eq. 5" in result.render()


class TestQldpc:
    def test_run_and_render(self):
        config = QldpcConfig(
            scale="quick",
            occupancies=(0.3,),
            rank_samples=5,
            layout_samples=2,
            num_blocks=4,
            block_size=6,
            qubits_per_block=2,
            smt_time_budget=10.0,
        )
        result = run_qldpc(config)
        assert len(result.full_rank_rows) == 1
        row = result.full_rank_rows[0]
        assert 0.0 <= row["10x10"] <= 1.0
        assert result.sufficiency["decided"] + result.sufficiency[
            "undecided"
        ] == 2
        assert "Section V" in result.render()
