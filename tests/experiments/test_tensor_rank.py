"""Tensor-product multiplicativity experiment tests."""

import pytest

from repro.core.binary_matrix import BinaryMatrix
from repro.core.paper_matrices import equation_2
from repro.experiments.tensor_rank import (
    TensorRankConfig,
    TensorRankResult,
    TensorProbe,
    probe_pair,
    run_tensor_rank,
)


class TestProbePair:
    def test_identity_pair_is_multiplicative_by_bounds(self):
        a = BinaryMatrix.identity(2)
        probe = probe_pair(a, a, label="i2xi2", seed=1)
        assert probe is not None
        assert probe.rank_a == probe.rank_b == 2
        assert probe.product_bound == 4
        # rank bound on I_4 already equals 4: no oracle call needed.
        assert probe.verdict == "multiplicative"
        assert probe.probe_status is None

    def test_all_ones_trivial(self):
        ones = BinaryMatrix.from_rows([[1, 1], [1, 1]])
        probe = probe_pair(ones, ones, label="jxj", seed=1)
        assert probe is not None
        assert probe.product_bound == 1
        assert probe.verdict == "multiplicative"

    def test_equation2_square_resolves_by_rank_bound(self):
        """C has full real rank, so Eq. 3 pins r_B(C (x) C) = 9 with no
        oracle call — multiplicativity holds for the paper's Eq. 2
        matrix even though its fooling bound (Eq. 5 gives only 6) is
        slack.  This is the subtlety the experiment docstring records.
        """
        c = equation_2()
        probe = probe_pair(c, c, label="c2", seed=0)
        assert probe is not None
        assert probe.rank_a == probe.rank_b == 3
        assert probe.product_bound == 9
        assert probe.lower_bound == 9  # rank bound, not the Eq. 5 value
        assert probe.verdict == "multiplicative"
        assert probe.probe_status is None  # decided without the oracle

    def test_double_slack_factor_opens_bracket(self):
        """A double-slack factor (rank_R < r_B and phi < r_B) paired
        with Eq. 2's matrix leaves the bracket genuinely open, so the
        oracle probe actually runs."""
        from repro.benchgen.random_matrices import random_matrix

        # Found by the experiment's own rejection sampler (seed survey):
        # rank 4, fooling 4, r_B 5.
        a = random_matrix(5, 5, 0.5, seed=572 * 7 + 5)
        probe = probe_pair(
            a, equation_2(), label="ds x eq2", seed=0, probe_budget=5.0
        )
        assert probe is not None
        assert probe.rank_a == 5 and probe.rank_b == 3
        assert probe.lower_bound < probe.product_bound == 15
        assert probe.probe_status is not None  # the oracle was consulted
        assert probe.verdict in (
            "multiplicative", "submultiplicative", "undecided"
        )

    def test_double_slack_sampler(self):
        from repro.experiments.tensor_rank import _draw_double_slack_factor

        factor = _draw_double_slack_factor(5, 2024, 5.0, attempts=120)
        if factor is not None:
            from repro.core.bounds import rank_lower_bound
            from repro.core.fooling import fooling_number
            from repro.solvers.branch_bound import binary_rank_branch_bound

            rb = binary_rank_branch_bound(factor).binary_rank
            assert rank_lower_bound(factor) < rb
            assert fooling_number(factor, seed=2024) < rb

    def test_bracket_rendering(self):
        probe = TensorProbe(
            label="x", rank_a=2, rank_b=3, product_bound=6,
            lower_bound=4, verdict="undecided",
        )
        assert probe.bracket == "[4, 6]"


class TestRunner:
    def test_small_run_aggregates(self):
        config = TensorRankConfig(
            pairs=2,
            open_pairs=0,
            shape=2,
            seed=11,
            include_equation2=False,
            include_known_open=False,
            probe_budget=10.0,
        )
        result = run_tensor_rank(config)
        assert len(result.probes) <= 2
        counts = result.counts()
        assert sum(counts.values()) == len(result.probes)
        rendered = result.render()
        assert "tensor" in rendered.lower()
        payload = result.as_json()
        assert set(payload) == {"counts", "probes"}

    def test_witness_listing(self):
        result = TensorRankResult(
            probes=[
                TensorProbe(
                    label="w", rank_a=3, rank_b=3, product_bound=9,
                    lower_bound=6, verdict="submultiplicative",
                ),
                TensorProbe(
                    label="m", rank_a=2, rank_b=2, product_bound=4,
                    lower_bound=4, verdict="multiplicative",
                ),
            ]
        )
        assert [w.label for w in result.witnesses()] == ["w"]

    def test_main_cli(self, capsys, tmp_path):
        from repro.experiments.tensor_rank import main

        json_path = tmp_path / "tensor.json"
        code = main(
            [
                "--pairs", "1", "--open-pairs", "0", "--shape", "2",
                "--seed", "3", "--no-known-open",
                "--json", str(json_path),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "tensor" in captured.out.lower()
        assert json_path.exists()
