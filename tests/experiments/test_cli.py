"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def pattern_file(tmp_path):
    path = tmp_path / "pattern.txt"
    path.write_text("110\n011\n111\n")
    return str(path)


@pytest.fixture
def masked_file(tmp_path):
    path = tmp_path / "masked.txt"
    path.write_text("*1*\n111\n*1*\n")
    return str(path)


class TestRank:
    def test_rank_output(self, pattern_file, capsys):
        assert main(["rank", pattern_file, "--trials", "4"]) == 0
        out = capsys.readouterr().out
        assert "binary rank:  3 (proven)" in out
        assert "real rank:    3" in out

    def test_rank_budget_zero_brackets(self, tmp_path, capsys):
        from repro.benchgen.gap import gap_matrix

        matrix = gap_matrix(10, 10, 4, seed=3)
        path = tmp_path / "hard.txt"
        path.write_text("\n".join(matrix.to_strings()) + "\n")
        assert main(["rank", str(path), "--budget", "0"]) == 0
        out = capsys.readouterr().out
        assert "binary rank:" in out


class TestSolve:
    def test_solve_exact(self, pattern_file, capsys):
        assert main(["solve", pattern_file, "--trials", "4"]) == 0
        out = capsys.readouterr().out
        assert "depth 3 (proven optimal)" in out

    def test_solve_heuristic_only(self, pattern_file, capsys):
        assert main(
            ["solve", pattern_file, "--heuristic-only", "--trials", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "depth" in out


class TestCompile:
    def test_compile_full_array(self, pattern_file, capsys):
        assert main(["compile", pattern_file, "--trials", "4"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "step 0" in out

    def test_compile_with_vacancies(self, masked_file, capsys):
        assert main(["compile", masked_file, "--trials", "8"]) == 0
        out = capsys.readouterr().out
        assert "depth 1" in out  # flood fill over vacant corners

    def test_theta_flag(self, pattern_file, capsys):
        assert main(
            ["compile", pattern_file, "--theta", "0.25", "--trials", "4"]
        ) == 0
        assert "Rz(0.25)" in capsys.readouterr().out


class TestSolveBatch:
    def test_batch_over_patterns(self, pattern_file, masked_file, tmp_path, capsys):
        other = tmp_path / "other.txt"
        other.write_text("10\n01\n")
        assert main(["solve-batch", pattern_file, str(other)]) == 0
        out = capsys.readouterr().out
        assert "portfolio batch — 2 instances" in out
        assert "winner" in out

    def test_batch_cache_and_json(self, pattern_file, tmp_path, capsys):
        import json

        cache_path = str(tmp_path / "cache.json")
        json_path = str(tmp_path / "out.json")
        assert main(
            ["solve-batch", pattern_file, "--cache", cache_path,
             "--json", json_path]
        ) == 0
        assert "1 misses" in capsys.readouterr().out
        payload = json.loads(open(json_path).read())
        assert payload[0]["winner"]
        assert payload[0]["optimal"] is True
        # second run is served from the persisted cache
        assert main(["solve-batch", pattern_file, "--cache", cache_path]) == 0
        out = capsys.readouterr().out
        assert "hit" in out
        assert "1 hits" in out

    def test_batch_errors_exit_cleanly(self, pattern_file, capsys):
        # typo'd member spec, duplicate pattern, missing file: exit 2
        # with a one-line error, never a traceback
        assert main(["solve-batch", pattern_file, "--members", "magic:3"]) == 2
        assert "unknown kind 'magic'" in capsys.readouterr().err
        assert main(["solve-batch", pattern_file, pattern_file]) == 2
        assert "duplicate case ids" in capsys.readouterr().err
        assert main(["solve-batch", "/nonexistent/pattern.txt"]) == 2
        assert "No such file" in capsys.readouterr().err

    def test_batch_unwritable_json_exits_cleanly(self, pattern_file, capsys):
        assert main(
            ["solve-batch", pattern_file, "--json", "/proc/no/such/dir.json"]
        ) == 2
        assert "error:" in capsys.readouterr().err


class TestMisc:
    def test_examples_listing(self, capsys):
        assert main(["examples"]) == 0
        assert "quickstart" in capsys.readouterr().out

    def test_stdin_pattern(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("10\n01\n"))
        assert main(["rank", "-", "--trials", "2"]) == 0
        assert "binary rank:  2" in capsys.readouterr().out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestBounds:
    def test_bounds_output(self, pattern_file, capsys):
        assert main(["bounds", pattern_file]) == 0
        out = capsys.readouterr().out
        assert "rank bound:       3" in out
        assert "fooling bound:    2" in out
        assert "LP cover bound:" in out
        assert "bracket:" in out

    def test_bounds_large_skips_lp(self, tmp_path, capsys):
        from repro.benchgen.random_matrices import random_nonempty_matrix

        matrix = random_nonempty_matrix(14, 14, 0.3, seed=1)
        path = tmp_path / "large.txt"
        path.write_text("\n".join(matrix.to_strings()) + "\n")
        assert main(["bounds", str(path)]) == 0
        out = capsys.readouterr().out
        assert "skipped (matrix too large)" in out


class TestAudit:
    def test_audit_verifies_certificate(self, tmp_path, capsys):
        # Figure 1b: real rank 4 < r_B 5, so the optimality certificate
        # requires an actual UNSAT proof.
        from repro.core.paper_matrices import figure_1b

        path = tmp_path / "fig1b.txt"
        path.write_text("\n".join(figure_1b().to_strings()) + "\n")
        assert main(["audit", str(path), "--trials", "8"]) == 0
        out = capsys.readouterr().out
        assert "binary rank: 5" in out
        assert "UNSAT certificate verified" in out

    def test_audit_eq3_shortcut(self, pattern_file, capsys):
        # Eq. 2's matrix: packing reaches the rank bound, no proof step.
        assert main(["audit", pattern_file, "--trials", "8"]) == 0
        out = capsys.readouterr().out
        assert "certified by Eq. 3 alone" in out

    def test_audit_rank_certified_by_bound(self, tmp_path, capsys):
        path = tmp_path / "id.txt"
        path.write_text("10\n01\n")
        assert main(["audit", str(path), "--trials", "4"]) == 0
        out = capsys.readouterr().out
        assert "Eq. 3" in out


class TestLegalize:
    def test_legalize_reports_inflation(self, pattern_file, capsys):
        assert main(
            [
                "legalize", pattern_file,
                "--max-row-tones", "1", "--max-col-tones", "1",
                "--trials", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "ideal depth:" in out
        assert "legal depth:     7" in out  # one step per 1-cell
        assert "OK" in out

    def test_legalize_unconstrained_identity(self, pattern_file, capsys):
        assert main(["legalize", pattern_file, "--trials", "4"]) == 0
        out = capsys.readouterr().out
        assert "(1.00x)" in out


class TestRender:
    def test_render_writes_svg(self, pattern_file, tmp_path, capsys):
        out_path = tmp_path / "figure.svg"
        assert main(
            ["render", pattern_file, str(out_path), "--trials", "4"]
        ) == 0
        text = out_path.read_text()
        assert text.startswith("<svg")
        assert "depth-3 partition (optimal)" in capsys.readouterr().out
