"""Integration test for the ablation experiment runner."""

from repro.experiments.ablation import AblationConfig, run_ablation


class TestAblationRunner:
    def test_runs_and_renders(self):
        config = AblationConfig(
            scale="quick", gap_pairs=2, gap_cases=3, masked_cases=2
        )
        result = run_ablation(config)

        variants = [row["variant"] for row in result.packing_rows]
        assert "packing:10" in variants
        assert "trivial" in variants
        # trivial is never better than best-of-10 row packing in aggregate
        by_variant = {
            row["variant"]: row["mean_depth"] for row in result.packing_rows
        }
        assert by_variant["packing:10"] <= by_variant["trivial"]

        assert len(result.encoder_rows) == 4
        assert all(row["seconds"] >= 0 for row in result.encoder_rows)

        assert len(result.masked_rows) == 2
        for row in result.masked_rows:
            assert row["masked_depth"] <= row["plain_depth"]
            assert row["saved"] == row["plain_depth"] - row["masked_depth"]

        rendered = result.render()
        assert "A1/A3" in rendered
        assert "A2" in rendered
        assert "A4" in rendered
        assert result.as_json()["packing"]
