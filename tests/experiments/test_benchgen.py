"""Unit tests for the benchmark generators (the paper's three families)."""

import pytest

from repro.benchgen.gap import gap_matrix
from repro.benchgen.known_optimal import known_optimal_matrix
from repro.benchgen.random_matrices import (
    random_matrix,
    random_matrix_exact_ones,
    random_nonempty_matrix,
)
from repro.benchgen.suite import (
    BenchmarkCase,
    gap_suite,
    known_optimal_suite,
    random_suite,
    table1_suites,
)
from repro.core.exceptions import InvalidMatrixError
from repro.linalg.exact_rank import real_rank
from repro.solvers.sap import sap_solve


class TestRandomMatrices:
    def test_shape(self):
        m = random_matrix(4, 7, 0.5, seed=0)
        assert m.shape == (4, 7)

    def test_deterministic(self):
        assert random_matrix(5, 5, 0.3, seed=9) == random_matrix(
            5, 5, 0.3, seed=9
        )

    def test_extremes(self):
        assert random_matrix(3, 3, 0.0, seed=0).is_zero()
        assert random_matrix(3, 3, 1.0, seed=0).count_ones() == 9

    def test_occupancy_statistics(self):
        m = random_matrix(50, 50, 0.2, seed=1)
        assert 0.1 < m.occupancy() < 0.3

    def test_bad_occupancy(self):
        with pytest.raises(InvalidMatrixError):
            random_matrix(2, 2, 1.5)

    def test_exact_ones(self):
        m = random_matrix_exact_ones(4, 4, 7, seed=2)
        assert m.count_ones() == 7

    def test_exact_ones_bad_count(self):
        with pytest.raises(InvalidMatrixError):
            random_matrix_exact_ones(2, 2, 5)

    def test_nonempty(self):
        m = random_nonempty_matrix(2, 2, 0.05, seed=3)
        assert not m.is_zero()


class TestKnownOptimal:
    @pytest.mark.parametrize("rank", [1, 2, 4, 6])
    def test_rank_certified(self, rank):
        matrix, partition = known_optimal_matrix(8, 8, rank, seed=rank)
        partition.validate(matrix)
        assert partition.depth == rank
        assert real_rank(matrix) == rank

    def test_sap_confirms_optimum(self):
        matrix, partition = known_optimal_matrix(7, 7, 3, seed=5)
        result = sap_solve(matrix, trials=16, seed=0)
        assert result.proved_optimal
        assert result.depth == 3

    def test_bad_rank_rejected(self):
        with pytest.raises(InvalidMatrixError):
            known_optimal_matrix(4, 4, 5)
        with pytest.raises(InvalidMatrixError):
            known_optimal_matrix(4, 4, 0)


class TestGap:
    def test_shape(self):
        m = gap_matrix(10, 10, 3, seed=0)
        assert m.shape == (10, 10)

    def test_pair_rows_sum_to_base(self):
        m = gap_matrix(8, 8, 2, seed=1)
        # rows 0,1 and rows 2,3 are the split pairs: disjoint, same union
        pair_a = m.row_mask(0) | m.row_mask(1)
        pair_b = m.row_mask(2) | m.row_mask(3)
        assert pair_a == pair_b
        assert m.row_mask(0) & m.row_mask(1) == 0
        assert m.row_mask(2) & m.row_mask(3) == 0
        assert m.row_mask(0) != 0 and m.row_mask(1) != 0

    def test_too_many_pairs_rejected(self):
        with pytest.raises(InvalidMatrixError):
            gap_matrix(4, 4, 3)

    def test_zero_pairs_rejected(self):
        with pytest.raises(InvalidMatrixError):
            gap_matrix(4, 4, 0)

    def test_gap_appears_sometimes(self):
        """At least one of several gap draws should show r_B > rank_R
        (that is the construction's purpose)."""
        found_gap = False
        for seed in range(12):
            m = gap_matrix(10, 10, 4, seed=seed)
            result = sap_solve(m, trials=32, seed=0, time_budget=20)
            if result.proved_optimal and result.depth > real_rank(m):
                found_gap = True
                break
        assert found_gap


class TestSuites:
    def test_random_suite_counts(self):
        cases = random_suite((10, 10), (0.1, 0.5), 3, seed=0)
        assert len(cases) == 6
        assert all(isinstance(c, BenchmarkCase) for c in cases)
        assert len({c.case_id for c in cases}) == 6

    def test_known_optimal_suite(self):
        cases = known_optimal_suite((10, 10), [1, 2], 2, seed=0)
        assert len(cases) == 4
        assert all(c.known_binary_rank in (1, 2) for c in cases)

    def test_gap_suite(self):
        cases = gap_suite((10, 10), 3, 5, seed=0)
        assert len(cases) == 5
        assert all("gap, 3" in c.family for c in cases)

    def test_table1_suites_quick(self):
        suites = table1_suites(scale="quick", include_large=False)
        assert "10x10, rand" in suites
        assert "10x10, opt" in suites
        assert "10x10, gap, 5" in suites
        assert "100x100, rand" not in suites

    def test_table1_suites_include_large(self):
        suites = table1_suites(scale="quick", include_large=True)
        assert "100x100, rand" in suites
        large = suites["100x100, rand"]
        assert all(c.matrix.shape == (100, 100) for c in large)

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            table1_suites(scale="huge")

    def test_deterministic(self):
        a = table1_suites(scale="quick", include_large=False, seed=5)
        b = table1_suites(scale="quick", include_large=False, seed=5)
        for family in a:
            for ca, cb in zip(a[family], b[family]):
                assert ca.matrix == cb.matrix
