"""Unit tests for the phase-accumulation simulator."""

import pytest

from repro.atoms.aod import AodConfiguration
from repro.atoms.array import QubitArray
from repro.atoms.schedule import (
    AddressingOperation,
    AddressingSchedule,
    RzPulse,
)
from repro.atoms.simulator import AddressingSimulator
from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import ScheduleError
from repro.core.partition import Partition
from repro.core.rectangle import Rectangle


def schedule_of(rects, shape, theta=1.0):
    ops = [
        AddressingOperation(AodConfiguration(rows, cols), RzPulse(theta))
        for rows, cols in rects
    ]
    return AddressingSchedule(ops, shape)


class TestRun:
    def test_phase_accumulation(self):
        array = QubitArray.full(2, 2)
        schedule = schedule_of([([0], [0, 1]), ([0, 1], [1])], (2, 2), 0.5)
        phases = AddressingSimulator(array).run(schedule)
        assert phases[(0, 0)] == pytest.approx(0.5)
        assert phases[(0, 1)] == pytest.approx(1.0)  # hit twice
        assert phases[(1, 1)] == pytest.approx(0.5)
        assert phases[(1, 0)] == pytest.approx(0.0)

    def test_vacant_sites_absent_from_phases(self):
        array = QubitArray.with_vacancies(2, 2, [(0, 0)])
        schedule = schedule_of([([0, 1], [0, 1])], (2, 2))
        phases = AddressingSimulator(array).run(schedule)
        assert (0, 0) not in phases
        assert phases[(1, 1)] == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        array = QubitArray.full(2, 2)
        schedule = schedule_of([([0], [0])], (3, 3))
        with pytest.raises(ScheduleError):
            AddressingSimulator(array).run(schedule)


class TestVerify:
    def test_correct_schedule_passes(self):
        array = QubitArray.full(2, 2)
        target = BinaryMatrix.from_strings(["11", "01"])
        partition = Partition(
            [
                Rectangle.from_sets([0], [0, 1]),
                Rectangle.from_sets([1], [1]),
            ],
            (2, 2),
        )
        schedule = AddressingSchedule.from_partition(partition, theta=1.0)
        report = AddressingSimulator(array).verify(schedule, target)
        assert report.ok
        assert report.depth == 2
        assert "OK" in report.summary()

    def test_double_address_detected(self):
        array = QubitArray.full(1, 2)
        target = BinaryMatrix.from_strings(["11"])
        schedule = schedule_of([([0], [0, 1]), ([0], [1])], (1, 2))
        report = AddressingSimulator(array).verify(schedule, target)
        assert not report.ok
        assert report.double_addressed == [(0, 1)]
        assert "double" in report.summary()

    def test_missed_detected(self):
        array = QubitArray.full(1, 2)
        target = BinaryMatrix.from_strings(["11"])
        schedule = schedule_of([([0], [0])], (1, 2))
        report = AddressingSimulator(array).verify(schedule, target)
        assert not report.ok
        assert report.missed == [(0, 1)]

    def test_spurious_detected(self):
        array = QubitArray.full(1, 2)
        target = BinaryMatrix.from_strings(["10"])
        schedule = schedule_of([([0], [0, 1])], (1, 2))
        report = AddressingSimulator(array).verify(schedule, target)
        assert not report.ok
        assert report.spurious == [(0, 1)]

    def test_spurious_on_vacancy_allowed(self):
        array = QubitArray.with_vacancies(1, 2, [(0, 1)])
        target = BinaryMatrix.from_strings(["10"])
        schedule = schedule_of([([0], [0, 1])], (1, 2))
        report = AddressingSimulator(array).verify(schedule, target)
        assert report.ok

    def test_target_on_vacancy_rejected(self):
        array = QubitArray.with_vacancies(1, 2, [(0, 1)])
        target = BinaryMatrix.from_strings(["01"])
        schedule = schedule_of([([0], [1])], (1, 2))
        with pytest.raises(ScheduleError):
            AddressingSimulator(array).verify(schedule, target)

    def test_pulse_counts(self):
        array = QubitArray.full(1, 2)
        schedule = schedule_of([([0], [0, 1]), ([0], [1])], (1, 2))
        counts = AddressingSimulator(array).pulse_counts(schedule)
        assert counts == {(0, 0): 1, (0, 1): 2}
