"""AOD constraint model tests."""

import pytest

from repro.atoms.aod import AodConfiguration
from repro.atoms.constraints import AodConstraints
from repro.atoms.schedule import AddressingSchedule
from repro.core.exceptions import ScheduleError
from repro.core.paper_matrices import figure_1b
from repro.solvers.row_packing import row_packing


class TestConstraintValidation:
    def test_defaults_are_unconstrained(self):
        constraints = AodConstraints()
        assert constraints.unconstrained
        config = AodConfiguration(range(50), range(50))
        assert constraints.is_legal(config)

    def test_row_tone_cap(self):
        constraints = AodConstraints(max_row_tones=2)
        assert constraints.is_legal(AodConfiguration([0, 5], [1]))
        violations = constraints.violations(AodConfiguration([0, 1, 2], [0]))
        assert violations and "row tones" in violations[0]

    def test_col_tone_cap(self):
        constraints = AodConstraints(max_col_tones=1)
        assert not constraints.is_legal(AodConfiguration([0], [0, 1]))

    def test_total_budget(self):
        constraints = AodConstraints(max_total_tones=4)
        assert constraints.is_legal(AodConfiguration([0, 1], [3, 4]))
        assert not constraints.is_legal(AodConfiguration([0, 1, 2], [3, 4]))

    def test_row_spacing(self):
        constraints = AodConstraints(min_row_spacing=3)
        assert constraints.is_legal(AodConfiguration([0, 3, 6], [0]))
        violations = constraints.violations(AodConfiguration([0, 2], [0]))
        assert violations and "spacing" in violations[0]

    def test_col_spacing(self):
        constraints = AodConstraints(min_col_spacing=2)
        assert not constraints.is_legal(AodConfiguration([0], [4, 5]))

    def test_multiple_violations_reported(self):
        constraints = AodConstraints(max_row_tones=1, min_col_spacing=2)
        violations = constraints.violations(
            AodConfiguration([0, 1], [3, 4])
        )
        assert len(violations) == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_row_tones": 0},
            {"max_col_tones": -1},
            {"min_row_spacing": 0},
            {"min_col_spacing": 0},
            {"max_total_tones": 1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ScheduleError):
            AodConstraints(**kwargs)

    def test_check_schedule_reports_steps(self):
        matrix = figure_1b()
        partition = row_packing(matrix, trials=10, seed=1)
        schedule = AddressingSchedule.from_partition(partition, theta=0.5)
        constraints = AodConstraints(max_row_tones=1, max_col_tones=1)
        findings = constraints.check_schedule(schedule)
        assert findings  # a 6x6 partition has multi-tone rectangles
        steps = {step for step, _ in findings}
        assert all(0 <= step < schedule.depth for step in steps)
        assert not constraints.schedule_is_legal(schedule)
