"""Unit tests for the pattern -> schedule compiler."""

import pytest

from repro.atoms.array import QubitArray
from repro.atoms.compiler import compile_addressing
from repro.atoms.simulator import AddressingSimulator
from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import ScheduleError
from repro.core.paper_matrices import figure_1b


class TestCompileAddressing:
    def test_sap_strategy_optimal(self):
        array = QubitArray.full(6, 6)
        result = compile_addressing(
            array, figure_1b(), strategy="sap", trials=16, seed=0
        )
        assert result.depth == 5
        assert result.proved_optimal
        assert not result.used_vacancies

    def test_packing_strategy(self):
        array = QubitArray.full(6, 6)
        result = compile_addressing(
            array, figure_1b(), strategy="packing", trials=16, seed=0
        )
        assert result.depth >= 5
        assert not result.proved_optimal

    def test_compiled_schedule_verifies(self, rng):
        for _ in range(10):
            rows, cols = rng.randint(1, 5), rng.randint(1, 5)
            target = BinaryMatrix(
                [rng.getrandbits(cols) for _ in range(rows)], cols
            )
            array = QubitArray.full(rows, cols)
            result = compile_addressing(
                array, target, strategy="packing", trials=4, seed=0
            )
            report = AddressingSimulator(array).verify(
                result.schedule, target
            )
            assert report.ok

    def test_vacancies_exploited(self):
        array = QubitArray.with_vacancies(
            3, 3, [(0, 0), (0, 2), (2, 0), (2, 2)]
        )
        target = BinaryMatrix.from_strings(["010", "111", "010"])
        plain = compile_addressing(
            array, target, strategy="sap", trials=16, seed=0
        )
        with_vacancies = compile_addressing(
            array,
            target,
            strategy="sap",
            exploit_vacancies=True,
            trials=16,
            seed=0,
        )
        assert with_vacancies.used_vacancies
        assert with_vacancies.depth < plain.depth
        report = AddressingSimulator(array).verify(
            with_vacancies.schedule, target
        )
        assert report.ok

    def test_vacancies_flag_noop_on_full_array(self):
        array = QubitArray.full(2, 2)
        target = BinaryMatrix.identity(2)
        result = compile_addressing(
            array, target, exploit_vacancies=True, trials=4, seed=0
        )
        assert not result.used_vacancies
        assert result.depth == 2

    def test_unknown_strategy_rejected(self):
        array = QubitArray.full(2, 2)
        with pytest.raises(ScheduleError):
            compile_addressing(
                array, BinaryMatrix.identity(2), strategy="magic"
            )

    def test_pattern_on_vacancy_rejected(self):
        array = QubitArray.with_vacancies(2, 2, [(0, 0)])
        with pytest.raises(ScheduleError):
            compile_addressing(array, BinaryMatrix.identity(2))

    def test_theta_propagates(self):
        array = QubitArray.full(2, 2)
        result = compile_addressing(
            array, BinaryMatrix.identity(2), theta=0.125, trials=2, seed=0
        )
        assert all(
            op.pulse.theta == 0.125 for op in result.schedule
        )
