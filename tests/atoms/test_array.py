"""Unit tests for the qubit array geometry."""

import pytest

from repro.atoms.array import QubitArray
from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import ScheduleError


class TestConstruction:
    def test_full(self):
        array = QubitArray.full(3, 4)
        assert array.shape == (3, 4)
        assert array.num_atoms == 12
        assert list(array.vacancies()) == []

    def test_with_vacancies(self):
        array = QubitArray.with_vacancies(2, 2, [(0, 1)])
        assert array.num_atoms == 3
        assert not array.is_occupied(0, 1)
        assert array.is_occupied(0, 0)
        assert list(array.vacancies()) == [(0, 1)]

    def test_atoms_iterator(self):
        array = QubitArray.with_vacancies(2, 2, [(0, 0), (1, 1)])
        assert set(array.atoms()) == {(0, 1), (1, 0)}


class TestCheckPattern:
    def test_pattern_on_atoms_ok(self):
        array = QubitArray.full(2, 2)
        array.check_pattern(BinaryMatrix.from_strings(["10", "01"]))

    def test_pattern_on_vacancy_rejected(self):
        array = QubitArray.with_vacancies(2, 2, [(0, 0)])
        with pytest.raises(ScheduleError, match="vacant"):
            array.check_pattern(BinaryMatrix.from_strings(["10", "00"]))

    def test_shape_mismatch_rejected(self):
        array = QubitArray.full(2, 2)
        with pytest.raises(ScheduleError, match="shape"):
            array.check_pattern(BinaryMatrix.zeros(3, 3))

    def test_repr(self):
        assert "atoms=4" in repr(QubitArray.full(2, 2))
