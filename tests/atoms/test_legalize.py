"""Schedule legalization tests: correctness preserved, depth traded."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atoms.aod import AodConfiguration
from repro.atoms.array import QubitArray
from repro.atoms.constraints import AodConstraints
from repro.atoms.legalize import (
    legalize_configuration,
    legalize_schedule,
    split_axis,
)
from repro.atoms.schedule import AddressingSchedule
from repro.atoms.simulator import AddressingSimulator
from repro.benchgen.random_matrices import random_nonempty_matrix
from repro.core.exceptions import ScheduleError
from repro.core.paper_matrices import figure_1b
from repro.solvers.row_packing import row_packing


class TestSplitAxis:
    def test_no_constraints_single_group(self):
        assert split_axis([3, 1, 2]) == [[1, 2, 3]]

    def test_cap_splits_evenly(self):
        groups = split_axis(range(10), max_tones=4)
        assert len(groups) == math.ceil(10 / 4)
        assert sorted(sum(groups, [])) == list(range(10))

    def test_spacing_alternates(self):
        groups = split_axis([0, 1, 2, 3], min_spacing=2)
        assert len(groups) == 2
        for group in groups:
            assert all(b - a >= 2 for a, b in zip(group, group[1:]))

    def test_spacing_and_cap_together(self):
        groups = split_axis(range(8), max_tones=2, min_spacing=3)
        for group in groups:
            assert len(group) <= 2
            assert all(b - a >= 3 for a, b in zip(group, group[1:]))
        assert sorted(sum(groups, [])) == list(range(8))

    def test_invalid_arguments(self):
        with pytest.raises(ScheduleError):
            split_axis([0], max_tones=0)
        with pytest.raises(ScheduleError):
            split_axis([0], min_spacing=0)

    @given(
        indices=st.sets(st.integers(min_value=0, max_value=40), min_size=1),
        cap=st.integers(min_value=1, max_value=6),
        spacing=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=120, deadline=None)
    def test_groups_partition_and_respect_limits(self, indices, cap, spacing):
        groups = split_axis(sorted(indices), max_tones=cap, min_spacing=spacing)
        flattened = sorted(index for group in groups for index in group)
        assert flattened == sorted(indices)
        for group in groups:
            assert 1 <= len(group) <= cap
            assert all(b - a >= spacing for a, b in zip(group, group[1:]))
        # Cannot beat the counting lower bound.
        assert len(groups) >= math.ceil(len(indices) / cap)


class TestLegalizeConfiguration:
    def test_legal_config_untouched(self):
        config = AodConfiguration([0, 2], [1, 3])
        pieces = legalize_configuration(config, AodConstraints())
        assert pieces == [config]

    def test_axis_caps_split_into_products(self):
        config = AodConfiguration(range(4), range(6))
        constraints = AodConstraints(max_row_tones=2, max_col_tones=3)
        pieces = legalize_configuration(config, constraints)
        assert len(pieces) == 2 * 2
        sites = sorted(
            site for piece in pieces for site in piece.addressed_sites()
        )
        assert sites == sorted(config.addressed_sites())
        assert all(constraints.is_legal(piece) for piece in pieces)

    def test_total_budget_chunks_larger_axis(self):
        config = AodConfiguration([0, 1], range(10))
        constraints = AodConstraints(max_total_tones=6)
        pieces = legalize_configuration(config, constraints)
        assert all(constraints.is_legal(piece) for piece in pieces)
        sites = sorted(
            site for piece in pieces for site in piece.addressed_sites()
        )
        assert sites == sorted(config.addressed_sites())

    def test_tight_budget_chunks_both_axes(self):
        config = AodConfiguration(range(6), range(6))
        constraints = AodConstraints(max_total_tones=3)
        pieces = legalize_configuration(config, constraints)
        assert all(constraints.is_legal(piece) for piece in pieces)
        sites = sorted(
            site for piece in pieces for site in piece.addressed_sites()
        )
        assert sites == sorted(config.addressed_sites())


class TestLegalizeSchedule:
    def _schedule(self, seed=1):
        matrix = figure_1b()
        partition = row_packing(matrix, trials=10, seed=seed)
        return matrix, AddressingSchedule.from_partition(partition, theta=0.25)

    def test_unconstrained_is_identity(self):
        _, schedule = self._schedule()
        result = legalize_schedule(schedule, AodConstraints())
        assert result.depth == schedule.depth
        assert result.inflation == 1.0
        assert result.split_operations == 0

    def test_legalized_schedule_still_addresses_pattern(self):
        matrix, schedule = self._schedule()
        constraints = AodConstraints(max_row_tones=1, max_col_tones=2)
        result = legalize_schedule(schedule, constraints)
        assert result.depth >= schedule.depth
        assert result.split_operations >= 1
        array = QubitArray.full(*matrix.shape)
        report = AddressingSimulator(array).verify(result.schedule, matrix)
        assert report.ok, report.summary()

    def test_inflation_metric(self):
        _, schedule = self._schedule()
        constraints = AodConstraints(max_row_tones=1, max_col_tones=1)
        result = legalize_schedule(schedule, constraints)
        # Row x column singletons: depth equals the number of 1-cells.
        assert result.depth == 18
        assert result.inflation == pytest.approx(18 / schedule.depth)

    def test_empty_schedule(self):
        schedule = AddressingSchedule([], (4, 4))
        result = legalize_schedule(schedule, AodConstraints(max_row_tones=1))
        assert result.depth == 0
        assert result.inflation == 1.0

    @given(
        seed=st.integers(min_value=0, max_value=9999),
        row_cap=st.integers(min_value=1, max_value=4),
        col_cap=st.integers(min_value=1, max_value=4),
        spacing=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_legalization_preserves_addressing(
        self, seed, row_cap, col_cap, spacing
    ):
        matrix = random_nonempty_matrix(6, 6, occupancy=0.45, seed=seed)
        partition = row_packing(matrix, trials=3, seed=seed)
        schedule = AddressingSchedule.from_partition(partition, theta=0.5)
        constraints = AodConstraints(
            max_row_tones=row_cap,
            max_col_tones=col_cap,
            min_row_spacing=spacing,
        )
        result = legalize_schedule(schedule, constraints)
        assert constraints.schedule_is_legal(result.schedule)
        array = QubitArray.full(*matrix.shape)
        report = AddressingSimulator(array).verify(result.schedule, matrix)
        assert report.ok, report.summary()

    @given(
        seed=st.integers(min_value=0, max_value=9999),
        budget=st.integers(min_value=2, max_value=8),
        spacing=st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_total_budget_preserves_addressing(
        self, seed, budget, spacing
    ):
        """The RF-budget path (including the chunk-both-axes branch)
        keeps the schedule legal and behaviourally correct."""
        matrix = random_nonempty_matrix(7, 7, occupancy=0.5, seed=seed)
        partition = row_packing(matrix, trials=3, seed=seed)
        schedule = AddressingSchedule.from_partition(partition, theta=0.5)
        constraints = AodConstraints(
            max_total_tones=budget, min_col_spacing=spacing
        )
        result = legalize_schedule(schedule, constraints)
        assert constraints.schedule_is_legal(result.schedule)
        array = QubitArray.full(*matrix.shape)
        report = AddressingSimulator(array).verify(result.schedule, matrix)
        assert report.ok, report.summary()
