"""Unit tests for the schedule cost model."""

import pytest

from repro.atoms.aod import AodConfiguration
from repro.atoms.cost import ScheduleCostModel, reorder_for_tone_reuse
from repro.atoms.schedule import (
    AddressingOperation,
    AddressingSchedule,
    RzPulse,
)
from repro.core.exceptions import ScheduleError


def schedule_of(configs, shape):
    ops = [
        AddressingOperation(AodConfiguration(rows, cols), RzPulse(1.0))
        for rows, cols in configs
    ]
    return AddressingSchedule(ops, shape)


class TestScheduleCostModel:
    def test_empty_schedule(self):
        model = ScheduleCostModel()
        schedule = AddressingSchedule([], (2, 2))
        assert model.duration(schedule) == 0.0
        assert model.peak_tones(schedule) == 0

    def test_single_step(self):
        model = ScheduleCostModel(
            reconfiguration_time=100, tone_switch_time=1, pulse_time=10
        )
        schedule = schedule_of([([0, 1], [2])], (2, 3))
        # 100 + 3 tones switched on + 10
        assert model.duration(schedule) == pytest.approx(113.0)

    def test_tone_reuse_is_cheaper(self):
        model = ScheduleCostModel(
            reconfiguration_time=0, tone_switch_time=1, pulse_time=0
        )
        shared = schedule_of([([0], [0]), ([0], [1])], (2, 2))
        disjoint = schedule_of([([0], [0]), ([1], [1])], (2, 2))
        assert model.duration(shared) < model.duration(disjoint)

    def test_peak_tones(self):
        model = ScheduleCostModel()
        schedule = schedule_of([([0], [0]), ([0, 1], [0, 1])], (2, 2))
        assert model.peak_tones(schedule) == 4

    def test_summary(self):
        model = ScheduleCostModel()
        schedule = schedule_of([([0], [0])], (1, 1))
        duration, depth, peak = model.summary(schedule)
        assert depth == 1 and peak == 2 and duration > 0

    def test_negative_constant_rejected(self):
        with pytest.raises(ScheduleError):
            ScheduleCostModel(pulse_time=-1)


class TestReorderForToneReuse:
    def test_preserves_configuration_set(self):
        schedule = schedule_of(
            [([0], [0]), ([5], [5]), ([0], [1])], (6, 6)
        )
        reordered = reorder_for_tone_reuse(schedule)
        assert reordered.depth == schedule.depth
        assert {
            (op.configuration.rows, op.configuration.cols)
            for op in reordered
        } == {
            (op.configuration.rows, op.configuration.cols)
            for op in schedule
        }

    def test_reordering_never_increases_duration(self, rng):
        model = ScheduleCostModel(
            reconfiguration_time=0, tone_switch_time=1, pulse_time=0
        )
        for _ in range(15):
            configs = []
            for _ in range(rng.randint(1, 8)):
                rows = [rng.randrange(6) ]
                cols = [rng.randrange(6)]
                configs.append((rows, cols))
            schedule = schedule_of(configs, (6, 6))
            reordered = reorder_for_tone_reuse(schedule)
            assert model.duration(reordered) <= model.duration(schedule) + 1e-9

    def test_groups_similar_configs(self):
        schedule = schedule_of(
            [([0], [0]), ([3], [3]), ([0], [0, 1]), ([3], [3, 4])],
            (6, 6),
        )
        model = ScheduleCostModel(
            reconfiguration_time=0, tone_switch_time=1, pulse_time=0
        )
        reordered = reorder_for_tone_reuse(schedule)
        assert model.duration(reordered) < model.duration(schedule)

    def test_empty(self):
        schedule = AddressingSchedule([], (2, 2))
        assert reorder_for_tone_reuse(schedule).depth == 0
