"""Unit tests for AOD configurations."""

import pytest

from repro.atoms.aod import AodConfiguration
from repro.core.exceptions import ScheduleError
from repro.core.rectangle import Rectangle


class TestConstruction:
    def test_basic(self):
        config = AodConfiguration([0, 2], [1])
        assert config.rows == frozenset({0, 2})
        assert config.cols == frozenset({1})
        assert config.num_tones == 3

    def test_empty_rows_rejected(self):
        with pytest.raises(ScheduleError):
            AodConfiguration([], [1])

    def test_empty_cols_rejected(self):
        with pytest.raises(ScheduleError):
            AodConfiguration([0], [])

    def test_negative_tone_rejected(self):
        with pytest.raises(ScheduleError):
            AodConfiguration([-1], [0])

    def test_from_rectangle_round_trip(self):
        rect = Rectangle.from_sets([1, 3], [0, 2])
        config = AodConfiguration.from_rectangle(rect)
        assert config.to_rectangle() == rect


class TestAddressing:
    def test_addressed_sites_is_product(self):
        config = AodConfiguration([0, 1], [2, 3])
        assert set(config.addressed_sites()) == {
            (0, 2), (0, 3), (1, 2), (1, 3)
        }

    def test_addresses(self):
        config = AodConfiguration([0], [1])
        assert config.addresses(0, 1)
        assert not config.addresses(0, 0)
        assert not config.addresses(1, 1)

    def test_fits(self):
        config = AodConfiguration([0, 2], [1])
        assert config.fits(3, 2)
        assert not config.fits(2, 2)
        assert not config.fits(3, 1)


class TestDunder:
    def test_eq_hash(self):
        a = AodConfiguration([0], [1])
        b = AodConfiguration({0}, {1})
        assert a == b and hash(a) == hash(b)
        assert a != AodConfiguration([1], [0])
        assert a != object()

    def test_repr_sorted(self):
        config = AodConfiguration([2, 0], [1])
        assert "rows=[0, 2]" in repr(config)
