"""Unit tests for addressing schedules."""

import pytest

from repro.atoms.aod import AodConfiguration
from repro.atoms.schedule import (
    AddressingOperation,
    AddressingSchedule,
    RzPulse,
)
from repro.core.exceptions import ScheduleError
from repro.core.partition import Partition
from repro.core.rectangle import Rectangle


class TestRzPulse:
    def test_theta(self):
        assert RzPulse(0.25).theta == 0.25

    def test_non_numeric_rejected(self):
        with pytest.raises(ScheduleError):
            RzPulse("pi")


class TestSchedule:
    def sample_partition(self):
        rects = [
            Rectangle.from_sets([0], [0, 1]),
            Rectangle.from_sets([1], [1]),
        ]
        return Partition(rects, (2, 2))

    def test_from_partition(self):
        schedule = AddressingSchedule.from_partition(
            self.sample_partition(), theta=0.5
        )
        assert schedule.depth == 2
        assert schedule.shape == (2, 2)
        assert all(op.pulse.theta == 0.5 for op in schedule)

    def test_depth_equals_partition_size(self):
        partition = self.sample_partition()
        schedule = AddressingSchedule.from_partition(partition, theta=1.0)
        assert schedule.depth == partition.depth == len(schedule)

    def test_total_tones(self):
        schedule = AddressingSchedule.from_partition(
            self.sample_partition(), theta=1.0
        )
        # rect 1: 1 row + 2 cols = 3 tones; rect 2: 1 + 1 = 2
        assert schedule.total_tones == 5

    def test_out_of_shape_operation_rejected(self):
        op = AddressingOperation(AodConfiguration([5], [0]), RzPulse(1.0))
        with pytest.raises(ScheduleError):
            AddressingSchedule([op], (2, 2))

    def test_operations_copy(self):
        schedule = AddressingSchedule.from_partition(
            self.sample_partition(), theta=1.0
        )
        ops = schedule.operations
        ops.clear()
        assert schedule.depth == 2

    def test_repr(self):
        schedule = AddressingSchedule([], (2, 2))
        assert "depth=0" in repr(schedule)
