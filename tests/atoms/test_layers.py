"""Unit tests for multi-layer circuit compilation."""

import pytest

from repro.atoms.array import QubitArray
from repro.atoms.cost import ScheduleCostModel
from repro.atoms.layers import (
    CircuitCompilation,
    LayerSpec,
    compile_layers,
    layers_from_patterns,
)
from repro.atoms.simulator import AddressingSimulator
from repro.benchgen.random_matrices import random_matrix
from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import ScheduleError


class TestCompileLayers:
    def test_two_layer_circuit(self):
        array = QubitArray.full(4, 4)
        layers = [
            LayerSpec(BinaryMatrix.identity(4), theta=0.5),
            LayerSpec(BinaryMatrix.all_ones(4, 4), theta=0.25),
        ]
        result = compile_layers(array, layers, trials=4, seed=0)
        assert len(result.schedules) == 2
        assert result.total_depth == 4 + 1
        assert result.all_proved_optimal
        # verify each layer behaviourally
        sim = AddressingSimulator(array)
        for layer, schedule in zip(layers, result.schedules):
            assert sim.verify(schedule, layer.target).ok

    def test_empty_circuit_rejected(self):
        with pytest.raises(ScheduleError):
            compile_layers(QubitArray.full(2, 2), [])

    def test_layers_from_patterns(self):
        patterns = [BinaryMatrix.identity(2), BinaryMatrix.all_ones(2, 2)]
        layers = layers_from_patterns(patterns, theta=0.1)
        assert all(layer.theta == 0.1 for layer in layers)
        assert [layer.target for layer in layers] == patterns

    def test_random_layers_verify(self, rng):
        array = QubitArray.full(6, 6)
        patterns = [
            random_matrix(6, 6, 0.4, seed=rng.randint(0, 999))
            for _ in range(3)
        ]
        result = compile_layers(
            array,
            layers_from_patterns(patterns),
            strategy="packing",
            trials=4,
            seed=1,
        )
        sim = AddressingSimulator(array)
        for pattern, schedule in zip(patterns, result.schedules):
            assert sim.verify(schedule, pattern).ok

    def test_duration_aggregates(self):
        array = QubitArray.full(3, 3)
        result = compile_layers(
            array,
            layers_from_patterns([BinaryMatrix.identity(3)]),
            trials=2,
            seed=0,
        )
        model = ScheduleCostModel()
        assert result.duration(model) == pytest.approx(
            model.duration(result.schedules[0])
        )
        assert result.duration() > 0

    def test_tone_reuse_toggle(self):
        array = QubitArray.full(4, 4)
        layers = layers_from_patterns([BinaryMatrix.identity(4)])
        with_reuse = compile_layers(
            array, layers, trials=2, seed=0, tone_reuse=True
        )
        without = compile_layers(
            array, layers, trials=2, seed=0, tone_reuse=False
        )
        assert with_reuse.total_depth == without.total_depth
        model = ScheduleCostModel()
        assert with_reuse.duration(model) <= without.duration(model) + 1e-9


class TestCircuitCompilationDataclass:
    def test_optimality_aggregation(self):
        array = QubitArray.full(2, 2)
        result = compile_layers(
            array,
            layers_from_patterns([BinaryMatrix.identity(2)]),
            strategy="packing",
            trials=2,
            seed=0,
        )
        assert isinstance(result, CircuitCompilation)
        # packing strategy never proves optimality
        assert not result.all_proved_optimal
