"""Unit tests for tensor products of partitions and Eq. 5 bounds."""

import pytest

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidPartitionError
from repro.core.paper_matrices import equation_2
from repro.core.rectangle import Rectangle
from repro.ftqc.tensor import (
    tensor_partition,
    tensor_rank_bounds,
    tensor_rectangle,
)
from repro.solvers.sap import sap_solve


class TestTensorRectangle:
    def test_single_cells(self):
        outer = Rectangle.single(1, 0)
        inner = Rectangle.single(0, 1)
        combined = tensor_rectangle(outer, inner, (2, 2))
        assert combined.rows == (2,)  # 1*2 + 0
        assert combined.cols == (1,)  # 0*2 + 1

    def test_block_structure(self):
        outer = Rectangle.from_sets([0, 1], [0])
        inner = Rectangle.from_sets([0], [0, 1])
        combined = tensor_rectangle(outer, inner, (2, 2))
        assert set(combined.rows) == {0, 2}
        assert set(combined.cols) == {0, 1}


class TestTensorPartition:
    def test_partitions_the_kron(self, rng):
        for _ in range(10):
            a = BinaryMatrix(
                [rng.getrandbits(3) for _ in range(3)], 3
            )
            b = BinaryMatrix(
                [rng.getrandbits(2) for _ in range(2)], 2
            )
            pa = sap_solve(a, trials=4, seed=0).partition
            pb = sap_solve(b, trials=4, seed=0).partition
            combined = tensor_partition(pa, pb)
            combined.validate(a.tensor(b))
            assert combined.depth == pa.depth * pb.depth

    def test_empty_partitions(self):
        a = BinaryMatrix.zeros(2, 2)
        pa = sap_solve(a).partition
        pb = sap_solve(BinaryMatrix.identity(2)).partition
        combined = tensor_partition(pa, pb)
        assert combined.depth == 0
        combined.validate(a.tensor(BinaryMatrix.identity(2)))


class TestTensorRankBounds:
    def test_all_ones_inner_is_tight(self):
        outer = equation_2()
        inner = BinaryMatrix.all_ones(2, 2)
        bounds = tensor_rank_bounds(outer, inner, seed=0)
        assert bounds.inner_rank == 1
        assert bounds.inner_fooling == 1
        assert bounds.upper == bounds.outer_rank
        assert bounds.is_tight

    def test_bracket_ordering(self):
        outer = BinaryMatrix.identity(2)
        inner = equation_2()
        bounds = tensor_rank_bounds(outer, inner, seed=0)
        assert bounds.lower <= bounds.upper

    def test_eq5_gap_case(self):
        """Eq. 2 matrix has phi=2 < r_B=3: tensor with itself leaves a gap
        in the Eq. 5 bracket (lower=6 < upper=9)."""
        m = equation_2()
        bounds = tensor_rank_bounds(m, m, seed=0)
        assert bounds.lower == 6
        assert bounds.upper == 9

    def test_true_rank_within_bracket(self):
        """Direct SAP on the 4x4 kron of two identities: r_B = 4 matches
        the product bound."""
        eye = BinaryMatrix.identity(2)
        bounds = tensor_rank_bounds(eye, eye, seed=0)
        direct = sap_solve(eye.tensor(eye), trials=8, seed=0)
        assert direct.proved_optimal
        assert bounds.lower <= direct.depth <= bounds.upper

    def test_budget_failure_raises(self):
        # seed 3 yields a gap instance whose packing depth exceeds the
        # rank bound, so a zero budget cannot prove the factor rank.
        from repro.benchgen.gap import gap_matrix

        hard = gap_matrix(10, 10, 4, seed=3)
        with pytest.raises(InvalidPartitionError):
            tensor_rank_bounds(hard, hard, seed=0, time_budget=0.0)
