"""Unit tests for the two-level FTQC solver."""

import pytest

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidMatrixError
from repro.ftqc.two_level import two_level_solve
from repro.solvers.sap import sap_solve


class TestTwoLevelSolve:
    def test_transversal_case_is_optimal(self):
        """All-ones inner mask: two-level result is provably optimal."""
        outer = BinaryMatrix.from_strings(["101", "010", "110"])
        inner = BinaryMatrix.all_ones(2, 2)
        flat = outer.tensor(inner)
        result = two_level_solve(flat, (2, 2), seed=0)
        result.partition.validate(flat)
        assert result.proved_optimal
        direct = sap_solve(flat, trials=16, seed=0)
        assert direct.proved_optimal
        assert result.depth == direct.depth

    def test_matches_product_of_factor_depths(self):
        outer = BinaryMatrix.identity(2)
        inner = BinaryMatrix.from_strings(["11", "01"])
        flat = outer.tensor(inner)
        result = two_level_solve(flat, (2, 2), seed=0)
        assert (
            result.depth
            == result.outer_partition.depth * result.inner_partition.depth
        )

    def test_factors_recovered(self):
        outer = BinaryMatrix.from_strings(["10", "01"])
        inner = BinaryMatrix.from_strings(["11", "10"])
        flat = outer.tensor(inner)
        result = two_level_solve(flat, (2, 2), seed=0)
        assert result.outer == outer
        assert result.inner == inner

    def test_non_kron_rejected(self):
        m = BinaryMatrix.from_strings(["1100", "0110"])
        with pytest.raises(InvalidMatrixError):
            two_level_solve(m, (1, 2))

    def test_zero_matrix(self):
        flat = BinaryMatrix.zeros(4, 4)
        result = two_level_solve(flat, (2, 2), seed=0)
        assert result.depth == 0
        assert result.proved_optimal  # depth 0 is trivially optimal

    def test_depth_one_case(self):
        flat = BinaryMatrix.all_ones(4, 4)
        result = two_level_solve(flat, (2, 2), seed=0)
        assert result.depth == 1
        assert result.proved_optimal

    def test_bounds_skipped_when_disabled(self):
        outer = BinaryMatrix.identity(2)
        inner = BinaryMatrix.all_ones(2, 2)
        result = two_level_solve(
            outer.tensor(inner), (2, 2), seed=0, compute_bounds=False
        )
        assert result.bounds is None

    def test_upper_bound_property_on_random(self, rng):
        """Two-level depth is always an upper bound on the direct depth."""
        for _ in range(6):
            outer = BinaryMatrix(
                [rng.getrandbits(2) for _ in range(2)], 2
            )
            inner = BinaryMatrix(
                [rng.getrandbits(2) for _ in range(2)], 2
            )
            if outer.is_zero() or inner.is_zero():
                continue
            flat = outer.tensor(inner)
            two_level = two_level_solve(flat, (2, 2), seed=0)
            direct = sap_solve(flat, trials=16, seed=0)
            assert direct.proved_optimal
            assert direct.depth <= two_level.depth
