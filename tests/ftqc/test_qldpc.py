"""Unit tests for qLDPC block layouts and the Section V conjecture tools."""

import pytest

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidMatrixError
from repro.ftqc.qldpc import (
    BlockLayout,
    full_rank_fraction,
    row_addressing_depth,
    row_addressing_sufficient,
)


class TestBlockLayout:
    def test_pattern_from_offsets(self):
        layout = BlockLayout(2, 4)
        pattern = layout.pattern_from_offsets([[0, 2], [3]])
        assert pattern.shape == (2, 4)
        assert pattern.row_mask(0) == 0b0101
        assert pattern.row_mask(1) == 0b1000

    def test_offset_out_of_range(self):
        layout = BlockLayout(1, 3)
        with pytest.raises(InvalidMatrixError):
            layout.pattern_from_offsets([[3]])

    def test_wrong_block_count(self):
        layout = BlockLayout(2, 3)
        with pytest.raises(InvalidMatrixError):
            layout.pattern_from_offsets([[0]])

    def test_random_pattern(self):
        layout = BlockLayout(4, 8)
        pattern = layout.random_pattern(3, seed=0)
        assert pattern.shape == (4, 8)
        assert all(
            bin(pattern.row_mask(i)).count("1") == 3 for i in range(4)
        )

    def test_random_pattern_bad_count(self):
        with pytest.raises(InvalidMatrixError):
            BlockLayout(2, 3).random_pattern(4)

    def test_invalid_layout(self):
        with pytest.raises(InvalidMatrixError):
            BlockLayout(0, 3)


class TestRowAddressing:
    def test_depth_counts_distinct_rows(self):
        m = BinaryMatrix.from_strings(["110", "110", "011", "000"])
        assert row_addressing_depth(m) == 2

    def test_sufficient_for_full_rank(self):
        m = BinaryMatrix.from_strings(["100", "010", "001"])
        assert row_addressing_sufficient(m, seed=0) is True

    def test_insufficient_when_columns_pack_better(self):
        """4 distinct rows but only 2 distinct columns: column addressing
        needs 2 < 4 shots, so row-by-row is NOT optimal."""
        m = BinaryMatrix.from_strings(["11", "10", "01", "11"])
        # distinct rows: 3 (11, 10, 01); r_B here is 2
        assert row_addressing_sufficient(m, seed=0) is False

    def test_undecided_on_zero_budget(self):
        from repro.benchgen.gap import gap_matrix

        hard = gap_matrix(10, 10, 4, seed=7)
        verdict = row_addressing_sufficient(
            hard, seed=0, time_budget=0.0
        )
        assert verdict in (None, True, False)


class TestFullRankFraction:
    def test_wide_easier_than_square(self):
        narrow = full_rank_fraction(10, 10, 0.2, 30, seed=1)
        wide = full_rank_fraction(10, 30, 0.2, 30, seed=1)
        assert wide >= narrow

    def test_range(self):
        value = full_rank_fraction(4, 4, 0.5, 10, seed=0)
        assert 0.0 <= value <= 1.0

    def test_zero_occupancy_never_full_rank(self):
        assert full_rank_fraction(3, 3, 0.0, 5, seed=0) == 0.0

    def test_invalid_samples(self):
        with pytest.raises(InvalidMatrixError):
            full_rank_fraction(3, 3, 0.5, 0)
