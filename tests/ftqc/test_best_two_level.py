"""Unit tests for automatic two-level factor selection."""

from repro.core.binary_matrix import BinaryMatrix
from repro.ftqc.two_level import best_two_level_solve, two_level_solve


class TestBestTwoLevelSolve:
    def test_finds_planted_factorization(self):
        outer = BinaryMatrix.from_strings(["10", "11"])
        inner = BinaryMatrix.from_strings(["11", "01"])
        flat = outer.tensor(inner)
        best = best_two_level_solve(flat, seed=0)
        assert best is not None
        best.partition.validate(flat)
        explicit = two_level_solve(flat, (2, 2), seed=0)
        assert best.depth <= explicit.depth

    def test_none_when_unstructured(self):
        # A prime-shaped matrix with no non-trivial strips that factor:
        # 1x1-blocks are excluded, full shape excluded; column strips of
        # a matrix with distinct non-proportional columns cannot factor.
        m = BinaryMatrix.from_strings(["110", "011"])
        result = best_two_level_solve(m, seed=0)
        if result is not None:  # strip factorizations may legally exist
            result.partition.validate(m)

    def test_prefers_cheaper_factorization(self):
        """A matrix with several factorizations: the product of depths
        must be the minimum over the discovered ones."""
        outer = BinaryMatrix.all_ones(2, 2)
        inner = BinaryMatrix.all_ones(2, 2)
        flat = outer.tensor(inner)  # all-ones 4x4, factors many ways
        best = best_two_level_solve(flat, seed=0)
        assert best is not None
        assert best.depth == 1

    def test_zero_matrix(self):
        flat = BinaryMatrix.zeros(4, 4)
        best = best_two_level_solve(flat, seed=0)
        assert best is not None
        assert best.depth == 0
