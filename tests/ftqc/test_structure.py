"""Unit tests for Kronecker structure detection."""

import pytest

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidMatrixError
from repro.ftqc.structure import (
    detect_kron,
    find_kron_factorizations,
    possible_inner_shapes,
)


class TestPossibleInnerShapes:
    def test_divisors_only(self):
        shapes = set(possible_inner_shapes((4, 6)))
        assert (2, 3) in shapes
        assert (4, 6) not in shapes  # full shape excluded
        assert (1, 1) not in shapes  # trivial excluded
        assert all(4 % r == 0 and 6 % c == 0 for r, c in shapes)

    def test_prime_shape(self):
        shapes = set(possible_inner_shapes((3, 5)))
        # divisors of 3: 1,3; of 5: 1,5 -> (1,5),(3,1),(3,5)x,(1,1)x
        assert shapes == {(1, 5), (3, 1)}


class TestDetectKron:
    def test_recovers_factors(self, rng):
        for _ in range(10):
            outer = BinaryMatrix(
                [rng.getrandbits(2) for _ in range(2)], 2
            )
            inner = BinaryMatrix(
                [rng.getrandbits(3) for _ in range(2)], 3
            )
            if outer.is_zero() or inner.is_zero():
                continue
            flat = outer.tensor(inner)
            factors = detect_kron(flat, inner.shape)
            assert factors is not None
            found_outer, found_inner = factors
            assert found_outer.tensor(found_inner) == flat

    def test_non_kron_returns_none(self):
        m = BinaryMatrix.from_strings(["1100", "0110"])
        assert detect_kron(m, (1, 2)) is None

    def test_non_divisible_shape_returns_none(self):
        m = BinaryMatrix.identity(4)
        assert detect_kron(m, (3, 3)) is None

    def test_zero_matrix(self):
        m = BinaryMatrix.zeros(4, 4)
        factors = detect_kron(m, (2, 2))
        assert factors is not None
        outer, inner = factors
        assert outer.is_zero() and inner.is_zero()

    def test_bad_inner_shape_rejected(self):
        with pytest.raises(InvalidMatrixError):
            detect_kron(BinaryMatrix.identity(2), (0, 1))

    def test_identity_blocks(self):
        eye = BinaryMatrix.identity(2)
        ones = BinaryMatrix.all_ones(2, 2)
        flat = eye.tensor(ones)
        outer, inner = detect_kron(flat, (2, 2))
        assert outer == eye
        assert inner == ones


class TestFindKronFactorizations:
    def test_finds_planted_factorization(self):
        outer = BinaryMatrix.from_strings(["10", "11"])
        inner = BinaryMatrix.from_strings(["11", "01"])
        flat = outer.tensor(inner)
        found = find_kron_factorizations(flat)
        shapes = [shape for shape, _, _ in found]
        assert (2, 2) in shapes
        for _shape, a, b in found:
            assert a.tensor(b) == flat

    def test_unstructured_matrix_may_have_trivial_strips_only(self):
        m = BinaryMatrix.from_strings(["10", "01"])
        found = find_kron_factorizations(m)
        for _shape, a, b in found:
            assert a.tensor(b) == m
