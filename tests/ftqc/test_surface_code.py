"""Unit tests for surface-code patch layouts."""

import pytest

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidMatrixError
from repro.ftqc.surface_code import (
    SurfaceCodeGrid,
    boundary_row_patch_mask,
    corner_patch_mask,
    transversal_patch_mask,
)


class TestPatchMasks:
    def test_transversal_all_ones(self):
        mask = transversal_patch_mask(3)
        assert mask.shape == (3, 3)
        assert mask.count_ones() == 9

    def test_boundary_row(self):
        mask = boundary_row_patch_mask(3, row=1)
        assert mask.count_ones() == 3
        assert mask.row_mask(1) == 0b111
        assert mask.row_mask(0) == 0

    def test_corner(self):
        mask = corner_patch_mask(3)
        assert mask.count_ones() == 1
        assert mask[0, 0] == 1

    def test_invalid_distance(self):
        with pytest.raises(InvalidMatrixError):
            transversal_patch_mask(0)
        with pytest.raises(InvalidMatrixError):
            corner_patch_mask(0)

    def test_invalid_row(self):
        with pytest.raises(InvalidMatrixError):
            boundary_row_patch_mask(3, row=3)


class TestSurfaceCodeGrid:
    def test_shapes(self):
        grid = SurfaceCodeGrid(2, 3, 5)
        assert grid.logical_shape == (2, 3)
        assert grid.physical_shape == (10, 15)

    def test_physical_pattern_default_patch(self):
        grid = SurfaceCodeGrid(2, 2, 2)
        logical = BinaryMatrix.identity(2)
        pattern = grid.physical_pattern(logical)
        assert pattern == logical.tensor(BinaryMatrix.all_ones(2, 2))

    def test_physical_pattern_custom_patch(self):
        grid = SurfaceCodeGrid(1, 2, 2)
        logical = BinaryMatrix.from_strings(["11"])
        patch = corner_patch_mask(2)
        pattern = grid.physical_pattern(logical, patch)
        assert pattern.count_ones() == 2

    def test_logical_shape_mismatch(self):
        grid = SurfaceCodeGrid(2, 2, 2)
        with pytest.raises(InvalidMatrixError):
            grid.physical_pattern(BinaryMatrix.identity(3))

    def test_patch_shape_mismatch(self):
        grid = SurfaceCodeGrid(2, 2, 2)
        with pytest.raises(InvalidMatrixError):
            grid.physical_pattern(
                BinaryMatrix.identity(2), BinaryMatrix.identity(3)
            )

    def test_invalid_grid(self):
        with pytest.raises(InvalidMatrixError):
            SurfaceCodeGrid(0, 2, 2)
