"""Unit tests for masked (don't-care) matrices."""

import pytest

from repro.completion.masked import (
    MaskedMatrix,
    masked_fooling_number,
    validate_masked_partition,
)
from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidMatrixError, InvalidPartitionError
from repro.core.partition import Partition
from repro.core.rectangle import Rectangle


class TestConstruction:
    def test_from_strings(self):
        m = MaskedMatrix.from_strings(["1*0", "01*"])
        assert m.value(0, 0) == "1"
        assert m.value(0, 1) == "*"
        assert m.value(0, 2) == "0"
        assert m.to_strings() == ["1*0", "01*"]

    def test_bad_character(self):
        with pytest.raises(InvalidMatrixError):
            MaskedMatrix.from_strings(["1x0"])

    def test_overlap_rejected(self):
        ones = BinaryMatrix.from_strings(["1"])
        dc = BinaryMatrix.from_strings(["1"])
        with pytest.raises(InvalidMatrixError):
            MaskedMatrix(ones, dc)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidMatrixError):
            MaskedMatrix(BinaryMatrix.zeros(1, 2), BinaryMatrix.zeros(2, 1))

    def test_from_target_and_vacancies(self):
        target = BinaryMatrix.from_strings(["10", "00"])
        vacancies = BinaryMatrix.from_strings(["00", "01"])
        m = MaskedMatrix.from_target_and_vacancies(target, vacancies)
        assert m.value(1, 1) == "*"
        assert m.value(0, 0) == "1"

    def test_target_on_vacancy_rejected(self):
        target = BinaryMatrix.from_strings(["1"])
        vacancies = BinaryMatrix.from_strings(["1"])
        with pytest.raises(InvalidMatrixError):
            MaskedMatrix.from_target_and_vacancies(target, vacancies)

    def test_free_matrix(self):
        m = MaskedMatrix.from_strings(["1*0"])
        assert m.free_matrix() == BinaryMatrix.from_strings(["110"])


class TestValidation:
    def test_valid_overlap_on_dont_care(self):
        m = MaskedMatrix.from_strings(["1*", "*1"])
        rects = [
            Rectangle.from_sets([0, 1], [0, 1]),
        ]
        # one rectangle covering everything: 1s once, stars once -> valid
        validate_masked_partition(m, Partition(rects, (2, 2)))

    def test_overlapping_rectangles_on_dont_care_allowed(self):
        m = MaskedMatrix.from_strings(["1*1"])
        rects = [
            Rectangle.from_sets([0], [0, 1]),
            Rectangle.from_sets([0], [1, 2]),
        ]
        validate_masked_partition(m, Partition(rects, (1, 3)))

    def test_double_covered_one_rejected(self):
        m = MaskedMatrix.from_strings(["11"])
        rects = [
            Rectangle.from_sets([0], [0, 1]),
            Rectangle.from_sets([0], [1]),
        ]
        with pytest.raises(InvalidPartitionError):
            validate_masked_partition(m, Partition(rects, (1, 2)))

    def test_covered_zero_rejected(self):
        m = MaskedMatrix.from_strings(["10"])
        rects = [Rectangle.from_sets([0], [0, 1])]
        with pytest.raises(InvalidPartitionError):
            validate_masked_partition(m, Partition(rects, (1, 2)))

    def test_missed_one_rejected(self):
        m = MaskedMatrix.from_strings(["11"])
        rects = [Rectangle.single(0, 0)]
        with pytest.raises(InvalidPartitionError):
            validate_masked_partition(m, Partition(rects, (1, 2)))

    def test_shape_mismatch_rejected(self):
        m = MaskedMatrix.from_strings(["1"])
        with pytest.raises(InvalidPartitionError):
            validate_masked_partition(
                m, Partition([Rectangle.single(0, 0)], (2, 2))
            )


class TestMaskedFooling:
    def test_identity_like(self):
        m = MaskedMatrix.from_strings(["10", "01"])
        assert masked_fooling_number(m) == 2

    def test_dont_cares_weaken_bound(self):
        # with the crosses don't-care, the two diagonal 1s can share
        m = MaskedMatrix.from_strings(["1*", "*1"])
        assert masked_fooling_number(m) == 1

    def test_empty(self):
        m = MaskedMatrix.from_strings(["**", "**"])
        assert masked_fooling_number(m) == 0

    def test_greedy_fallback(self):
        m = MaskedMatrix.from_strings(["10", "01"])
        assert masked_fooling_number(m, max_cells=1) >= 1
