"""Unit tests for exact masked addressing (binary matrix completion)."""

from repro.completion.exact import MaskedEncoder, masked_minimum_addressing
from repro.completion.masked import MaskedMatrix, validate_masked_partition
from repro.core.binary_matrix import BinaryMatrix
from repro.sat.solver import SolveStatus
from repro.solvers.sap import sap_solve


class TestMaskedEncoder:
    def test_dont_care_enables_merge(self):
        """[[1,*],[*,1]] has a 1-rectangle cover; without the stars the
        identity needs 2."""
        masked = MaskedMatrix.from_strings(["1*", "*1"])
        encoder = MaskedEncoder(masked, 1)
        assert encoder.solve() is SolveStatus.SAT
        partition = encoder.extract_partition()
        validate_masked_partition(masked, partition)
        assert partition.depth == 1

    def test_hard_zero_blocks_merge(self):
        masked = MaskedMatrix.from_strings(["10", "01"])
        encoder = MaskedEncoder(masked, 1)
        assert encoder.solve() is SolveStatus.UNSAT
        assert MaskedEncoder(masked, 2).solve() is SolveStatus.SAT

    def test_cross_one_pulled_into_rectangle(self):
        # cells (0,0) and (1,1) sharing forces (0,1) and (1,0) in too
        masked = MaskedMatrix.from_strings(["11", "11"])
        encoder = MaskedEncoder(masked, 1)
        assert encoder.solve() is SolveStatus.SAT
        assert encoder.extract_partition().depth == 1

    def test_narrowing(self):
        masked = MaskedMatrix.from_strings(["10", "01"])
        encoder = MaskedEncoder(masked, 3)
        assert encoder.solve() is SolveStatus.SAT
        encoder.narrow_to(2)
        assert encoder.solve() is SolveStatus.SAT
        encoder.narrow_to(1)
        assert encoder.solve() is SolveStatus.UNSAT

    def test_empty(self):
        masked = MaskedMatrix.from_strings(["**"])
        encoder = MaskedEncoder(masked, 0)
        assert encoder.solve() is SolveStatus.SAT
        assert encoder.extract_partition().depth == 0


class TestMaskedMinimumAddressing:
    def test_matches_plain_sap_without_dont_cares(self, rng):
        for _ in range(10):
            rows, cols = rng.randint(1, 5), rng.randint(1, 5)
            m = BinaryMatrix(
                [rng.getrandbits(cols) for _ in range(rows)], cols
            )
            masked = MaskedMatrix(m, BinaryMatrix.zeros(rows, cols))
            masked_result = masked_minimum_addressing(
                masked, trials=8, seed=0
            )
            plain_result = sap_solve(m, trials=8, seed=0)
            assert masked_result.proved_optimal
            assert plain_result.proved_optimal
            assert masked_result.depth == plain_result.depth

    def test_dont_cares_never_hurt(self, rng):
        for _ in range(10):
            rows, cols = rng.randint(2, 5), rng.randint(2, 5)
            ones_masks, dc_masks = [], []
            for _ in range(rows):
                ones = rng.getrandbits(cols)
                dc = rng.getrandbits(cols) & ~ones
                ones_masks.append(ones)
                dc_masks.append(dc)
            ones_matrix = BinaryMatrix(ones_masks, cols)
            masked = MaskedMatrix(ones_matrix, BinaryMatrix(dc_masks, cols))
            with_dc = masked_minimum_addressing(masked, trials=8, seed=1)
            without_dc = sap_solve(ones_matrix, trials=8, seed=1)
            assert with_dc.proved_optimal and without_dc.proved_optimal
            assert with_dc.depth <= without_dc.depth
            validate_masked_partition(masked, with_dc.partition)

    def test_plus_pattern(self):
        """Plus-shaped target in a 3x3 with vacant corners: flooding the
        whole array with ONE rectangle hits every target exactly once and
        only wastes light on the vacant corners — depth 1, versus 2 for
        the same plus on a fully occupied array (middle row + the rest
        of the middle column)."""
        masked = MaskedMatrix.from_strings(["*1*", "111", "*1*"])
        outcome = masked_minimum_addressing(masked, trials=16, seed=0)
        assert outcome.proved_optimal
        assert outcome.depth == 1
        # without vacancies the plus needs 2 shots
        plain = sap_solve(
            BinaryMatrix.from_strings(["010", "111", "010"]),
            trials=16,
            seed=0,
        )
        assert plain.proved_optimal and plain.depth == 2

    def test_queries_recorded(self):
        masked = MaskedMatrix.from_strings(["10", "01"])
        outcome = masked_minimum_addressing(masked, trials=4, seed=0)
        assert outcome.proved_optimal
        assert outcome.lower_bound == 2
        assert outcome.heuristic_depth >= outcome.depth
