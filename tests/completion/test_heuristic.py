"""Unit tests for masked row packing."""

from repro.completion.heuristic import (
    masked_pack_rows_once,
    masked_row_packing,
)
from repro.completion.masked import MaskedMatrix, validate_masked_partition
from repro.core.binary_matrix import BinaryMatrix
from repro.solvers.row_packing import PackingOptions


def random_masked(rng, rows, cols):
    ones_masks, dc_masks = [], []
    for _ in range(rows):
        ones = rng.getrandbits(cols)
        dc = rng.getrandbits(cols) & ~ones
        ones_masks.append(ones)
        dc_masks.append(dc)
    return MaskedMatrix(
        BinaryMatrix(ones_masks, cols), BinaryMatrix(dc_masks, cols)
    )


class TestMaskedPackRowsOnce:
    def test_no_dont_cares_matches_plain_packing(self):
        from repro.solvers.row_packing import pack_rows_once

        m = BinaryMatrix.from_strings(["1100", "0011", "1111"])
        masked = MaskedMatrix(m, BinaryMatrix.zeros(3, 4))
        plain = pack_rows_once(m, range(3))
        with_mask = masked_pack_rows_once(masked, range(3))
        assert with_mask.depth == plain.depth

    def test_dont_care_bridges_rows(self):
        """Rows 10 and 01 with the crosses don't-care merge into one
        rectangle covering the whole 2x2 block."""
        masked = MaskedMatrix.from_strings(["1*", "*1"])
        partition = masked_pack_rows_once(masked, range(2))
        validate_masked_partition(masked, partition)
        assert partition.depth <= 2

    def test_always_valid_random(self, rng):
        for _ in range(30):
            rows, cols = rng.randint(1, 6), rng.randint(1, 6)
            masked = random_masked(rng, rows, cols)
            partition = masked_pack_rows_once(
                masked, list(range(rows))
            )
            validate_masked_partition(masked, partition)


class TestMaskedRowPacking:
    def test_valid_on_random(self, rng):
        for _ in range(20):
            rows, cols = rng.randint(1, 6), rng.randint(1, 6)
            masked = random_masked(rng, rows, cols)
            partition = masked_row_packing(
                masked, options=PackingOptions(trials=3, seed=0)
            )
            validate_masked_partition(masked, partition)

    def test_never_worse_than_ones_only_packing(self, rng):
        """Don't-cares can only help (the masked heuristic may also cover
        stars, never fewer options)."""
        from repro.solvers.row_packing import row_packing

        for _ in range(15):
            rows, cols = rng.randint(2, 6), rng.randint(2, 6)
            masked = random_masked(rng, rows, cols)
            seed = rng.randint(0, 999)
            with_dc = masked_row_packing(
                masked, options=PackingOptions(trials=8, seed=seed)
            )
            without_dc = row_packing(
                masked.ones_matrix,
                options=PackingOptions(trials=8, seed=seed),
            )
            assert with_dc.depth <= without_dc.depth + 1  # noise tolerance

    def test_zero_ones(self):
        masked = MaskedMatrix.from_strings(["**", "**"])
        partition = masked_row_packing(
            masked, options=PackingOptions(trials=2, seed=0)
        )
        assert partition.depth == 0
