"""Benchmarks for the multi-tenant TCP gateway.

Three measurements, appended to ``BENCH_gateway.json`` (directory
overridable via ``REPRO_BENCH_DIR``):

* **latency-to-first-event under N tenants** — N tenant clients hammer
  one gateway concurrently; per-tenant time from connect to first
  streamed event and to first ``done`` is recorded.  Every tenant must
  be served (asserted); the latency numbers are hardware-dependent and
  recorded only.
* **thread vs process executor through the gateway** — the same
  workload through both executor kinds, over a real TCP client.  Both
  must stream ``member_finished`` events (asserted — this is the wire
  form of the process-streaming fix); the wall-clock comparison is
  recorded.
* **rejection rate at saturation** — a one-slot admission window with a
  slow budgeted solve holding it while a burst of requests arrives:
  the overflow must be *rejected* with structured ``retry_after``
  events (asserted), never queued unboundedly; the accepted/rejected
  split is recorded.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from pathlib import Path

from repro.benchgen.random_matrices import random_matrix
from repro.core.binary_matrix import BinaryMatrix
from repro.server import client
from repro.server.engine import AsyncSolveEngine
from repro.server.gateway import SolveGateway
from repro.server.tenancy import (
    REJECT_SATURATED,
    AdmissionController,
    TenantConfig,
    TenantRegistry,
)

SLOW_MATRIX = random_matrix(12, 12, 0.6, seed=3)
"""No exact backend certifies this inside a ~1 s slice, so budgeted
solves on it take (almost exactly) their budget — the saturation
experiment's slot-holder."""

FAST_MATRICES = [
    BinaryMatrix.from_strings(rows)
    for rows in (
        ["10", "01"],
        ["11", "11"],
        ["110", "011", "111"],
        ["101", "010", "101"],
    )
]

NUM_TENANTS = 6

_ARTIFACT_ENTRIES = {}


def _artifact_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_DIR", ".")) / "BENCH_gateway.json"


def _record(name: str, payload: dict) -> None:
    _ARTIFACT_ENTRIES[name] = payload
    path = _artifact_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as stream:
        json.dump(
            {"benchmark": "gateway", "entries": _ARTIFACT_ENTRIES},
            stream,
            indent=2,
            sort_keys=True,
        )
        stream.write("\n")


def _start_gateway(gateway: SolveGateway) -> threading.Thread:
    thread = threading.Thread(
        target=lambda: asyncio.run(gateway.run()), daemon=True
    )
    thread.start()
    deadline = time.monotonic() + 120
    while gateway.port == 0 and time.monotonic() < deadline:
        time.sleep(0.01)
    assert gateway.port != 0, "gateway never bound a port"
    return thread


def _stop_gateway(gateway: SolveGateway, thread: threading.Thread) -> None:
    client.request_once(
        ("127.0.0.1", gateway.port), {"op": "shutdown"}, timeout=10
    )
    thread.join(timeout=30)
    assert not thread.is_alive()


def test_latency_to_first_event_under_tenants(root_seed):
    """N concurrent tenants against one engine: everyone gets served."""
    gateway = SolveGateway(
        AsyncSolveEngine(
            members=("trivial", "packing:4"), seed=root_seed, workers=2
        ),
        port=0,
        admission=AdmissionController(
            max_in_flight=4, max_waiting=2 * NUM_TENANTS
        ),
    )
    thread = _start_gateway(gateway)
    address = ("127.0.0.1", gateway.port)
    results = {}

    def tenant_client(name: str) -> None:
        cases = [
            (f"{name}-{i}", matrix)
            for i, matrix in enumerate(FAST_MATRICES)
        ]
        began = time.perf_counter()
        first_event = None
        first_done = None
        completed = 0
        for event in client.submit(
            address, cases, timeout=120, tenant=name
        ):
            now = time.perf_counter() - began
            if first_event is None:
                first_event = now
            if event["event"] == "done":
                completed += 1
                if first_done is None:
                    first_done = now
        results[name] = {
            "first_event_seconds": first_event,
            "first_done_seconds": first_done,
            "total_seconds": time.perf_counter() - began,
            "completed": completed,
        }

    try:
        threads = [
            threading.Thread(
                target=tenant_client, args=(f"tenant-{i}",), daemon=True
            )
            for i in range(NUM_TENANTS)
        ]
        began = time.perf_counter()
        for worker in threads:
            worker.start()
        for worker in threads:
            worker.join(timeout=180)
        wall_seconds = time.perf_counter() - began
        metrics = client.fetch_metrics(address, timeout=10)
    finally:
        _stop_gateway(gateway, thread)

    assert len(results) == NUM_TENANTS, "a tenant client died"
    assert all(
        r["completed"] == len(FAST_MATRICES) for r in results.values()
    )
    firsts = sorted(r["first_event_seconds"] for r in results.values())
    dones = sorted(r["first_done_seconds"] for r in results.values())
    payload = {
        "tenants": NUM_TENANTS,
        "cases_per_tenant": len(FAST_MATRICES),
        "wall_seconds": wall_seconds,
        "first_event_seconds_min": firsts[0],
        "first_event_seconds_median": firsts[len(firsts) // 2],
        "first_event_seconds_max": firsts[-1],
        "first_done_seconds_median": dones[len(dones) // 2],
        "per_tenant": results,
        "server_cases_completed": metrics["cases"]["completed"],
    }
    _record("latency_under_tenants", payload)
    assert metrics["cases"]["completed"] == NUM_TENANTS * len(FAST_MATRICES)


def test_thread_vs_process_executor(root_seed):
    """Same workload, both executors, through a real TCP client."""
    timings = {}
    for executor in ("thread", "process"):
        gateway = SolveGateway(
            AsyncSolveEngine(
                members=("trivial", "packing:4"),
                seed=root_seed,
                workers=2,
                executor=executor,
            ),
            port=0,
        )
        thread = _start_gateway(gateway)
        address = ("127.0.0.1", gateway.port)
        cases = [
            (f"case-{i}", matrix)
            for i, matrix in enumerate(FAST_MATRICES)
        ]
        try:
            began = time.perf_counter()
            first_member = None
            members_seen = 0
            completed = 0
            for event in client.submit(address, cases, timeout=120):
                if event["event"] == "member_finished":
                    members_seen += 1
                    if first_member is None:
                        first_member = time.perf_counter() - began
                elif event["event"] == "done":
                    completed += 1
            timings[executor] = {
                "total_seconds": time.perf_counter() - began,
                "first_member_event_seconds": first_member,
                "member_events": members_seen,
                "completed": completed,
            }
        finally:
            _stop_gateway(gateway, thread)

    payload = {
        "cases": len(FAST_MATRICES),
        "members": ["trivial", "packing:4"],
        "thread": timings["thread"],
        "process": timings["process"],
    }
    _record("thread_vs_process_executor", payload)
    for executor, timing in timings.items():
        assert timing["completed"] == len(FAST_MATRICES), executor
        # The wire form of the streaming fix: both executors deliver
        # live member events to a remote client, 2 members x N cases.
        assert timing["member_events"] == 2 * len(FAST_MATRICES), executor


def test_rejection_rate_at_saturation(root_seed):
    """Overflow past the admission window is rejected, not queued."""
    gateway = SolveGateway(
        AsyncSolveEngine(
            members=("packing:4", "sap"), seed=root_seed, workers=2
        ),
        port=0,
        tenants=TenantRegistry(default=TenantConfig("anonymous")),
        admission=AdmissionController(max_in_flight=1, max_waiting=1),
    )
    thread = _start_gateway(gateway)
    address = ("127.0.0.1", gateway.port)
    outcomes = []
    lock = threading.Lock()

    def burst_client(index: int) -> None:
        began = time.perf_counter()
        try:
            events = list(
                client.submit(
                    address,
                    [(f"burst-{index}", SLOW_MATRIX)],
                    timeout=120,
                    budget_per_instance=1.0,
                )
            )
            outcome = {
                "accepted": True,
                "seconds": time.perf_counter() - began,
                "events": len(events),
            }
        except client.DaemonError as exc:
            outcome = {
                "accepted": False,
                "seconds": time.perf_counter() - began,
                "code": exc.code,
                "retry_after": exc.retry_after,
            }
        with lock:
            outcomes.append(outcome)

    try:
        burst = [
            threading.Thread(target=burst_client, args=(i,), daemon=True)
            for i in range(6)
        ]
        for worker in burst:
            worker.start()
            time.sleep(0.02)  # arrive as a burst, not a single packet
        for worker in burst:
            worker.join(timeout=180)
        snapshot = client.fetch_metrics(address, timeout=10)["queue"]
    finally:
        _stop_gateway(gateway, thread)

    assert len(outcomes) == len(burst)
    accepted = [o for o in outcomes if o["accepted"]]
    rejected = [o for o in outcomes if not o["accepted"]]
    payload = {
        "burst_size": len(burst),
        "max_in_flight": 1,
        "max_waiting": 1,
        "budget_per_instance_seconds": 1.0,
        "accepted": len(accepted),
        "rejected": len(rejected),
        "rejection_rate": len(rejected) / len(burst),
        "retry_after_hints": sorted(
            o["retry_after"] for o in rejected
        ),
        "admission_snapshot": snapshot,
    }
    _record("rejection_at_saturation", payload)
    # At most 1 solving + 1 waiting can be admitted at any instant; a
    # 6-wide burst against a ~1 s solve must shed load.
    assert rejected, "saturated gateway never rejected"
    for outcome in rejected:
        assert outcome["code"] == REJECT_SATURATED
        assert outcome["retry_after"] > 0
    assert snapshot["rejected_total"] == len(rejected)
