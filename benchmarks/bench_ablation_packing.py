"""Ablation A1/A3: row-packing design choices.

Section III-B discusses (and rejects) two compromises — dropping the
basis update, and sparse-first ordering with fewer runs — and Section VI
proposes Algorithm X for the decomposition step.  These benchmarks
measure all four variants on the gap family where the differences show.
"""

from __future__ import annotations

import pytest

from repro.benchgen.suite import gap_suite
from repro.experiments.common import case_seed
from repro.solvers.registry import make_heuristic

VARIANTS = (
    "packing:10",
    "packing_noupdate:10",
    "packing_sorted:10",
    "packing_x:10",
    "greedy:10",
    "trivial",
)


def _cases(scale, root_seed):
    count = 20 if scale == "paper" else 6
    return gap_suite((10, 10), 3, count, seed=root_seed)


@pytest.mark.parametrize("variant", VARIANTS)
def test_packing_variant_on_gap(benchmark, scale, root_seed, variant):
    cases = _cases(scale, root_seed)
    heuristic = make_heuristic(variant)

    def run():
        total_depth = 0
        for case in cases:
            seed = case_seed(root_seed, case.case_id, variant)
            total_depth += heuristic(case.matrix, seed).depth
        return total_depth

    total_depth = benchmark(run)
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["mean_depth"] = total_depth / len(cases)


def test_basis_update_quality_gap(benchmark, scale, root_seed):
    """The paper keeps the basis update because removing it lands in
    worse local minima; verify the aggregate ordering."""
    cases = _cases(scale, root_seed)
    with_update = make_heuristic("packing:10")
    without_update = make_heuristic("packing_noupdate:10")

    def run():
        depth_with = sum(
            with_update(
                c.matrix, case_seed(root_seed, c.case_id, "w")
            ).depth
            for c in cases
        )
        depth_without = sum(
            without_update(
                c.matrix, case_seed(root_seed, c.case_id, "wo")
            ).depth
            for c in cases
        )
        return depth_with, depth_without

    depth_with, depth_without = benchmark(run)
    benchmark.extra_info["total_depth_with_update"] = depth_with
    benchmark.extra_info["total_depth_without_update"] = depth_without
    assert depth_with <= depth_without + len(cases)  # shuffle noise slack


def test_trials_saturation(benchmark, scale, root_seed):
    """Observation 3: quality improves with trials and saturates."""
    cases = _cases(scale, root_seed)

    def run():
        totals = {}
        for trials in (1, 10, 50):
            heuristic = make_heuristic(f"packing:{trials}")
            totals[trials] = sum(
                heuristic(
                    c.matrix, case_seed(root_seed, c.case_id, str(trials))
                ).depth
                for c in cases
            )
        return totals

    totals = benchmark(run)
    benchmark.extra_info["depth_by_trials"] = totals
    assert totals[50] <= totals[10] <= totals[1]
