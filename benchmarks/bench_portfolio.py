"""Benchmarks for the portfolio service: batch throughput and caching.

Measures ``solve_batch`` against the sequential per-instance loop on a
slice of the Table-I instance set, and the cached re-run against the
cold run.  Every measurement is appended to ``BENCH_portfolio.json``
(override the directory with ``REPRO_BENCH_DIR``) so throughput can be
tracked across commits.

The parallel speedup is recorded, not asserted — it depends on the
host's core count (this suite must also pass on 1-CPU runners).  The
cache speedup *is* asserted: a warm batch never re-solves, so it must
beat the cold batch regardless of hardware.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.benchgen.suite import flatten_suites, table1_suites
from repro.service.batch import solve_batch
from repro.service.cache import ResultCache
from repro.service.portfolio import solve_portfolio

MEMBERS = ("trivial", "packing:8", "sap")

_ARTIFACT_ENTRIES = {}


def _artifact_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_DIR", ".")) / "BENCH_portfolio.json"


def _record(name: str, payload: dict) -> None:
    _ARTIFACT_ENTRIES[name] = payload
    path = _artifact_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as stream:
        json.dump(
            {"benchmark": "portfolio", "entries": _ARTIFACT_ENTRIES},
            stream,
            indent=2,
            sort_keys=True,
        )
        stream.write("\n")


def _cases(scale: str, seed: int):
    """A slice of the Table-I instance set (full set at paper scale)."""
    cases = flatten_suites(
        table1_suites(scale=scale, seed=seed, include_large=False)
    )
    return cases if scale == "paper" else cases[::8]


def test_batch_vs_sequential(benchmark, scale, root_seed):
    cases = _cases(scale, root_seed)
    workers = max(1, min(4, os.cpu_count() or 1))

    began = time.perf_counter()
    sequential = [
        solve_portfolio(case.matrix, members=MEMBERS, seed=root_seed)
        for case in cases
    ]
    sequential_seconds = time.perf_counter() - began

    timings = []

    def run_batch():
        t0 = time.perf_counter()
        records = solve_batch(
            cases, members=MEMBERS, seed=root_seed, workers=workers
        )
        timings.append(time.perf_counter() - t0)
        return records

    records = benchmark.pedantic(run_batch, rounds=3, iterations=1)
    assert len(records) == len(cases) == len(sequential)
    for case, record in zip(cases, records):
        record.result.partition.validate(case.matrix)
        assert record.provenance()["winner"]

    batch_seconds = min(timings)
    speedup = sequential_seconds / batch_seconds if batch_seconds else None
    payload = {
        "instances": len(cases),
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "members": list(MEMBERS),
        "sequential_seconds": sequential_seconds,
        "batch_seconds": batch_seconds,
        "throughput_per_second": len(cases) / batch_seconds,
        "speedup_vs_sequential": speedup,
    }
    benchmark.extra_info.update(payload)
    _record("batch_vs_sequential", payload)


def test_cached_rerun_is_lookup_fast(benchmark, scale, root_seed):
    cases = _cases(scale, root_seed)
    cache = ResultCache(capacity=4096)

    began = time.perf_counter()
    cold = solve_batch(cases, members=MEMBERS, seed=root_seed, cache=cache)
    cold_seconds = time.perf_counter() - began
    assert not any(record.from_cache for record in cold)

    def rerun():
        return solve_batch(
            cases, members=MEMBERS, seed=root_seed, cache=cache
        )

    warm = benchmark(rerun)
    assert all(record.from_cache for record in warm)

    warm_seconds = benchmark.stats.stats.min
    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    payload = {
        "instances": len(cases),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cache_speedup": speedup,
        "cache_stats": cache.stats.as_dict(),
    }
    benchmark.extra_info.update(payload)
    _record("cached_rerun", payload)
    # O(lookup): the warm batch must crush the cold one on any hardware.
    assert speedup >= 2.0


@pytest.mark.slow
def test_full_table1_set_completes_with_pool(scale, root_seed):
    """Acceptance: the whole Table-I instance set survives a 4-worker pool."""
    cases = flatten_suites(
        table1_suites(scale="quick", seed=root_seed, include_large=False)
    )
    records = solve_batch(
        cases,
        members=MEMBERS,
        seed=root_seed,
        workers=4,
        budget_per_member=20.0,
    )
    assert len(records) == len(cases)
    by_id = {case.case_id: case.matrix for case in cases}
    for record in records:
        record.result.partition.validate(by_id[record.case_id])
