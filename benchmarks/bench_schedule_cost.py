"""Benchmarks for the schedule cost model and tone-reuse reordering.

Extension beyond the paper's depth objective: given a depth-optimal
partition, ordering its rectangles for tone reuse reduces estimated
wall-clock without touching depth.
"""

from __future__ import annotations

import pytest

from repro.atoms.cost import ScheduleCostModel, reorder_for_tone_reuse
from repro.atoms.schedule import AddressingSchedule
from repro.benchgen.random_matrices import random_matrix
from repro.solvers.row_packing import PackingOptions, row_packing


@pytest.mark.parametrize("size", [20, 40])
def test_reorder_for_tone_reuse(benchmark, root_seed, size):
    target = random_matrix(size, size, 0.3, seed=root_seed)
    partition = row_packing(
        target, options=PackingOptions(trials=5, seed=0)
    )
    schedule = AddressingSchedule.from_partition(partition, theta=1.0)
    model = ScheduleCostModel()

    reordered = benchmark(reorder_for_tone_reuse, schedule)

    before = model.duration(schedule)
    after = model.duration(reordered)
    benchmark.extra_info["depth"] = schedule.depth
    benchmark.extra_info["duration_before"] = before
    benchmark.extra_info["duration_after"] = after
    assert after <= before + 1e-9
    assert reordered.depth == schedule.depth


def test_cost_model_evaluation_speed(benchmark, root_seed):
    target = random_matrix(60, 60, 0.2, seed=root_seed)
    partition = row_packing(
        target, options=PackingOptions(trials=3, seed=0)
    )
    schedule = AddressingSchedule.from_partition(partition, theta=1.0)
    model = ScheduleCostModel()

    duration = benchmark(model.duration, schedule)
    assert duration > 0
