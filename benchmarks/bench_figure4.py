"""Benchmarks regenerating Figure 4 (E2): the time-consuming cases.

Times full SAP runs on the hard families and records the phase split
(packing vs SMT) plus whether the run ends with an UNSAT proof —
Observation 5's claim that optimality proofs dominate.
"""

from __future__ import annotations

import pytest

from repro.benchgen.gap import gap_matrix
from repro.benchgen.random_matrices import random_matrix
from repro.core.bounds import rank_lower_bound
from repro.sat.solver import SolveStatus
from repro.solvers.sap import SapOptions, sap_solve


@pytest.mark.parametrize("pairs", [2, 3, 4, 5])
def test_figure4_gap_families(benchmark, scale, root_seed, pairs):
    matrix = gap_matrix(10, 10, pairs, seed=root_seed + pairs)
    trials = 100 if scale == "paper" else 20

    def solve():
        return sap_solve(
            matrix,
            options=SapOptions(
                trials=trials, seed=root_seed, time_budget=30
            ),
        )

    result = benchmark(solve)
    result.partition.validate(matrix)
    benchmark.extra_info["family"] = f"g{pairs}"
    benchmark.extra_info["real_rank"] = rank_lower_bound(matrix)
    benchmark.extra_info["depth"] = result.depth
    benchmark.extra_info["packing_seconds"] = result.packing_seconds
    benchmark.extra_info["smt_seconds"] = result.smt_seconds
    benchmark.extra_info["ends_with_unsat_proof"] = bool(
        result.queries
        and result.queries[-1].status is SolveStatus.UNSAT
    )


@pytest.mark.parametrize("occupancy", [0.3, 0.5])
def test_figure4_random_controls(benchmark, scale, root_seed, occupancy):
    matrix = random_matrix(10, 10, occupancy, seed=root_seed)
    trials = 100 if scale == "paper" else 20

    def solve():
        return sap_solve(
            matrix,
            options=SapOptions(
                trials=trials, seed=root_seed, time_budget=30
            ),
        )

    result = benchmark(solve)
    benchmark.extra_info["family"] = "r"
    benchmark.extra_info["depth"] = result.depth
    benchmark.extra_info["smt_seconds"] = result.smt_seconds


def test_figure4_unsat_proof_is_the_expensive_part(benchmark, root_seed):
    """Directly measure Observation 5: on an instance with a rank gap,
    the UNSAT query below the optimum costs more conflicts than the SAT
    queries above it."""
    matrix = gap_matrix(10, 10, 4, seed=3)  # known to need SMT work

    def solve():
        return sap_solve(
            matrix,
            options=SapOptions(trials=20, seed=0, time_budget=30),
        )

    result = benchmark(solve)
    if result.proved_optimal and result.queries:
        unsat_conflicts = sum(
            q.conflicts
            for q in result.queries
            if q.status is SolveStatus.UNSAT
        )
        benchmark.extra_info["unsat_conflicts"] = unsat_conflicts
        benchmark.extra_info["total_queries"] = len(result.queries)
