"""Shared fixtures for the benchmark harness.

Every benchmark regenerates (a slice of) one table or figure of the
paper; run with ``pytest benchmarks/ --benchmark-only``.  Scale defaults
to quick; set ``REPRO_FULL=1`` for paper-scale parameters.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import resolve_scale


@pytest.fixture(scope="session")
def scale() -> str:
    return resolve_scale()


@pytest.fixture(scope="session")
def root_seed() -> int:
    return 2024
