"""Benchmarks for the Section V qLDPC study (E7).

Series 1: full-real-rank probability of random matrices vs width at
equal occupancy (the paper's evidence that wide block patterns are
"much easier to be full rank").  Series 2: row-by-row addressing
optimality on random 1D block layouts.
"""

from __future__ import annotations

import pytest

from repro.ftqc.qldpc import (
    BlockLayout,
    full_rank_fraction,
    row_addressing_depth,
    row_addressing_sufficient,
)


@pytest.mark.parametrize("num_cols", [10, 20, 30])
def test_full_rank_probability_vs_width(benchmark, scale, root_seed, num_cols):
    samples = 200 if scale == "paper" else 40

    def compute():
        return full_rank_fraction(
            10, num_cols, 0.2, samples, seed=root_seed
        )

    fraction = benchmark(compute)
    benchmark.extra_info["shape"] = f"10x{num_cols}"
    benchmark.extra_info["full_rank_fraction"] = fraction
    if num_cols == 30:
        # Paper: "all 10x30 matrices ... full rank" at >= 20% occupancy.
        assert fraction >= 0.9


def test_width_ordering(benchmark, scale, root_seed):
    """The monotone shape: wider never lowers the full-rank odds."""
    samples = 100 if scale == "paper" else 30

    def compute():
        return [
            full_rank_fraction(10, cols, 0.2, samples, seed=root_seed)
            for cols in (10, 20, 30)
        ]

    narrow, mid, wide = benchmark(compute)
    benchmark.extra_info["fractions"] = [narrow, mid, wide]
    assert narrow <= mid + 0.1
    assert mid <= wide + 0.1


def test_row_addressing_sufficiency(benchmark, scale, root_seed):
    layout = BlockLayout(8, 12)
    samples = 20 if scale == "paper" else 6

    def compute():
        sufficient = 0
        decided = 0
        for index in range(samples):
            pattern = layout.random_pattern(4, seed=root_seed + index)
            verdict = row_addressing_sufficient(
                pattern, seed=0, time_budget=15
            )
            if verdict is not None:
                decided += 1
                sufficient += int(verdict)
        return sufficient, decided

    sufficient, decided = benchmark(compute)
    benchmark.extra_info["sufficient"] = sufficient
    benchmark.extra_info["decided"] = decided
    # Conjecture shape: row addressing is usually enough.
    if decided:
        assert sufficient / decided >= 0.5


def test_row_depth_computation(benchmark, root_seed):
    layout = BlockLayout(16, 24)
    pattern = layout.random_pattern(6, seed=root_seed)
    depth = benchmark(row_addressing_depth, pattern)
    assert 1 <= depth <= 16
