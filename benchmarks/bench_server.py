"""Benchmarks for the streaming server layer: latency, racing, sharing.

Three measurements, appended to ``BENCH_server.json`` (directory
overridable via ``REPRO_BENCH_DIR``):

* **streaming vs. barriered latency-to-first-result** — a deliberately
  skewed suite (one budget-bound slow instance + several microsecond
  instances): ``solve_batch`` returns nothing until the slow instance's
  budget runs dry, while the async engine streams every fast result
  almost immediately.  The first-result latency *is* asserted: it is a
  property of the architecture, not the hardware.
* **concurrent vs. sequential intra-instance racing** — on an instance
  no exact backend can certify inside its slice, sequential mode pays
  the slices serially while concurrent mode overlaps them on the wall
  clock; the ~2x is budget arithmetic, so it is asserted (with margin).
* **shared-cache contention** — two processes solving through one
  sharded cache directory; every entry must survive (asserted), wall
  time recorded.

Raw parallel speedups are recorded, never asserted (1-CPU runners).
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import time
from pathlib import Path

from repro.benchgen.random_matrices import random_matrix
from repro.core.binary_matrix import BinaryMatrix
from repro.server.engine import DONE, AsyncSolveEngine
from repro.server.shards import ShardedDiskTier
from repro.service.batch import BatchItem, solve_batch
from repro.service.cache import ResultCache

SLOW_MATRIX = random_matrix(12, 12, 0.6, seed=3)
"""No exact backend certifies this inside a ~1 s slice, so budgeted
solves on it take (almost exactly) their budget — a controllable 'slow
tenant' for latency experiments."""

FAST_MATRICES = [
    BinaryMatrix.from_strings(rows)
    for rows in (
        ["10", "01"],
        ["11", "11"],
        ["110", "011", "111"],
        ["101", "010", "101"],
        ["1100", "0110", "0011"],
        ["1111", "1001"],
    )
]

MEMBER_BUDGET = 1.0

_ARTIFACT_ENTRIES = {}


def _artifact_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_DIR", ".")) / "BENCH_server.json"


def _record(name: str, payload: dict) -> None:
    _ARTIFACT_ENTRIES[name] = payload
    path = _artifact_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as stream:
        json.dump(
            {"benchmark": "server", "entries": _ARTIFACT_ENTRIES},
            stream,
            indent=2,
            sort_keys=True,
        )
        stream.write("\n")


def _skewed_suite():
    cases = [BatchItem("slow", SLOW_MATRIX, ("packing:4", "sap"))]
    cases += [
        BatchItem(f"fast-{i}", matrix, ("trivial",))
        for i, matrix in enumerate(FAST_MATRICES)
    ]
    return cases


def test_streaming_beats_barrier_to_first_result(root_seed):
    cases = _skewed_suite()

    began = time.perf_counter()
    records = solve_batch(
        cases, seed=root_seed, budget_per_member=MEMBER_BUDGET
    )
    barrier_seconds = time.perf_counter() - began
    assert len(records) == len(cases)

    async def stream_once():
        async with AsyncSolveEngine(
            seed=root_seed, workers=2, budget_per_member=MEMBER_BUDGET
        ) as engine:
            started = time.perf_counter()
            first_done = None
            first_case = None
            done = 0
            async for event in engine.stream(cases):
                if event.kind == DONE:
                    done += 1
                    if first_done is None:
                        first_done = time.perf_counter() - started
                        first_case = event.case_id
            return first_done, first_case, time.perf_counter() - started, done

    first_seconds, first_case, stream_seconds, done = asyncio.run(
        stream_once()
    )
    assert done == len(cases)

    payload = {
        "instances": len(cases),
        "member_budget_seconds": MEMBER_BUDGET,
        "barrier_seconds": barrier_seconds,
        "stream_total_seconds": stream_seconds,
        "stream_first_result_seconds": first_seconds,
        "stream_first_case": first_case,
        "first_result_speedup": barrier_seconds / first_seconds,
    }
    _record("streaming_vs_barrier", payload)
    # Architecture, not hardware: the barrier holds every result behind
    # the slow instance's ~1 s budget; streaming hands a fast instance
    # back while the slow one is still burning it.
    assert first_case != "slow"
    assert first_seconds < barrier_seconds / 2


def test_concurrent_race_overlaps_budget_slices(root_seed):
    members = ("packing:4", "sap", "branch_bound")
    case = [BatchItem("hard", SLOW_MATRIX, members)]

    timings = {}
    for race in ("sequential", "concurrent"):
        began = time.perf_counter()
        records = solve_batch(
            case,
            seed=root_seed,
            budget_per_member=MEMBER_BUDGET,
            race=race,
            stop_when_optimal=True,
        )
        timings[race] = time.perf_counter() - began
        records[0].result.partition.validate(SLOW_MATRIX)

    payload = {
        "members": list(members),
        "member_budget_seconds": MEMBER_BUDGET,
        "sequential_seconds": timings["sequential"],
        "concurrent_seconds": timings["concurrent"],
        "speedup": timings["sequential"] / timings["concurrent"],
    }
    _record("racing_sequential_vs_concurrent", payload)
    # Budget arithmetic, not hardware: two uncertifiable exact slices
    # cost ~2 budgets serially but ~1 budget overlapped.
    assert timings["concurrent"] <= timings["sequential"] * 0.8


def _hammer_shared_cache(root: str, offset: int, seed: int) -> None:
    """Worker: solve a disjoint slice through the shared sharded cache."""
    cache = ResultCache.sharded(root, capacity=8)
    cases = [
        (
            f"proc{offset}-{i}",
            random_matrix(5, 5, 0.5, seed=seed + offset * 100 + i),
        )
        for i in range(10)
    ]
    solve_batch(
        cases, members=("trivial", "packing:2"), seed=seed, cache=cache
    )


def test_shared_cache_contention(tmp_path, root_seed):
    root = str(tmp_path / "shared-cache")
    began = time.perf_counter()
    workers = [
        multiprocessing.Process(
            target=_hammer_shared_cache, args=(root, offset, root_seed)
        )
        for offset in (1, 2)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=120)
    wall_seconds = time.perf_counter() - began

    assert all(not worker.is_alive() for worker in workers), (
        "cache writer deadlocked"
    )
    assert all(worker.exitcode == 0 for worker in workers)
    surviving = len(ShardedDiskTier(root).keys())
    payload = {
        "writers": len(workers),
        "entries_per_writer": 10,
        "surviving_entries": surviving,
        "wall_seconds": wall_seconds,
    }
    _record("shared_cache_contention", payload)
    # The no-lost-entries contract: both writers' results all land.
    assert surviving == 20
