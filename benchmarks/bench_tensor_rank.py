"""Future-work probe: binary rank under tensor products (Section VI).

Times the multiplicativity probes of
:mod:`repro.experiments.tensor_rank`: exact factor ranks, the Eq. 3 /
Eq. 5 bracket on the Kronecker product, and — when the bracket is open
— one oracle query below the tensor-partition upper bound.
"""

from __future__ import annotations

import pytest

from repro.experiments.tensor_rank import TensorRankConfig, run_tensor_rank


@pytest.mark.parametrize("pool", ["random", "open"])
def test_tensor_multiplicativity_probes(benchmark, scale, root_seed, pool):
    if pool == "random":
        config = TensorRankConfig(
            pairs=6 if scale == "paper" else 3,
            open_pairs=0,
            shape=3,
            seed=root_seed,
            include_equation2=True,
            include_known_open=False,
            probe_budget=10.0,
        )
    else:
        config = TensorRankConfig(
            pairs=0,
            open_pairs=2 if scale == "paper" else 1,
            seed=root_seed,
            include_equation2=False,
            include_known_open=True,
            probe_budget=5.0,
        )

    result = benchmark(lambda: run_tensor_rank(config))
    counts = result.counts()
    benchmark.extra_info["pool"] = pool
    benchmark.extra_info.update(counts)
    # No probe may be silently dropped into a wrong verdict.
    assert sum(counts.values()) == len(result.probes)
    for probe in result.probes:
        assert probe.lower_bound <= probe.product_bound
