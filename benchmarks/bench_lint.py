"""Benchmark the ``repro lint`` gate itself.

The lint gate runs inside tier-1 on every test invocation, so its own
wall time is a standing tax on the inner loop.  Two measurements,
written to ``BENCH_lint.json`` (directory overridable via
``REPRO_BENCH_DIR``):

* **full-repo lint wall time** — parse + all ten rules + suppression
  filtering over the default scan roots, three runs.  Asserted under
  ``FULL_LINT_LIMIT_SECONDS`` (the ISSUE 9 acceptance line: the gate
  must stay cheap enough to never tempt anyone to skip it).
* **per-stage split** — file collection + parsing measured separately
  from rule dispatch, so a future slow rule shows up as a rule-side
  regression rather than a mystery.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

from repro.analysis import Analyzer
from repro.analysis.rules import default_rules

REPO_ROOT = Path(__file__).resolve().parents[1]

FULL_LINT_LIMIT_SECONDS = 2.0
"""A full-repo lint pass must finish well inside one human beat."""

_ARTIFACT_ENTRIES = {}


def _artifact_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_DIR", ".")) / "BENCH_lint.json"


def _record(name: str, payload: dict) -> None:
    _ARTIFACT_ENTRIES[name] = payload
    path = _artifact_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as stream:
        json.dump(
            {"benchmark": "lint", "entries": _ARTIFACT_ENTRIES},
            stream,
            indent=2,
            sort_keys=True,
        )
        stream.write("\n")


def test_full_repo_lint_wall_time():
    """Acceptance: a full-repo lint pass stays under the limit."""
    walls = []
    files_scanned = 0
    finding_count = 0
    for _ in range(3):
        began = time.perf_counter()
        report = Analyzer(REPO_ROOT).run()
        walls.append(time.perf_counter() - began)
        files_scanned = report.files_scanned
        finding_count = len(report.findings)

    median_wall = statistics.median(walls)
    payload = {
        "files_scanned": files_scanned,
        "findings": finding_count,
        "rules": len(default_rules()),
        "wall_seconds_runs": walls,
        "wall_seconds_median": median_wall,
        "limit_seconds": FULL_LINT_LIMIT_SECONDS,
    }
    _record("full_repo_lint", payload)
    assert median_wall < FULL_LINT_LIMIT_SECONDS, (
        f"full-repo lint took {median_wall:.2f}s "
        f"(limit {FULL_LINT_LIMIT_SECONDS:.1f}s)"
    )


def test_parse_versus_rule_split():
    """Where the time goes: parsing the tree versus running rules."""
    began = time.perf_counter()
    analyzer = Analyzer(REPO_ROOT, rules=[])
    report = analyzer.run()
    parse_seconds = time.perf_counter() - began

    began = time.perf_counter()
    full = Analyzer(REPO_ROOT).run()
    total_seconds = time.perf_counter() - began

    payload = {
        "files_scanned": report.files_scanned,
        "parse_seconds": parse_seconds,
        "total_seconds": total_seconds,
        "rule_seconds_estimate": max(0.0, total_seconds - parse_seconds),
    }
    _record("parse_versus_rules", payload)
    assert full.files_scanned == report.files_scanned
