"""Ablation A2: SMT encoding choices.

Direct (one-hot) vs binary-label encodings, symmetry-breaking modes,
and incremental vs from-scratch oracle use, all measured on the same
instance needing a real UNSAT proof (Figure 1b: r_B = 5, rank bound 4).
"""

from __future__ import annotations

import pytest

from repro.core.paper_matrices import figure_1b
from repro.sat.solver import SolveStatus
from repro.smt.encoder import make_encoder
from repro.solvers.sap import SapOptions, sap_solve


@pytest.mark.parametrize("encoding", ["direct", "binary"])
def test_unsat_proof_by_encoding(benchmark, encoding):
    matrix = figure_1b()

    def prove():
        encoder = make_encoder(matrix, 4, encoding=encoding)
        return encoder.solve()

    status = benchmark(prove)
    assert status is SolveStatus.UNSAT
    benchmark.extra_info["encoding"] = encoding


@pytest.mark.parametrize("symmetry", ["none", "restricted", "precedence"])
def test_unsat_proof_by_symmetry(benchmark, symmetry):
    matrix = figure_1b()

    def prove():
        encoder = make_encoder(
            matrix, 4, encoding="direct", symmetry=symmetry
        )
        return encoder.solve()

    status = benchmark(prove)
    assert status is SolveStatus.UNSAT
    benchmark.extra_info["symmetry"] = symmetry


@pytest.mark.parametrize("incremental", [True, False])
def test_sap_incremental_vs_fresh(benchmark, incremental):
    matrix = figure_1b()

    def solve():
        return sap_solve(
            matrix,
            options=SapOptions(
                trials=8, seed=0, incremental=incremental, time_budget=30
            ),
        )

    result = benchmark(solve)
    assert result.proved_optimal and result.depth == 5
    benchmark.extra_info["incremental"] = incremental
    benchmark.extra_info["queries"] = len(result.queries)


@pytest.mark.parametrize("reduce", [True, False])
def test_sap_reduction_ablation(benchmark, reduce):
    """Empty/duplicate compression shrinks the encoding (matrix with
    duplicated rows and columns)."""
    from repro.core.binary_matrix import BinaryMatrix

    base = figure_1b()
    # Duplicate every row and column: same r_B, 4x the cells.
    doubled_rows = []
    for mask in base.row_masks:
        doubled_rows.extend([mask, mask])
    doubled = BinaryMatrix(doubled_rows, base.num_cols)
    doubled = doubled.tensor(BinaryMatrix.all_ones(1, 2))

    def solve():
        return sap_solve(
            doubled,
            options=SapOptions(
                trials=8, seed=0, reduce=reduce, time_budget=60
            ),
        )

    result = benchmark(solve)
    assert result.proved_optimal and result.depth == 5
    benchmark.extra_info["reduce"] = reduce
