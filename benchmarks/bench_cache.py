"""Benchmarks for the bounded cache store's lifecycle machinery.

Two measurements, written to ``BENCH_cache.json`` (directory
overridable via ``REPRO_BENCH_DIR``):

* **eviction overhead on the hot read path** — shard format v2 added a
  TTL check and access-stamp recording (the LRU signal) to every
  ``ShardedDiskTier.get``.  That machinery lives on the read path
  permanently, so its cost is measured directly (a tight loop over the
  per-read eviction steps) against the measured full ``get`` time, and
  asserted ≤ 2% — the read path is dominated by the shard open + parse
  + flock it always paid, and must stay that way.  The integrity
  verification (sha over the re-canonicalized payload) is a separate,
  deliberate cost; it is recorded alongside for visibility but carries
  no line — refusing corrupt payloads is worth microseconds.
* **full-GC latency** — populate a store, cap it at half, and time the
  complete journaled pass (plan, sweep, compaction, index rebuild).
  Hardware-dependent; recorded only, alongside the per-entry rate so
  runs on different corpus sizes stay comparable.
"""

from __future__ import annotations

import json
import hashlib
import os
import statistics
import time
from pathlib import Path

import pytest

from repro.server import store_gc
from repro.server.shards import (
    ShardedDiskTier,
    StoreLimits,
    verify_entry,
)
from repro.utils.clock import wall_now

pytestmark = pytest.mark.cache

OVERHEAD_LIMIT = 0.02
"""The per-read eviction steps (TTL check + LRU touch stamp) may cost
at most this fraction of a full shard read."""

_ARTIFACT_ENTRIES = {}


def _artifact_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_DIR", ".")) / "BENCH_cache.json"


def _record(name: str, payload: dict) -> None:
    _ARTIFACT_ENTRIES[name] = payload
    path = _artifact_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as stream:
        json.dump(
            {"benchmark": "cache", "entries": _ARTIFACT_ENTRIES},
            stream,
            indent=2,
            sort_keys=True,
        )
        stream.write("\n")


def _key(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


def _payload(tag: str) -> dict:
    return {"tag": tag, "depth": 3, "filler": "x" * 120}


def test_eviction_overhead_on_hot_reads(tmp_path, root_seed):
    """Acceptance: TTL check + LRU touch cost ≤ 2% of a shard read."""
    tier = ShardedDiskTier(
        tmp_path / "store", limits=StoreLimits(ttl_seconds=3600.0)
    )
    keys = [_key(f"hot-{i}") for i in range(64)]
    tier.store({key: _payload(f"hot-{i}") for i, key in enumerate(keys)})

    # Full reads: everything get() does, lifecycle steps included.
    reads = []
    for _ in range(4):
        began = time.perf_counter()
        for key in keys:
            assert tier.get(key) is not None
        reads.append((time.perf_counter() - began) / len(keys))
    read_seconds = statistics.median(reads)

    # The added eviction steps, in isolation, on the same data shapes.
    payload = _payload("hot-0")
    index = tier.load_index()
    meta = dict(index["entries"][keys[0]])
    meta["h"] = json.loads(
        tier.shard_path(keys[0]).read_text()
    )["meta"][keys[0]]["h"]
    limits = tier.limits
    touches = {}
    iterations = 50_000
    began = time.perf_counter()
    for _ in range(iterations):
        limits.expired(meta.get("c"), wall_now())
        touches[keys[0]] = wall_now()
    eviction_seconds = (time.perf_counter() - began) / iterations

    # The integrity check, recorded for visibility (no line: refusing
    # corrupt payloads is a deliberate cost, not eviction overhead).
    iterations = 20_000
    began = time.perf_counter()
    for _ in range(iterations):
        verify_entry(payload, meta)
    verify_seconds = (time.perf_counter() - began) / iterations

    overhead_fraction = eviction_seconds / read_seconds
    _record(
        "eviction_overhead_hot_reads",
        {
            "entries": len(keys),
            "read_seconds_per_get_median": read_seconds,
            "eviction_seconds_per_get": eviction_seconds,
            "overhead_fraction": overhead_fraction,
            "overhead_limit": OVERHEAD_LIMIT,
            "integrity_verify_seconds_per_get": verify_seconds,
            "integrity_verify_fraction": verify_seconds / read_seconds,
        },
    )
    assert overhead_fraction <= OVERHEAD_LIMIT, (
        f"eviction steps cost {overhead_fraction:.2%} of a shard read "
        f"(limit {OVERHEAD_LIMIT:.0%})"
    )


def test_full_gc_latency(tmp_path, root_seed):
    """A complete journaled pass over a populated store, timed."""
    tier = ShardedDiskTier(tmp_path / "store")
    total = 256
    tier.store(
        {_key(f"gc-{i}"): _payload(f"gc-{i}") for i in range(total)}
    )
    tier.limits = StoreLimits(max_entries=total // 2)

    began = time.perf_counter()
    report = store_gc.run_gc(tier)
    gc_wall = time.perf_counter() - began

    assert report.ran
    assert len(report.evicted_keys) == total // 2
    assert tier.entry_count() == total // 2

    _record(
        "full_gc_latency",
        {
            "entries_before": total,
            "entries_after": tier.entry_count(),
            "evicted": len(report.evicted_keys),
            "passes": report.passes,
            "gc_wall_seconds": gc_wall,
            "gc_seconds_per_evicted_entry": gc_wall
            / max(1, len(report.evicted_keys)),
        },
    )
