"""Substrate benchmarks: the CDCL SAT solver itself.

Not a paper artefact, but the oracle's speed bounds everything in
Figure 4; these keep the solver's performance visible (pigeonhole UNSAT
proofs and large random SAT instances).
"""

from __future__ import annotations

import random

import pytest

from repro.sat.formula import CnfFormula
from repro.sat.solver import CdclSolver, SolveStatus


def pigeonhole(holes: int) -> CnfFormula:
    formula = CnfFormula()
    var = [
        [formula.new_var() for _ in range(holes)]
        for _ in range(holes + 1)
    ]
    for pigeon in var:
        formula.add_clause(pigeon)
    for h in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                formula.add_clause([-var[p1][h], -var[p2][h]])
    return formula


def random_3sat(num_vars: int, num_clauses: int, seed: int) -> CnfFormula:
    rng = random.Random(seed)
    formula = CnfFormula()
    formula.new_vars(num_vars)
    for _ in range(num_clauses):
        clause_vars = rng.sample(range(1, num_vars + 1), 3)
        formula.add_clause(
            [v * rng.choice([1, -1]) for v in clause_vars]
        )
    return formula


@pytest.mark.parametrize("holes", [5, 6])
def test_pigeonhole_unsat(benchmark, holes):
    formula = pigeonhole(holes)

    def prove():
        solver = CdclSolver.from_formula(formula)
        return solver.solve()

    status = benchmark(prove)
    assert status is SolveStatus.UNSAT


@pytest.mark.parametrize("ratio", [3.0, 4.2])
def test_random_3sat(benchmark, root_seed, ratio):
    num_vars = 60
    formula = random_3sat(num_vars, int(num_vars * ratio), root_seed)

    def solve():
        solver = CdclSolver.from_formula(formula)
        return solver.solve(), solver.stats.conflicts

    status, conflicts = benchmark(solve)
    assert status in (SolveStatus.SAT, SolveStatus.UNSAT)
    benchmark.extra_info["clause_ratio"] = ratio
    benchmark.extra_info["conflicts"] = conflicts


def test_incremental_narrowing_pattern(benchmark):
    """The SAP access pattern: one encoding, repeated narrowing solves."""
    from repro.core.paper_matrices import figure_1b
    from repro.smt.encoder import DirectEncoder

    matrix = figure_1b()

    def descend():
        encoder = DirectEncoder(matrix, 6)
        statuses = [encoder.solve()]
        encoder.narrow_to(5)
        statuses.append(encoder.solve())
        encoder.narrow_to(4)
        statuses.append(encoder.solve())
        return statuses

    statuses = benchmark(descend)
    assert statuses == [
        SolveStatus.SAT,
        SolveStatus.SAT,
        SolveStatus.UNSAT,
    ]
