"""Scalability benchmarks: the paper's "scales to the current limits of
atom array technology" claim (100x100 arrays, Section IV/VI).

Row packing and the exact rank bound must stay fast at 100x100 (and
keep pace at 200x200 as a stretch), and on sparse large instances the
heuristic should certify optimality by matching the rank bound — the
same certification used for Table I's 100x100 row.
"""

from __future__ import annotations

import pytest

from repro.benchgen.random_matrices import random_matrix
from repro.core.bounds import rank_lower_bound
from repro.solvers.row_packing import PackingOptions, row_packing
from repro.solvers.trivial import trivial_partition


@pytest.mark.parametrize("occupancy", [0.01, 0.05, 0.2])
def test_row_packing_100x100(benchmark, scale, root_seed, occupancy):
    matrix = random_matrix(100, 100, occupancy, seed=root_seed)
    trials = 50 if scale == "paper" else 10

    def pack():
        return row_packing(
            matrix, options=PackingOptions(trials=trials, seed=0)
        )

    partition = benchmark(pack)
    partition.validate(matrix)
    rank = rank_lower_bound(matrix)
    benchmark.extra_info["occupancy"] = occupancy
    benchmark.extra_info["depth"] = partition.depth
    benchmark.extra_info["rank_bound"] = rank
    benchmark.extra_info["certified_optimal"] = partition.depth == rank


def test_row_packing_200x200_stretch(benchmark, root_seed):
    matrix = random_matrix(200, 200, 0.02, seed=root_seed)

    def pack():
        return row_packing(
            matrix, options=PackingOptions(trials=3, seed=0)
        )

    partition = benchmark(pack)
    partition.validate(matrix)
    benchmark.extra_info["depth"] = partition.depth


@pytest.mark.parametrize("size", [100, 200])
def test_exact_rank_scaling(benchmark, root_seed, size):
    matrix = random_matrix(size, size, 0.1, seed=root_seed)
    rank = benchmark(rank_lower_bound, matrix)
    assert 0 < rank <= size
    benchmark.extra_info["rank"] = rank


def test_trivial_heuristic_100x100(benchmark, root_seed):
    matrix = random_matrix(100, 100, 0.05, seed=root_seed)
    partition = benchmark(trivial_partition, matrix)
    partition.validate(matrix)
