"""Lower-bound instruments: Eq. 3 rank vs fooling sets vs the LP bound.

SAP terminates when the bound meets the oracle; tighter lower bounds
mean fewer (or no) UNSAT proofs.  This benchmark measures both the cost
and the tightness of the three bounds on the families where they
differ: random (rank is near-tight), gap (rank is slack by
construction), and crown matrices (rank n vs logarithmic cover bounds).
"""

from __future__ import annotations

import pytest

from repro.benchgen.gap import gap_matrix
from repro.benchgen.random_matrices import random_nonempty_matrix
from repro.core.binary_matrix import BinaryMatrix
from repro.core.bounds import fooling_lower_bound, rank_lower_bound
from repro.cover.lp import lp_lower_bound
from repro.solvers.branch_bound import binary_rank_branch_bound
from repro.utils.rng import spawn_seeds

BOUNDS = {
    "rank": rank_lower_bound,
    "fooling": lambda m: fooling_lower_bound(m, seed=0),
    "lp": lp_lower_bound,
}


def _family(name, root_seed, count):
    seeds = spawn_seeds(root_seed, count, salt=f"bounds-{name}")
    if name == "random":
        return [
            random_nonempty_matrix(7, 7, 0.5, seed=s) for s in seeds
        ]
    if name == "gap":
        return [gap_matrix(7, 7, 2, seed=s) for s in seeds]
    if name == "crown":
        return [
            BinaryMatrix.from_rows(
                [[1 if i != j else 0 for j in range(n)] for i in range(n)]
            )
            for n in range(3, 3 + count)
        ]
    raise ValueError(name)


@pytest.mark.parametrize("family", ["random", "gap", "crown"])
@pytest.mark.parametrize("bound_name", sorted(BOUNDS))
def test_bound_cost(benchmark, root_seed, scale, family, bound_name):
    count = 8 if scale == "paper" else 4
    matrices = _family(family, root_seed, count)
    bound = BOUNDS[bound_name]

    def run():
        return sum(bound(matrix) for matrix in matrices)

    total = benchmark(run)
    benchmark.extra_info["family"] = family
    benchmark.extra_info["bound"] = bound_name
    benchmark.extra_info["total_bound"] = total


def test_bound_tightness(scale, root_seed):
    """Quality check (not timed): bound <= r_B always; record the gaps."""
    count = 3 if scale != "paper" else 6
    for family in ("random", "gap"):
        for matrix in _family(family, root_seed, count):
            truth = binary_rank_branch_bound(matrix).binary_rank
            for name, bound in BOUNDS.items():
                value = bound(matrix)
                assert value <= truth, (
                    f"{name} bound {value} exceeds r_B={truth} on {family}"
                )
