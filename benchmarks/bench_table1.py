"""Benchmarks regenerating Table I (E1 in DESIGN.md).

Each benchmark times one heuristic column over one benchmark family and
records the fraction of certified-optimal hits in ``extra_info`` — the
same numbers Table I reports.  The full rendered table comes from
``python -m repro.experiments.table1``.
"""

from __future__ import annotations

import pytest

from repro.benchgen.suite import gap_suite, known_optimal_suite, random_suite
from repro.core.bounds import rank_lower_bound
from repro.experiments.common import case_seed
from repro.solvers.registry import make_heuristic
from repro.solvers.sap import SapOptions, sap_solve

HEURISTICS = ("trivial", "packing:1", "packing:10", "packing:100")


def _family(scale: str, name: str, seed: int):
    count = 10 if scale == "paper" else 2
    if name == "rand10x10":
        return random_suite((10, 10), (0.2, 0.5, 0.8), count, seed=seed)
    if name == "rand10x30":
        return random_suite((10, 30), (0.2, 0.5, 0.8), count, seed=seed)
    if name == "opt":
        return known_optimal_suite((10, 10), (2, 5, 8), count, seed=seed)
    if name == "gap3":
        return gap_suite((10, 10), 3, 3 * count, seed=seed)
    if name == "gap5":
        return gap_suite((10, 10), 5, 3 * count, seed=seed)
    raise ValueError(name)


def _optima(cases, seed):
    """Certified optimum per case (SAP with a generous budget)."""
    optima = {}
    for case in cases:
        if case.known_binary_rank is not None:
            optima[case.case_id] = case.known_binary_rank
            continue
        result = sap_solve(
            case.matrix,
            options=SapOptions(
                trials=32,
                seed=case_seed(seed, case.case_id, "bench-opt"),
                time_budget=30,
            ),
        )
        if result.proved_optimal:
            optima[case.case_id] = result.depth
    return optima


@pytest.mark.parametrize("family", ["rand10x10", "rand10x30", "opt", "gap3", "gap5"])
@pytest.mark.parametrize("heuristic_name", HEURISTICS)
def test_table1_heuristic(benchmark, scale, root_seed, family, heuristic_name):
    cases = _family(scale, family, root_seed)
    optima = _optima(cases, root_seed)
    heuristic = make_heuristic(heuristic_name)

    def run_column():
        depths = {}
        for case in cases:
            seed = case_seed(root_seed, case.case_id, heuristic_name)
            depths[case.case_id] = heuristic(case.matrix, seed).depth
        return depths

    depths = benchmark(run_column)

    certified = [cid for cid in depths if cid in optima]
    hits = sum(1 for cid in certified if depths[cid] == optima[cid])
    benchmark.extra_info["family"] = family
    benchmark.extra_info["heuristic"] = heuristic_name
    benchmark.extra_info["optimal_fraction"] = (
        hits / len(certified) if certified else None
    )
    benchmark.extra_info["certified_cases"] = len(certified)
    # Paper shape: every heuristic solution is at least the rank bound.
    for case in cases:
        assert depths[case.case_id] >= rank_lower_bound(case.matrix)


@pytest.mark.parametrize("family", ["rand10x10", "gap3"])
def test_table1_rank_column(benchmark, scale, root_seed, family):
    """The 'rank' column: fraction of cases with rank_R == r_B."""
    cases = _family(scale, family, root_seed)
    optima = _optima(cases, root_seed)

    def rank_agreement():
        agree = 0
        for case in cases:
            if case.case_id in optima and optima[
                case.case_id
            ] == rank_lower_bound(case.matrix):
                agree += 1
        return agree

    agree = benchmark(rank_agreement)
    benchmark.extra_info["family"] = family
    benchmark.extra_info["rank_equals_binary_fraction"] = (
        agree / len(optima) if optima else None
    )
