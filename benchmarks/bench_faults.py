"""Benchmarks for the fault-tolerance machinery.

Two measurements, written to ``BENCH_faults.json`` (directory
overridable via ``REPRO_BENCH_DIR``):

* **recovery latency after a worker kill** — the same batch solved
  fault-free and with an injected mid-batch worker kill; the delta is
  what one crash + respawn + re-dispatch costs end to end.  Recovery
  correctness is asserted (every result back, exactly one ``retried``);
  the latency numbers are hardware-dependent and recorded only.
* **disabled-seam overhead** — the fault seams live permanently on the
  worker hot path, so their *disabled* cost is a standing tax on every
  solve.  The per-case seam cost is measured directly (a tight loop
  over the two per-case seam checks) against the measured per-case
  solve time, and asserted ≤ 2% — the ISSUE 8 acceptance line.  An
  end-to-end A/B of the same batch is recorded alongside for context
  (not asserted: identical code on a loaded box is a noise
  measurement).
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

from repro.benchgen.random_matrices import random_matrix
from repro.service import faults
from repro.service.batch import STATUS_RETRIED, solve_batch

MEMBERS = ("trivial", "packing:2")

OVERHEAD_LIMIT = 0.02
"""Disabled fault seams may cost at most this fraction of a solve."""

_ARTIFACT_ENTRIES = {}


def _artifact_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_DIR", ".")) / "BENCH_faults.json"


def _record(name: str, payload: dict) -> None:
    _ARTIFACT_ENTRIES[name] = payload
    path = _artifact_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as stream:
        json.dump(
            {"benchmark": "faults", "entries": _ARTIFACT_ENTRIES},
            stream,
            indent=2,
            sort_keys=True,
        )
        stream.write("\n")


def _cases(count: int, seed: int):
    return [
        (f"case-{i:02d}", random_matrix(6, 7, 0.4, seed=seed + i))
        for i in range(count)
    ]


def test_recovery_latency_after_worker_kill(root_seed):
    """One mid-batch worker kill: what does recovery cost end to end?"""
    cases = _cases(12, root_seed)

    began = time.perf_counter()
    baseline = solve_batch(cases, members=MEMBERS, seed=root_seed, workers=2)
    baseline_wall = time.perf_counter() - began
    assert len(baseline) == len(cases)

    crashes = []
    crash_times = []

    def on_fault(event):
        crashes.append(event)
        crash_times.append(time.perf_counter())

    with faults.injected(faults.FaultPlan(kill_worker_on_case=5)):
        began = time.perf_counter()
        records = solve_batch(
            cases,
            members=MEMBERS,
            seed=root_seed,
            workers=2,
            on_fault=on_fault,
        )
        faulted_wall = time.perf_counter() - began

    assert len(records) == len(cases)
    retried = [r.case_id for r in records if r.status == STATUS_RETRIED]
    assert retried == ["case-05"]
    assert len(crashes) == 1

    payload = {
        "cases": len(cases),
        "workers": 2,
        "members": list(MEMBERS),
        "baseline_wall_seconds": baseline_wall,
        "faulted_wall_seconds": faulted_wall,
        "recovery_overhead_seconds": faulted_wall - baseline_wall,
        "crash_to_batch_done_seconds": (
            began + faulted_wall - crash_times[0]
        ),
        "retried": retried,
    }
    _record("recovery_after_worker_kill", payload)


def test_disabled_seam_overhead(root_seed):
    """Acceptance: the disabled seams cost ≤ 2% of a per-case solve."""
    faults.clear()

    # Per-case hot-path seams: _solve_payload runs exactly one
    # maybe_kill_worker and one delay check per case.
    iterations = 200_000
    began = time.perf_counter()
    for _ in range(iterations):
        faults.maybe_kill_worker("case-00")
        faults.delay("worker.solve")
    seam_seconds_per_case = (time.perf_counter() - began) / iterations

    # The work those seams ride on: median per-case solve time of the
    # same workload the recovery benchmark uses.
    cases = _cases(12, root_seed)
    per_case = []
    for case_id, matrix in cases:
        began = time.perf_counter()
        solve_batch([(case_id, matrix)], members=MEMBERS, seed=root_seed)
        per_case.append(time.perf_counter() - began)
    solve_seconds_per_case = statistics.median(per_case)

    overhead_fraction = seam_seconds_per_case / solve_seconds_per_case

    # End-to-end A/B for context: the identical batch with the seams in
    # their disabled state, twice.  Recorded, not asserted — this
    # measures machine noise around zero.
    walls = []
    for _ in range(3):
        began = time.perf_counter()
        solve_batch(cases, members=MEMBERS, seed=root_seed)
        walls.append(time.perf_counter() - began)

    payload = {
        "seam_calls_per_case": 2,
        "seam_seconds_per_case": seam_seconds_per_case,
        "solve_seconds_per_case_median": solve_seconds_per_case,
        "overhead_fraction": overhead_fraction,
        "overhead_limit": OVERHEAD_LIMIT,
        "batch_wall_seconds_runs": walls,
        "batch_wall_seconds_median": statistics.median(walls),
    }
    _record("disabled_seam_overhead", payload)
    assert overhead_fraction <= OVERHEAD_LIMIT, (
        f"disabled fault seams cost {overhead_fraction:.2%} of a solve "
        f"(limit {OVERHEAD_LIMIT:.0%})"
    )
