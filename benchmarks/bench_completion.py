"""Ablation A4: don't-care vacancies reduce rectangle count (Section VI).

Random targets on sparse arrays, solved with and without exploiting the
vacancies as don't-cares.
"""

from __future__ import annotations

import pytest

from repro.completion.exact import masked_minimum_addressing
from repro.completion.heuristic import masked_row_packing
from repro.completion.masked import MaskedMatrix
from repro.core.binary_matrix import BinaryMatrix
from repro.solvers.row_packing import PackingOptions
from repro.solvers.sap import SapOptions, sap_solve
from repro.utils.rng import ensure_rng


def _masked_instance(num_rows, num_cols, ones_p, dc_p, seed):
    rng = ensure_rng(seed)
    ones_masks, dc_masks = [], []
    for _ in range(num_rows):
        ones = 0
        dc = 0
        for j in range(num_cols):
            draw = rng.random()
            if draw < ones_p:
                ones |= 1 << j
            elif draw < ones_p + dc_p:
                dc |= 1 << j
        ones_masks.append(ones)
        dc_masks.append(dc)
    return MaskedMatrix(
        BinaryMatrix(ones_masks, num_cols), BinaryMatrix(dc_masks, num_cols)
    )


@pytest.mark.parametrize("dc_p", [0.0, 0.2, 0.4])
def test_exact_depth_vs_dont_care_density(benchmark, root_seed, dc_p):
    masked = _masked_instance(6, 6, 0.3, dc_p, root_seed)

    def solve():
        return masked_minimum_addressing(
            masked, trials=16, seed=0, time_budget=30
        )

    outcome = benchmark(solve)
    plain = sap_solve(
        masked.ones_matrix,
        options=SapOptions(trials=16, seed=0, time_budget=30),
    )
    benchmark.extra_info["dc_density"] = dc_p
    benchmark.extra_info["masked_depth"] = outcome.depth
    benchmark.extra_info["plain_depth"] = plain.depth
    if outcome.proved_optimal and plain.proved_optimal:
        assert outcome.depth <= plain.depth


def test_masked_heuristic_speed(benchmark, scale, root_seed):
    size = 40 if scale == "paper" else 20
    masked = _masked_instance(size, size, 0.2, 0.2, root_seed)

    def pack():
        return masked_row_packing(
            masked, options=PackingOptions(trials=5, seed=0)
        )

    partition = benchmark(pack)
    benchmark.extra_info["depth"] = partition.depth


def test_vacancy_savings_on_plus_lattice(benchmark, root_seed):
    """The compiled example from the tests: a plus on vacant corners
    collapses to depth 1."""
    masked = MaskedMatrix.from_strings(["*1*", "111", "*1*"])

    def solve():
        return masked_minimum_addressing(masked, trials=8, seed=0)

    outcome = benchmark(solve)
    assert outcome.proved_optimal and outcome.depth == 1
