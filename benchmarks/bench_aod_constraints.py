"""Hardware-constraint ablation: depth inflation under AOD tone limits.

The paper's depth optimum assumes a rectangle = one AOD configuration of
unlimited tones.  Real deflectors cap simultaneous tones and require
spacing between active lines; legalization splits rectangles and
inflates depth.  This benchmark sweeps the tone cap and reports the
inflation over the binary-rank optimum — the price of control-hardware
limits on top of the paper's optimal schedules.
"""

from __future__ import annotations

import pytest

from repro.atoms.constraints import AodConstraints
from repro.atoms.legalize import legalize_schedule
from repro.atoms.schedule import AddressingSchedule
from repro.benchgen.random_matrices import random_nonempty_matrix
from repro.solvers.row_packing import row_packing
from repro.utils.rng import spawn_seeds

TONE_CAPS = (1, 2, 4, 8)


def _schedules(root_seed, count, shape=(12, 12), occupancy=0.35):
    schedules = []
    for seed in spawn_seeds(root_seed, count, salt="aod-constraints"):
        matrix = random_nonempty_matrix(*shape, occupancy, seed=seed)
        partition = row_packing(matrix, trials=5, seed=seed)
        schedules.append(
            AddressingSchedule.from_partition(partition, theta=0.5)
        )
    return schedules


@pytest.mark.parametrize("cap", TONE_CAPS)
def test_legalization_inflation_vs_cap(benchmark, scale, root_seed, cap):
    count = 12 if scale == "paper" else 5
    schedules = _schedules(root_seed, count)
    constraints = AodConstraints(max_row_tones=cap, max_col_tones=cap)

    def run():
        ideal = 0
        legal = 0
        for schedule in schedules:
            result = legalize_schedule(schedule, constraints)
            ideal += result.original_depth
            legal += result.depth
        return ideal, legal

    ideal, legal = benchmark(run)
    benchmark.extra_info["tone_cap"] = cap
    benchmark.extra_info["ideal_depth"] = ideal
    benchmark.extra_info["legal_depth"] = legal
    benchmark.extra_info["inflation"] = round(legal / max(1, ideal), 3)


def test_spacing_guard_cost(benchmark, scale, root_seed):
    count = 8 if scale == "paper" else 4
    schedules = _schedules(root_seed, count)
    constraints = AodConstraints(min_row_spacing=2, min_col_spacing=2)

    def run():
        return sum(
            legalize_schedule(schedule, constraints).depth
            for schedule in schedules
        )

    legal = benchmark(run)
    ideal = sum(schedule.depth for schedule in schedules)
    benchmark.extra_info["ideal_depth"] = ideal
    benchmark.extra_info["legal_depth"] = legal


def test_inflation_monotone_in_cap(scale, root_seed):
    """Quality check (not timed): looser caps never cost more depth."""
    schedules = _schedules(root_seed, 3)
    previous = None
    for cap in TONE_CAPS:
        constraints = AodConstraints(max_row_tones=cap, max_col_tones=cap)
        total = sum(
            legalize_schedule(schedule, constraints).depth
            for schedule in schedules
        )
        if previous is not None:
            assert total <= previous
        previous = total
