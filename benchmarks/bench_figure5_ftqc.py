"""Benchmarks regenerating Figure 5a / Eq. 5 (E6): two-level addressing.

Compares two-level (factor, solve, tensor) against direct flat solving
on surface-code style patterns, checking the paper's claims: the product
is an upper bound, and it is provably optimal for transversal (all-ones)
patch masks.
"""

from __future__ import annotations

import pytest

from repro.benchgen.random_matrices import random_nonempty_matrix
from repro.core.binary_matrix import BinaryMatrix
from repro.ftqc.surface_code import (
    SurfaceCodeGrid,
    boundary_row_patch_mask,
    transversal_patch_mask,
)
from repro.ftqc.two_level import two_level_solve
from repro.solvers.sap import SapOptions, sap_solve

PATCHES = {
    "transversal": transversal_patch_mask,
    "boundary-row": boundary_row_patch_mask,
}


@pytest.mark.parametrize("patch_kind", sorted(PATCHES))
def test_two_level_solve(benchmark, scale, root_seed, patch_kind):
    distance = 3
    grid = SurfaceCodeGrid(3, 3, distance)
    logical = random_nonempty_matrix(3, 3, 0.5, seed=root_seed)
    physical = grid.physical_pattern(
        logical, PATCHES[patch_kind](distance)
    )

    def solve():
        return two_level_solve(
            physical, (distance, distance), seed=root_seed, time_budget=30
        )

    result = benchmark(solve)
    result.partition.validate(physical)
    benchmark.extra_info["patch"] = patch_kind
    benchmark.extra_info["two_level_depth"] = result.depth
    benchmark.extra_info["proved_optimal"] = result.proved_optimal
    if patch_kind == "transversal":
        # phi(M) = r_B(M) = 1: two-level is optimal (paper Section V).
        assert result.proved_optimal


@pytest.mark.parametrize("patch_kind", sorted(PATCHES))
def test_direct_flat_solve(benchmark, scale, root_seed, patch_kind):
    """The comparison series: direct SAP on the expanded pattern."""
    distance = 3
    grid = SurfaceCodeGrid(3, 3, distance)
    logical = random_nonempty_matrix(3, 3, 0.5, seed=root_seed)
    physical = grid.physical_pattern(
        logical, PATCHES[patch_kind](distance)
    )
    two_level_depth = two_level_solve(
        physical, (distance, distance), seed=root_seed, time_budget=30
    ).depth

    def solve():
        return sap_solve(
            physical,
            options=SapOptions(trials=20, seed=root_seed, time_budget=30),
        )

    result = benchmark(solve)
    benchmark.extra_info["patch"] = patch_kind
    benchmark.extra_info["direct_depth"] = result.depth
    benchmark.extra_info["two_level_depth"] = two_level_depth
    # Upper-bound claim: the tensor-product solution never beats direct.
    assert result.depth <= two_level_depth


def test_eq5_bracket_random_tensors(benchmark, root_seed):
    """Eq. 5 on random small factors: lower <= direct <= upper."""
    from repro.ftqc.tensor import tensor_rank_bounds

    outer = random_nonempty_matrix(3, 3, 0.5, seed=root_seed + 1)
    inner = random_nonempty_matrix(2, 2, 0.7, seed=root_seed + 2)

    def compute():
        return tensor_rank_bounds(outer, inner, seed=0, time_budget=30)

    bounds = benchmark(compute)
    direct = sap_solve(
        outer.tensor(inner),
        options=SapOptions(trials=20, seed=0, time_budget=30),
    )
    benchmark.extra_info["eq5_lower"] = bounds.lower
    benchmark.extra_info["eq5_upper"] = bounds.upper
    benchmark.extra_info["direct_depth"] = direct.depth
    assert bounds.lower <= direct.depth <= bounds.upper
