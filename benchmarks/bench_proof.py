"""Proof logging and verification cost (Observation 5 hardening).

The expensive SAP step is proving UNSAT — the optimality certificate.
These benchmarks measure (a) the solve-time overhead of recording a
DRUP-style proof while refuting ``r_B(M) <= b``, and (b) the cost of
independently re-checking that refutation with the RUP verifier,
relative to the solve itself.
"""

from __future__ import annotations

import pytest

from repro.benchgen.gap import gap_matrix
from repro.core.reductions import reduce_matrix
from repro.sat.proof import ProofLog, check_refutation
from repro.sat.solver import SolveStatus
from repro.smt.encoder import DirectEncoder
from repro.solvers.branch_bound import binary_rank_branch_bound


def _unsat_instance(root_seed):
    """A gap matrix and a bound one below its true binary rank."""
    matrix = reduce_matrix(gap_matrix(8, 8, 2, seed=root_seed)).matrix
    rank = binary_rank_branch_bound(matrix).binary_rank
    return matrix, rank - 1


@pytest.mark.parametrize("proof", [False, True], ids=["plain", "logged"])
def test_unsat_solve_overhead(benchmark, root_seed, proof):
    matrix, bound = _unsat_instance(root_seed)

    def run():
        log = ProofLog() if proof else None
        encoder = DirectEncoder(matrix, bound, proof=log)
        status = encoder.solve()
        assert status is SolveStatus.UNSAT
        return log

    log = benchmark(run)
    benchmark.extra_info["proof_logging"] = proof
    if log is not None:
        benchmark.extra_info["learned_clauses"] = log.num_learned


def test_refutation_check(benchmark, root_seed):
    matrix, bound = _unsat_instance(root_seed)
    log = ProofLog()
    encoder = DirectEncoder(matrix, bound, proof=log)
    assert encoder.solve() is SolveStatus.UNSAT

    benchmark(lambda: check_refutation(log))
    benchmark.extra_info["axioms"] = log.num_axioms
    benchmark.extra_info["learned"] = log.num_learned


def test_full_descent_with_audit(benchmark, root_seed):
    """SAP-style descent with proof audit at the end: the paper's
    workflow plus an independent optimality check."""
    matrix, bound = _unsat_instance(root_seed)

    def run():
        log = ProofLog()
        encoder = DirectEncoder(matrix, bound + 1, proof=log)
        assert encoder.solve() is SolveStatus.SAT
        encoder.narrow_to(bound)
        assert encoder.solve() is SolveStatus.UNSAT
        check_refutation(log)
        return log.num_learned

    learned = benchmark(run)
    benchmark.extra_info["learned_clauses"] = learned
