"""Boolean rank (cover) vs binary rank (partition) benchmarks.

The paper's background (Section II) distinguishes partitions from
covers; these benchmarks quantify the gap on the crown matrices
``J_n - I_n`` (cover number grows like the Sperner bound ~ log n while
the partition number is n) and confirm cover <= partition on the
evaluation families.
"""

from __future__ import annotations

import pytest

from repro.benchgen.gap import gap_matrix
from repro.core.binary_matrix import BinaryMatrix
from repro.cover import minimum_cover
from repro.solvers.sap import SapOptions, sap_solve


@pytest.mark.parametrize("n", [4, 5, 6])
def test_crown_cover_vs_partition(benchmark, n):
    matrix = BinaryMatrix.identity(n).complement()

    def solve_cover():
        return minimum_cover(matrix, trials=8, seed=0, time_budget=60)

    cover = benchmark(solve_cover)
    partition = sap_solve(
        matrix, options=SapOptions(trials=8, seed=0, time_budget=60)
    )
    assert cover.proved_optimal and partition.proved_optimal
    benchmark.extra_info["cover_depth"] = cover.depth
    benchmark.extra_info["partition_depth"] = partition.depth
    assert cover.depth <= partition.depth
    assert partition.depth == n  # partitions cannot recombine the rows
    if n >= 5:
        assert cover.depth < partition.depth  # the separation appears


@pytest.mark.parametrize("pairs", [2, 3])
def test_gap_family_cover(benchmark, root_seed, pairs):
    matrix = gap_matrix(10, 10, pairs, seed=root_seed)

    def solve_cover():
        return minimum_cover(matrix, trials=8, seed=0, time_budget=30)

    cover = benchmark(solve_cover)
    partition = sap_solve(
        matrix, options=SapOptions(trials=8, seed=0, time_budget=30)
    )
    benchmark.extra_info["cover_depth"] = cover.depth
    benchmark.extra_info["partition_depth"] = partition.depth
    if cover.proved_optimal and partition.proved_optimal:
        assert cover.depth <= partition.depth
