"""Ablation: SAP descent strategies (linear / binary / assumption).

The paper's Algorithm 1 walks the bound down one step at a time with
incremental narrowing clauses.  Bisection asks fewer questions when the
heuristic is far from optimal but forfeits solver reuse; the
assumption-mode bisection (indicator literals, one live solver) keeps
both.  All three must return identical ranks — the benchmark compares
the time and the number of oracle queries on the gap family, where the
heuristic-to-optimal distance is largest.
"""

from __future__ import annotations

import pytest

from repro.benchgen.suite import gap_suite
from repro.experiments.common import case_seed
from repro.solvers.sap import SapOptions, sap_solve

DESCENTS = ("linear", "binary", "assumption")


def _cases(scale, root_seed):
    count = 10 if scale == "paper" else 4
    return gap_suite((8, 8), 2, count, seed=root_seed)


@pytest.mark.parametrize("descent", DESCENTS)
def test_sap_descent_mode(benchmark, scale, root_seed, descent):
    cases = _cases(scale, root_seed)

    def run():
        total_depth = 0
        total_queries = 0
        for case in cases:
            result = sap_solve(
                case.matrix,
                options=SapOptions(
                    trials=10,
                    seed=case_seed(root_seed, case.case_id, descent),
                    descent=descent,
                    time_budget=20.0,
                ),
            )
            assert result.proved_optimal
            total_depth += result.depth
            total_queries += len(result.queries)
        return total_depth, total_queries

    total_depth, total_queries = benchmark(run)
    benchmark.extra_info["descent"] = descent
    benchmark.extra_info["total_depth"] = total_depth
    benchmark.extra_info["oracle_queries"] = total_queries


def test_descents_agree(scale, root_seed):
    """Cross-check (not timed): all descents certify the same rank."""
    for case in _cases(scale, root_seed):
        depths = set()
        for descent in DESCENTS:
            result = sap_solve(
                case.matrix,
                options=SapOptions(
                    trials=10,
                    seed=case_seed(root_seed, case.case_id, "agree"),
                    descent=descent,
                    time_budget=20.0,
                ),
            )
            assert result.proved_optimal
            depths.add(result.depth)
        assert len(depths) == 1
