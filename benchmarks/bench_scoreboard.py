"""Benchmarks for the corpus scoreboard: run cost and cache leverage.

Measures a full scoreboard run per profile (the cost of the CI gate and
of the default local sweep), the warm re-run through a result cache,
and the pure corpus-construction cost (matrix generation plus the exact
fooling-number certificates).  Every measurement is appended to
``BENCH_scoreboard.json`` (override the directory with
``REPRO_BENCH_DIR``) so gate latency can be tracked across commits.

The smoke profile is asserted cheap in instance count — it is the CI
gate and must stay so; wall-clock is recorded, not asserted, because
1-CPU runners set the floor.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.corpus.baseline import baseline_from_report, diff_against_baseline
from repro.corpus.registry import build_corpus
from repro.corpus.scoreboard import run_scoreboard
from repro.service.cache import ResultCache

MEMBERS = ("trivial", "packing:8", "sap")

SMOKE_INSTANCE_BUDGET = 40
"""The smoke corpus must stay a CI-gate size, not a sweep size."""

_ARTIFACT_ENTRIES = {}


def _artifact_path() -> Path:
    return (
        Path(os.environ.get("REPRO_BENCH_DIR", ".")) / "BENCH_scoreboard.json"
    )


def _record(name: str, payload: dict) -> None:
    _ARTIFACT_ENTRIES[name] = payload
    path = _artifact_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as stream:
        json.dump(
            {"benchmark": "scoreboard", "entries": _ARTIFACT_ENTRIES},
            stream,
            indent=2,
            sort_keys=True,
        )
        stream.write("\n")


def _profile(scale: str) -> str:
    return "full" if scale == "paper" else "quick"


def test_corpus_build_cost(benchmark, scale, root_seed):
    profile = _profile(scale)

    corpus = benchmark(build_corpus, profile=profile, seed=root_seed)
    families = sorted(set(inst.family for inst in corpus))
    payload = {
        "profile": profile,
        "instances": len(corpus),
        "families": families,
        "build_seconds": benchmark.stats.stats.min,
    }
    benchmark.extra_info.update(payload)
    _record("corpus_build", payload)


def test_smoke_gate_latency(benchmark, root_seed):
    """The CI gate end to end: run, baseline, diff — on every round."""
    corpus = build_corpus(profile="smoke", seed=root_seed)
    assert len(corpus) <= SMOKE_INSTANCE_BUDGET

    def gate():
        report = run_scoreboard(
            profile="smoke", seed=root_seed, members=MEMBERS
        )
        diff = diff_against_baseline(
            report, baseline_from_report(report)
        )
        assert not diff.failed
        return report

    report = benchmark(gate)
    payload = {
        "instances": len(report.rows),
        "families": len(report.families),
        "members": list(MEMBERS),
        "gate_seconds": benchmark.stats.stats.min,
        "optimal_fraction": sum(
            1 for row in report.rows if row.optimal
        ) / len(report.rows),
    }
    benchmark.extra_info.update(payload)
    _record("smoke_gate", payload)


def test_cached_rerun_leverage(benchmark, scale, root_seed):
    """A warm scoreboard run replays the cache instead of re-solving."""
    profile = _profile(scale)
    cache = ResultCache(capacity=8192)

    began = time.perf_counter()
    cold = run_scoreboard(
        profile=profile, seed=root_seed, members=MEMBERS, cache=cache
    )
    cold_seconds = time.perf_counter() - began
    assert cold.tally.solved == len(cold.rows)

    def rerun():
        return run_scoreboard(
            profile=profile, seed=root_seed, members=MEMBERS, cache=cache
        )

    warm = benchmark(rerun)
    assert all(row.from_cache for row in warm.rows)
    assert warm.tally.solved == 0

    warm_seconds = benchmark.stats.stats.min
    payload = {
        "profile": profile,
        "instances": len(cold.rows),
        "members": list(MEMBERS),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cache_speedup": (
            cold_seconds / warm_seconds if warm_seconds else None
        ),
    }
    benchmark.extra_info.update(payload)
    _record("cached_rerun", payload)
