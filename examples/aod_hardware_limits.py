#!/usr/bin/env python3
"""AOD hardware limits: what depth-optimality costs under real control.

The paper's optimum assumes one AOD configuration can drive any row and
column subset at once.  Real deflectors cap the number of simultaneous
RF tones and need spacing between active lines.  This example computes
a depth-optimal schedule for a random 12x12 pattern, then legalizes it
under progressively harsher constraint sets, showing the depth
inflation and re-verifying each legal schedule on the simulated array.

Run:  python examples/aod_hardware_limits.py
"""

from repro.atoms import (
    AddressingSchedule,
    AddressingSimulator,
    AodConstraints,
    QubitArray,
    legalize_schedule,
)
from repro.benchgen.random_matrices import random_nonempty_matrix
from repro.core.render import render_matrix
from repro.solvers.row_packing import row_packing

CONSTRAINT_SETS = [
    ("unconstrained", AodConstraints()),
    ("8 tones/axis", AodConstraints(max_row_tones=8, max_col_tones=8)),
    ("4 tones/axis", AodConstraints(max_row_tones=4, max_col_tones=4)),
    ("2 tones/axis", AodConstraints(max_row_tones=2, max_col_tones=2)),
    (
        "4 tones/axis + spacing 2",
        AodConstraints(
            max_row_tones=4,
            max_col_tones=4,
            min_row_spacing=2,
            min_col_spacing=2,
        ),
    ),
    ("10-tone RF budget", AodConstraints(max_total_tones=10)),
]


def main() -> None:
    pattern = random_nonempty_matrix(12, 12, occupancy=0.35, seed=7)
    print("Target pattern (random 12x12 at 35% occupancy):")
    print(render_matrix(pattern))
    print()

    partition = row_packing(pattern, trials=50, seed=7)
    ideal = AddressingSchedule.from_partition(partition, theta=0.5)
    print(f"Ideal schedule depth (row packing): {ideal.depth}")
    print()

    array = QubitArray.full(*pattern.shape)
    simulator = AddressingSimulator(array)

    header = f"{'constraints':28} {'depth':>5} {'inflation':>9} {'verified':>8}"
    print(header)
    print("-" * len(header))
    for label, constraints in CONSTRAINT_SETS:
        result = legalize_schedule(ideal, constraints)
        report = simulator.verify(result.schedule, pattern)
        print(
            f"{label:28} {result.depth:>5} "
            f"{result.inflation:>8.2f}x {'yes' if report.ok else 'NO':>8}"
        )
        assert report.ok, report.summary()

    print()
    print(
        "Tighter tone caps trade depth for hardware simplicity; the\n"
        "schedule stays correct (every target atom addressed exactly\n"
        "once) at every point of the sweep."
    )


if __name__ == "__main__":
    main()
