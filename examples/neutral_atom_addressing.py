#!/usr/bin/env python3
"""Neutral-atom addressing on a realistic array with defects.

Scenario: a 12x12 tweezer array after stochastic loading — some sites
are vacant.  A mid-circuit phase correction must apply Rz to a subset of
the loaded atoms.  The example compiles the schedule twice:

1. treating the pattern as a plain binary matrix (vacancies unused), and
2. exploiting the vacancies as don't-cares (paper Section VI future
   work), letting rectangles wash over empty sites.

Both schedules are verified behaviourally; with enough vacancies the
don't-care compilation saves AOD reconfigurations.

Run:  python examples/neutral_atom_addressing.py
"""

import random

from repro import (
    AddressingSimulator,
    BinaryMatrix,
    QubitArray,
    compile_addressing,
)
from repro.core.render import render_partition, render_side_by_side

SIZE = 12
LOAD_PROBABILITY = 0.82
TARGET_PROBABILITY = 0.35
SEED = 7


def build_array_and_target():
    rng = random.Random(SEED)
    vacancies = [
        (i, j)
        for i in range(SIZE)
        for j in range(SIZE)
        if rng.random() > LOAD_PROBABILITY
    ]
    array = QubitArray.with_vacancies(SIZE, SIZE, vacancies)
    target_cells = [
        site for site in array.atoms() if rng.random() < TARGET_PROBABILITY
    ]
    target = BinaryMatrix.from_cells(target_cells, (SIZE, SIZE))
    return array, target


def describe(array: QubitArray, target: BinaryMatrix) -> None:
    grid = []
    for i in range(SIZE):
        row = []
        for j in range(SIZE):
            if not array.is_occupied(i, j):
                row.append(" ")  # vacancy
            elif target[i, j]:
                row.append("#")  # atom to address
            else:
                row.append(".")  # loaded, not addressed
        grid.append("".join(row))
    print("\n".join(grid))
    print(
        f"\n{array.num_atoms} atoms loaded, "
        f"{target.count_ones()} to address, "
        f"{SIZE * SIZE - array.num_atoms} vacancies"
    )


def main() -> None:
    array, target = build_array_and_target()
    print("Array after loading ('#'=target atom, '.'=idle atom, ' '=vacancy):")
    describe(array, target)
    print()

    plain = compile_addressing(
        array, target, strategy="packing", trials=64, seed=SEED
    )
    report = AddressingSimulator(array).verify(plain.schedule, target)
    assert report.ok
    print(
        f"plain compilation:      depth {plain.depth:3d} "
        f"({plain.schedule.total_tones} RF tones total) — {report.summary()}"
    )

    with_vacancies = compile_addressing(
        array,
        target,
        strategy="packing",
        exploit_vacancies=True,
        trials=64,
        seed=SEED,
        time_budget=20,
    )
    report = AddressingSimulator(array).verify(
        with_vacancies.schedule, target
    )
    assert report.ok
    print(
        f"don't-care compilation: depth {with_vacancies.depth:3d} "
        f"({with_vacancies.schedule.total_tones} RF tones total) — "
        f"{report.summary()}"
    )
    saved = plain.depth - with_vacancies.depth
    print(f"\nvacancies saved {saved} AOD reconfigurations")

    print("\nPlain vs don't-care partitions (one marker per rectangle):")
    print(
        render_side_by_side(
            render_partition(plain.partition),
            render_partition(with_vacancies.partition),
        )
    )


if __name__ == "__main__":
    main()
