#!/usr/bin/env python3
"""Vacancies as don't-cares: fewer rectangles via matrix completion.

Section VI of the paper: vacant sites hold no atom, so it does not
matter how often the AOD illuminates them — they become *don't-cares*,
and minimizing addressing depth becomes binary matrix completion
instead of factorization.  This example builds an array with a defect
pattern (stochastic loading leaves holes), compares the strict EBMF
depth against the don't-care-aware depth, and verifies the relaxed
schedule on the simulated array.

Run:  python examples/vacancy_dont_cares.py
"""

from repro.atoms import AddressingSchedule, AddressingSimulator, QubitArray
from repro.benchgen.random_matrices import random_matrix
from repro.completion import (
    MaskedMatrix,
    masked_minimum_addressing,
)
from repro.core.binary_matrix import BinaryMatrix
from repro.core.render import render_matrix
from repro.solvers.sap import SapOptions, sap_solve
from repro.utils.rng import ensure_rng


def make_instance(seed: int = 5):
    """A 8x8 target pattern plus ~15% vacancy defects outside it."""
    rng = ensure_rng(seed)
    target = random_matrix(8, 8, occupancy=0.4, seed=seed)
    vacancy_rows = []
    for i in range(8):
        row = []
        for j in range(8):
            vacant = (not target[i, j]) and rng.random() < 0.15
            row.append(1 if vacant else 0)
        vacancy_rows.append(row)
    vacancies = BinaryMatrix.from_rows(vacancy_rows)
    return target, vacancies


def main() -> None:
    target, vacancies = make_instance()
    print("Target pattern ('#' = address these atoms):")
    print(render_matrix(target))
    print()
    print("Vacancies ('#' = empty trap, illuminate freely):")
    print(render_matrix(vacancies))
    print()

    strict = sap_solve(
        target, options=SapOptions(trials=50, seed=1, time_budget=20.0)
    )
    print(
        f"strict EBMF depth (vacancies treated as 0s): {strict.depth}"
        f" ({'optimal' if strict.proved_optimal else 'upper bound'})"
    )

    masked = MaskedMatrix(target, vacancies)
    relaxed = masked_minimum_addressing(
        masked, trials=50, seed=1, time_budget=20.0
    )
    print(
        f"don't-care depth (vacancies exploitable):     "
        f"{relaxed.partition.depth}"
        f" ({'optimal' if relaxed.proved_optimal else 'upper bound'})"
    )
    saved = strict.depth - relaxed.partition.depth
    print(f"rectangles saved by exploiting vacancies:     {saved}")
    print()

    # Verify on the physical array: atoms sit everywhere except the
    # vacancies; the relaxed schedule may illuminate vacant sites.
    occupancy_rows = [
        [0 if vacancies[i, j] else 1 for j in range(8)] for i in range(8)
    ]
    array = QubitArray(BinaryMatrix.from_rows(occupancy_rows))
    schedule = AddressingSchedule.from_partition(
        relaxed.partition, theta=0.5
    )
    report = AddressingSimulator(array).verify(schedule, target)
    print(f"simulator verdict: {report.summary()}")
    assert report.ok


if __name__ == "__main__":
    main()
