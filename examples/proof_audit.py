#!/usr/bin/env python3
"""Auditing optimality: machine-checkable UNSAT certificates.

SAP's claim "this partition is depth-optimal" rests on an UNSAT answer
one step below the found depth (paper Observation 5: proving UNSAT is
the dominant cost).  This example solves the paper's two worked
matrices with proof logging enabled, then re-checks the refutations
with the independent RUP verifier — the optimality certificate no
longer depends on trusting the CDCL search.

Run:  python examples/proof_audit.py
"""

from repro.core.paper_matrices import equation_2, figure_1b
from repro.core.render import render_matrix
from repro.sat.proof import check_refutation, proof_stats
from repro.sat.solver import SolveStatus
from repro.smt.oracle import RankDecisionOracle
from repro.solvers.row_packing import row_packing


def audit(name, matrix) -> None:
    print(f"=== {name} ===")
    print(render_matrix(matrix))
    upper = row_packing(matrix, trials=32, seed=0).depth
    print(f"row packing upper bound: {upper}")

    oracle = RankDecisionOracle(matrix, proof=True)
    bound = upper - 1
    while True:
        status, partition = oracle.check_at_most(bound)
        if status is SolveStatus.SAT:
            print(f"  r_B <= {bound}  (SAT, partition of depth "
                  f"{partition.depth})")
            bound = partition.depth - 1
            continue
        print(f"  r_B  > {bound}  (UNSAT)")
        break
    rank = bound + 1
    print(f"binary rank: {rank}")

    stats = proof_stats(oracle.proof_log)
    check_refutation(oracle.proof_log)
    print(
        f"refutation verified: {stats['axioms']} axioms, "
        f"{stats['learned']} learned clauses re-derived by unit "
        "propagation"
    )
    print()


def main() -> None:
    audit("Figure 1b (6x6, r_B = 5)", figure_1b())
    audit("Equation 2 (3x3, fooling number 2 < r_B = 3)", equation_2())
    print(
        "Both optimality certificates hold under independent RUP\n"
        "checking; a bug in the solver's search could not forge them."
    )


if __name__ == "__main__":
    main()
