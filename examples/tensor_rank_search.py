#!/usr/bin/env python3
"""Probing the paper's open question: is r_B multiplicative under (x)?

Section VI suggests using the exact solver to investigate how binary
rank behaves under tensor products (the FTQC two-level structure of
Section V relies on the product upper bound).  This example runs the
probe harness on three kinds of factor pairs and reports the verdicts:

* Eq. 2's matrix squared — resolved *multiplicative* by Eq. 3 alone,
  because the matrix has full real rank (rank is multiplicative over R;
  the fooling bound of Eq. 5 is the slack one here);
* random factors — almost always full-rank, hence resolved the same
  trivial way (the paper's Observation 1 at work);
* double-slack factors (binary rank above both the real rank and the
  fooling number, found by rejection sampling) — the only kind of pair
  whose bracket opens, forcing the oracle to genuinely search below
  the product bound.

Run:  python examples/tensor_rank_search.py
"""

from repro.experiments.tensor_rank import TensorRankConfig, run_tensor_rank


def main() -> None:
    config = TensorRankConfig(
        pairs=4,
        open_pairs=1,
        shape=3,
        open_shape=5,
        seed=2024,
        probe_budget=30.0,
    )
    result = run_tensor_rank(config)
    print(result.render())
    print()

    witnesses = result.witnesses()
    if witnesses:
        print("Strict submultiplicativity witnesses found:")
        for probe in witnesses:
            print(
                f"  {probe.label}: r_B(A (x) B) <= "
                f"{probe.product_bound - 1} < "
                f"{probe.rank_a} * {probe.rank_b}"
            )
    else:
        decided = [p for p in result.probes if p.verdict != "undecided"]
        print(
            f"No submultiplicativity witness among {len(decided)} decided "
            "pairs — consistent with (but not proof of) multiplicativity."
        )
    undecided = [p for p in result.probes if p.verdict == "undecided"]
    if undecided:
        print(
            f"{len(undecided)} pair(s) hit the probe budget; rerun with a "
            "larger --probe-budget via python -m repro.experiments.tensor_rank."
        )


if __name__ == "__main__":
    main()
