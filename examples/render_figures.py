#!/usr/bin/env python3
"""Regenerate the paper's figures as SVG files under ``results/``.

Produces:

* ``results/figure1b.svg`` — the motivating 6x6 pattern partitioned
  into 5 rectangles with the size-5 fooling set ringed (optimality
  certificate);
* ``results/figure3.svg``  — the row-packing order-sensitivity example;
* ``results/figure4.svg``  — runtime split of the hardest cases with
  the real-rank overlay;
* ``results/table1_saturation.svg`` — Table I's packing columns as
  saturation curves.

Run:  python examples/render_figures.py  [output_dir]
"""

import sys
from pathlib import Path

from repro.core.paper_matrices import figure_1b, figure_3
from repro.experiments.figure4 import Figure4Config, run_figure4
from repro.experiments.table1 import Table1Config, run_table1
from repro.solvers.sap import SapOptions, sap_solve
from repro.viz.figures import (
    figure4_svg,
    partition_figure,
    table1_saturation_svg,
)


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results")
    out.mkdir(parents=True, exist_ok=True)

    # Figure 1b: optimal partition + fooling-set certificate.
    pattern = figure_1b()
    result = sap_solve(pattern, options=SapOptions(trials=32, seed=2024))
    canvas = partition_figure(
        pattern,
        result.partition,
        title=f"Figure 1b: depth-{result.depth} partition (optimal)",
    )
    canvas.write(str(out / "figure1b.svg"))
    print(f"wrote {out / 'figure1b.svg'}  (depth {result.depth})")

    # Figure 3's matrix, solved optimally.
    pattern3 = figure_3()
    result3 = sap_solve(pattern3, options=SapOptions(trials=32, seed=2024))
    canvas = partition_figure(
        pattern3,
        result3.partition,
        title=f"Figure 3 matrix: depth-{result3.depth} partition",
    )
    canvas.write(str(out / "figure3.svg"))
    print(f"wrote {out / 'figure3.svg'}  (depth {result3.depth})")

    # Figure 4: hardest cases.
    fig4 = run_figure4(Figure4Config(scale="quick", top_n=8))
    figure4_svg(fig4).write(str(out / "figure4.svg"))
    print(f"wrote {out / 'figure4.svg'}  ({len(fig4.top_cases())} cases)")

    # Table I saturation curves.
    table1 = run_table1(
        Table1Config(
            scale="quick",
            heuristics=("trivial", "packing:1", "packing:10", "packing:100"),
            include_large=False,
            smt_time_budget=15.0,
        )
    )
    table1_saturation_svg(table1).write(str(out / "table1_saturation.svg"))
    print(f"wrote {out / 'table1_saturation.svg'}")


if __name__ == "__main__":
    main()
