#!/usr/bin/env python3
"""Step-by-step replay of Figure 3: row packing is order sensitive.

Runs Algorithm 2 on the paper's 5x5 example twice — in the given row
order (5 rectangles) and in the Figure 3b order (4 rectangles) — and
prints each basis event, reproducing the figure's narrative.

Run:  python examples/row_packing_trace.py
"""

from repro.core.paper_matrices import FIGURE_3_GOOD_ORDER, figure_3
from repro.core.render import render_matrix, render_partition, render_side_by_side
from repro.solvers.row_packing import PackingTrace, pack_rows_once
from repro.solvers.sap import sap_solve


def run_order(matrix, order, label):
    print(f"--- {label}: processing rows in order {list(order)} ---")
    trace = PackingTrace()
    partition = pack_rows_once(matrix, list(order), trace=trace)
    print(trace.render(matrix))
    print(f"=> {partition.depth} rectangles")
    print(
        render_side_by_side(
            render_matrix(matrix), render_partition(partition, matrix)
        )
    )
    print()
    return partition


def main() -> None:
    matrix = figure_3()
    print("Figure 3 matrix:")
    print(render_matrix(matrix))
    print()

    top_down = run_order(matrix, range(5), "Figure 3a (top-down order)")
    shuffled = run_order(
        matrix, FIGURE_3_GOOD_ORDER, "Figure 3b (shuffled order)"
    )

    assert top_down.depth == 5 and shuffled.depth == 4

    result = sap_solve(matrix, trials=32, seed=0)
    print(
        f"SAP confirms the optimum: r_B = {result.depth} "
        f"(proved: {result.proved_optimal})"
    )
    print(
        "\nThis is why Algorithm 2 shuffles and retries: one trial is a\n"
        "local search, many trials approach the optimum (Observation 3)."
    )


if __name__ == "__main__":
    main()
