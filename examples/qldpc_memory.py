#!/usr/bin/env python3
"""qLDPC memory blocks in a 1D row (Figure 5b / Section V conjecture).

Quantum LDPC memory stores many logical qubits per block; logical
single-qubit operations hit different offsets in different blocks.  The
paper conjectures row-by-row addressing (one AOD shot per distinct block
pattern) is usually already depth-optimal, because wide patterns are
almost always full rank.

This example builds a random 8-block x 16-site layout, compares the
row-by-row depth with the SAP optimum, and reproduces the supporting
full-rank statistics for 10xN random matrices.

Run:  python examples/qldpc_memory.py
"""

from repro.core.render import render_matrix
from repro.ftqc.qldpc import (
    BlockLayout,
    full_rank_fraction,
    row_addressing_depth,
)
from repro.solvers.sap import SapOptions, sap_solve

NUM_BLOCKS = 8
BLOCK_SIZE = 16
QUBITS_PER_BLOCK = 5


def main() -> None:
    layout = BlockLayout(NUM_BLOCKS, BLOCK_SIZE)
    print(
        f"{NUM_BLOCKS} memory blocks of {BLOCK_SIZE} sites; a logical "
        f"operation touches {QUBITS_PER_BLOCK} qubits per block.\n"
    )

    optimal_count = 0
    for trial in range(5):
        pattern = layout.random_pattern(QUBITS_PER_BLOCK, seed=trial)
        row_depth = row_addressing_depth(pattern)
        result = sap_solve(
            pattern,
            options=SapOptions(trials=32, seed=trial, time_budget=20),
        )
        verdict = (
            "row addressing OPTIMAL"
            if result.proved_optimal and result.depth == row_depth
            else f"r_B = {result.depth}"
            if result.proved_optimal
            else "undecided in budget"
        )
        if result.proved_optimal and result.depth == row_depth:
            optimal_count += 1
        print(
            f"trial {trial}: row-by-row depth {row_depth:2d}, "
            f"SAP depth {result.depth:2d} -> {verdict}"
        )
        if trial == 0:
            print("\n  pattern (rows are blocks):")
            indented = "\n".join(
                "  " + line for line in render_matrix(pattern).splitlines()
            )
            print(indented + "\n")

    print(
        f"\nrow addressing was optimal in {optimal_count}/5 trials "
        f"(Section V conjecture)."
    )

    print("\nWhy: full-real-rank probability at 20% occupancy —")
    for cols in (10, 20, 30):
        fraction = full_rank_fraction(10, cols, 0.2, 60, seed=1)
        print(f"  10x{cols:>2}: {fraction:5.0%}")
    print(
        "\nWide patterns are nearly always full rank, so the row count "
        "matches\nthe Eq. 3 lower bound and row-by-row addressing cannot "
        "be beaten."
    )


if __name__ == "__main__":
    main()
