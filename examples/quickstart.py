#!/usr/bin/env python3
"""Quickstart: depth-optimal addressing of the paper's Figure 1 pattern.

Takes the 6x6 target pattern from Figure 1b, computes a depth-optimal
rectangle partition with SAP, compiles it into an AOD schedule, and
verifies the schedule on a simulated atom array.

Run:  python examples/quickstart.py
"""

from repro import (
    AddressingSimulator,
    QubitArray,
    compile_addressing,
    fooling_number,
    rank_lower_bound,
)
from repro.core.paper_matrices import figure_1b
from repro.core.render import render_matrix, render_partition, render_side_by_side


def main() -> None:
    pattern = figure_1b()
    print("Target pattern (Figure 1b of the paper):")
    print(render_matrix(pattern))
    print()
    print(f"real rank (Eq. 3 lower bound): {rank_lower_bound(pattern)}")
    print(f"fooling number:                {fooling_number(pattern)}")
    print()

    array = QubitArray.full(*pattern.shape)
    result = compile_addressing(
        array, pattern, theta=0.5, strategy="sap", trials=32, seed=2024
    )

    print(
        f"SAP found a partition of depth {result.depth} "
        f"({'proven optimal' if result.proved_optimal else 'not proven'}):"
    )
    print(
        render_side_by_side(
            render_matrix(pattern),
            render_partition(result.partition, pattern),
        )
    )
    print()

    print("Compiled AOD schedule:")
    for step, operation in enumerate(result.schedule):
        config = operation.configuration
        print(
            f"  step {step}: rows {sorted(config.rows)}, "
            f"cols {sorted(config.cols)}, Rz({operation.pulse.theta})"
        )

    report = AddressingSimulator(array).verify(result.schedule, pattern)
    print()
    print(f"simulation: {report.summary()}")


if __name__ == "__main__":
    main()
