#!/usr/bin/env python3
"""Quickstart: depth-optimal addressing of the paper's Figure 1 pattern.

Takes the 6x6 target pattern from Figure 1b, computes a depth-optimal
rectangle partition with SAP, compiles it into an AOD schedule, and
verifies the schedule on a simulated atom array.

Run:  python examples/quickstart.py
"""

from repro import (
    AddressingSimulator,
    QubitArray,
    compile_addressing,
    fooling_number,
    rank_lower_bound,
)
from repro.core.paper_matrices import figure_1b
from repro.core.render import render_matrix, render_partition, render_side_by_side


def main() -> None:
    pattern = figure_1b()
    print("Target pattern (Figure 1b of the paper):")
    print(render_matrix(pattern))
    print()
    print(f"real rank (Eq. 3 lower bound): {rank_lower_bound(pattern)}")
    print(f"fooling number:                {fooling_number(pattern)}")
    print()

    array = QubitArray.full(*pattern.shape)
    result = compile_addressing(
        array, pattern, theta=0.5, strategy="sap", trials=32, seed=2024
    )

    print(
        f"SAP found a partition of depth {result.depth} "
        f"({'proven optimal' if result.proved_optimal else 'not proven'}):"
    )
    print(
        render_side_by_side(
            render_matrix(pattern),
            render_partition(result.partition, pattern),
        )
    )
    print()

    print("Compiled AOD schedule:")
    for step, operation in enumerate(result.schedule):
        config = operation.configuration
        print(
            f"  step {step}: rows {sorted(config.rows)}, "
            f"cols {sorted(config.cols)}, Rz({operation.pulse.theta})"
        )

    report = AddressingSimulator(array).verify(result.schedule, pattern)
    print()
    print(f"simulation: {report.summary()}")

    batch_demo()
    scoreboard_demo()
    streaming_demo()
    gateway_demo()


def batch_demo() -> None:
    """Many patterns at once: the portfolio service.

    ``solve_batch`` races heuristics and the exact backend per instance,
    fans instances across worker processes, and caches results by matrix
    content — re-solving the same pattern is a dictionary lookup.  The
    same service backs ``python -m repro solve-batch``.
    """
    from repro import ResultCache, solve_batch
    from repro.core.paper_matrices import equation_2, figure_1b, figure_3

    print()
    print("Batch solving via the portfolio service:")
    cache = ResultCache(capacity=64)
    patterns = [
        ("figure_1b", figure_1b()),
        ("equation_2", equation_2()),
        ("figure_3", figure_3()),
    ]
    for attempt in ("cold", "warm"):
        records = solve_batch(
            patterns,
            members=("trivial", "packing:8", "sap"),
            seed=2024,
            workers=2,
            cache=cache,
        )
        for record in records:
            result = record.result
            print(
                f"  [{attempt}] {record.case_id}: depth {result.depth} "
                f"(winner {result.winner}, "
                f"{'optimal' if result.optimal else 'upper bound'}, "
                f"{'cache hit' if result.from_cache else 'solved'})"
            )


def scoreboard_demo() -> None:
    """The standing benchmark corpus and the solver scoreboard.

    ``build_corpus`` enumerates named, seeded instance families — the
    paper's worked matrices, Table-I ensembles, adversarial fooling-set
    instances, FTQC structure matrices, scale sweeps — and
    ``run_scoreboard`` fans them through the portfolio and scores every
    instance against the best depth anything has ever proven for it.
    The same engine backs ``python -m repro scoreboard run --smoke``,
    whose ``diff`` mode gates CI against a checked-in baseline
    (``baselines/scoreboard_smoke.json``).
    """
    from repro import build_corpus, run_scoreboard

    print()
    print("Scoring the smoke corpus on the solver scoreboard:")
    corpus = build_corpus(profile="smoke", seed=2024)
    families = sorted(set(inst.family for inst in corpus))
    print(f"  {len(corpus)} instances from {len(families)} families:")
    print(f"    {', '.join(families)}")
    report = run_scoreboard(
        profile="smoke", seed=2024, members=("trivial", "packing:8", "sap")
    )
    for family, entry in report.family_summary().items():
        print(
            f"  {family}: {entry['instances']} instances, "
            f"{entry['optimal']} optimal, "
            f"mean depth ratio {entry['mean_ratio']:.3f}"
        )
    shares = ", ".join(
        f"{name} {report.tally.win_rate(name):.0%}"
        for name in report.tally.wins()
    )
    print(f"  per-solver wins: {shares}")


def streaming_demo() -> None:
    """Results as they finish: the async streaming engine.

    ``solve_batch`` barriers on the whole batch; the server layer's
    :class:`AsyncSolveEngine` streams per-instance events instead —
    ``queued``, ``started``, one ``member_finished`` per portfolio
    member, then ``done`` — so a caller can act on fast instances while
    slow ones are still solving.  ``race="concurrent"`` additionally
    runs the exact backends as a cancel-the-losers thread race.  The
    same engine backs ``python -m repro serve`` / ``submit``.
    """
    import asyncio

    from repro import AsyncSolveEngine
    from repro.core.paper_matrices import equation_2, figure_1b, figure_3

    print()
    print("Streaming the same patterns through the async engine:")
    patterns = [
        ("figure_1b", figure_1b()),
        ("equation_2", equation_2()),
        ("figure_3", figure_3()),
    ]

    async def run() -> None:
        async with AsyncSolveEngine(
            members=("trivial", "packing:8", "sap"),
            seed=2024,
            workers=2,
            race="concurrent",
        ) as engine:
            async for event in engine.stream(patterns):
                if event.kind == "member_finished":
                    depth = "-" if event.depth is None else event.depth
                    print(
                        f"    {event.case_id}: {event.member} -> {depth}"
                    )
                elif event.kind == "done":
                    result = event.record.result
                    print(
                        f"  [done] {event.case_id}: depth {result.depth} "
                        f"(winner {result.winner}, "
                        f"{'optimal' if result.optimal else 'upper bound'})"
                    )

    asyncio.run(run())


def gateway_demo() -> None:
    """Remote, multi-tenant solving: the TCP gateway.

    ``python -m repro gateway`` fronts one shared engine for many
    remote clients: each request carries a tenant identity, competes
    under priority-aware admission control, and spends against a
    rolling per-tenant compute quota.  A saturated gateway answers with
    a structured ``retry_after`` error instead of queueing unboundedly,
    and a ``metrics`` op reports queue depth, per-tenant usage, cache
    hit rate, and per-solver win rates.  Here the gateway runs on a
    background thread; in production it is its own process (the client
    connects with ``--connect tcp://host:port``).
    """
    import asyncio
    import threading
    import time

    from repro.core.paper_matrices import equation_2, figure_1b
    from repro.server import AsyncSolveEngine, SolveGateway
    from repro.server import client as gateway_client

    print()
    print("Solving over the multi-tenant TCP gateway:")
    gateway = SolveGateway(
        AsyncSolveEngine(
            members=("trivial", "packing:8", "sap"), seed=2024, workers=2
        ),
        port=0,  # ephemeral; .port holds the bound value once serving
    )
    thread = threading.Thread(
        target=lambda: asyncio.run(gateway.run()), daemon=True
    )
    thread.start()
    while gateway.port == 0:
        time.sleep(0.01)
    address = ("127.0.0.1", gateway.port)

    for event in gateway_client.submit(
        address,
        [("figure_1b", figure_1b()), ("equation_2", equation_2())],
        tenant="quickstart",
        timeout=60,
    ):
        if event["event"] == "done":
            print(
                f"  [done] {event['case_id']}: "
                f"depth {event['depth']} "
                f"(winner {event['provenance']['winner']})"
            )

    metrics = gateway_client.fetch_metrics(address, timeout=10)
    usage = metrics["tenants"]["quickstart"]
    print(
        f"  tenant 'quickstart': {usage['cases_completed']} cases, "
        f"{usage['quota']['lifetime_seconds']:.3f}s compute; "
        f"win rates {metrics['solvers']['win_rates']}"
    )
    gateway_client.request_once(address, {"op": "shutdown"}, timeout=10)
    thread.join(timeout=10)


if __name__ == "__main__":
    main()
