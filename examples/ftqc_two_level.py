#!/usr/bin/env python3
"""Two-level addressing for fault-tolerant QC (Figure 5a of the paper).

A 3x3 grid of distance-3 surface-code patches stores nine logical
qubits.  A logical layer applies an operation U to a subset of patches;
physically this is the tensor product of the logical mask and the
per-patch data-qubit mask.  The example:

1. expands the logical mask to the 9x9 physical pattern,
2. solves it *two-level* (factor, solve each level, tensor the
   partitions),
3. solves it *flat* with SAP for comparison, and
4. reports the Eq. 5 bracket certifying (or not) two-level optimality.

Run:  python examples/ftqc_two_level.py
"""

from repro import BinaryMatrix, sap_solve, two_level_solve
from repro.core.render import render_matrix, render_partition, render_side_by_side
from repro.ftqc.surface_code import (
    SurfaceCodeGrid,
    boundary_row_patch_mask,
    transversal_patch_mask,
)
from repro.solvers.sap import SapOptions

DISTANCE = 3


def solve_and_report(grid, logical_mask, patch_mask, label):
    physical = grid.physical_pattern(logical_mask, patch_mask)
    two_level = two_level_solve(
        physical, (DISTANCE, DISTANCE), seed=0, time_budget=30
    )
    direct = sap_solve(
        physical, options=SapOptions(trials=24, seed=0, time_budget=30)
    )
    bounds = two_level.bounds
    print(f"--- {label} ---")
    print(
        f"two-level: {two_level.outer_partition.depth} logical x "
        f"{two_level.inner_partition.depth} physical = "
        f"{two_level.depth} AOD steps"
        f" ({'certified optimal' if two_level.proved_optimal else 'upper bound'})"
    )
    print(
        f"direct:    {direct.depth} AOD steps "
        f"({'optimal' if direct.proved_optimal else 'best found'})"
    )
    if bounds is not None:
        print(
            f"Eq. 5:     {bounds.lower} <= r_B <= {bounds.upper} "
            f"(phi_logical={bounds.outer_fooling}, "
            f"phi_patch={bounds.inner_fooling})"
        )
    print()
    return two_level


def main() -> None:
    grid = SurfaceCodeGrid(3, 3, DISTANCE)
    logical_mask = BinaryMatrix.from_strings(["101", "010", "110"])
    print("Logical mask (patches receiving U):")
    print(render_matrix(logical_mask))
    print()

    transversal = solve_and_report(
        grid,
        logical_mask,
        transversal_patch_mask(DISTANCE),
        "transversal gate (all data qubits per patch)",
    )
    solve_and_report(
        grid,
        logical_mask,
        boundary_row_patch_mask(DISTANCE),
        "boundary preparation (one row per patch)",
    )

    print("Physical partition of the transversal case:")
    physical = grid.physical_pattern(
        logical_mask, transversal_patch_mask(DISTANCE)
    )
    print(
        render_side_by_side(
            render_matrix(physical),
            render_partition(transversal.partition, physical),
        )
    )
    print(
        "\nEach marker is one AOD configuration; the block structure of "
        "the\ntensor-product solution is visible as repeated patch-sized "
        "tiles."
    )


if __name__ == "__main__":
    main()
