#!/usr/bin/env python3
"""Covers vs partitions: when overlap is free, depth can collapse.

Rz addressing accumulates phase, so the paper requires disjoint
rectangles (partitions).  For idempotent effects (e.g. marking sites, or
operations where double application is harmless) overlapping rectangles
(covers) suffice — and the minimum cover can be exponentially smaller.

The classic separation: the crown pattern J_n - I_n ("address everyone
except your own column").  Partitions need n rectangles; covers need
only the Sperner bound min{r : C(r, floor(r/2)) >= n} ~ log2(n).

Run:  python examples/cover_vs_partition.py
"""

import math

from repro import BinaryMatrix, minimum_cover, sap_solve
from repro.core.render import render_matrix, render_partition, render_side_by_side


def sperner_bound(n: int) -> int:
    return next(r for r in range(1, 20) if math.comb(r, r // 2) >= n)


def main() -> None:
    print("crown matrices J_n - I_n: partition vs cover depth\n")
    print(f"{'n':>3} {'partition':>10} {'cover':>6} {'Sperner bound':>14}")
    for n in range(3, 8):
        matrix = BinaryMatrix.identity(n).complement()
        partition = sap_solve(matrix, trials=16, seed=0, time_budget=60)
        cover = minimum_cover(matrix, trials=16, seed=0, time_budget=60)
        assert partition.proved_optimal and cover.proved_optimal
        print(
            f"{n:>3} {partition.depth:>10} {cover.depth:>6} "
            f"{sperner_bound(n):>14}"
        )

    n = 6
    matrix = BinaryMatrix.identity(n).complement()
    partition = sap_solve(matrix, trials=16, seed=0).partition
    cover = minimum_cover(matrix, trials=16, seed=0, time_budget=60).cover
    print(f"\nJ_{n} - I_{n}: partition ({partition.depth} rectangles) vs "
          f"cover ({cover.depth} rectangles, overlaps allowed):")
    print(
        render_side_by_side(
            render_matrix(matrix),
            render_partition(partition),
            render_partition(cover),
        )
    )
    print(
        "\n'!' marks cells covered by several rectangles — legal in a "
        "cover,\nfatal for Rz addressing, which is why the paper solves "
        "partitions."
    )


if __name__ == "__main__":
    main()
