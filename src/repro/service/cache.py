"""Content-addressed result cache for the portfolio service.

Results are keyed on the matrix's canonical content hash — the row-mask
tuple plus the column count, exactly the fields :class:`BinaryMatrix`
hashes on — so any reconstruction of an equal matrix hits the same
entry.  The in-memory tier is a bounded LRU; a pluggable storage tier
persists entries across processes:

* :class:`JsonFileTier` — the original single-file JSON layout (one
  writer at a time; the whole cache rewritten per flush, atomically);
* :class:`repro.server.shards.ShardedDiskTier` — hash-prefix shard
  files with ``fcntl`` locking and merge-on-write, safe for concurrent
  runners sharing one cache directory (``ResultCache.sharded``).

Both tiers write through an atomic tempfile + ``os.replace``, so a
crash mid-flush can never leave a torn cache file.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Set, Union

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import SolverError
from repro.utils.fileio import atomic_write_json
from repro.service.portfolio import (
    PortfolioResult,
    result_from_dict,
    result_to_dict,
)

CACHE_FORMAT_VERSION = 1


def matrix_key(matrix: BinaryMatrix, context: str = "") -> str:
    """Canonical content hash of a matrix (hex SHA-256).

    Equal matrices — including ones rebuilt from strings, numpy arrays,
    or cells — produce equal keys; the column count is included so a
    matrix and its zero-padded widening never collide.  ``context``
    folds the solving configuration (members, seed, budgets) into the
    key so results computed under different configurations never shadow
    each other — see :func:`repro.service.batch.solve_context`.
    """
    digest = hashlib.sha256()
    digest.update(f"{matrix.num_cols}:".encode("ascii"))
    for row in matrix.row_masks:
        digest.update(f"{row:x},".encode("ascii"))
    if context:
        digest.update(b"|")
        digest.update(context.encode("utf-8"))
    return digest.hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    """Hits served by the storage tier (subset of ``hits``)."""
    quarantines: int = 0
    """Corrupt disk files moved aside (see ``server/shards.py``)."""
    store_evictions: int = 0
    """Entries the disk tier's GC removed (TTL expiry or cap pressure)."""
    gc_runs: int = 0
    """GC/compaction passes this tier has run (see ``server/store_gc.py``)."""
    integrity_failures: int = 0
    """Entries whose stored content hash no longer matched on read."""
    bytes_used: int = 0
    """Approximate payload bytes on disk (index-backed; sharded tier only)."""

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "quarantines": self.quarantines,
            "store_evictions": self.store_evictions,
            "gc_runs": self.gc_runs,
            "integrity_failures": self.integrity_failures,
            "bytes_used": self.bytes_used,
        }


class CacheStorage:
    """Storage-tier protocol for :class:`ResultCache`.

    ``load`` seeds the memory tier at open (may return nothing for
    read-through tiers); ``get`` fetches one entry on a memory miss;
    ``store`` persists entries at flush (``dirty`` names the keys
    written since the last flush, letting merge-style tiers touch only
    what changed).  ``location`` is where the data lives, for logs.
    """

    location: Optional[Path] = None

    def load(self) -> Dict[str, Dict[str, Any]]:
        return {}

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return None

    def store(
        self,
        entries: Mapping[str, Dict[str, Any]],
        dirty: Optional[Set[str]] = None,
    ) -> None:
        raise NotImplementedError


class JsonFileTier(CacheStorage):
    """The original single-file JSON disk tier.

    Entries are serialized in LRU order (least recent first), so a
    reload reconstructs the same recency order and capacity-driven
    evictions after a round trip still drop the least recently used
    entry.  The whole file is rewritten per store — atomically, via
    tempfile + ``os.replace`` — which makes this tier safe against
    crashes but still last-writer-wins across processes; use the
    sharded tier when several runners share one cache.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.quarantined = 0

    @property
    def location(self) -> Path:  # type: ignore[override]
        return self.path

    def load(self) -> Dict[str, Dict[str, Any]]:
        if not self.path.exists():
            return {}
        try:
            with open(self.path) as stream:
                payload = json.load(stream)
        except json.JSONDecodeError as exc:
            # Torn/truncated JSON is damage, not data: move it aside
            # and start cold instead of failing every solve.  A wrong
            # *type* below still raises — that is a healthy file the
            # caller pointed us at by mistake, not corruption.
            from repro.server.shards import quarantine_file

            if quarantine_file(self.path, f"bad JSON: {exc}") is not None:
                self.quarantined += 1
            return {}
        except OSError as exc:
            raise SolverError(
                f"cannot load cache {self.path}: {exc}"
            ) from exc
        if payload.get("type") != "portfolio_cache":
            raise SolverError(
                f"{self.path} is not a portfolio cache "
                f"(type={payload.get('type')!r})"
            )
        if payload.get("version", 0) > CACHE_FORMAT_VERSION:
            raise SolverError(
                f"cache {self.path} has version {payload['version']}, "
                f"newer than supported {CACHE_FORMAT_VERSION}"
            )
        return dict(payload["entries"])

    def store(
        self,
        entries: Mapping[str, Dict[str, Any]],
        dirty: Optional[Set[str]] = None,
    ) -> None:
        atomic_write_json(
            self.path,
            {
                "version": CACHE_FORMAT_VERSION,
                "type": "portfolio_cache",
                "entries": dict(entries),
            },
        )


class ResultCache:
    """LRU cache of :class:`PortfolioResult` keyed by matrix content.

    Entries are stored as JSON-able dicts, so a hit reconstructs a
    fresh result object (flagged ``from_cache=True``) and the storage
    tier round-trips losslessly.  ``capacity`` bounds the in-memory
    tier; eviction drops the least recently used entry (evicted dirty
    entries are retained off to the side until the next flush, so a
    small memory tier cannot lose fresh results).
    """

    def __init__(
        self,
        capacity: int = 1024,
        *,
        path: Optional[Union[str, Path]] = None,
        storage: Optional[CacheStorage] = None,
    ) -> None:
        if capacity < 1:
            raise SolverError(f"cache capacity must be >= 1, got {capacity}")
        if path is not None and storage is not None:
            raise SolverError("pass either path or storage, not both")
        if path is not None:
            storage = JsonFileTier(path)
        self.capacity = capacity
        self.storage = storage
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._dirty: Set[str] = set()
        self._evicted_dirty: Dict[str, Dict[str, Any]] = {}
        if self.storage is not None:
            for key, entry in self.storage.load().items():
                self._entries[key] = entry
            self._enforce_capacity()
            self._sync_quarantines()

    def _sync_quarantines(self) -> None:
        """Mirror the storage tier's lifecycle counters into the stats."""
        storage = self.storage
        if storage is None:
            return
        self.stats.quarantines = getattr(storage, "quarantined", 0)
        self.stats.store_evictions = getattr(storage, "store_evictions", 0)
        self.stats.gc_runs = getattr(storage, "gc_runs", 0)
        self.stats.integrity_failures = getattr(
            storage, "integrity_failures", 0
        )
        bytes_used = getattr(storage, "bytes_used", None)
        if callable(bytes_used):
            self.stats.bytes_used = bytes_used()

    def refresh_stats(self) -> CacheStats:
        """Stats with the storage tier's counters folded in (metrics
        endpoints call this rather than reading ``stats`` raw)."""
        self._sync_quarantines()
        return self.stats

    @classmethod
    def sharded(
        cls,
        root: Union[str, Path],
        *,
        capacity: int = 1024,
        prefix_len: int = 2,
        max_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
        ttl_seconds: Optional[float] = None,
    ) -> "ResultCache":
        """A cache over the concurrent-safe sharded disk tier.

        ``root`` may name an existing single-file JSON cache, which is
        migrated into a shard directory on first open.  Any of the cap
        arguments makes the store *bounded*: the limits persist in the
        store directory, and the write path triggers the journaled GC
        (``repro.server.store_gc``) whenever they are exceeded.  With
        none given, limits previously persisted for the store apply.
        """
        from repro.server.shards import ShardedDiskTier, StoreLimits

        limits = None
        if (
            max_bytes is not None
            or max_entries is not None
            or ttl_seconds is not None
        ):
            limits = StoreLimits(
                max_bytes=max_bytes,
                max_entries=max_entries,
                ttl_seconds=ttl_seconds,
            )
        return cls(
            capacity,
            storage=ShardedDiskTier(
                root, prefix_len=prefix_len, limits=limits
            ),
        )

    @property
    def path(self) -> Optional[Path]:
        """Where the storage tier persists entries (``None`` = memory only)."""
        return None if self.storage is None else self.storage.location

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, matrix: BinaryMatrix) -> bool:
        return matrix_key(matrix) in self._entries

    def get(
        self, matrix: BinaryMatrix, context: str = ""
    ) -> Optional[PortfolioResult]:
        return self.get_by_key(matrix_key(matrix, context))

    def get_by_key(self, key: str) -> Optional[PortfolioResult]:
        payload = self._entries.get(key)
        if payload is None and self.storage is not None:
            payload = self._evicted_dirty.get(key)
            if payload is None:
                payload = self.storage.get(key)
                self._sync_quarantines()
            if payload is not None:
                self.stats.disk_hits += 1
                self._insert(key, payload, dirty=False)
        if payload is None:
            self.stats.misses += 1
            return None
        if key in self._entries:
            self._entries.move_to_end(key)
        self.stats.hits += 1
        return result_from_dict(payload, from_cache=True)

    def put(
        self,
        matrix: BinaryMatrix,
        result: PortfolioResult,
        context: str = "",
    ) -> str:
        """Insert (or refresh) the entry for ``matrix``; returns its key."""
        key = matrix_key(matrix, context)
        self._insert(key, result_to_dict(result), dirty=True)
        return key

    def _insert(
        self, key: str, payload: Dict[str, Any], *, dirty: bool
    ) -> None:
        self._entries[key] = payload
        self._entries.move_to_end(key)
        if dirty:
            self._dirty.add(key)
            self._evicted_dirty.pop(key, None)
        self._enforce_capacity()

    def _enforce_capacity(self) -> None:
        while len(self._entries) > self.capacity:
            evicted_key, evicted_payload = self._entries.popitem(last=False)
            if evicted_key in self._dirty:
                self._dirty.discard(evicted_key)
                self._evicted_dirty[evicted_key] = evicted_payload
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self._dirty.clear()
        self._evicted_dirty.clear()

    # ------------------------------------------------------------------
    # Storage tier
    # ------------------------------------------------------------------
    def flush(self) -> Optional[Path]:
        """Persist entries to the storage tier (no-op without one)."""
        if self.storage is None:
            return None
        if self._evicted_dirty:
            combined: Dict[str, Dict[str, Any]] = dict(self._evicted_dirty)
            combined.update(self._entries)
            dirty = self._dirty | set(self._evicted_dirty)
        else:
            combined = self._entries
            dirty = set(self._dirty)
        self.storage.store(combined, dirty=dirty)
        self._dirty.clear()
        self._evicted_dirty.clear()
        self._sync_quarantines()
        return self.storage.location

    def __repr__(self) -> str:
        return (
            f"ResultCache({len(self._entries)}/{self.capacity} entries, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
