"""Content-addressed result cache for the portfolio service.

Results are keyed on the matrix's canonical content hash — the row-mask
tuple plus the column count, exactly the fields :class:`BinaryMatrix`
hashes on — so any reconstruction of an equal matrix hits the same
entry.  The in-memory tier is a bounded LRU; an optional JSON file
persists entries across processes (the batch runner flushes it after
every batch).
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import SolverError
from repro.service.portfolio import (
    PortfolioResult,
    result_from_dict,
    result_to_dict,
)

CACHE_FORMAT_VERSION = 1


def matrix_key(matrix: BinaryMatrix, context: str = "") -> str:
    """Canonical content hash of a matrix (hex SHA-256).

    Equal matrices — including ones rebuilt from strings, numpy arrays,
    or cells — produce equal keys; the column count is included so a
    matrix and its zero-padded widening never collide.  ``context``
    folds the solving configuration (members, seed, budgets) into the
    key so results computed under different configurations never shadow
    each other — see :func:`repro.service.batch.solve_context`.
    """
    digest = hashlib.sha256()
    digest.update(f"{matrix.num_cols}:".encode("ascii"))
    for row in matrix.row_masks:
        digest.update(f"{row:x},".encode("ascii"))
    if context:
        digest.update(b"|")
        digest.update(context.encode("utf-8"))
    return digest.hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class ResultCache:
    """LRU cache of :class:`PortfolioResult` keyed by matrix content.

    Entries are stored as JSON-able dicts, so a hit reconstructs a
    fresh result object (flagged ``from_cache=True``) and the disk tier
    round-trips losslessly.  ``capacity`` bounds the in-memory tier;
    eviction drops the least recently used entry.
    """

    def __init__(
        self,
        capacity: int = 1024,
        *,
        path: Optional[Union[str, Path]] = None,
    ) -> None:
        if capacity < 1:
            raise SolverError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.path = None if path is None else Path(path)
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        if self.path is not None and self.path.exists():
            self._load(self.path)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, matrix: BinaryMatrix) -> bool:
        return matrix_key(matrix) in self._entries

    def get(
        self, matrix: BinaryMatrix, context: str = ""
    ) -> Optional[PortfolioResult]:
        return self.get_by_key(matrix_key(matrix, context))

    def get_by_key(self, key: str) -> Optional[PortfolioResult]:
        payload = self._entries.get(key)
        if payload is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return result_from_dict(payload, from_cache=True)

    def put(
        self,
        matrix: BinaryMatrix,
        result: PortfolioResult,
        context: str = "",
    ) -> str:
        """Insert (or refresh) the entry for ``matrix``; returns its key."""
        key = matrix_key(matrix, context)
        self._entries[key] = result_to_dict(result)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return key

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------
    def flush(self) -> Optional[Path]:
        """Write all entries to ``path`` (no-op without a path).

        Entries are serialized in LRU order (least recent first) and
        ``sort_keys`` is off for them, so a reload reconstructs the
        same recency order and capacity-driven evictions after a round
        trip still drop the least recently used entry.
        """
        if self.path is None:
            return None
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "type": "portfolio_cache",
            "entries": dict(self._entries),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "w") as stream:
            json.dump(payload, stream, indent=2)
            stream.write("\n")
        return self.path

    def _load(self, path: Path) -> None:
        try:
            with open(path) as stream:
                payload = json.load(stream)
        except (OSError, json.JSONDecodeError) as exc:
            raise SolverError(f"cannot load cache {path}: {exc}") from exc
        if payload.get("type") != "portfolio_cache":
            raise SolverError(
                f"{path} is not a portfolio cache "
                f"(type={payload.get('type')!r})"
            )
        if payload.get("version", 0) > CACHE_FORMAT_VERSION:
            raise SolverError(
                f"cache {path} has version {payload['version']}, newer than "
                f"supported {CACHE_FORMAT_VERSION}"
            )
        for key, entry in payload["entries"].items():
            self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def __repr__(self) -> str:
        return (
            f"ResultCache({len(self._entries)}/{self.capacity} entries, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
