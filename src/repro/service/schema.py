"""The solver-configuration schema version.

One integer names the semantics of a configured portfolio solve: which
fields go into a cache key, how per-member seeds are derived, what the
race modes mean.  It is folded into every
:func:`repro.service.batch.solve_context` (and therefore into every
:class:`repro.service.cache.ResultCache` key) and recorded in every
scoreboard baseline (:mod:`repro.corpus.baseline`), so results computed
under one generation of solver semantics can never masquerade as
results of another:

* a cache written before a bump simply stops hitting — entries age out
  instead of serving stale depths as fresh wins;
* a baseline written before a bump is flagged by ``scoreboard diff``
  instead of being silently compared against incomparable runs.

Bump the version whenever solver behaviour changes in a way that makes
previously computed results incomparable: seed-derivation changes,
member-semantics changes, budget-accounting changes, default-portfolio
re-ordering.  Do NOT bump for pure performance work that leaves depths,
winners, and provenance identical.
"""

from __future__ import annotations

SOLVER_SCHEMA_VERSION = 2
"""Current generation of the solver-configuration schema.

Version 1 is the implicit pre-versioning era (contexts carried no
schema field); version 2 introduced explicit versioning alongside the
standing benchmark corpus and scoreboard baselines.
"""
