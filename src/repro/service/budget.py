"""Shared wall-clock accounting for portfolio members.

A :class:`PortfolioBudget` is one pot of wall-clock seconds that every
member of a portfolio race draws from.  Members are cooperative (the
solvers poll :class:`repro.utils.timing.Deadline` at convenient points),
so the budget hands each member the smaller of its per-member slice and
whatever remains of the total, and keeps a ledger of who spent what —
the ledger feeds the provenance records of
:mod:`repro.service.portfolio`.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.core.exceptions import SolverError
from repro.utils.timing import Deadline

BudgetLike = Union[None, int, float, "PortfolioBudget"]


class PortfolioBudget:
    """A pot of wall-clock seconds shared across portfolio members.

    ``total_seconds=None`` means unlimited; ``per_member_seconds`` caps
    any single member regardless of what remains in the pot.  The clock
    starts at construction, so build the budget immediately before the
    race it governs.
    """

    def __init__(
        self,
        total_seconds: Optional[float] = None,
        *,
        per_member_seconds: Optional[float] = None,
    ) -> None:
        for label, value in (
            ("total_seconds", total_seconds),
            ("per_member_seconds", per_member_seconds),
        ):
            if value is not None and value < 0:
                raise SolverError(f"{label} must be >= 0, got {value}")
        self.total_seconds = total_seconds
        self.per_member_seconds = per_member_seconds
        self.ledger: Dict[str, float] = {}
        self._deadline = Deadline(total_seconds)

    @classmethod
    def coerce(cls, value: BudgetLike) -> "PortfolioBudget":
        """Accept ``None`` (unlimited), bare seconds, or a ready budget."""
        if value is None:
            return cls()
        if isinstance(value, PortfolioBudget):
            return value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return cls(total_seconds=float(value))
        raise SolverError(
            f"cannot interpret {value!r} as a portfolio budget"
        )

    # ------------------------------------------------------------------
    def member_budget(self) -> Optional[float]:
        """Seconds the next member may spend (``None`` = unlimited)."""
        remaining = self._deadline.remaining()
        if remaining is None:
            return self.per_member_seconds
        if self.per_member_seconds is None:
            return remaining
        return min(remaining, self.per_member_seconds)

    def charge(self, member: str, seconds: float) -> None:
        """Record ``seconds`` spent by ``member`` in the ledger."""
        self.ledger[member] = self.ledger.get(member, 0.0) + seconds

    def spent(self) -> float:
        """Total seconds charged so far."""
        return sum(self.ledger.values())

    def remaining(self) -> Optional[float]:
        return self._deadline.remaining()

    def expired(self) -> bool:
        return self._deadline.expired()

    def __repr__(self) -> str:
        total = "inf" if self.total_seconds is None else f"{self.total_seconds:g}s"
        return (
            f"PortfolioBudget(total={total}, spent={self.spent():.3f}s, "
            f"members={len(self.ledger)})"
        )
