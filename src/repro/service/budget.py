"""Shared wall-clock accounting for portfolio members and tenants.

A :class:`PortfolioBudget` is one pot of wall-clock seconds that every
member of a portfolio race draws from.  Members are cooperative (the
solvers poll :class:`repro.utils.timing.Deadline` at convenient points),
so the budget hands each member the smaller of its per-member slice and
whatever remains of the total, and keeps a ledger of who spent what —
the ledger feeds the provenance records of
:mod:`repro.service.portfolio`.

:class:`QuotaWindow` reuses the same ledger idiom one level up: where a
``PortfolioBudget`` meters one race, a ``QuotaWindow`` meters one
*tenant* of the solve service across many races — a rolling window of
compute seconds that refills on a fixed cadence.  It is the accounting
substrate of :mod:`repro.server.tenancy`.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Union

from repro.core.exceptions import SolverError
from repro.utils.timing import Deadline

BudgetLike = Union[None, int, float, "PortfolioBudget"]


class PortfolioBudget:
    """A pot of wall-clock seconds shared across portfolio members.

    ``total_seconds=None`` means unlimited; ``per_member_seconds`` caps
    any single member regardless of what remains in the pot.  The clock
    starts at construction, so build the budget immediately before the
    race it governs.
    """

    def __init__(
        self,
        total_seconds: Optional[float] = None,
        *,
        per_member_seconds: Optional[float] = None,
    ) -> None:
        for label, value in (
            ("total_seconds", total_seconds),
            ("per_member_seconds", per_member_seconds),
        ):
            if value is not None and value < 0:
                raise SolverError(f"{label} must be >= 0, got {value}")
        self.total_seconds = total_seconds
        self.per_member_seconds = per_member_seconds
        self.ledger: Dict[str, float] = {}
        self._deadline = Deadline(total_seconds)

    @classmethod
    def coerce(cls, value: BudgetLike) -> "PortfolioBudget":
        """Accept ``None`` (unlimited), bare seconds, or a ready budget."""
        if value is None:
            return cls()
        if isinstance(value, PortfolioBudget):
            return value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return cls(total_seconds=float(value))
        raise SolverError(
            f"cannot interpret {value!r} as a portfolio budget"
        )

    # ------------------------------------------------------------------
    def member_budget(self) -> Optional[float]:
        """Seconds the next member may spend (``None`` = unlimited)."""
        remaining = self._deadline.remaining()
        if remaining is None:
            return self.per_member_seconds
        if self.per_member_seconds is None:
            return remaining
        return min(remaining, self.per_member_seconds)

    def charge(self, member: str, seconds: float) -> None:
        """Record ``seconds`` spent by ``member`` in the ledger."""
        self.ledger[member] = self.ledger.get(member, 0.0) + seconds

    def spent(self) -> float:
        """Total seconds charged so far."""
        return sum(self.ledger.values())

    def remaining(self) -> Optional[float]:
        return self._deadline.remaining()

    def expired(self) -> bool:
        return self._deadline.expired()

    def __repr__(self) -> str:
        total = "inf" if self.total_seconds is None else f"{self.total_seconds:g}s"
        return (
            f"PortfolioBudget(total={total}, spent={self.spent():.3f}s, "
            f"members={len(self.ledger)})"
        )


class QuotaWindow:
    """A rolling compute quota: N seconds of solving per window.

    Each window holds one fresh :class:`PortfolioBudget` used purely as
    a ledger — charges accumulate against it until the window's span of
    wall-clock time elapses, at which point the pot is replaced and the
    tenant starts spending from zero again.  ``quota_seconds=None``
    means unlimited (the ledger still accumulates, for metrics).

    The ``clock`` is injectable so tests can roll windows without
    sleeping.  A lifetime total survives window rolls; per-window spend
    does not.
    """

    def __init__(
        self,
        quota_seconds: Optional[float] = None,
        *,
        window_seconds: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if quota_seconds is not None and quota_seconds < 0:
            raise SolverError(
                f"quota_seconds must be >= 0, got {quota_seconds}"
            )
        if window_seconds <= 0:
            raise SolverError(
                f"window_seconds must be > 0, got {window_seconds}"
            )
        self.quota_seconds = quota_seconds
        self.window_seconds = window_seconds
        self._clock = clock
        self._window_began = clock()
        self._pot = PortfolioBudget()
        self.lifetime_seconds = 0.0
        self.lifetime_charges = 0

    def _roll(self) -> None:
        now = self._clock()
        if now - self._window_began >= self.window_seconds:
            self._window_began = now
            self._pot = PortfolioBudget()

    def charge(self, label: str, seconds: float) -> None:
        """Record ``seconds`` of compute against the current window."""
        self._roll()
        self._pot.charge(label, seconds)
        self.lifetime_seconds += seconds
        self.lifetime_charges += 1

    def spent(self) -> float:
        """Seconds charged inside the current window."""
        self._roll()
        return self._pot.spent()

    def remaining(self) -> Optional[float]:
        """Seconds left in the window (``None`` = unlimited)."""
        if self.quota_seconds is None:
            return None
        return max(0.0, self.quota_seconds - self.spent())

    def exhausted(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def retry_after(self) -> float:
        """Seconds until the window rolls and the quota refills."""
        self._roll()
        return max(
            0.0,
            self._window_began + self.window_seconds - self._clock(),
        )

    def as_dict(self) -> Dict[str, Optional[float]]:
        return {
            "quota_seconds": self.quota_seconds,
            "window_seconds": self.window_seconds,
            "window_spent": self.spent(),
            "window_remaining": self.remaining(),
            "lifetime_seconds": self.lifetime_seconds,
        }

    def __repr__(self) -> str:
        quota = (
            "inf" if self.quota_seconds is None else f"{self.quota_seconds:g}s"
        )
        return (
            f"QuotaWindow(quota={quota}/{self.window_seconds:g}s, "
            f"spent={self.spent():.3f}s)"
        )
