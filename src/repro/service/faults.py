"""Process-wide fault-injection harness for the serving stack.

Production resilience claims are worthless untested: "survives worker
death" means nothing until a test actually kills a worker mid-batch and
watches the batch finish.  This module is the one switchboard those
tests flip.  A :class:`FaultPlan` names the faults to inject; the
serving layers (:mod:`repro.service.batch`,
:mod:`repro.server.engine`, :mod:`repro.server.shards`,
:mod:`repro.server.gateway`) call the tiny seam functions below at
their failure-relevant points, and the seams fire only while a plan is
installed.

Seams are **disabled by default** and designed to cost one global read
plus a ``None`` check on the hot path — cheap enough to live in
production code permanently (``benchmarks/bench_faults.py`` holds the
overhead line).  Plans install three ways:

* :func:`install` / :func:`clear` — programmatic, process-wide;
* :func:`injected` — a context manager that restores the previous plan
  (what the chaos tests use);
* the ``REPRO_FAULTS`` environment variable — a JSON object of plan
  fields, parsed lazily on first seam check in each process.  Because
  :func:`install` mirrors the plan into ``os.environ``, spawned
  executor workers (which share no globals with the parent) see the
  same plan; forked workers inherit the parent's global directly.

One-shot faults (worker kill, shard corruption) are *disarmed* by the
recovery path that handles them (:func:`disarm` rewrites both the
global and the env mirror), so a respawned worker does not die again on
the retried case — recovery tests terminate instead of crash-looping.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Iterator, Optional, Sequence, Union

from repro.core.exceptions import SolverError

FAULTS_ENV = "REPRO_FAULTS"
"""Environment mirror of the installed plan (crosses spawn boundaries)."""

WORKER_KILL_EXIT_CODE = 87
"""Exit status of a fault-killed worker (distinctive in pool autopsies)."""


@dataclass
class FaultPlan:
    """Which faults to inject, and where.

    ``kill_worker_on_case`` names one batch case — by id, or by index
    into the submitted batch (resolved to an id by
    :func:`resolve_kill_case` before dispatch) — whose executor worker
    ``os._exit`` s mid-solve.  ``corrupt_shard_on_write`` truncates the
    next cache shard written, leaving a torn JSON file on disk.
    ``drop_connection_after_events`` makes a server front abort each
    connection after streaming that many event lines (recurring, so it
    also exercises repeated client retries).  ``delay_seconds`` sleeps
    at every :func:`delay` seam — or only at ``delay_site`` when set —
    stretching windows that races and timeouts hide in.

    The cache-store lifecycle seams: ``crash_gc_at`` names a GC journal
    state (``planned`` / ``mid-sweep`` / ``committed``) at which the GC
    pass dies abruptly via ``os._exit`` — indistinguishable from
    ``kill -9`` as far as on-disk state goes, so it fires in whatever
    process runs GC (chaos tests arm it only in subprocesses via
    ``REPRO_FAULTS``).  ``corrupt_index_on_write`` truncates the next
    cache-index write (one-shot), and ``ttl_skew_seconds`` shifts the
    wall clock the TTL math sees, simulating NTP jumps between the
    writer that stamped an entry and the GC judging its age.
    """

    kill_worker_on_case: Optional[Union[int, str]] = None
    corrupt_shard_on_write: bool = False
    drop_connection_after_events: Optional[int] = None
    delay_seconds: float = 0.0
    delay_site: Optional[str] = None
    crash_gc_at: Optional[str] = None
    corrupt_index_on_write: bool = False
    ttl_skew_seconds: float = 0.0

    def enabled(self) -> bool:
        return (
            self.kill_worker_on_case is not None
            or self.corrupt_shard_on_write
            or self.drop_connection_after_events is not None
            or self.delay_seconds > 0.0
            or self.crash_gc_at is not None
            or self.corrupt_index_on_write
            or self.ttl_skew_seconds != 0.0
        )

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if value != spec.default:
                payload[spec.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise SolverError(
                f"fault plan must be an object, got {payload!r}"
            )
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SolverError(
                f"fault plan has unknown fields {unknown} "
                f"(known: {sorted(known)})"
            )
        return cls(**payload)


# ----------------------------------------------------------------------
# Installation
# ----------------------------------------------------------------------
_PLAN: Optional[FaultPlan] = None
_ENV_LOADED = False


def _sync_env(plan: Optional[FaultPlan]) -> None:
    """Mirror the plan into ``os.environ`` for spawn-started workers."""
    if plan is None or not plan.enabled():
        os.environ.pop(FAULTS_ENV, None)
    else:
        os.environ[FAULTS_ENV] = json.dumps(plan.as_dict(), sort_keys=True)


def install(plan: FaultPlan) -> None:
    """Install ``plan`` process-wide (and mirror it into the env)."""
    global _PLAN, _ENV_LOADED
    _PLAN = plan
    _ENV_LOADED = True
    _sync_env(plan)


def clear() -> None:
    """Remove any installed plan (and its env mirror)."""
    global _PLAN, _ENV_LOADED
    _PLAN = None
    _ENV_LOADED = True
    _sync_env(None)


def active() -> Optional[FaultPlan]:
    """The installed plan, loading the env mirror once per process."""
    global _PLAN, _ENV_LOADED
    if _PLAN is None and not _ENV_LOADED:
        _ENV_LOADED = True
        raw = os.environ.get(FAULTS_ENV)
        if raw:
            try:
                _PLAN = FaultPlan.from_dict(json.loads(raw))
            except (json.JSONDecodeError, SolverError, TypeError) as exc:
                raise SolverError(
                    f"bad {FAULTS_ENV} value {raw!r}: {exc}"
                ) from exc
    return _PLAN


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the block, restoring the previous state."""
    previous = active()
    install(plan)
    try:
        yield plan
    finally:
        if previous is None:
            clear()
        else:
            install(previous)


def disarm(field_name: str) -> None:
    """Switch one fault off in the active plan (recovery paths call this
    so the retried work does not hit the same injected fault forever)."""
    plan = active()
    if plan is None:
        return
    defaults = {spec.name: spec.default for spec in fields(FaultPlan)}
    if field_name not in defaults:
        raise SolverError(f"unknown fault field {field_name!r}")
    install(replace(plan, **{field_name: defaults[field_name]}))


# ----------------------------------------------------------------------
# Seams (each is a no-op costing one global read while disabled)
# ----------------------------------------------------------------------
def resolve_kill_case(case_ids: Sequence[str]) -> None:
    """Normalize an index-addressed kill target to a concrete case id.

    Called by the dispatcher (parent process) before fanning a batch
    out, so workers only ever match on ids — an index would be
    meaningless inside a worker that sees one case at a time.
    """
    plan = active()
    if plan is None or not isinstance(plan.kill_worker_on_case, int):
        return
    index = plan.kill_worker_on_case
    if 0 <= index < len(case_ids):
        install(replace(plan, kill_worker_on_case=case_ids[index]))
    else:
        disarm("kill_worker_on_case")


def maybe_kill_worker(case_id: str) -> None:
    """Die abruptly (``os._exit``) if the plan targets this case.

    Fires only inside executor *worker* processes — the in-process
    ``workers=1`` path must never take down the caller itself.
    """
    plan = active()
    if plan is None or plan.kill_worker_on_case != case_id:
        return
    if multiprocessing.parent_process() is None:
        return  # main process; simulated crashes are for workers only
    os._exit(WORKER_KILL_EXIT_CODE)


def should_corrupt_shard_write() -> bool:
    """One-shot: corrupt the next shard write, then disarm in-process."""
    plan = active()
    if plan is None or not plan.corrupt_shard_on_write:
        return False
    disarm("corrupt_shard_on_write")
    return True


def maybe_crash_gc(state: str) -> None:
    """Die abruptly when the GC pass reaches the named journal state.

    ``os._exit`` skips every ``finally`` and ``atexit`` — the on-disk
    state is exactly what a SIGKILL at that instant would leave.  This
    fires in the *calling* process (GC usually runs in a dedicated
    ``python -m repro cache gc`` invocation), so chaos tests arm it via
    the ``REPRO_FAULTS`` env of a subprocess, never in-process.
    """
    plan = active()
    if plan is None or plan.crash_gc_at != state:
        return
    os._exit(WORKER_KILL_EXIT_CODE)


def should_corrupt_index_write() -> bool:
    """One-shot: corrupt the next cache-index write, then disarm."""
    plan = active()
    if plan is None or not plan.corrupt_index_on_write:
        return False
    disarm("corrupt_index_on_write")
    return True


def ttl_clock_skew() -> float:
    """Seconds to shift the wall clock the TTL/eviction math reads."""
    plan = active()
    if plan is None:
        return 0.0
    return plan.ttl_skew_seconds


def should_drop_connection(events_sent: int) -> bool:
    """Recurring: abort a server connection after N streamed events."""
    plan = active()
    if plan is None or plan.drop_connection_after_events is None:
        return False
    return events_sent >= plan.drop_connection_after_events


def delay(site: str) -> None:
    """Sleep at a named seam (all sites, or only ``delay_site``)."""
    plan = active()
    if plan is None or plan.delay_seconds <= 0.0:
        return
    if plan.delay_site is not None and plan.delay_site != site:
        return
    time.sleep(plan.delay_seconds)
