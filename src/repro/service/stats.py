"""Per-solver win accounting shared by the server fronts and the scoreboard.

The daemon and gateway ``metrics`` ops report which portfolio member
wins how often (:meth:`repro.server.engine.AsyncSolveEngine.stats`);
the corpus scoreboard reports the same thing for an offline corpus run.
Both feed one counter class so the two surfaces can never drift apart
in shape or semantics: a *win* is one non-cached solve whose resolved
``winner`` is the member in question (cache hits replay an old verdict
and are deliberately not re-counted).
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class WinTally:
    """Counts solves and per-member wins; reports rates.

    The mutation surface is tiny on purpose — :meth:`record` for a raw
    winner name, :meth:`record_result` for a
    :class:`repro.service.portfolio.PortfolioResult` (skipping cache
    hits), :meth:`merge` to fold one tally into another (e.g. a
    scoreboard run into a server's lifetime counters).
    """

    def __init__(self) -> None:
        self.solved = 0
        self._wins: Dict[str, int] = {}

    def record(self, winner: str) -> None:
        """Count one fresh solve won by ``winner``."""
        self.solved += 1
        self._wins[winner] = self._wins.get(winner, 0) + 1

    def record_result(self, result: Any) -> None:
        """Count a portfolio result, ignoring cache replays."""
        if getattr(result, "from_cache", False):
            return
        self.record(result.winner)

    def merge(self, other: "WinTally") -> None:
        self.solved += other.solved
        for name, count in other._wins.items():
            self._wins[name] = self._wins.get(name, 0) + count

    # ------------------------------------------------------------------
    def wins(self) -> Dict[str, int]:
        """Per-member win counts, name-sorted (stable report order)."""
        return dict(sorted(self._wins.items()))

    def win_rates(self) -> Dict[str, float]:
        """Wins as a fraction of fresh solves (empty before any solve)."""
        if not self.solved:
            return {}
        return {
            name: count / self.solved
            for name, count in sorted(self._wins.items())
        }

    def win_rate(self, name: str) -> Optional[float]:
        if not self.solved:
            return None
        return self._wins.get(name, 0) / self.solved

    def as_dict(self) -> Dict[str, Any]:
        """The wire shape both the ``metrics`` ops and the scoreboard emit."""
        return {
            "solved": self.solved,
            "wins": self.wins(),
            "win_rates": self.win_rates(),
        }

    def __repr__(self) -> str:
        return f"WinTally(solved={self.solved}, wins={self.wins()})"
