"""Portfolio solver service: batched, parallel, cached EBMF solving.

The layer between the solver library and traffic: per-instance solver
races with provenance (:mod:`portfolio`), batch fan-out over a process
pool (:mod:`batch`), a content-addressed result cache (:mod:`cache`),
shared wall-clock accounting (:mod:`budget`), the solver-config schema
version that keys caches and baselines (:mod:`schema`), and per-solver
win accounting shared with the server metrics ops (:mod:`stats`).
"""

from repro.service.batch import (
    BatchItem,
    BatchRecord,
    as_batch_items,
    instance_seed,
    solve_batch,
    solve_context,
)
from repro.service.budget import PortfolioBudget
from repro.service.cache import (
    CacheStats,
    CacheStorage,
    JsonFileTier,
    ResultCache,
    matrix_key,
)
from repro.service.schema import SOLVER_SCHEMA_VERSION
from repro.service.stats import WinTally
from repro.service.portfolio import (
    DEFAULT_PORTFOLIO,
    EXACT_MEMBERS,
    RACE_MODES,
    MemberOutcome,
    PortfolioResult,
    is_exact_member,
    member_seed,
    result_from_dict,
    result_to_dict,
    run_member,
    solve_portfolio,
    validate_members,
)

__all__ = [
    "BatchItem",
    "BatchRecord",
    "CacheStats",
    "CacheStorage",
    "DEFAULT_PORTFOLIO",
    "EXACT_MEMBERS",
    "JsonFileTier",
    "MemberOutcome",
    "PortfolioBudget",
    "PortfolioResult",
    "RACE_MODES",
    "ResultCache",
    "SOLVER_SCHEMA_VERSION",
    "WinTally",
    "as_batch_items",
    "instance_seed",
    "is_exact_member",
    "matrix_key",
    "member_seed",
    "result_from_dict",
    "result_to_dict",
    "run_member",
    "solve_batch",
    "solve_context",
    "solve_portfolio",
    "validate_members",
]
