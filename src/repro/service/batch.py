"""Batched portfolio solving over a process pool.

``solve_batch`` fans a list of instances across ``workers`` processes,
checking the result cache first and writing fresh results back.  Every
instance gets a root seed derived from the batch seed and its own
``case_id`` — never from its position or from which worker picked it
up — so a batch produces identical provenance for any pool size,
including the in-process ``workers=1`` path.

Workers exchange plain picklable payloads (row masks in, result dicts
out) rather than live objects, which keeps the pool start-method
agnostic and the records trivially JSON-able.

Each worker slot is its own single-process executor (a bulkhead): when
a worker dies — OOM kill, segfaulting native dep, fault injection —
only the case that worker was solving is lost.  The slot is respawned,
the lost case re-dispatched, and its record marked
``status="retried"``; every other case's provenance is untouched.  A
case that kills its worker twice is a poison pill and fails the batch
with a :class:`SolverError` naming it.
"""

from __future__ import annotations

import concurrent.futures
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import SolverError
from repro.service import faults
from repro.service.budget import BudgetLike, PortfolioBudget
from repro.service.cache import ResultCache, matrix_key
from repro.service.schema import SOLVER_SCHEMA_VERSION
from repro.service.portfolio import (
    DEFAULT_PORTFOLIO,
    RACE_MODES,
    PortfolioResult,
    result_from_dict,
    result_to_dict,
    solve_portfolio,
    validate_members,
)
from repro.utils.rng import spawn_seeds


@dataclass(frozen=True)
class BatchItem:
    """One instance of a batch: an id, a matrix, optional member override."""

    case_id: str
    matrix: BinaryMatrix
    members: Optional[Tuple[str, ...]] = None


CaseLike = Union[BatchItem, BinaryMatrix, Tuple[str, BinaryMatrix], Any]


def as_batch_items(
    cases: Sequence[CaseLike],
    *,
    members: Optional[Sequence[str]] = None,
) -> List[BatchItem]:
    """Normalize heterogeneous case inputs into :class:`BatchItem` s.

    Accepts ready items, bare matrices (ids are synthesized from the
    position), ``(case_id, matrix)`` pairs, and anything with
    ``case_id``/``matrix`` attributes (e.g.
    :class:`repro.benchgen.suite.BenchmarkCase`).
    """
    override = None if members is None else tuple(members)
    items: List[BatchItem] = []
    for index, case in enumerate(cases):
        if isinstance(case, BatchItem):
            item = case
            if override is not None and item.members is None:
                item = BatchItem(item.case_id, item.matrix, override)
        elif isinstance(case, BinaryMatrix):
            item = BatchItem(f"case-{index:04d}", case, override)
        elif isinstance(case, tuple) and len(case) == 2:
            item = BatchItem(str(case[0]), case[1], override)
        elif hasattr(case, "case_id") and hasattr(case, "matrix"):
            item = BatchItem(case.case_id, case.matrix, override)
        else:
            raise SolverError(f"cannot interpret {case!r} as a batch item")
        items.append(item)
    seen: Dict[str, int] = {}
    for item in items:
        seen[item.case_id] = seen.get(item.case_id, 0) + 1
    duplicates = sorted(cid for cid, count in seen.items() if count > 1)
    if duplicates:
        raise SolverError(
            f"duplicate case ids in batch: {duplicates[:5]} "
            "(per-instance seeding requires unique ids)"
        )
    return items


def instance_seed(batch_seed: Optional[int], case_id: str) -> Optional[int]:
    """Root seed for one instance; independent of batch order and pool."""
    if batch_seed is None:
        return None
    return spawn_seeds(batch_seed, 1, salt=f"batch/{case_id}")[0]


def solve_context(
    members: Tuple[str, ...],
    seed: Optional[int],
    budget_total: Optional[float],
    budget_per_member: Optional[float],
    stop_when_optimal: bool,
    race: str = "sequential",
) -> str:
    """Cache-key context for one configured solve.

    Folded into :func:`repro.service.cache.matrix_key` so a cache can
    never serve a result computed under a different member set, seed,
    or budget for the same matrix content.  The context leads with
    :data:`~repro.service.schema.SOLVER_SCHEMA_VERSION`, so bumping the
    schema retires every previously cached result at once — stale
    entries stop hitting instead of masquerading as fresh scoreboard
    wins.  Concurrent racing gets its own key space (per-member records
    legitimately differ between race modes).
    """
    context = (
        f"schema={SOLVER_SCHEMA_VERSION}"
        f"|members={','.join(members)}|seed={seed}|total={budget_total}"
        f"|per={budget_per_member}|stop={stop_when_optimal}"
    )
    if race != "sequential":
        context += f"|race={race}"
    return context


STATUS_OK = "ok"
STATUS_RETRIED = "retried"

WORKER_CRASHED = "worker_crashed"
"""Structured fault-event kind emitted when an executor worker dies."""

FaultCallback = Callable[[Dict[str, Any]], None]
"""Hook invoked with each structured fault event (``worker_crashed``)."""


@dataclass
class BatchRecord:
    """One instance's result plus batch-level provenance.

    ``status`` records how the result was obtained: ``"ok"`` for the
    normal path, ``"retried"`` when the case was re-dispatched after
    its worker died.  The solve content is identical either way (same
    per-case seed); the mark exists so callers can see which results
    crossed a crash boundary.
    """

    case_id: str
    key: str
    result: PortfolioResult
    status: str = STATUS_OK

    @property
    def from_cache(self) -> bool:
        return self.result.from_cache

    @property
    def depth(self) -> int:
        return self.result.depth

    def provenance(self, *, include_timing: bool = True) -> Dict[str, Any]:
        payload = self.result.provenance(include_timing=include_timing)
        payload["case_id"] = self.case_id
        payload["key"] = self.key
        if self.status != STATUS_OK:
            # Conditional so fault-free provenance stays byte-identical
            # to every artifact written before this field existed.
            payload["status"] = self.status
        return payload


# ----------------------------------------------------------------------
# Worker side (must be module-level for pickling)
# ----------------------------------------------------------------------
def _solve_payload(
    payload: Tuple[
        str,  # case_id
        Tuple[int, ...],  # row masks
        int,  # num_cols
        Tuple[str, ...],  # members
        Optional[int],  # instance seed
        Optional[float],  # per-instance budget (seconds)
        Optional[float],  # per-member budget (seconds)
        bool,  # stop_when_optimal
        str,  # race mode
    ],
    on_member: Optional[Any] = None,
) -> Tuple[str, Dict[str, Any]]:
    (
        case_id,
        row_masks,
        num_cols,
        members,
        seed,
        total,
        per_member,
        stop,
        race,
    ) = payload
    # Fault seams: no-ops unless a FaultPlan is installed (chaos tests).
    faults.maybe_kill_worker(case_id)
    faults.delay("worker.solve")
    matrix = BinaryMatrix(row_masks, num_cols)
    result = solve_portfolio(
        matrix,
        members=members,
        seed=seed,
        budget=PortfolioBudget(total, per_member_seconds=per_member),
        stop_when_optimal=stop,
        race=race,
        on_member=on_member,
    )
    return case_id, result_to_dict(result)


def _solve_payload_streaming(
    payload: Tuple[Any, ...],
    events: Any,
    tag: str,
) -> Tuple[str, Dict[str, Any]]:
    """:func:`_solve_payload` plus live member events on a shared queue.

    ``events`` is a ``multiprocessing.Manager`` queue owned by
    :class:`repro.server.engine.AsyncSolveEngine`; each member outcome
    is posted as ``("member", tag, outcome_dict)`` the moment it lands,
    and a final ``("eof", tag, None)`` marker promises the parent that
    no more member events for this solve are in flight — the engine
    holds the terminal ``done`` event until it sees the marker, so
    member events can never arrive after their case's terminal event.
    ``tag`` (not ``case_id``) routes events, so concurrent streams that
    reuse case ids cannot cross wires.  Queue failures are swallowed:
    a parent that went away must not kill a solve already paid for.
    """

    def on_member(outcome: Any) -> None:
        try:
            events.put(("member", tag, outcome.as_dict()))
        # A vanished parent's queue must not kill a solve already paid
        # for (see docstring).
        # repro-lint: disable=REP007 (vanished parent queue)
        except Exception:
            pass

    try:
        return _solve_payload(payload, on_member=on_member)
    finally:
        try:
            events.put(("eof", tag, None))
        # Same: the parent may be gone; the result still returns
        # through the executor.
        # repro-lint: disable=REP007 (vanished parent queue)
        except Exception:
            pass


# ----------------------------------------------------------------------
# Crash-recovering dispatch
# ----------------------------------------------------------------------
MAX_DISPATCHES_PER_CASE = 2
"""A case may crash its worker once and be retried; a second crash is
a poison pill and fails the batch."""


def _fresh_slot() -> concurrent.futures.ProcessPoolExecutor:
    """One bulkhead: a single-worker executor, default (fork) context.

    Single-worker on purpose — ``BrokenProcessPool`` poisons the whole
    executor it strikes, so one executor per worker slot confines a
    crash to exactly the case that worker was running instead of
    failing every in-flight future on a shared pool.
    """
    return concurrent.futures.ProcessPoolExecutor(max_workers=1)


def _solve_pending_with_recovery(
    pending: Sequence[Tuple[Any, ...]],
    workers: int,
    on_fault: Optional[FaultCallback],
) -> Tuple[Dict[str, Dict[str, Any]], Set[str]]:
    """Run payloads over ``workers`` bulkhead slots, surviving crashes.

    Returns ``(case_id -> result dict, case_ids retried)``.  A dead
    worker (kill -9, OOM, fault injection) is detected as
    ``BrokenProcessPool`` on its slot; the slot is respawned, the lost
    payload re-queued, and a structured ``worker_crashed`` event handed
    to ``on_fault``.  Ordinary solver exceptions propagate unchanged —
    they are bugs to surface, not infrastructure faults to absorb.
    """
    results: Dict[str, Dict[str, Any]] = {}
    retried: Set[str] = set()
    queue: "deque[Tuple[Any, ...]]" = deque(pending)
    slot_count = min(workers, len(pending))
    slots: List[concurrent.futures.ProcessPoolExecutor] = [
        _fresh_slot() for _ in range(slot_count)
    ]
    busy = [False] * slot_count
    in_flight: Dict[
        concurrent.futures.Future, Tuple[int, Tuple[Any, ...]]
    ] = {}
    dispatches: Dict[str, int] = {}

    def top_up() -> None:
        for index in range(slot_count):
            if not busy[index] and queue:
                payload = queue.popleft()
                dispatches[payload[0]] = dispatches.get(payload[0], 0) + 1
                in_flight[slots[index].submit(_solve_payload, payload)] = (
                    index,
                    payload,
                )
                busy[index] = True

    try:
        top_up()
        while in_flight:
            done, _ = concurrent.futures.wait(
                in_flight, return_when=concurrent.futures.FIRST_COMPLETED
            )
            for future in done:
                index, payload = in_flight.pop(future)
                busy[index] = False
                case_id = payload[0]
                try:
                    finished_id, result_dict = future.result()
                except concurrent.futures.process.BrokenProcessPool:
                    # The worker died under this case.  Respawn the
                    # slot, disarm any injected one-shot kill so the
                    # retry cannot die the same way, and re-dispatch.
                    slots[index].shutdown(wait=False)
                    slots[index] = _fresh_slot()
                    faults.disarm("kill_worker_on_case")
                    event = {
                        "event": WORKER_CRASHED,
                        "case_id": case_id,
                        "dispatches": dispatches[case_id],
                        "will_retry": (
                            dispatches[case_id] < MAX_DISPATCHES_PER_CASE
                        ),
                    }
                    if on_fault is not None:
                        on_fault(event)
                    if not event["will_retry"]:
                        raise SolverError(
                            f"case {case_id!r} crashed its worker "
                            f"{dispatches[case_id]} times; giving up on "
                            "the batch (poison instance?)"
                        )
                    retried.add(case_id)
                    # Re-dispatch on the *respawned* slot, not the queue:
                    # sibling slots hold workers forked while the kill
                    # plan was still armed (fork children never see the
                    # parent's disarm), so only the fresh worker is
                    # guaranteed not to die on this case again.
                    dispatches[case_id] += 1
                    in_flight[
                        slots[index].submit(_solve_payload, payload)
                    ] = (index, payload)
                    busy[index] = True
                else:
                    results[finished_id] = result_dict
            top_up()
    finally:
        for slot in slots:
            slot.shutdown(wait=False)
    return results, retried


# ----------------------------------------------------------------------
def solve_batch(
    cases: Sequence[CaseLike],
    *,
    members: Sequence[str] = DEFAULT_PORTFOLIO,
    seed: Optional[int] = 2024,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    budget_per_instance: BudgetLike = None,
    budget_per_member: Optional[float] = None,
    stop_when_optimal: bool = True,
    race: str = "sequential",
    on_fault: Optional[FaultCallback] = None,
) -> List[BatchRecord]:
    """Solve every case with the portfolio, in input order.

    Cached instances are answered without touching the pool; misses are
    solved (in-process for ``workers=1``, otherwise over per-worker
    bulkhead process executors) and written back, and the cache's disk
    tier is flushed once at the end.  Records come back in input order
    regardless of completion order.  ``budget_per_instance`` caps one
    instance's whole race, ``budget_per_member`` one solver within it;
    ``race="concurrent"`` turns each instance's exact-backend slice
    into a cancel-the-losers thread race (see
    :mod:`repro.server.racing`).

    Worker death does not sink the batch: the lost case is re-solved on
    a respawned worker and its record comes back ``status="retried"``
    (same content — per-case seeding makes the retry byte-identical);
    ``on_fault`` receives a structured ``worker_crashed`` event per
    crash.  See ``docs/failure-semantics.md``.
    """
    if workers < 1:
        raise SolverError(f"workers must be >= 1, got {workers}")
    if race not in RACE_MODES:
        raise SolverError(f"race must be one of {RACE_MODES}, got {race!r}")
    budget_seconds: Optional[float]
    if budget_per_instance is None:
        budget_seconds = None
    else:
        pot = PortfolioBudget.coerce(budget_per_instance)
        budget_seconds = pot.total_seconds
        if budget_per_member is None:
            budget_per_member = pot.per_member_seconds
    items = as_batch_items(cases, members=members)
    # Fail on malformed specs here, not from inside a pool worker.
    for member_set in {
        item.members if item.members is not None else tuple(members)
        for item in items
    }:
        validate_members(member_set)

    def item_context(item: BatchItem) -> str:
        return solve_context(
            item.members if item.members is not None else tuple(members),
            instance_seed(seed, item.case_id),
            budget_seconds,
            budget_per_member,
            stop_when_optimal,
            race,
        )

    results: Dict[str, PortfolioResult] = {}
    keys: Dict[str, str] = {}
    pending: List[Tuple[Any, ...]] = []
    for item in items:
        keys[item.case_id] = matrix_key(item.matrix, item_context(item))
        cached = (
            None
            if cache is None
            else cache.get_by_key(keys[item.case_id])
        )
        if cached is not None:
            results[item.case_id] = cached
            continue
        pending.append(
            (
                item.case_id,
                item.matrix.row_masks,
                item.matrix.num_cols,
                item.members if item.members is not None else tuple(members),
                instance_seed(seed, item.case_id),
                budget_seconds,
                budget_per_member,
                stop_when_optimal,
                race,
            )
        )

    retried: Set[str] = set()
    if pending:
        faults.resolve_kill_case([payload[0] for payload in pending])
        if workers == 1 or len(pending) == 1:
            solved = [_solve_payload(payload) for payload in pending]
            for case_id, payload in solved:
                results[case_id] = result_from_dict(payload)
        else:
            solved_map, retried = _solve_pending_with_recovery(
                pending, workers, on_fault
            )
            for case_id, payload in solved_map.items():
                results[case_id] = result_from_dict(payload)

    if cache is not None:
        for item in items:
            result = results[item.case_id]
            if not result.from_cache:
                cache.put(item.matrix, result, item_context(item))
        cache.flush()

    return [
        BatchRecord(
            case_id=item.case_id,
            key=keys[item.case_id],
            result=results[item.case_id],
            status=(
                STATUS_RETRIED if item.case_id in retried else STATUS_OK
            ),
        )
        for item in items
    ]
