"""Portfolio solving: race heuristics and exact backends per instance.

The paper solves each EBMF instance with one solver at a time; a
production service wants the standard portfolio recipe instead (cf.
Rosenbaum 2013; Goubault de Brugiere & Martiel 2023): run the cheap
heuristics first, feed their best depth to the exact backends as an
upper hint, stop as soon as optimality is certified, and record *who*
won and *how long* everyone took.  :func:`solve_portfolio` is that
recipe for one matrix; :mod:`repro.service.batch` fans it over many.

Member specs
------------

* any heuristic spec the registry knows (``trivial``, ``packing:K``,
  ``packing_x:K``, ``packing_noupdate:K``, ``packing_sorted:K``,
  ``greedy:K``);
* ``sap`` / ``sap:K`` — the paper's Algorithm 1 (SMT descent, ``K``
  packing trials, default 32), proves optimality;
* ``branch_bound`` — the SMT-independent exact search, proves
  optimality (small matrices only; budget-limited).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.binary_matrix import BinaryMatrix
from repro.core.bounds import rank_lower_bound
from repro.core.exceptions import (
    BudgetExceeded,
    InvalidPartitionError,
    SolverError,
)
from repro.core.partition import Partition
from repro.io import partition_from_dict, partition_to_dict
from repro.sat.solver import SolveStatus
from repro.service.budget import BudgetLike, PortfolioBudget
from repro.solvers.branch_bound import binary_rank_branch_bound
from repro.solvers.registry import make_heuristic
from repro.solvers.sap import SapOptions, sap_solve
from repro.solvers.trivial import trivial_partition
from repro.utils.rng import spawn_seeds

EXACT_MEMBERS = ("sap", "branch_bound")
"""Member kinds that can certify optimality on their own."""

DEFAULT_PORTFOLIO = ("trivial", "packing:32", "sap")
"""Heuristics first (cheap upper bounds), then the exact closer."""

CERTIFIED_BY_RANK = "rank-bound"
"""Certifier label when the Eq. 3 lower bound alone proves optimality."""

RACE_MODES = ("sequential", "concurrent")
"""``sequential`` runs members one after another (the paper's recipe);
``concurrent`` races the exact backends in threads and cancels losers —
see :mod:`repro.server.racing`."""

RESULT_FORMAT_VERSION = 1

MemberCallback = Callable[["MemberOutcome"], None]
"""Hook invoked once per member outcome as it lands (streaming events)."""


def is_exact_member(name: str) -> bool:
    """True for members that can prove optimality themselves."""
    return name.partition(":")[0] in EXACT_MEMBERS


def validate_members(members: Sequence[str]) -> None:
    """Reject malformed member specs before any solving starts.

    A typo'd spec is a configuration error, not a solver failure — it
    must fail the whole call rather than be absorbed into a per-member
    ``error`` record and papered over by the trivial fallback.
    """
    if not members:
        raise SolverError("portfolio needs at least one member")
    for name in members:
        if is_exact_member(name):
            _parse_trials(name, 32)
        else:
            make_heuristic(name)


def member_seed(root_seed: Optional[int], name: str) -> Optional[int]:
    """Deterministic per-member seed, independent of execution order."""
    if root_seed is None:
        return None
    return spawn_seeds(root_seed, 1, salt=f"portfolio/{name}")[0]


@dataclass(frozen=True)
class MemberOutcome:
    """What one portfolio member did on one instance.

    ``partition`` is kept in memory for cross-validation but dropped by
    serialization (the depth survives in ``depth``).
    """

    name: str
    depth: Optional[int]
    seconds: float
    proved_optimal: bool = False
    error: Optional[str] = None
    skipped: bool = False
    partition: Optional[Partition] = field(
        default=None, compare=False, repr=False
    )
    detail: Optional[Dict[str, Any]] = field(default=None, compare=False)
    """Backend-specific extras (SAP phase split / final query status,
    branch-and-bound node count).  Carries wall-clock material, so it is
    serialized only alongside the timing fields."""

    def as_dict(self, *, include_timing: bool = True) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "depth": self.depth,
            "proved_optimal": self.proved_optimal,
            "error": self.error,
            "skipped": self.skipped,
        }
        if include_timing:
            payload["seconds"] = self.seconds
            if self.detail is not None:
                payload["detail"] = self.detail
        return payload


@dataclass
class PortfolioResult:
    """Best partition found plus full provenance of the race."""

    partition: Partition
    winner: str
    optimal: bool
    lower_bound: int
    certifier: Optional[str]
    seed: Optional[int]
    wall_seconds: float
    outcomes: Tuple[MemberOutcome, ...]
    from_cache: bool = False

    @property
    def depth(self) -> int:
        return self.partition.depth

    def member(self, name: str) -> MemberOutcome:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(f"no portfolio member named {name!r}")

    def member_depths(self) -> Dict[str, int]:
        """Depths of every member that produced a partition."""
        return {
            outcome.name: outcome.depth
            for outcome in self.outcomes
            if outcome.depth is not None
        }

    def provenance(self, *, include_timing: bool = True) -> Dict[str, Any]:
        """JSON-able provenance record.

        ``include_timing=False`` drops every wall-clock field, leaving a
        record that is byte-identical across runs and pool sizes — the
        determinism-regression contract of :func:`solve_batch`.
        """
        payload: Dict[str, Any] = {
            "depth": self.depth,
            "winner": self.winner,
            "optimal": self.optimal,
            "lower_bound": self.lower_bound,
            "certifier": self.certifier,
            "seed": self.seed,
            "from_cache": self.from_cache,
            "members": [
                outcome.as_dict(include_timing=include_timing)
                for outcome in self.outcomes
            ],
        }
        if include_timing:
            payload["wall_seconds"] = self.wall_seconds
        return payload

    def race_provenance(self) -> Dict[str, Any]:
        """The race-mode-invariant slice of the provenance.

        Winner, optimality, depth, bounds and certifier are resolved in
        member-spec order (never in completion order), so for portfolios
        that list heuristics before the exact backends this projection
        is byte-identical between ``race="sequential"`` and
        ``race="concurrent"`` — the regression contract of
        :mod:`repro.server.racing`.  Per-member records are excluded:
        a cancelled loser legitimately looks different from a skipped
        one.
        """
        return {
            "depth": self.depth,
            "winner": self.winner,
            "optimal": self.optimal,
            "lower_bound": self.lower_bound,
            "certifier": self.certifier,
            "seed": self.seed,
        }


# ----------------------------------------------------------------------
# Serialization (the cache and the batch workers move results as dicts)
# ----------------------------------------------------------------------
def result_to_dict(result: PortfolioResult) -> Dict[str, Any]:
    return {
        "version": RESULT_FORMAT_VERSION,
        "type": "portfolio_result",
        "partition": partition_to_dict(result.partition),
        "winner": result.winner,
        "optimal": result.optimal,
        "lower_bound": result.lower_bound,
        "certifier": result.certifier,
        "seed": result.seed,
        "wall_seconds": result.wall_seconds,
        "outcomes": [outcome.as_dict() for outcome in result.outcomes],
    }


def outcome_from_dict(entry: Dict[str, Any]) -> MemberOutcome:
    """Rebuild one member outcome from its wire/cache dict form.

    The inverse of :meth:`MemberOutcome.as_dict` — also used to carry
    live ``member_finished`` events across the process-pool boundary in
    :mod:`repro.server.engine` (partitions don't survive the trip; the
    depth does).
    """
    return MemberOutcome(
        name=entry["name"],
        depth=entry["depth"],
        seconds=entry.get("seconds", 0.0),
        proved_optimal=entry["proved_optimal"],
        error=entry["error"],
        skipped=entry["skipped"],
        detail=entry.get("detail"),
    )


def result_from_dict(
    payload: Dict[str, Any], *, from_cache: bool = False
) -> PortfolioResult:
    if payload.get("type") != "portfolio_result":
        raise SolverError(
            f"expected a portfolio_result payload, got {payload.get('type')!r}"
        )
    outcomes = tuple(
        outcome_from_dict(entry) for entry in payload["outcomes"]
    )
    return PortfolioResult(
        partition=partition_from_dict(payload["partition"]),
        winner=payload["winner"],
        optimal=payload["optimal"],
        lower_bound=payload["lower_bound"],
        certifier=payload["certifier"],
        seed=payload["seed"],
        wall_seconds=payload["wall_seconds"],
        outcomes=outcomes,
        from_cache=from_cache,
    )


# ----------------------------------------------------------------------
# Running one member
# ----------------------------------------------------------------------
def _parse_trials(name: str, default: int) -> int:
    kind, _, trials_text = name.partition(":")
    if not trials_text:
        return default
    try:
        trials = int(trials_text)
    except ValueError:
        raise SolverError(
            f"bad trial count {trials_text!r} in member spec {name!r}"
        ) from None
    if trials < 1:
        raise SolverError(
            f"trial count must be >= 1 in member spec {name!r}, got {trials}"
        )
    return trials


def run_member(
    matrix: BinaryMatrix,
    name: str,
    *,
    seed: Optional[int] = None,
    time_budget: Optional[float] = None,
    upper_hint: Optional[Partition] = None,
    cancel: Optional[object] = None,
) -> MemberOutcome:
    """Run one portfolio member and validate whatever it returns.

    Never raises on solver failure: budget exhaustion and invalid
    output become ``error`` on the outcome so one bad member cannot
    take down the race.  ``cancel`` (an ``is_set()``-style flag) is
    forwarded to the exact backends, which poll it alongside their
    time budgets.
    """
    began = time.perf_counter()
    partition: Optional[Partition] = None
    proved = False
    error: Optional[str] = None
    detail: Optional[Dict[str, Any]] = None
    try:
        kind = name.partition(":")[0]
        if kind == "sap":
            result = sap_solve(
                matrix,
                options=SapOptions(
                    trials=_parse_trials(name, 32),
                    seed=seed,
                    time_budget=time_budget,
                    cancel=cancel,
                ),
            )
            partition = result.partition
            proved = result.proved_optimal
            detail = {
                "phase_seconds": dict(result.phase_seconds),
                "heuristic_depth": result.heuristic_depth,
                "queries": len(result.queries),
                "final_query_unsat": bool(
                    result.queries
                    and result.queries[-1].status is SolveStatus.UNSAT
                ),
            }
        elif kind == "branch_bound":
            bb = binary_rank_branch_bound(
                matrix,
                upper_hint=upper_hint,
                time_budget=time_budget,
                cancel=cancel,
            )
            partition = bb.partition
            proved = bb.optimal
            detail = {"nodes": bb.nodes}
        else:
            partition = make_heuristic(name)(matrix, seed)
        if partition is not None:
            partition.validate(matrix)
    except (BudgetExceeded, SolverError, InvalidPartitionError) as exc:
        partition = None
        proved = False
        error = f"{type(exc).__name__}: {exc}"
    seconds = time.perf_counter() - began
    return MemberOutcome(
        name=name,
        depth=None if partition is None else partition.depth,
        seconds=seconds,
        proved_optimal=proved,
        error=error,
        partition=partition,
        detail=detail,
    )


# ----------------------------------------------------------------------
# The race
# ----------------------------------------------------------------------
def _replay(
    outcomes: Sequence[MemberOutcome], lower: int
) -> Tuple[Optional[Partition], Optional[str], Optional[str]]:
    """(best, winner, certifier) from outcomes, in the order given.

    One rule set for both race modes: first strict depth improvement
    wins, first optimality proof certifies, the Eq. 3 rank bound
    certifies as soon as the running best matches it.
    """
    best: Optional[Partition] = None
    winner: Optional[str] = None
    certifier: Optional[str] = None
    for outcome in outcomes:
        if outcome.partition is not None and (
            best is None or outcome.partition.depth < best.depth
        ):
            best = outcome.partition
            winner = outcome.name
        if outcome.proved_optimal and certifier is None:
            certifier = outcome.name
        if best is not None and best.depth <= lower and certifier is None:
            certifier = CERTIFIED_BY_RANK
    return best, winner, certifier


def _resolve(
    matrix: BinaryMatrix,
    members: Sequence[str],
    outcomes: List[MemberOutcome],
    lower: int,
    *,
    on_member: Optional[MemberCallback] = None,
) -> Tuple[Partition, str, Optional[str], List[MemberOutcome]]:
    """Winner / certifier / best partition from a full outcome list.

    Replays the rules in *member-spec order* — never in completion
    order — so the verdict cannot depend on which racer physically
    finished first; that is what makes concurrent racing reproducible.
    """
    best, winner, certifier = _replay(outcomes, lower)

    if best is None:
        # Every member failed or was starved; the trivial partition is
        # free and always valid, so the service still returns a result.
        best = trivial_partition(matrix)
        winner = "trivial"
        if best.depth <= lower and certifier is None:
            certifier = CERTIFIED_BY_RANK
        fallback = MemberOutcome(
            name="trivial",
            depth=best.depth,
            seconds=0.0,
            error="fallback: no member produced a partition",
            partition=best,
        )
        outcomes.append(fallback)
        if on_member is not None:
            on_member(fallback)
    return best, winner or members[0], certifier, outcomes


def _skipped(name: str, error: Optional[str] = None) -> MemberOutcome:
    return MemberOutcome(
        name=name, depth=None, seconds=0.0, skipped=True, error=error
    )


def _run_sequential(
    matrix: BinaryMatrix,
    members: Sequence[str],
    seed: Optional[int],
    pot: PortfolioBudget,
    lower: int,
    stop_when_optimal: bool,
    cancel: Optional[object],
    on_member: Optional[MemberCallback],
) -> List[MemberOutcome]:
    """The paper's recipe: members one after another, early exit on proof."""
    best: Optional[Partition] = None
    certifier: Optional[str] = None
    outcomes: List[MemberOutcome] = []

    def emit(outcome: MemberOutcome) -> None:
        outcomes.append(outcome)
        if on_member is not None:
            on_member(outcome)

    for name in members:
        if stop_when_optimal and certifier is not None:
            emit(_skipped(name))
            continue
        if cancel is not None and cancel.is_set():
            emit(_skipped(name, error="cancelled"))
            continue
        if pot.expired():
            emit(_skipped(name, error="portfolio budget exhausted"))
            continue
        outcome = run_member(
            matrix,
            name,
            seed=member_seed(seed, name),
            time_budget=pot.member_budget(),
            upper_hint=best,
            cancel=cancel,
        )
        pot.charge(name, outcome.seconds)
        emit(outcome)
        if outcome.partition is not None and (
            best is None or outcome.partition.depth < best.depth
        ):
            best = outcome.partition
        if outcome.proved_optimal and certifier is None:
            certifier = outcome.name
        if best is not None and best.depth <= lower and certifier is None:
            certifier = CERTIFIED_BY_RANK
    return outcomes


def _run_concurrent(
    matrix: BinaryMatrix,
    members: Sequence[str],
    seed: Optional[int],
    pot: PortfolioBudget,
    lower: int,
    stop_when_optimal: bool,
    cancel: Optional[object],
    on_member: Optional[MemberCallback],
) -> List[MemberOutcome]:
    """Heuristics sequentially, then the exact backends as a thread race.

    The heuristic members are microseconds each, so they are hoisted in
    front of the race in spec order (their best depth seeds the racers'
    upper hint).  The exact members then run concurrently; the moment
    one certifies optimality, every racer *later in spec order* is
    cancelled — earlier racers are left to finish, which keeps the
    resolved certifier deterministic (see :func:`_resolve`).  For
    portfolios that list heuristics before exacts (every built-in
    portfolio does) the winner/optimality provenance is identical to
    sequential mode.
    """
    from repro.server.racing import race_members

    exact_names = [name for name in members if is_exact_member(name)]
    heuristic_names = [
        name for name in members if not is_exact_member(name)
    ]

    # The heuristic prefix is exactly a sequential sub-portfolio: same
    # skip/cancel/budget rules, same ledger — one copy of the logic.
    heuristic_outcomes = _run_sequential(
        matrix, heuristic_names, seed, pot, lower, stop_when_optimal,
        cancel, on_member=None,
    )
    by_name: Dict[str, MemberOutcome] = {
        outcome.name: outcome for outcome in heuristic_outcomes
    }
    best, _, certifier = _replay(heuristic_outcomes, lower)

    if exact_names:
        if stop_when_optimal and certifier is not None:
            for name in exact_names:
                by_name[name] = _skipped(name)
        elif cancel is not None and cancel.is_set():
            for name in exact_names:
                by_name[name] = _skipped(name, error="cancelled")
        elif pot.expired():
            for name in exact_names:
                by_name[name] = _skipped(
                    name, error="portfolio budget exhausted"
                )
        else:
            raced = race_members(
                matrix,
                exact_names,
                seeds={
                    name: member_seed(seed, name) for name in exact_names
                },
                time_budget=pot.member_budget(),
                upper_hint=best,
                cancel=cancel,
                cancel_losers=stop_when_optimal,
            )
            for outcome in raced:
                pot.charge(outcome.name, outcome.seconds)
                by_name[outcome.name] = outcome

    ordered = [by_name[name] for name in members]
    if on_member is not None:
        for outcome in ordered:
            on_member(outcome)
    return ordered


def solve_portfolio(
    matrix: BinaryMatrix,
    *,
    members: Sequence[str] = DEFAULT_PORTFOLIO,
    seed: Optional[int] = None,
    budget: BudgetLike = None,
    stop_when_optimal: bool = True,
    race: str = "sequential",
    cancel: Optional[object] = None,
    on_member: Optional[MemberCallback] = None,
) -> PortfolioResult:
    """Race ``members`` on ``matrix`` and return the best partition found.

    With ``race="sequential"`` members run in the given order, each with
    a slice of the shared ``budget``; with ``race="concurrent"`` the
    exact backends run as a thread race and losers are cancelled (see
    :mod:`repro.server.racing`).  Every member gets a seed derived
    deterministically from ``seed`` and its own name (so results do not
    depend on member order or on how instances are distributed over
    batch workers).  With ``stop_when_optimal`` the race short-circuits
    once the best depth is certified — either by an exact member's
    proof or by matching the Eq. 3 rank lower bound; remaining members
    are recorded as skipped.  ``cancel`` (``is_set()``-style) aborts
    the whole race cooperatively; ``on_member`` is called with each
    :class:`MemberOutcome` as it is recorded — the streaming-event hook
    of :class:`repro.server.engine.AsyncSolveEngine`.
    """
    if race not in RACE_MODES:
        raise SolverError(
            f"race must be one of {RACE_MODES}, got {race!r}"
        )
    validate_members(members)
    pot = PortfolioBudget.coerce(budget)
    began = time.perf_counter()
    lower = rank_lower_bound(matrix)

    runner = _run_concurrent if race == "concurrent" else _run_sequential
    outcomes = runner(
        matrix, members, seed, pot, lower, stop_when_optimal, cancel,
        on_member,
    )
    best, winner, certifier, outcomes = _resolve(
        matrix, members, outcomes, lower, on_member=on_member
    )

    return PortfolioResult(
        partition=best,
        winner=winner,
        optimal=certifier is not None,
        lower_bound=lower,
        certifier=certifier,
        seed=seed,
        wall_seconds=time.perf_counter() - began,
        outcomes=tuple(outcomes),
    )


def mark_cached(result: PortfolioResult) -> PortfolioResult:
    """A copy of ``result`` flagged as served from cache."""
    return replace(result, from_cache=True)
