"""Portfolio solving: race heuristics and exact backends per instance.

The paper solves each EBMF instance with one solver at a time; a
production service wants the standard portfolio recipe instead (cf.
Rosenbaum 2013; Goubault de Brugiere & Martiel 2023): run the cheap
heuristics first, feed their best depth to the exact backends as an
upper hint, stop as soon as optimality is certified, and record *who*
won and *how long* everyone took.  :func:`solve_portfolio` is that
recipe for one matrix; :mod:`repro.service.batch` fans it over many.

Member specs
------------

* any heuristic spec the registry knows (``trivial``, ``packing:K``,
  ``packing_x:K``, ``packing_noupdate:K``, ``packing_sorted:K``,
  ``greedy:K``);
* ``sap`` / ``sap:K`` — the paper's Algorithm 1 (SMT descent, ``K``
  packing trials, default 32), proves optimality;
* ``branch_bound`` — the SMT-independent exact search, proves
  optimality (small matrices only; budget-limited).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.binary_matrix import BinaryMatrix
from repro.core.bounds import rank_lower_bound
from repro.core.exceptions import (
    BudgetExceeded,
    InvalidPartitionError,
    SolverError,
)
from repro.core.partition import Partition
from repro.io import partition_from_dict, partition_to_dict
from repro.service.budget import BudgetLike, PortfolioBudget
from repro.solvers.branch_bound import binary_rank_branch_bound
from repro.solvers.registry import make_heuristic
from repro.solvers.sap import SapOptions, sap_solve
from repro.solvers.trivial import trivial_partition
from repro.utils.rng import spawn_seeds

EXACT_MEMBERS = ("sap", "branch_bound")
"""Member kinds that can certify optimality on their own."""

DEFAULT_PORTFOLIO = ("trivial", "packing:32", "sap")
"""Heuristics first (cheap upper bounds), then the exact closer."""

CERTIFIED_BY_RANK = "rank-bound"
"""Certifier label when the Eq. 3 lower bound alone proves optimality."""

RESULT_FORMAT_VERSION = 1


def is_exact_member(name: str) -> bool:
    """True for members that can prove optimality themselves."""
    return name.partition(":")[0] in EXACT_MEMBERS


def validate_members(members: Sequence[str]) -> None:
    """Reject malformed member specs before any solving starts.

    A typo'd spec is a configuration error, not a solver failure — it
    must fail the whole call rather than be absorbed into a per-member
    ``error`` record and papered over by the trivial fallback.
    """
    if not members:
        raise SolverError("portfolio needs at least one member")
    for name in members:
        if is_exact_member(name):
            _parse_trials(name, 32)
        else:
            make_heuristic(name)


def member_seed(root_seed: Optional[int], name: str) -> Optional[int]:
    """Deterministic per-member seed, independent of execution order."""
    if root_seed is None:
        return None
    return spawn_seeds(root_seed, 1, salt=f"portfolio/{name}")[0]


@dataclass(frozen=True)
class MemberOutcome:
    """What one portfolio member did on one instance.

    ``partition`` is kept in memory for cross-validation but dropped by
    serialization (the depth survives in ``depth``).
    """

    name: str
    depth: Optional[int]
    seconds: float
    proved_optimal: bool = False
    error: Optional[str] = None
    skipped: bool = False
    partition: Optional[Partition] = field(
        default=None, compare=False, repr=False
    )

    def as_dict(self, *, include_timing: bool = True) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "depth": self.depth,
            "proved_optimal": self.proved_optimal,
            "error": self.error,
            "skipped": self.skipped,
        }
        if include_timing:
            payload["seconds"] = self.seconds
        return payload


@dataclass
class PortfolioResult:
    """Best partition found plus full provenance of the race."""

    partition: Partition
    winner: str
    optimal: bool
    lower_bound: int
    certifier: Optional[str]
    seed: Optional[int]
    wall_seconds: float
    outcomes: Tuple[MemberOutcome, ...]
    from_cache: bool = False

    @property
    def depth(self) -> int:
        return self.partition.depth

    def member(self, name: str) -> MemberOutcome:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(f"no portfolio member named {name!r}")

    def member_depths(self) -> Dict[str, int]:
        """Depths of every member that produced a partition."""
        return {
            outcome.name: outcome.depth
            for outcome in self.outcomes
            if outcome.depth is not None
        }

    def provenance(self, *, include_timing: bool = True) -> Dict[str, Any]:
        """JSON-able provenance record.

        ``include_timing=False`` drops every wall-clock field, leaving a
        record that is byte-identical across runs and pool sizes — the
        determinism-regression contract of :func:`solve_batch`.
        """
        payload: Dict[str, Any] = {
            "depth": self.depth,
            "winner": self.winner,
            "optimal": self.optimal,
            "lower_bound": self.lower_bound,
            "certifier": self.certifier,
            "seed": self.seed,
            "from_cache": self.from_cache,
            "members": [
                outcome.as_dict(include_timing=include_timing)
                for outcome in self.outcomes
            ],
        }
        if include_timing:
            payload["wall_seconds"] = self.wall_seconds
        return payload


# ----------------------------------------------------------------------
# Serialization (the cache and the batch workers move results as dicts)
# ----------------------------------------------------------------------
def result_to_dict(result: PortfolioResult) -> Dict[str, Any]:
    return {
        "version": RESULT_FORMAT_VERSION,
        "type": "portfolio_result",
        "partition": partition_to_dict(result.partition),
        "winner": result.winner,
        "optimal": result.optimal,
        "lower_bound": result.lower_bound,
        "certifier": result.certifier,
        "seed": result.seed,
        "wall_seconds": result.wall_seconds,
        "outcomes": [outcome.as_dict() for outcome in result.outcomes],
    }


def result_from_dict(
    payload: Dict[str, Any], *, from_cache: bool = False
) -> PortfolioResult:
    if payload.get("type") != "portfolio_result":
        raise SolverError(
            f"expected a portfolio_result payload, got {payload.get('type')!r}"
        )
    outcomes = tuple(
        MemberOutcome(
            name=entry["name"],
            depth=entry["depth"],
            seconds=entry.get("seconds", 0.0),
            proved_optimal=entry["proved_optimal"],
            error=entry["error"],
            skipped=entry["skipped"],
        )
        for entry in payload["outcomes"]
    )
    return PortfolioResult(
        partition=partition_from_dict(payload["partition"]),
        winner=payload["winner"],
        optimal=payload["optimal"],
        lower_bound=payload["lower_bound"],
        certifier=payload["certifier"],
        seed=payload["seed"],
        wall_seconds=payload["wall_seconds"],
        outcomes=outcomes,
        from_cache=from_cache,
    )


# ----------------------------------------------------------------------
# Running one member
# ----------------------------------------------------------------------
def _parse_trials(name: str, default: int) -> int:
    kind, _, trials_text = name.partition(":")
    if not trials_text:
        return default
    try:
        trials = int(trials_text)
    except ValueError:
        raise SolverError(
            f"bad trial count {trials_text!r} in member spec {name!r}"
        ) from None
    if trials < 1:
        raise SolverError(
            f"trial count must be >= 1 in member spec {name!r}, got {trials}"
        )
    return trials


def run_member(
    matrix: BinaryMatrix,
    name: str,
    *,
    seed: Optional[int] = None,
    time_budget: Optional[float] = None,
    upper_hint: Optional[Partition] = None,
) -> MemberOutcome:
    """Run one portfolio member and validate whatever it returns.

    Never raises on solver failure: budget exhaustion and invalid
    output become ``error`` on the outcome so one bad member cannot
    take down the race.
    """
    began = time.perf_counter()
    partition: Optional[Partition] = None
    proved = False
    error: Optional[str] = None
    try:
        kind = name.partition(":")[0]
        if kind == "sap":
            result = sap_solve(
                matrix,
                options=SapOptions(
                    trials=_parse_trials(name, 32),
                    seed=seed,
                    time_budget=time_budget,
                ),
            )
            partition = result.partition
            proved = result.proved_optimal
        elif kind == "branch_bound":
            bb = binary_rank_branch_bound(
                matrix, upper_hint=upper_hint, time_budget=time_budget
            )
            partition = bb.partition
            proved = bb.optimal
        else:
            partition = make_heuristic(name)(matrix, seed)
        if partition is not None:
            partition.validate(matrix)
    except (BudgetExceeded, SolverError, InvalidPartitionError) as exc:
        partition = None
        proved = False
        error = f"{type(exc).__name__}: {exc}"
    seconds = time.perf_counter() - began
    return MemberOutcome(
        name=name,
        depth=None if partition is None else partition.depth,
        seconds=seconds,
        proved_optimal=proved,
        error=error,
        partition=partition,
    )


# ----------------------------------------------------------------------
# The race
# ----------------------------------------------------------------------
def solve_portfolio(
    matrix: BinaryMatrix,
    *,
    members: Sequence[str] = DEFAULT_PORTFOLIO,
    seed: Optional[int] = None,
    budget: BudgetLike = None,
    stop_when_optimal: bool = True,
) -> PortfolioResult:
    """Race ``members`` on ``matrix`` and return the best partition found.

    Members run in the given order, each with a slice of the shared
    ``budget`` and a seed derived deterministically from ``seed`` and
    its own name (so results do not depend on member order or on how
    instances are distributed over batch workers).  With
    ``stop_when_optimal`` the race short-circuits once the best depth
    is certified — either by an exact member's proof or by matching the
    Eq. 3 rank lower bound; remaining members are recorded as skipped.
    """
    validate_members(members)
    pot = PortfolioBudget.coerce(budget)
    began = time.perf_counter()
    lower = rank_lower_bound(matrix)

    best: Optional[Partition] = None
    winner: Optional[str] = None
    certifier: Optional[str] = None
    outcomes: List[MemberOutcome] = []

    def certified() -> bool:
        return certifier is not None

    for name in members:
        if stop_when_optimal and certified():
            outcomes.append(
                MemberOutcome(name=name, depth=None, seconds=0.0, skipped=True)
            )
            continue
        if pot.expired():
            outcomes.append(
                MemberOutcome(
                    name=name,
                    depth=None,
                    seconds=0.0,
                    skipped=True,
                    error="portfolio budget exhausted",
                )
            )
            continue
        outcome = run_member(
            matrix,
            name,
            seed=member_seed(seed, name),
            time_budget=pot.member_budget(),
            upper_hint=best,
        )
        pot.charge(name, outcome.seconds)
        outcomes.append(outcome)
        if outcome.partition is not None and (
            best is None or outcome.partition.depth < best.depth
        ):
            best = outcome.partition
            winner = name
        if outcome.proved_optimal and certifier is None:
            certifier = name
        if best is not None and best.depth <= lower and certifier is None:
            certifier = CERTIFIED_BY_RANK

    if best is None:
        # Every member failed or was starved; the trivial partition is
        # free and always valid, so the service still returns a result.
        best = trivial_partition(matrix)
        winner = "trivial"
        if best.depth <= lower and certifier is None:
            certifier = CERTIFIED_BY_RANK
        outcomes.append(
            MemberOutcome(
                name="trivial",
                depth=best.depth,
                seconds=0.0,
                error="fallback: no member produced a partition",
                partition=best,
            )
        )

    return PortfolioResult(
        partition=best,
        winner=winner or members[0],
        optimal=certified(),
        lower_bound=lower,
        certifier=certifier,
        seed=seed,
        wall_seconds=time.perf_counter() - began,
        outcomes=tuple(outcomes),
    )


def mark_cached(result: PortfolioResult) -> PortfolioResult:
    """A copy of ``result`` flagged as served from cache."""
    return replace(result, from_cache=True)
