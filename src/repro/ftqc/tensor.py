"""Tensor products of partitions and the Eq. 5 bounds.

Section V: a logical-level pattern ``M^`` (which patches get the
operation) combines with a physical-level pattern ``M`` (which data
qubits inside a patch) into the overall pattern ``M^ (x) M``.  Partition
each level independently and take the tensor product of the partitions:
``r_B(M^ (x) M) <= r_B(M^) * r_B(M)``.  Whether binary rank is
multiplicative is open; Watson's fooling-set bound gives

    max(r_B(M^) * phi(M), r_B(M) * phi(M^)) <= r_B(M^ (x) M).     (Eq. 5)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidPartitionError
from repro.core.fooling import fooling_number
from repro.core.partition import Partition
from repro.core.rectangle import Rectangle
from repro.solvers.sap import SapOptions, sap_solve
from repro.utils.rng import RngLike


def tensor_rectangle(
    outer: Rectangle, inner: Rectangle, inner_shape
) -> Rectangle:
    """The Kronecker product of two rectangles."""
    inner_rows, inner_cols = inner_shape
    rows = [
        outer_row * inner_rows + inner_row
        for outer_row in outer.rows
        for inner_row in inner.rows
    ]
    cols = [
        outer_col * inner_cols + inner_col
        for outer_col in outer.cols
        for inner_col in inner.cols
    ]
    return Rectangle.from_sets(rows, cols)


def tensor_partition(outer: Partition, inner: Partition) -> Partition:
    """Tensor product of two partitions: partitions ``M^ (x) M``.

    If ``outer`` partitions ``M^`` and ``inner`` partitions ``M``, the
    result partitions their Kronecker product with
    ``len(outer) * len(inner)`` rectangles.
    """
    inner_shape = inner.shape
    rects = [
        tensor_rectangle(outer_rect, inner_rect, inner_shape)
        for outer_rect in outer
        for inner_rect in inner
    ]
    shape = (
        outer.shape[0] * inner_shape[0],
        outer.shape[1] * inner_shape[1],
    )
    return Partition(rects, shape)


@dataclass(frozen=True)
class TensorBounds:
    """Eq. 5 bracket for ``r_B(M^ (x) M)``."""

    upper: int  # r_B(M^) * r_B(M)
    lower: int  # max(r_B(M^)*phi(M), r_B(M)*phi(M^))
    outer_rank: int
    inner_rank: int
    outer_fooling: int
    inner_fooling: int

    @property
    def is_tight(self) -> bool:
        return self.upper == self.lower


def tensor_rank_bounds(
    outer_matrix: BinaryMatrix,
    inner_matrix: BinaryMatrix,
    *,
    seed: RngLike = None,
    time_budget: Optional[float] = None,
) -> TensorBounds:
    """Compute Eq. 5's bracket, solving each factor exactly via SAP."""
    outer_result = sap_solve(
        outer_matrix, options=SapOptions(trials=32, seed=seed, time_budget=time_budget)
    )
    inner_result = sap_solve(
        inner_matrix, options=SapOptions(trials=32, seed=seed, time_budget=time_budget)
    )
    if not (outer_result.proved_optimal and inner_result.proved_optimal):
        raise InvalidPartitionError(
            "factor binary ranks not proven within budget; "
            "increase time_budget"
        )
    outer_rank = outer_result.depth
    inner_rank = inner_result.depth
    outer_fooling = fooling_number(outer_matrix, seed=seed)
    inner_fooling = fooling_number(inner_matrix, seed=seed)
    return TensorBounds(
        upper=outer_rank * inner_rank,
        lower=max(
            outer_rank * inner_fooling, inner_rank * outer_fooling
        ),
        outer_rank=outer_rank,
        inner_rank=inner_rank,
        outer_fooling=outer_fooling,
        inner_fooling=inner_fooling,
    )
