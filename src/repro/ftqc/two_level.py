"""Two-level solving: factor, solve each level, combine (Figure 5a).

"This two-level structure allows for the independent computation of the
rectangular partition of M^ and M.  Subsequently, taking the tensor
product of the partitions produces the solution."  The result is optimal
whenever the Eq. 5 lower bound meets the product upper bound — in
particular when the physical pattern is all-ones (``phi(M) = r_B(M) =
1``), the common transversal-gate case the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidMatrixError
from repro.core.partition import Partition
from repro.ftqc.structure import detect_kron
from repro.ftqc.tensor import TensorBounds, tensor_partition, tensor_rank_bounds
from repro.solvers.sap import SapOptions, sap_solve
from repro.utils.rng import RngLike


@dataclass
class TwoLevelResult:
    """Outcome of :func:`two_level_solve`."""

    partition: Partition
    outer: BinaryMatrix
    inner: BinaryMatrix
    outer_partition: Partition
    inner_partition: Partition
    bounds: Optional[TensorBounds]

    @property
    def depth(self) -> int:
        return self.partition.depth

    @property
    def proved_optimal(self) -> bool:
        """True when Eq. 5 certifies the tensor-product solution.

        Depth 0 (zero matrix) and depth 1 are unconditionally optimal;
        otherwise the Eq. 5 lower bound must meet the product.
        """
        if self.partition.depth <= 1:
            return True
        return self.bounds is not None and (
            self.bounds.lower >= self.bounds.upper
        )


def best_two_level_solve(
    matrix: BinaryMatrix,
    *,
    seed: RngLike = None,
    trials: int = 32,
    time_budget: Optional[float] = None,
) -> Optional[TwoLevelResult]:
    """Try every non-trivial Kronecker factorization and keep the best.

    Returns ``None`` when the matrix has no non-trivial two-level
    structure at all.  When several block sizes factor the matrix (e.g.
    strip factorizations), the minimum combined depth wins.
    """
    from repro.ftqc.structure import possible_inner_shapes

    best: Optional[TwoLevelResult] = None
    for inner_shape in possible_inner_shapes(matrix.shape):
        if detect_kron(matrix, inner_shape) is None:
            continue
        result = two_level_solve(
            matrix,
            inner_shape,
            seed=seed,
            trials=trials,
            time_budget=time_budget,
            compute_bounds=False,
        )
        if best is None or result.depth < best.depth:
            best = result
    return best


def two_level_solve(
    matrix: BinaryMatrix,
    inner_shape: Tuple[int, int],
    *,
    seed: RngLike = None,
    trials: int = 32,
    time_budget: Optional[float] = None,
    compute_bounds: bool = True,
) -> TwoLevelResult:
    """Solve ``matrix`` as ``M^ (x) M`` with blocks of ``inner_shape``.

    Raises :class:`InvalidMatrixError` when the matrix has no Kronecker
    structure at that block size (use :func:`detect_kron` to probe).
    """
    factors = detect_kron(matrix, inner_shape)
    if factors is None:
        raise InvalidMatrixError(
            f"matrix has no Kronecker structure with inner shape "
            f"{inner_shape}"
        )
    outer, inner = factors

    options = SapOptions(trials=trials, seed=seed, time_budget=time_budget)
    outer_result = sap_solve(outer, options=options)
    inner_result = sap_solve(inner, options=options)
    combined = tensor_partition(outer_result.partition, inner_result.partition)
    combined.validate(matrix)

    bounds: Optional[TensorBounds] = None
    if (
        compute_bounds
        and outer_result.proved_optimal
        and inner_result.proved_optimal
    ):
        bounds = tensor_rank_bounds(
            outer, inner, seed=seed, time_budget=time_budget
        )
    return TwoLevelResult(
        partition=combined,
        outer=outer,
        inner=inner,
        outer_partition=outer_result.partition,
        inner_partition=inner_result.partition,
        bounds=bounds,
    )
