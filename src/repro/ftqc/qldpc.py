"""qLDPC memory blocks in 1D layout (Figure 5b, Section V conjecture).

Quantum LDPC codes store several logical qubits per block; blocks sit in
a 1D row because they are memory, and logical single-qubit operations
hit per-block offset patterns that differ block to block.  The paper
conjectures that *row-by-row* addressing (one AOD configuration per
distinct block pattern) is usually already optimal, supported by the
observation that wide random matrices (10x20, 10x30) are full rank far
more often than square ones at equal occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidMatrixError
from repro.core.reductions import distinct_nonzero_rows
from repro.linalg.exact_rank import real_rank
from repro.solvers.sap import SapOptions, sap_solve
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class BlockLayout:
    """1D arrangement of memory blocks, each holding ``block_size`` sites."""

    num_blocks: int
    block_size: int

    def __post_init__(self) -> None:
        if self.num_blocks < 1 or self.block_size < 1:
            raise InvalidMatrixError(
                f"invalid layout {self.num_blocks} x {self.block_size}"
            )

    def pattern_from_offsets(
        self, offsets_per_block: Sequence[Sequence[int]]
    ) -> BinaryMatrix:
        """Addressing matrix: row = block, column = offset inside block."""
        if len(offsets_per_block) != self.num_blocks:
            raise InvalidMatrixError(
                f"expected offsets for {self.num_blocks} blocks, "
                f"got {len(offsets_per_block)}"
            )
        masks = []
        for block, offsets in enumerate(offsets_per_block):
            mask = 0
            for offset in offsets:
                if not 0 <= offset < self.block_size:
                    raise InvalidMatrixError(
                        f"block {block}: offset {offset} outside "
                        f"[0, {self.block_size})"
                    )
                mask |= 1 << offset
            masks.append(mask)
        return BinaryMatrix(masks, self.block_size)

    def random_pattern(
        self,
        qubits_per_block: int,
        *,
        seed: RngLike = None,
    ) -> BinaryMatrix:
        """Each block addresses ``qubits_per_block`` uniform random offsets."""
        if not 0 <= qubits_per_block <= self.block_size:
            raise InvalidMatrixError(
                f"qubits_per_block must be in [0, {self.block_size}]"
            )
        rng = ensure_rng(seed)
        offsets = [
            rng.sample(range(self.block_size), qubits_per_block)
            for _ in range(self.num_blocks)
        ]
        return self.pattern_from_offsets(offsets)


def row_addressing_depth(matrix: BinaryMatrix) -> int:
    """Depth of the naive row-by-row schedule: one configuration per
    distinct non-empty row (identical block patterns share a shot)."""
    return distinct_nonzero_rows(matrix)


def row_addressing_sufficient(
    matrix: BinaryMatrix,
    *,
    seed: RngLike = None,
    time_budget: Optional[float] = None,
) -> Optional[bool]:
    """Is row-by-row addressing depth-optimal for ``matrix``?

    Returns ``None`` when SAP cannot prove the binary rank in budget.
    """
    result = sap_solve(
        matrix,
        options=SapOptions(trials=32, seed=seed, time_budget=time_budget),
    )
    if not result.proved_optimal:
        return None
    return result.depth == row_addressing_depth(matrix)


def full_rank_fraction(
    num_rows: int,
    num_cols: int,
    occupancy: float,
    samples: int,
    *,
    seed: RngLike = None,
) -> float:
    """Fraction of random ``num_rows x num_cols`` matrices at the given
    occupancy whose real rank equals ``num_rows`` (Section V evidence:
    wider is easier)."""
    from repro.benchgen.random_matrices import random_matrix

    if samples < 1:
        raise InvalidMatrixError(f"samples must be >= 1, got {samples}")
    rng = ensure_rng(seed)
    hits = 0
    for _ in range(samples):
        matrix = random_matrix(num_rows, num_cols, occupancy, seed=rng)
        if real_rank(matrix) == num_rows:
            hits += 1
    return hits / samples
