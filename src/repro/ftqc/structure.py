"""Detecting Kronecker (two-level) structure in a pattern.

The FTQC setting *produces* patterns as ``M^ (x) M``; when a compiler
receives only the flat physical pattern, this module recovers the
factors for a given block size (exact for binary matrices: every block
must be all-zero or equal to one common block).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidMatrixError


def possible_inner_shapes(shape: Tuple[int, int]) -> Iterator[Tuple[int, int]]:
    """All block shapes that divide ``shape`` (excluding the trivial 1x1
    and the full shape itself)."""
    num_rows, num_cols = shape
    for block_rows in range(1, num_rows + 1):
        if num_rows % block_rows:
            continue
        for block_cols in range(1, num_cols + 1):
            if num_cols % block_cols:
                continue
            if (block_rows, block_cols) == (1, 1):
                continue
            if (block_rows, block_cols) == (num_rows, num_cols):
                continue
            yield (block_rows, block_cols)


def _extract_block(
    matrix: BinaryMatrix,
    block_row: int,
    block_col: int,
    inner_shape: Tuple[int, int],
) -> BinaryMatrix:
    inner_rows, inner_cols = inner_shape
    rows = range(block_row * inner_rows, (block_row + 1) * inner_rows)
    cols = range(block_col * inner_cols, (block_col + 1) * inner_cols)
    return matrix.submatrix(list(rows), list(cols))


def detect_kron(
    matrix: BinaryMatrix, inner_shape: Tuple[int, int]
) -> Optional[Tuple[BinaryMatrix, BinaryMatrix]]:
    """Factor ``matrix = outer (x) inner`` with ``inner`` of the given
    shape, or return ``None`` when no such factorization exists.

    A binary matrix factors over a block grid iff every block is either
    all-zero or identical to one common non-zero block.
    """
    inner_rows, inner_cols = inner_shape
    num_rows, num_cols = matrix.shape
    if inner_rows <= 0 or inner_cols <= 0:
        raise InvalidMatrixError(f"bad inner shape {inner_shape}")
    if num_rows % inner_rows or num_cols % inner_cols:
        return None
    outer_rows = num_rows // inner_rows
    outer_cols = num_cols // inner_cols

    reference: Optional[BinaryMatrix] = None
    outer_cells: List[Tuple[int, int]] = []
    for block_row in range(outer_rows):
        for block_col in range(outer_cols):
            block = _extract_block(matrix, block_row, block_col, inner_shape)
            if block.is_zero():
                continue
            if reference is None:
                reference = block
            elif block != reference:
                return None
            outer_cells.append((block_row, block_col))

    if reference is None:
        # Zero matrix: represent as zero outer with a zero inner block.
        return (
            BinaryMatrix.zeros(outer_rows, outer_cols),
            BinaryMatrix.zeros(inner_rows, inner_cols),
        )
    outer = BinaryMatrix.from_cells(outer_cells, (outer_rows, outer_cols))
    return outer, reference


def find_kron_factorizations(
    matrix: BinaryMatrix,
) -> List[Tuple[Tuple[int, int], BinaryMatrix, BinaryMatrix]]:
    """All non-trivial Kronecker factorizations, as
    ``(inner_shape, outer, inner)`` triples."""
    found = []
    for inner_shape in possible_inner_shapes(matrix.shape):
        factors = detect_kron(matrix, inner_shape)
        if factors is not None:
            found.append((inner_shape, factors[0], factors[1]))
    return found
