"""Surface-code patch layouts (Figure 5a).

Each logical qubit is a ``distance x distance`` patch of data qubits
(check qubits are not addressed by the single-qubit-gate schedules this
library targets, matching the paper's figure).  A logical operation
``U`` applied to a 2D pattern of patches expands to the tensor product
of the logical mask and the per-patch physical mask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidMatrixError


def transversal_patch_mask(distance: int) -> BinaryMatrix:
    """Physical mask of a transversal single-qubit gate (X/Z/H...): every
    data qubit of the patch — the all-ones matrix, with
    ``phi = r_B = 1``."""
    if distance < 1:
        raise InvalidMatrixError(f"distance must be >= 1, got {distance}")
    return BinaryMatrix.all_ones(distance, distance)


def boundary_row_patch_mask(distance: int, row: int = 0) -> BinaryMatrix:
    """Physical mask touching one row of the patch (e.g. a lattice-surgery
    boundary preparation)."""
    if not 0 <= row < distance:
        raise InvalidMatrixError(f"row {row} outside patch of distance {distance}")
    masks = [0] * distance
    masks[row] = (1 << distance) - 1
    return BinaryMatrix(masks, distance)


def corner_patch_mask(distance: int) -> BinaryMatrix:
    """Physical mask addressing a single corner data qubit (e.g. a
    twist-defect / injection site)."""
    if distance < 1:
        raise InvalidMatrixError(f"distance must be >= 1, got {distance}")
    masks = [0] * distance
    masks[0] = 1
    return BinaryMatrix(masks, distance)


@dataclass(frozen=True)
class SurfaceCodeGrid:
    """A 2D grid of surface-code patches."""

    patch_rows: int
    patch_cols: int
    distance: int

    def __post_init__(self) -> None:
        if self.patch_rows < 1 or self.patch_cols < 1 or self.distance < 1:
            raise InvalidMatrixError(
                f"invalid grid {self.patch_rows}x{self.patch_cols} "
                f"at distance {self.distance}"
            )

    @property
    def logical_shape(self) -> Tuple[int, int]:
        return (self.patch_rows, self.patch_cols)

    @property
    def physical_shape(self) -> Tuple[int, int]:
        return (
            self.patch_rows * self.distance,
            self.patch_cols * self.distance,
        )

    def physical_pattern(
        self,
        logical_mask: BinaryMatrix,
        patch_mask: BinaryMatrix = None,
    ) -> BinaryMatrix:
        """Expand a logical mask to the physical data-qubit pattern.

        ``patch_mask`` defaults to the transversal all-ones mask.
        """
        if logical_mask.shape != self.logical_shape:
            raise InvalidMatrixError(
                f"logical mask shape {logical_mask.shape} != grid "
                f"{self.logical_shape}"
            )
        if patch_mask is None:
            patch_mask = transversal_patch_mask(self.distance)
        if patch_mask.shape != (self.distance, self.distance):
            raise InvalidMatrixError(
                f"patch mask shape {patch_mask.shape} != "
                f"({self.distance}, {self.distance})"
            )
        return logical_mask.tensor(patch_mask)
