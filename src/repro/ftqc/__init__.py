"""Fault-tolerant quantum computing substrate (paper Section V)."""

from repro.ftqc.qldpc import (
    BlockLayout,
    full_rank_fraction,
    row_addressing_depth,
    row_addressing_sufficient,
)
from repro.ftqc.structure import (
    detect_kron,
    find_kron_factorizations,
    possible_inner_shapes,
)
from repro.ftqc.surface_code import (
    SurfaceCodeGrid,
    boundary_row_patch_mask,
    corner_patch_mask,
    transversal_patch_mask,
)
from repro.ftqc.tensor import (
    TensorBounds,
    tensor_partition,
    tensor_rank_bounds,
    tensor_rectangle,
)
from repro.ftqc.two_level import (
    TwoLevelResult,
    best_two_level_solve,
    two_level_solve,
)

__all__ = [
    "BlockLayout",
    "best_two_level_solve",
    "SurfaceCodeGrid",
    "TensorBounds",
    "TwoLevelResult",
    "boundary_row_patch_mask",
    "corner_patch_mask",
    "detect_kron",
    "find_kron_factorizations",
    "full_rank_fraction",
    "possible_inner_shapes",
    "row_addressing_depth",
    "row_addressing_sufficient",
    "tensor_partition",
    "tensor_rank_bounds",
    "tensor_rectangle",
    "transversal_patch_mask",
    "two_level_solve",
]
