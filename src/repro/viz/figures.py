"""Adapters from experiment results to the paper's figures as SVG.

Each function takes the result object produced by a runner in
:mod:`repro.experiments` and returns a ready-to-write
:class:`~repro.viz.svg.SvgCanvas`.  The experiment CLIs call these when
given ``--svg``; tests snapshot their structure.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.binary_matrix import BinaryMatrix
from repro.core.fooling import max_fooling_set
from repro.core.partition import Partition
from repro.viz.charts import BarLayer, LineSeries, line_chart, stacked_bar_chart
from repro.viz.matrix_svg import partition_svg
from repro.viz.svg import SvgCanvas


def figure4_svg(result) -> SvgCanvas:
    """Figure 4: runtime split of the most time-consuming cases.

    Stacked bars (packing vs SMT seconds) per hard case, real rank as
    the right-axis line — the same series the paper plots.
    """
    cases = result.top_cases()
    if not cases:
        raise ValueError("figure 4 result contains no cases")
    categories = [case.family for case in cases]
    packing = BarLayer(
        "packing heuristic", [case.packing_seconds for case in cases]
    )
    smt = BarLayer("SMT", [case.smt_seconds for case in cases])
    rank_line = LineSeries(
        "real rank", [case.real_rank for case in cases], stroke="#000000"
    )
    return stacked_bar_chart(
        categories,
        [packing, smt],
        title="Most time-consuming cases",
        y_label="runtime / sec",
        secondary=rank_line,
        secondary_label="real rank",
    )


# Map the Table I heuristic column names onto line-chart x positions.
def _trial_counts(heuristics: Sequence[str]) -> List[str]:
    counts = []
    for name in heuristics:
        if name.startswith("packing:"):
            counts.append(name.split(":", 1)[1])
    return counts


def table1_saturation_svg(result) -> SvgCanvas:
    """Table I as saturation curves: % optimal vs packing trials.

    One line per benchmark family; the paper's Observation 3 (row
    packing saturates around 100 trials) appears as the curves
    flattening to the right.
    """
    trial_labels = _trial_counts(result.config.heuristics)
    if not trial_labels:
        raise ValueError("result has no packing:<trials> heuristics")
    series = []
    for family in result.families():
        row = result.row(family)
        values = []
        for label in trial_labels:
            text = row[f"packing:{label}"]
            values.append(float(text.rstrip("%")) if text != "-" else 0.0)
        series.append(LineSeries(family, values))
    return line_chart(
        trial_labels,
        series,
        title="Row packing saturation (Table I columns)",
        y_label="% cases optimal",
        y_max=100.0,
    )


def partition_figure(
    matrix: BinaryMatrix,
    partition: Partition,
    *,
    with_fooling: bool = True,
    title: str = "",
    seed: Optional[int] = 0,
) -> SvgCanvas:
    """Figure 1b-style rendition: partition colors + fooling-set rings."""
    fooling = None
    if with_fooling:
        fooling = max_fooling_set(matrix, seed=seed)
    return partition_svg(
        matrix, partition, fooling_cells=fooling, title=title
    )
