"""Dependency-free SVG figure generation for the paper's charts."""

from repro.viz.charts import (
    BarLayer,
    LineSeries,
    axis_ticks,
    line_chart,
    nice_ceiling,
    stacked_bar_chart,
)
from repro.viz.figures import (
    figure4_svg,
    partition_figure,
    table1_saturation_svg,
)
from repro.viz.matrix_svg import matrix_svg, partition_svg
from repro.viz.palette import PALETTE, color
from repro.viz.svg import SvgCanvas

__all__ = [
    "BarLayer",
    "LineSeries",
    "PALETTE",
    "SvgCanvas",
    "axis_ticks",
    "color",
    "figure4_svg",
    "line_chart",
    "matrix_svg",
    "nice_ceiling",
    "partition_figure",
    "partition_svg",
    "stacked_bar_chart",
    "table1_saturation_svg",
]
