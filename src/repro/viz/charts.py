"""Chart builders on top of :class:`~repro.viz.svg.SvgCanvas`.

Two chart families cover the paper's evaluation figures:

* :func:`stacked_bar_chart` — Figure 4's layout: one bar per case,
  stacked into phases (packing vs SMT time), with an optional secondary
  line series on a right-hand axis (the real rank overlay).
* :func:`line_chart` — saturation curves, e.g. % optimal vs number of
  row-packing trials per benchmark family (the columns of Table I).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.viz.palette import AXIS_COLOR, GRID_COLOR, TEXT_COLOR, color
from repro.viz.svg import SvgCanvas

Margins = Tuple[float, float, float, float]  # top, right, bottom, left

DEFAULT_MARGINS: Margins = (36.0, 64.0, 56.0, 64.0)


def nice_ceiling(value: float) -> float:
    """Round up to a 1/2/5 x 10^k 'nice' axis maximum."""
    if value <= 0:
        return 1.0
    magnitude = 10 ** math.floor(math.log10(value))
    for multiplier in (1, 2, 5, 10):
        if value <= multiplier * magnitude:
            return float(multiplier * magnitude)
    return float(10 * magnitude)  # pragma: no cover - loop covers x10


def axis_ticks(maximum: float, count: int = 5) -> List[float]:
    """Evenly spaced ticks from 0 to ``maximum`` inclusive."""
    if maximum <= 0:
        return [0.0]
    return [maximum * i / count for i in range(count + 1)]


def _tick_label(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}".rstrip("0").rstrip(".")


@dataclass
class BarLayer:
    """One stack layer: a label and one value per category."""

    label: str
    values: Sequence[float]
    fill: Optional[str] = None


@dataclass
class LineSeries:
    """One polyline: a label and one y-value per x position."""

    label: str
    values: Sequence[float]
    stroke: Optional[str] = None
    markers: bool = True


def stacked_bar_chart(
    categories: Sequence[str],
    layers: Sequence[BarLayer],
    *,
    title: str = "",
    y_label: str = "",
    secondary: Optional[LineSeries] = None,
    secondary_label: str = "",
    width: float = 640.0,
    height: float = 360.0,
    margins: Margins = DEFAULT_MARGINS,
) -> SvgCanvas:
    """Grouped stacked bars with an optional right-axis line overlay."""
    if not categories:
        raise ValueError("need at least one category")
    for layer in layers:
        if len(layer.values) != len(categories):
            raise ValueError(
                f"layer {layer.label!r} has {len(layer.values)} values "
                f"for {len(categories)} categories"
            )
    if secondary is not None and len(secondary.values) != len(categories):
        raise ValueError("secondary series length must match categories")

    top, right, bottom, left = margins
    canvas = SvgCanvas(width, height)
    plot_w = width - left - right
    plot_h = height - top - bottom

    totals = [
        sum(layer.values[i] for layer in layers)
        for i in range(len(categories))
    ]
    y_max = nice_ceiling(max(totals) if totals else 1.0)

    # Gridlines + left axis ticks.
    for tick in axis_ticks(y_max):
        y = top + plot_h * (1 - tick / y_max)
        canvas.line(left, y, left + plot_w, y, stroke=GRID_COLOR)
        canvas.text(
            left - 6, y + 4, _tick_label(tick), size=10, anchor="end",
            fill=TEXT_COLOR,
        )
    canvas.line(left, top, left, top + plot_h, stroke=AXIS_COLOR)
    canvas.line(
        left, top + plot_h, left + plot_w, top + plot_h, stroke=AXIS_COLOR
    )
    if y_label:
        canvas.text(
            16, top + plot_h / 2, y_label, size=11, anchor="middle",
            rotate=-90, fill=TEXT_COLOR,
        )

    # Bars.
    slot = plot_w / len(categories)
    bar_w = slot * 0.55
    for index, category in enumerate(categories):
        x = left + slot * index + (slot - bar_w) / 2
        y_cursor = top + plot_h
        for layer_index, layer in enumerate(layers):
            value = layer.values[index]
            bar_h = plot_h * value / y_max
            y_cursor -= bar_h
            canvas.rect(
                x,
                y_cursor,
                bar_w,
                bar_h,
                fill=layer.fill or color(layer_index),
                stroke="#ffffff",
                stroke_width=0.5,
            )
        canvas.text(
            left + slot * index + slot / 2,
            top + plot_h + 16,
            category,
            size=10,
            anchor="middle",
            fill=TEXT_COLOR,
        )

    # Secondary line on a right-hand axis.
    if secondary is not None:
        s_max = nice_ceiling(max(secondary.values) if secondary.values else 1)
        points = []
        for index in range(len(categories)):
            x = left + slot * index + slot / 2
            y = top + plot_h * (1 - secondary.values[index] / s_max)
            points.append((x, y))
        stroke = secondary.stroke or "#000000"
        if len(points) >= 2:
            canvas.polyline(points, stroke=stroke, stroke_width=2.0)
        for x, y in points:
            canvas.circle(x, y, 3, fill=stroke)
        canvas.line(
            left + plot_w, top, left + plot_w, top + plot_h,
            stroke=AXIS_COLOR,
        )
        for tick in axis_ticks(s_max):
            y = top + plot_h * (1 - tick / s_max)
            canvas.text(
                left + plot_w + 6, y + 4, _tick_label(tick), size=10,
                anchor="start", fill=TEXT_COLOR,
            )
        if secondary_label:
            canvas.text(
                width - 14, top + plot_h / 2, secondary_label, size=11,
                anchor="middle", rotate=90, fill=TEXT_COLOR,
            )

    # Legend.
    legend_x = left
    legend_y = height - 12
    for layer_index, layer in enumerate(layers):
        fill = layer.fill or color(layer_index)
        canvas.rect(legend_x, legend_y - 9, 10, 10, fill=fill)
        canvas.text(
            legend_x + 14, legend_y, layer.label, size=10, fill=TEXT_COLOR
        )
        legend_x += 14 + 7 * len(layer.label) + 18
    if secondary is not None:
        canvas.line(
            legend_x, legend_y - 4, legend_x + 14, legend_y - 4,
            stroke=secondary.stroke or "#000000", stroke_width=2.0,
        )
        canvas.text(
            legend_x + 18, legend_y, secondary.label, size=10,
            fill=TEXT_COLOR,
        )

    if title:
        canvas.title(title)
    return canvas


def line_chart(
    x_labels: Sequence[str],
    series: Sequence[LineSeries],
    *,
    title: str = "",
    y_label: str = "",
    y_max: Optional[float] = None,
    width: float = 640.0,
    height: float = 360.0,
    margins: Margins = DEFAULT_MARGINS,
) -> SvgCanvas:
    """Multi-series line chart over ordinal x positions."""
    if not x_labels:
        raise ValueError("need at least one x position")
    if not series:
        raise ValueError("need at least one series")
    for entry in series:
        if len(entry.values) != len(x_labels):
            raise ValueError(
                f"series {entry.label!r} has {len(entry.values)} values "
                f"for {len(x_labels)} x positions"
            )

    top, right, bottom, left = margins
    canvas = SvgCanvas(width, height)
    plot_w = width - left - right
    plot_h = height - top - bottom

    peak = max(max(entry.values) for entry in series)
    maximum = y_max if y_max is not None else nice_ceiling(peak)
    if maximum <= 0:
        maximum = 1.0

    for tick in axis_ticks(maximum):
        y = top + plot_h * (1 - tick / maximum)
        canvas.line(left, y, left + plot_w, y, stroke=GRID_COLOR)
        canvas.text(
            left - 6, y + 4, _tick_label(tick), size=10, anchor="end",
            fill=TEXT_COLOR,
        )
    canvas.line(left, top, left, top + plot_h, stroke=AXIS_COLOR)
    canvas.line(
        left, top + plot_h, left + plot_w, top + plot_h, stroke=AXIS_COLOR
    )
    if y_label:
        canvas.text(
            16, top + plot_h / 2, y_label, size=11, anchor="middle",
            rotate=-90, fill=TEXT_COLOR,
        )

    slot = plot_w / max(1, len(x_labels) - 1) if len(x_labels) > 1 else 0.0
    for position, label in enumerate(x_labels):
        x = left + (slot * position if len(x_labels) > 1 else plot_w / 2)
        canvas.text(
            x, top + plot_h + 16, label, size=10, anchor="middle",
            fill=TEXT_COLOR,
        )

    for series_index, entry in enumerate(series):
        stroke = entry.stroke or color(series_index)
        points = []
        for position in range(len(x_labels)):
            x = left + (slot * position if len(x_labels) > 1 else plot_w / 2)
            y = top + plot_h * (1 - entry.values[position] / maximum)
            points.append((x, y))
        if len(points) >= 2:
            canvas.polyline(points, stroke=stroke, stroke_width=2.0)
        if entry.markers:
            for x, y in points:
                canvas.circle(x, y, 3, fill=stroke)

    legend_x = left
    legend_y = height - 12
    for series_index, entry in enumerate(series):
        stroke = entry.stroke or color(series_index)
        canvas.line(
            legend_x, legend_y - 4, legend_x + 14, legend_y - 4,
            stroke=stroke, stroke_width=2.0,
        )
        canvas.text(
            legend_x + 18, legend_y, entry.label, size=10, fill=TEXT_COLOR
        )
        legend_x += 18 + 7 * len(entry.label) + 16

    if title:
        canvas.title(title)
    return canvas
