"""Shared color palette for figures (Okabe-Ito, colorblind-safe)."""

from __future__ import annotations

from typing import List

# Okabe & Ito's qualitative palette, the de-facto colorblind-safe set.
PALETTE: List[str] = [
    "#0072B2",  # blue
    "#E69F00",  # orange
    "#009E73",  # bluish green
    "#D55E00",  # vermillion
    "#CC79A7",  # reddish purple
    "#56B4E9",  # sky blue
    "#F0E442",  # yellow
    "#999999",  # grey
]

AXIS_COLOR = "#444444"
GRID_COLOR = "#dddddd"
TEXT_COLOR = "#222222"


def color(index: int) -> str:
    """Cycle through the palette for arbitrarily many series."""
    return PALETTE[index % len(PALETTE)]
