"""SVG rendering of matrices, partitions, and fooling sets.

Reproduces the visual language of the paper's Figure 1b / Figure 3:
each rectangle of a partition gets its own color, cells show the 0/1
pattern, and fooling-set members are marked so their pairwise-conflict
certificate is visible against the colored partition.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidPartitionError
from repro.core.partition import Partition
from repro.viz.palette import AXIS_COLOR, TEXT_COLOR, color
from repro.viz.svg import SvgCanvas

Cell = Tuple[int, int]

_ZERO_FILL = "#f5f5f5"
_UNPARTITIONED_FILL = "#bbbbbb"


def matrix_svg(
    matrix: BinaryMatrix,
    *,
    cell_size: float = 26.0,
    title: str = "",
) -> SvgCanvas:
    """Plain 0/1 heatmap of a binary matrix."""
    return partition_svg(matrix, None, cell_size=cell_size, title=title)


def partition_svg(
    matrix: BinaryMatrix,
    partition: Optional[Partition],
    *,
    fooling_cells: Optional[Sequence[Cell]] = None,
    cell_size: float = 26.0,
    title: str = "",
    show_indices: bool = True,
) -> SvgCanvas:
    """Heatmap of ``matrix`` with partition rectangles color-coded.

    ``fooling_cells`` (e.g. from
    :func:`repro.core.fooling.max_fooling_set`) are drawn as rings —
    the optimality certificate of Figure 1b.
    """
    rows, cols = matrix.shape
    if partition is not None and partition.shape != matrix.shape:
        raise InvalidPartitionError(
            f"partition shape {partition.shape} does not match "
            f"matrix shape {matrix.shape}"
        )
    margin_left = 34.0 if show_indices else 10.0
    margin_top = (34.0 if show_indices else 10.0) + (24.0 if title else 0.0)
    legend_h = 26.0 if partition is not None else 0.0
    width = margin_left + cols * cell_size + 10.0
    height = margin_top + rows * cell_size + 10.0 + legend_h
    canvas = SvgCanvas(width, height)

    cell_color = {}
    if partition is not None:
        for index, rectangle in enumerate(partition):
            for i in rectangle.rows:
                for j in rectangle.cols:
                    cell_color[(i, j)] = color(index)

    for i in range(rows):
        for j in range(cols):
            x = margin_left + j * cell_size
            y = margin_top + i * cell_size
            if matrix[i, j]:
                fill = cell_color.get((i, j), _UNPARTITIONED_FILL)
                if partition is None:
                    fill = "#333333"
            else:
                fill = _ZERO_FILL
            canvas.rect(
                x, y, cell_size, cell_size,
                fill=fill, stroke="#ffffff", stroke_width=1.0,
            )
            if matrix[i, j]:
                canvas.text(
                    x + cell_size / 2,
                    y + cell_size / 2 + 4,
                    "1",
                    size=cell_size * 0.42,
                    anchor="middle",
                    fill="#ffffff",
                )

    if fooling_cells:
        for i, j in fooling_cells:
            if not matrix[i, j]:
                raise InvalidPartitionError(
                    f"fooling cell ({i}, {j}) is a 0 of the matrix"
                )
            canvas.circle(
                margin_left + j * cell_size + cell_size / 2,
                margin_top + i * cell_size + cell_size / 2,
                cell_size * 0.33,
                fill="none",
                stroke="#000000",
            )

    if show_indices:
        for i in range(rows):
            canvas.text(
                margin_left - 8,
                margin_top + i * cell_size + cell_size / 2 + 4,
                str(i),
                size=10,
                anchor="end",
                fill=AXIS_COLOR,
            )
        for j in range(cols):
            canvas.text(
                margin_left + j * cell_size + cell_size / 2,
                margin_top - 8,
                str(j),
                size=10,
                anchor="middle",
                fill=AXIS_COLOR,
            )

    if partition is not None:
        legend_y = margin_top + rows * cell_size + 18
        x = margin_left
        for index, rectangle in enumerate(partition):
            canvas.rect(x, legend_y - 9, 10, 10, fill=color(index))
            label = f"P{index} {len(rectangle.rows)}x{len(rectangle.cols)}"
            canvas.text(x + 13, legend_y, label, size=9, fill=TEXT_COLOR)
            x += 13 + 6 * len(label) + 10

    if title:
        canvas.text(
            width / 2, 16, title, size=13, anchor="middle", bold=True
        )
    return canvas
