"""A minimal, dependency-free SVG document builder.

The experiment runners emit their figures as SVG so the paper's charts
(Figure 1b's marked partition, Figure 4's runtime bars) can be
regenerated without matplotlib, which is not available offline.  Output
is deterministic: attributes are written in a fixed order and all
coordinates are rounded to a fixed precision, so figures can be
snapshot-tested.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape


def _fmt(value: float) -> str:
    """Fixed-precision coordinate formatting (trailing zeros trimmed)."""
    text = f"{value:.2f}"
    return text.rstrip("0").rstrip(".") if "." in text else text


class SvgCanvas:
    """Accumulates SVG elements and serializes them deterministically."""

    def __init__(self, width: float, height: float) -> None:
        if width <= 0 or height <= 0:
            raise ValueError(
                f"canvas must have positive size, got {width}x{height}"
            )
        self.width = width
        self.height = height
        self._elements: List[str] = []

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def rect(
        self,
        x: float,
        y: float,
        width: float,
        height: float,
        *,
        fill: str = "none",
        stroke: Optional[str] = None,
        stroke_width: float = 1.0,
        opacity: Optional[float] = None,
        rx: Optional[float] = None,
    ) -> None:
        parts = [
            f'<rect x="{_fmt(x)}" y="{_fmt(y)}"',
            f'width="{_fmt(width)}" height="{_fmt(height)}"',
            f'fill="{fill}"',
        ]
        if stroke is not None:
            parts.append(f'stroke="{stroke}" stroke-width="{_fmt(stroke_width)}"')
        if opacity is not None:
            parts.append(f'opacity="{_fmt(opacity)}"')
        if rx is not None:
            parts.append(f'rx="{_fmt(rx)}"')
        self._elements.append(" ".join(parts) + "/>")

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        *,
        stroke: str = "#000000",
        stroke_width: float = 1.0,
        dash: Optional[str] = None,
    ) -> None:
        parts = [
            f'<line x1="{_fmt(x1)}" y1="{_fmt(y1)}"',
            f'x2="{_fmt(x2)}" y2="{_fmt(y2)}"',
            f'stroke="{stroke}" stroke-width="{_fmt(stroke_width)}"',
        ]
        if dash is not None:
            parts.append(f'stroke-dasharray="{dash}"')
        self._elements.append(" ".join(parts) + "/>")

    def circle(
        self,
        cx: float,
        cy: float,
        r: float,
        *,
        fill: str = "#000000",
        stroke: Optional[str] = None,
    ) -> None:
        parts = [
            f'<circle cx="{_fmt(cx)}" cy="{_fmt(cy)}" r="{_fmt(r)}"',
            f'fill="{fill}"',
        ]
        if stroke is not None:
            parts.append(f'stroke="{stroke}"')
        self._elements.append(" ".join(parts) + "/>")

    def polyline(
        self,
        points: Sequence[Tuple[float, float]],
        *,
        stroke: str = "#000000",
        stroke_width: float = 1.5,
        fill: str = "none",
    ) -> None:
        if len(points) < 2:
            raise ValueError("polyline needs at least two points")
        joined = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self._elements.append(
            f'<polyline points="{joined}" fill="{fill}" '
            f'stroke="{stroke}" stroke-width="{_fmt(stroke_width)}"/>'
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        *,
        size: float = 12.0,
        anchor: str = "start",
        fill: str = "#000000",
        rotate: Optional[float] = None,
        bold: bool = False,
    ) -> None:
        transform = (
            f' transform="rotate({_fmt(rotate)} {_fmt(x)} {_fmt(y)})"'
            if rotate is not None
            else ""
        )
        weight = ' font-weight="bold"' if bold else ""
        self._elements.append(
            f'<text x="{_fmt(x)}" y="{_fmt(y)}" font-size="{_fmt(size)}" '
            f'font-family="sans-serif" text-anchor="{anchor}" '
            f'fill="{fill}"{weight}{transform}>{escape(content)}</text>'
        )

    def title(self, content: str) -> None:
        self.text(
            self.width / 2,
            18,
            content,
            size=14,
            anchor="middle",
            bold=True,
        )

    # ------------------------------------------------------------------
    def to_string(self) -> str:
        header = (
            '<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{_fmt(self.width)}" height="{_fmt(self.height)}" '
            f'viewBox="0 0 {_fmt(self.width)} {_fmt(self.height)}">'
        )
        body = "\n".join(f"  {element}" for element in self._elements)
        return f"{header}\n{body}\n</svg>\n"

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(self.to_string())

    @property
    def num_elements(self) -> int:
        return len(self._elements)
