"""Command-line interface: solve patterns and compile schedules.

Usage (also installed as ``python -m repro``):

    python -m repro rank PATTERN_FILE [--budget SECONDS]
    python -m repro solve PATTERN_FILE [--heuristic-only] [--trials N]
    python -m repro solve-batch PATTERN_FILE [...] [--workers N] [--cache F]
    python -m repro serve [--socket PATH] [--workers N] [--cache-dir DIR]
    python -m repro gateway [--host H] [--port P] [--tenants FILE]
    python -m repro submit PATTERN_FILE [...] [--socket PATH | --connect tcp://H:P]
    python -m repro health [--socket PATH | --connect tcp://H:P]
    python -m repro scoreboard {run|diff|update-baseline|list} [--smoke]
    python -m repro cache {stats|gc|prewarm} DIR [--max-bytes N] [...]
    python -m repro lint [PATHS...] [--format json] [--update-baseline]
    python -m repro compile PATTERN_FILE [--theta T] [--vacancy-char C]
    python -m repro bounds PATTERN_FILE
    python -m repro audit PATTERN_FILE [--budget SECONDS]
    python -m repro legalize PATTERN_FILE [--max-row-tones N] [...]
    python -m repro render PATTERN_FILE OUTPUT.svg
    python -m repro examples

A pattern file holds one row per line using '0'/'1' (and optionally a
vacancy character, default '*', for ``compile``, which then exploits the
vacancies as don't-cares).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.atoms.array import QubitArray
from repro.atoms.compiler import compile_addressing
from repro.atoms.simulator import AddressingSimulator
from repro.completion.masked import MaskedMatrix
from repro.core.binary_matrix import BinaryMatrix
from repro.core.bounds import rank_lower_bound, trivial_upper_bound
from repro.core.fooling import fooling_number
from repro.core.render import render_matrix, render_partition, render_side_by_side
from repro.solvers.row_packing import PackingOptions, row_packing
from repro.solvers.sap import SapOptions, sap_solve


def _read_lines(path: str) -> List[str]:
    if path == "-":
        return [line.strip() for line in sys.stdin if line.strip()]
    with open(path) as stream:
        return [line.strip() for line in stream if line.strip()]


def _read_pattern(path: str) -> BinaryMatrix:
    return BinaryMatrix.from_strings(_read_lines(path))


def cmd_rank(args: argparse.Namespace) -> int:
    matrix = _read_pattern(args.pattern)
    result = sap_solve(
        matrix,
        options=SapOptions(
            trials=args.trials, seed=args.seed, time_budget=args.budget
        ),
    )
    print(f"shape:        {matrix.num_rows}x{matrix.num_cols}")
    print(f"ones:         {matrix.count_ones()}")
    print(f"real rank:    {rank_lower_bound(matrix)}")
    print(f"fooling:      {fooling_number(matrix, max_cells=96)}")
    print(f"trivial ub:   {trivial_upper_bound(matrix)}")
    if result.proved_optimal:
        print(f"binary rank:  {result.depth} (proven)")
    else:
        print(
            f"binary rank:  in [{result.lower_bound}, {result.depth}] "
            f"(budget exhausted)"
        )
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    matrix = _read_pattern(args.pattern)
    if args.heuristic_only:
        partition = row_packing(
            matrix,
            options=PackingOptions(trials=args.trials, seed=args.seed),
        )
        proved = partition.depth <= rank_lower_bound(matrix)
    else:
        result = sap_solve(
            matrix,
            options=SapOptions(
                trials=args.trials, seed=args.seed, time_budget=args.budget
            ),
        )
        partition = result.partition
        proved = result.proved_optimal
    print(
        f"depth {partition.depth}"
        + (" (proven optimal)" if proved else " (upper bound)")
    )
    print(
        render_side_by_side(
            render_matrix(matrix), render_partition(partition, matrix)
        )
    )
    return 0


def cmd_solve_batch(args: argparse.Namespace) -> int:
    from repro.core.exceptions import ReproError
    from repro.experiments.common import write_json
    from repro.service.batch import solve_batch
    from repro.service.cache import ResultCache
    from repro.utils.tables import format_table

    members = tuple(spec for spec in args.members.split(",") if spec)
    try:
        items = [(path, _read_pattern(path)) for path in args.patterns]
        cache = None
        if args.cache and args.cache_dir:
            print("error: pass --cache or --cache-dir, not both",
                  file=sys.stderr)
            return 2
        if args.cache:
            cache = ResultCache(path=args.cache)
        elif args.cache_dir:
            cache = ResultCache.sharded(args.cache_dir)
        records = solve_batch(
            items,
            members=members,
            seed=args.seed,
            workers=args.workers,
            cache=cache,
            budget_per_instance=args.budget,
            race=args.race,
        )
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = [
        [
            record.case_id,
            f"{record.result.partition.shape[0]}x"
            f"{record.result.partition.shape[1]}",
            record.depth,
            record.result.winner,
            "yes" if record.result.optimal else "no",
            "hit" if record.from_cache else "miss",
            f"{record.result.wall_seconds:.3f}s",
        ]
        for record in records
    ]
    print(
        format_table(
            ["pattern", "shape", "depth", "winner", "optimal", "cache", "time"],
            rows,
            title=f"portfolio batch — {len(records)} instances, "
            f"{args.workers} worker(s), members: {', '.join(members)}",
        )
    )
    if cache is not None:
        stats = cache.stats
        target = args.cache or args.cache_dir
        print(f"cache: {stats.hits} hits, {stats.misses} misses -> {target}")
    if args.json:
        try:
            write_json(args.json, [record.provenance() for record in records])
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"wrote {args.json}")
    return 0


def _server_cache(args: argparse.Namespace):
    """Shared --cache/--cache-dir resolution for serve/gateway."""
    from repro.service.cache import ResultCache

    if args.cache and args.cache_dir:
        print("error: pass --cache or --cache-dir, not both",
              file=sys.stderr)
        return 2, None
    if args.cache:
        return 0, ResultCache(path=args.cache)
    if args.cache_dir:
        return 0, ResultCache.sharded(args.cache_dir)
    return 0, None


def _traffic_policy(args: argparse.Namespace):
    """Shared tenancy/admission resolution for serve/gateway."""
    from repro.server.tenancy import AdmissionController, TenantRegistry

    tenants = (
        TenantRegistry.from_file(args.tenants) if args.tenants else None
    )
    admission = None
    if args.max_in_flight is not None or args.max_waiting is not None:
        admission = AdmissionController(
            max_in_flight=args.max_in_flight or 4,
            max_waiting=16 if args.max_waiting is None else args.max_waiting,
        )
    return tenants, admission


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.exceptions import ReproError
    from repro.server.daemon import default_socket_path, run_daemon

    members = tuple(spec for spec in args.members.split(",") if spec)
    socket_path = args.socket or default_socket_path()
    cache = None
    try:
        status, cache = _server_cache(args)
        if status:
            return status
        tenants, admission = _traffic_policy(args)
        print(
            f"serving on {socket_path} "
            f"(workers={args.workers}, executor={args.executor}, "
            f"members: {', '.join(members)}, race={args.race}); "
            f"submit with: "
            f"python -m repro submit PATTERN --socket {socket_path}"
        )
        return run_daemon(
            socket_path,
            tenants=tenants,
            admission=admission,
            members=members,
            seed=args.seed,
            workers=args.workers,
            cache=cache,
            budget_per_instance=args.budget,
            race=args.race,
            executor=args.executor,
        )
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if cache is not None:
            cache.flush()


def cmd_gateway(args: argparse.Namespace) -> int:
    from repro.core.exceptions import ReproError
    from repro.server.gateway import run_gateway
    from repro.server.tenancy import AdmissionController

    members = tuple(spec for spec in args.members.split(",") if spec)
    cache = None
    try:
        status, cache = _server_cache(args)
        if status:
            return status
        tenants, admission = _traffic_policy(args)
        if admission is None:
            # The TCP front always runs admission control: unbounded
            # queues are exactly what it exists to prevent.
            admission = AdmissionController()

        def banner(gateway) -> None:
            # After bind, so --port 0 advertises the real ephemeral port.
            print(
                f"gateway on {gateway.host}:{gateway.port} "
                f"(workers={args.workers}, executor={args.executor}, "
                f"members: {', '.join(members)}, race={args.race}); "
                f"submit with: python -m repro submit PATTERN "
                f"--connect tcp://{gateway.host}:{gateway.port}",
                flush=True,
            )

        return run_gateway(
            args.host,
            args.port,
            tenants=tenants,
            admission=admission,
            on_ready=banner,
            members=members,
            seed=args.seed,
            workers=args.workers,
            cache=cache,
            budget_per_instance=args.budget,
            race=args.race,
            executor=args.executor,
        )
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if cache is not None:
            cache.flush()


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.core.exceptions import ReproError
    from repro.experiments.common import write_json
    from repro.server import client
    from repro.server.daemon import default_socket_path
    from repro.utils.tables import format_table

    address = args.connect or args.socket or default_socket_path()
    retry = None
    if args.retries:
        retry = client.RetryPolicy(max_attempts=args.retries + 1)
    options = {}
    if args.members:
        options["members"] = tuple(
            spec for spec in args.members.split(",") if spec
        )
    if args.seed is not None:
        options["seed"] = args.seed
    if args.budget is not None:
        options["budget_per_instance"] = args.budget
    if args.race:
        options["race"] = args.race
    if args.tenant:
        options["tenant"] = args.tenant
    if args.key:
        options["key"] = args.key
    if args.priority is not None:
        options["priority"] = args.priority
    records = []
    try:
        cases = [(path, _read_pattern(path)) for path in args.patterns]
        for event in client.submit(
            address, cases, timeout=args.timeout, retry=retry, **options
        ):
            kind = event.get("event")
            case_id = event.get("case_id", "")
            if kind == "member_finished":
                depth = event.get("depth")
                print(
                    f"  {case_id}: {event.get('member')} -> "
                    f"{'depth ' + str(depth) if depth is not None else 'no result'}"
                )
            elif kind == "done":
                records.append(event)
                source = "cache" if event.get("from_cache") else "solved"
                if event.get("degraded"):
                    source += ", degraded"
                if event.get("retried"):
                    source += ", retried"
                print(f"{case_id}: depth {event.get('depth')} ({source})")
            elif kind == "worker_crashed":
                print(
                    f"  {case_id}: worker crashed, retrying "
                    f"({event.get('error')})"
                )
            elif kind == "client_retry":
                print(
                    f"  reconnecting (attempt {event.get('attempt')}, "
                    f"{event.get('remaining')} case(s) left): "
                    f"{event.get('reason')}",
                    file=sys.stderr,
                )
            elif kind in ("cancelled", "failed"):
                records.append(event)
                print(f"{case_id}: {kind} ({event.get('error')})")
            elif kind in ("queued", "started"):
                print(f"  {case_id}: {kind}")
    except (ReproError, OSError) as error:
        retry_after = getattr(error, "retry_after", None)
        if retry_after is not None:
            print(
                f"error: {error} (retry after {retry_after:g}s)",
                file=sys.stderr,
            )
        else:
            print(f"error: {error}", file=sys.stderr)
        return 2
    done = [e for e in records if e.get("event") == "done"]
    rows = [
        [
            event.get("case_id"),
            event.get("depth"),
            event.get("provenance", {}).get("winner", "-"),
            "yes" if event.get("provenance", {}).get("optimal") else "no",
            "hit" if event.get("from_cache") else "miss",
        ]
        for event in done
    ]
    if rows:
        print(
            format_table(
                ["pattern", "depth", "winner", "optimal", "cache"],
                rows,
                title=f"daemon batch — {len(done)}/{len(records)} solved",
            )
        )
    if args.json:
        try:
            write_json(
                args.json, [event.get("provenance") for event in done]
            )
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"wrote {args.json}")
    return 0 if len(done) == len(records) else 1


def cmd_health(args: argparse.Namespace) -> int:
    """Probe a running front's health op (exit 0 only when ready)."""
    import json as json_module

    from repro.core.exceptions import ReproError
    from repro.server import client
    from repro.server.daemon import default_socket_path

    address = args.connect or args.socket or default_socket_path()
    try:
        payload = client.request_once(
            address, {"op": "health"}, timeout=args.timeout
        )
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(json_module.dumps(payload, indent=2, sort_keys=True))
    return 0 if payload.get("status") == "ready" else 1


def cmd_compile(args: argparse.Namespace) -> int:
    lines = _read_lines(args.pattern)
    vacancy = args.vacancy_char
    has_vacancies = any(vacancy in line for line in lines)
    if has_vacancies:
        masked = MaskedMatrix.from_strings(
            [line.replace(vacancy, "*") for line in lines]
        )
        target = masked.ones_matrix
        vacancies = list(masked.dont_care_matrix.ones())
        array = QubitArray.with_vacancies(
            target.num_rows, target.num_cols, vacancies
        )
    else:
        target = BinaryMatrix.from_strings(lines)
        array = QubitArray.full(target.num_rows, target.num_cols)

    result = compile_addressing(
        array,
        target,
        theta=args.theta,
        strategy="packing" if args.heuristic_only else "sap",
        exploit_vacancies=has_vacancies,
        trials=args.trials,
        seed=args.seed,
        time_budget=args.budget,
    )
    report = AddressingSimulator(array).verify(result.schedule, target)
    print(f"depth {result.depth}; {report.summary()}")
    for step, operation in enumerate(result.schedule):
        config = operation.configuration
        print(
            f"  step {step}: rows {sorted(config.rows)} "
            f"cols {sorted(config.cols)} Rz({operation.pulse.theta})"
        )
    return 0 if report.ok else 1


def cmd_bounds(args: argparse.Namespace) -> int:
    matrix = _read_pattern(args.pattern)
    from repro.core.bounds import binary_rank_bounds

    small = matrix.num_rows <= 12 and matrix.num_cols <= 12
    bounds = binary_rank_bounds(
        matrix, use_fooling=True, use_lp=small, seed=args.seed
    )
    print(f"shape:            {matrix.num_rows}x{matrix.num_cols}")
    print(f"rank bound:       {bounds.rank_bound}   (Eq. 3)")
    print(f"fooling bound:    {bounds.fooling_bound}")
    if bounds.lp_bound is not None:
        print(f"LP cover bound:   {bounds.lp_bound}   (fractional cover)")
    else:
        print("LP cover bound:   skipped (matrix too large)")
    print(f"trivial upper:    {bounds.upper}")
    print(f"bracket:          [{bounds.lower}, {bounds.upper}]"
          + ("  TIGHT" if bounds.is_tight else ""))
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.core.reductions import reduce_matrix
    from repro.sat.proof import proof_stats
    from repro.sat.solver import SolveStatus
    from repro.smt.oracle import RankDecisionOracle

    matrix = _read_pattern(args.pattern)
    upper = row_packing(
        matrix, options=PackingOptions(trials=args.trials, seed=args.seed)
    ).depth
    lower = rank_lower_bound(matrix)
    if upper <= lower:
        print(f"binary rank {upper} certified by Eq. 3 alone; no SAT proof needed")
        return 0
    reduced = reduce_matrix(matrix)
    oracle = RankDecisionOracle(reduced.matrix, proof=True)
    bound = upper - 1
    while bound >= lower:
        status, partition = oracle.check_at_most(bound, time_budget=args.budget)
        if status is SolveStatus.SAT:
            bound = partition.depth - 1
            continue
        if status is SolveStatus.UNSAT:
            break
        print(f"budget exhausted; binary rank in [{lower}, {bound + 1}]")
        return 1
    rank = bound + 1
    print(f"binary rank: {rank}")
    if oracle.proof_log is not None and oracle.proof_log.refuted:
        stats = proof_stats(oracle.proof_log)
        oracle.verify_refutation()
        print(
            f"UNSAT certificate verified: {stats['axioms']} axioms, "
            f"{stats['learned']} learned clauses"
        )
    else:
        print("optimality by Eq. 3 bound (no UNSAT step required)")
    return 0


def cmd_legalize(args: argparse.Namespace) -> int:
    from repro.atoms.constraints import AodConstraints
    from repro.atoms.legalize import legalize_schedule
    from repro.atoms.schedule import AddressingSchedule

    matrix = _read_pattern(args.pattern)
    partition = row_packing(
        matrix, options=PackingOptions(trials=args.trials, seed=args.seed)
    )
    schedule = AddressingSchedule.from_partition(partition, theta=args.theta)
    constraints = AodConstraints(
        max_row_tones=args.max_row_tones,
        max_col_tones=args.max_col_tones,
        min_row_spacing=args.min_row_spacing,
        min_col_spacing=args.min_col_spacing,
        max_total_tones=args.max_total_tones,
    )
    result = legalize_schedule(schedule, constraints)
    array = QubitArray.full(*matrix.shape)
    report = AddressingSimulator(array).verify(result.schedule, matrix)
    print(f"ideal depth:     {result.original_depth}")
    print(f"legal depth:     {result.depth}  ({result.inflation:.2f}x)")
    print(f"split steps:     {result.split_operations}")
    print(f"verification:    {report.summary()}")
    return 0 if report.ok else 1


def cmd_render(args: argparse.Namespace) -> int:
    from repro.viz.figures import partition_figure

    matrix = _read_pattern(args.pattern)
    result = sap_solve(
        matrix,
        options=SapOptions(
            trials=args.trials, seed=args.seed, time_budget=args.budget
        ),
    )
    title = (
        f"depth-{result.depth} partition"
        + (" (optimal)" if result.proved_optimal else " (upper bound)")
    )
    canvas = partition_figure(
        matrix,
        result.partition,
        with_fooling=matrix.count_ones() <= 96,
        title=title,
    )
    canvas.write(args.output)
    print(f"wrote {args.output} ({title})")
    return 0


def cmd_examples(_args: argparse.Namespace) -> int:
    print(__doc__)
    print("Bundled runnable examples:")
    for name in (
        "quickstart",
        "row_packing_trace",
        "neutral_atom_addressing",
        "ftqc_two_level",
        "qldpc_memory",
        "cover_vs_partition",
        "aod_hardware_limits",
        "proof_audit",
        "vacancy_dont_cares",
        "tensor_rank_search",
        "render_figures",
    ):
        print(f"  python examples/{name}.py")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("pattern", help="pattern file, or '-' for stdin")
        p.add_argument("--trials", type=int, default=32)
        p.add_argument("--seed", type=int, default=2024)
        p.add_argument("--budget", type=float, default=30.0)

    p_rank = sub.add_parser("rank", help="bounds and exact binary rank")
    common(p_rank)
    p_rank.set_defaults(func=cmd_rank)

    p_solve = sub.add_parser("solve", help="compute a rectangle partition")
    common(p_solve)
    p_solve.add_argument("--heuristic-only", action="store_true")
    p_solve.set_defaults(func=cmd_solve)

    p_batch = sub.add_parser(
        "solve-batch",
        help="race the solver portfolio over many patterns",
    )
    p_batch.add_argument(
        "patterns", nargs="+", help="pattern files (one instance each)"
    )
    p_batch.add_argument(
        "--members", default="trivial,packing:32,sap",
        help="comma-separated portfolio members (default trivial,packing:32,sap)",
    )
    p_batch.add_argument("--workers", type=int, default=1)
    p_batch.add_argument("--seed", type=int, default=2024)
    p_batch.add_argument(
        "--budget", type=float, default=None,
        help="wall-clock budget per instance (seconds; default unlimited)",
    )
    p_batch.add_argument(
        "--cache", default=None,
        help="JSON result-cache file (read if present, written after the batch)",
    )
    p_batch.add_argument(
        "--cache-dir", default=None,
        help="sharded result-cache directory (safe to share between "
        "concurrent runners; migrates a --cache file given its path)",
    )
    p_batch.add_argument(
        "--race", default="sequential",
        choices=["sequential", "concurrent"],
        help="run exact backends sequentially or as a cancel-the-losers race",
    )
    p_batch.add_argument("--json", default=None, help="provenance output path")
    p_batch.set_defaults(func=cmd_solve_batch)

    def server_flags(p: argparse.ArgumentParser) -> None:
        """Engine + traffic-policy flags shared by serve and gateway."""
        p.add_argument(
            "--members", default="trivial,packing:32,sap",
            help="default portfolio members (requests may override)",
        )
        p.add_argument("--workers", type=int, default=1)
        p.add_argument("--seed", type=int, default=2024)
        p.add_argument(
            "--budget", type=float, default=None,
            help="default wall-clock budget per instance (seconds)",
        )
        p.add_argument(
            "--cache", default=None, help="JSON result-cache file"
        )
        p.add_argument(
            "--cache-dir", default=None, help="sharded result-cache directory"
        )
        p.add_argument(
            "--race", default="sequential",
            choices=["sequential", "concurrent"],
        )
        p.add_argument(
            "--executor", default="thread", choices=["thread", "process"],
            help="solve in threads (live cancel) or a process pool "
            "(multi-core; member events stream over a manager queue)",
        )
        p.add_argument(
            "--tenants", default=None,
            help="JSON tenancy config: per-tenant priority, quota, key "
            "(see repro.server.tenancy.TenantRegistry.from_mapping)",
        )
        p.add_argument(
            "--max-in-flight", type=int, default=None,
            help="admission window: concurrent requests before queueing",
        )
        p.add_argument(
            "--max-waiting", type=int, default=None,
            help="admission queue bound; beyond it requests are rejected "
            "with a retry_after hint",
        )

    p_serve = sub.add_parser(
        "serve",
        help="long-lived streaming solve daemon on a unix socket",
    )
    p_serve.add_argument(
        "--socket", default=None,
        help="unix socket path (default: $XDG_RUNTIME_DIR/repro-solve-UID.sock)",
    )
    server_flags(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_gateway = sub.add_parser(
        "gateway",
        help="multi-tenant TCP front: quotas, priorities, admission control",
    )
    p_gateway.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default loopback; terminate TLS upstream "
        "before exposing further)",
    )
    p_gateway.add_argument(
        "--port", type=int, default=7341,
        help="TCP port (default 7341; 0 binds an ephemeral port)",
    )
    server_flags(p_gateway)
    p_gateway.set_defaults(func=cmd_gateway)

    p_submit = sub.add_parser(
        "submit",
        help="stream patterns through a running solve daemon",
    )
    p_submit.add_argument(
        "patterns", nargs="+", help="pattern files (one instance each)"
    )
    p_submit.add_argument("--socket", default=None, help="daemon socket path")
    p_submit.add_argument(
        "--connect", default=None,
        help="TCP gateway address (tcp://host:port); overrides --socket",
    )
    p_submit.add_argument(
        "--tenant", default=None,
        help="tenant identity for quota/priority accounting",
    )
    p_submit.add_argument(
        "--key", default=None, help="tenant shared key, if configured"
    )
    p_submit.add_argument(
        "--priority", type=int, default=None,
        help="priority class for this request (lower = served sooner; "
        "clamped to the tenant's configured class)",
    )
    p_submit.add_argument(
        "--members", default=None,
        help="comma-separated member override for this request",
    )
    p_submit.add_argument("--seed", type=int, default=None)
    p_submit.add_argument(
        "--budget", type=float, default=None,
        help="wall-clock budget per instance (seconds)",
    )
    p_submit.add_argument(
        "--race", default=None, choices=["sequential", "concurrent"],
    )
    p_submit.add_argument(
        "--timeout", type=float, default=300.0,
        help="per-read socket timeout (seconds)",
    )
    p_submit.add_argument(
        "--retries", type=int, default=0,
        help="retry transient failures (connection loss, saturation) "
        "up to N times with backoff, resuming unfinished cases",
    )
    p_submit.add_argument("--json", default=None, help="provenance output path")
    p_submit.set_defaults(func=cmd_submit)

    p_health = sub.add_parser(
        "health",
        help="probe a running front: ready / degraded / draining",
    )
    p_health.add_argument("--socket", default=None, help="daemon socket path")
    p_health.add_argument(
        "--connect", default=None,
        help="TCP gateway address (tcp://host:port); overrides --socket",
    )
    p_health.add_argument(
        "--timeout", type=float, default=10.0,
        help="socket timeout (seconds)",
    )
    p_health.set_defaults(func=cmd_health)

    from repro.corpus.cli import add_scoreboard_parser

    add_scoreboard_parser(sub)

    from repro.server.cache_cli import add_cache_parser

    add_cache_parser(sub)

    from repro.analysis.cli import add_lint_parser

    add_lint_parser(sub)

    p_compile = sub.add_parser(
        "compile", help="compile and verify an AOD schedule"
    )
    common(p_compile)
    p_compile.add_argument("--theta", type=float, default=1.0)
    p_compile.add_argument("--heuristic-only", action="store_true")
    p_compile.add_argument(
        "--vacancy-char", default="*",
        help="character marking vacant sites (default '*')",
    )
    p_compile.set_defaults(func=cmd_compile)

    p_bounds = sub.add_parser(
        "bounds", help="all lower/upper bounds without exact solving"
    )
    common(p_bounds)
    p_bounds.set_defaults(func=cmd_bounds)

    p_audit = sub.add_parser(
        "audit", help="exact rank with a verified UNSAT certificate"
    )
    common(p_audit)
    p_audit.set_defaults(func=cmd_audit)

    p_legalize = sub.add_parser(
        "legalize", help="legalize a schedule under AOD constraints"
    )
    common(p_legalize)
    p_legalize.add_argument("--theta", type=float, default=1.0)
    p_legalize.add_argument("--max-row-tones", type=int, default=None)
    p_legalize.add_argument("--max-col-tones", type=int, default=None)
    p_legalize.add_argument("--min-row-spacing", type=int, default=1)
    p_legalize.add_argument("--min-col-spacing", type=int, default=1)
    p_legalize.add_argument("--max-total-tones", type=int, default=None)
    p_legalize.set_defaults(func=cmd_legalize)

    p_render = sub.add_parser(
        "render", help="render the optimal partition as an SVG figure"
    )
    common(p_render)
    p_render.add_argument("output", help="output SVG path")
    p_render.set_defaults(func=cmd_render)

    p_examples = sub.add_parser("examples", help="list bundled examples")
    p_examples.set_defaults(func=cmd_examples)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.core.exceptions import ReproError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as error:
        # Missing pattern files, bad specs, unreachable servers: one
        # clean diagnostic and exit 2, never a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
