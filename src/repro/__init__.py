"""repro — depth-optimal rectangular addressing of 2D qubit arrays.

A full reproduction of "Depth-Optimal Addressing of 2D Qubit Array with
1D Controls Based on Exact Binary Matrix Factorization" (Tan, Ping,
Cong; DATE 2024).  The public API re-exports the pieces a user needs to
go from a target pattern to a verified, depth-minimized AOD schedule:

    >>> from repro import BinaryMatrix, sap_solve
    >>> pattern = BinaryMatrix.from_strings(["110", "011", "111"])
    >>> result = sap_solve(pattern)
    >>> result.depth, result.proved_optimal
    (3, True)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.atoms import (
    AddressingSchedule,
    AddressingSimulator,
    AodConfiguration,
    AodConstraints,
    QubitArray,
    compile_addressing,
    legalize_schedule,
)
from repro.core import (
    BinaryMatrix,
    Partition,
    Rectangle,
    binary_rank_bounds,
    fooling_number,
    max_fooling_set,
    rank_lower_bound,
    reduce_matrix,
    trivial_upper_bound,
)
from repro.completion import (
    MaskedMatrix,
    masked_minimum_addressing,
    masked_row_packing,
)
from repro.cover import (
    boolean_rank,
    greedy_cover,
    lp_lower_bound,
    maximal_rectangles,
    minimum_cover,
)
from repro.corpus import build_corpus, run_scoreboard
from repro.sat import ProofLog, check_refutation
from repro.ftqc import (
    tensor_partition,
    tensor_rank_bounds,
    two_level_solve,
)
from repro.linalg import gf2_rank, real_rank
from repro.server import AsyncSolveEngine, SolveEvent
from repro.service import (
    PortfolioBudget,
    PortfolioResult,
    ResultCache,
    solve_batch,
    solve_portfolio,
)
from repro.solvers import (
    PackingOptions,
    SapOptions,
    SapResult,
    SapStatus,
    binary_rank,
    binary_rank_branch_bound,
    row_packing,
    row_packing_x,
    sap_solve,
    trivial_partition,
)

__version__ = "1.0.0"

__all__ = [
    "AddressingSchedule",
    "AddressingSimulator",
    "AodConfiguration",
    "AodConstraints",
    "AsyncSolveEngine",
    "BinaryMatrix",
    "MaskedMatrix",
    "PackingOptions",
    "Partition",
    "PortfolioBudget",
    "PortfolioResult",
    "QubitArray",
    "Rectangle",
    "ResultCache",
    "SapOptions",
    "SapResult",
    "SapStatus",
    "SolveEvent",
    "__version__",
    "binary_rank",
    "binary_rank_bounds",
    "binary_rank_branch_bound",
    "boolean_rank",
    "build_corpus",
    "run_scoreboard",
    "ProofLog",
    "check_refutation",
    "legalize_schedule",
    "lp_lower_bound",
    "maximal_rectangles",
    "compile_addressing",
    "greedy_cover",
    "minimum_cover",
    "fooling_number",
    "gf2_rank",
    "masked_minimum_addressing",
    "masked_row_packing",
    "max_fooling_set",
    "rank_lower_bound",
    "real_rank",
    "reduce_matrix",
    "row_packing",
    "row_packing_x",
    "sap_solve",
    "solve_batch",
    "solve_portfolio",
    "tensor_partition",
    "tensor_rank_bounds",
    "trivial_partition",
    "trivial_upper_bound",
    "two_level_solve",
]
