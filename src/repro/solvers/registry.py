"""Name -> heuristic registry used by the experiment harnesses.

Table I's columns are "trivial" and "row packing with k trials"; the
registry lets the experiment code iterate them uniformly.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import SolverError
from repro.core.partition import Partition
from repro.solvers.row_packing import PackingOptions, row_packing
from repro.solvers.row_packing_x import row_packing_x
from repro.solvers.trivial import trivial_partition
from repro.utils.rng import RngLike

Heuristic = Callable[..., Partition]

KNOWN_KINDS = (
    "packing",
    "packing_x",
    "packing_noupdate",
    "packing_sorted",
    "greedy",
)
"""Spec kinds accepted with a ``:K`` trial count (plus bare ``trivial``)."""


def _spec_error(name: str, problem: str) -> SolverError:
    """Uniform spec-parse error: the problem, the spec, the valid forms."""
    return SolverError(
        f"bad heuristic spec {name!r}: {problem}; expected 'trivial' or "
        f"KIND:TRIALS with KIND in {KNOWN_KINDS} and TRIALS >= 1"
    )


def make_heuristic(name: str) -> Callable[[BinaryMatrix, RngLike], Partition]:
    """Build a ``(matrix, seed) -> partition`` callable from a spec name.

    Recognized names: ``trivial``, ``packing:K`` (K trials),
    ``packing_x:K``, ``packing_noupdate:K`` (basis update disabled),
    ``packing_sorted:K`` (sparse-first ordering), ``greedy:K``.

    Malformed specs — unknown kinds, missing/non-integer/non-positive
    trial counts, empty names — all raise :class:`SolverError` at build
    time with a uniform message, never from inside the returned callable.
    """
    if not name or not name.strip():
        raise _spec_error(name, "empty spec")
    if name == "trivial":
        return lambda matrix, seed=None: trivial_partition(matrix)
    if ":" in name:
        kind, _, trials_text = name.partition(":")
        if kind not in KNOWN_KINDS:
            raise _spec_error(name, f"unknown kind {kind!r}")
        try:
            trials = int(trials_text)
        except ValueError:
            raise _spec_error(
                name, f"trial count {trials_text!r} is not an integer"
            ) from None
        if trials < 1:
            raise _spec_error(name, f"trial count must be >= 1, got {trials}")
        if kind == "packing":
            return lambda matrix, seed=None: row_packing(
                matrix, options=PackingOptions(trials=trials, seed=seed)
            )
        if kind == "packing_x":
            return lambda matrix, seed=None: row_packing_x(
                matrix, options=PackingOptions(trials=trials, seed=seed)
            )
        if kind == "packing_noupdate":
            return lambda matrix, seed=None: row_packing(
                matrix,
                options=PackingOptions(
                    trials=trials, seed=seed, basis_update=False
                ),
            )
        if kind == "packing_sorted":
            return lambda matrix, seed=None: row_packing(
                matrix,
                options=PackingOptions(
                    trials=trials, seed=seed, ordering="sparse_first"
                ),
            )
        # kind == "greedy" (KNOWN_KINDS is exhaustive above)
        from repro.solvers.greedy_rect import greedy_rectangle

        return lambda matrix, seed=None: greedy_rectangle(
            matrix, trials=trials, seed=seed
        )
    raise _spec_error(name, f"unknown name {name!r}")


TABLE1_HEURISTICS = (
    "trivial",
    "packing:1",
    "packing:10",
    "packing:100",
    "packing:1000",
)
"""The heuristic columns of Table I, in paper order."""
