"""SAP — "SMT and packing", Algorithm 1 of the paper.

Row packing supplies a valid EBMF ``P`` (upper bound); the exact-rank
lower bound (Eq. 3) brackets the optimum from below.  The decision
oracle is then queried with ``b = |P| - 1, |P| - 2, ...``, keeping the
best partition found, until a query is unsatisfiable (``P`` proven
optimal) or ``b`` falls below the lower bound (optimal by Eq. 3).  The
result always carries the best partition found so far, so interrupting
on a budget still yields a valid solution (paper Observation 5's
"terminate at any time" property).

Two implementation notes beyond the paper's pseudocode:

* the matrix is first compressed by removing empty/duplicate rows and
  columns — this preserves ``r_B`` exactly and shrinks the SMT encoding;
* in incremental mode one solver instance survives the whole descent,
  receiving the paper's ``f(e) != b`` narrowing clauses per step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.core.binary_matrix import BinaryMatrix
from repro.core.bounds import fooling_lower_bound, rank_lower_bound
from repro.core.partition import Partition
from repro.core.reductions import reduce_matrix
from repro.sat.solver import SolveStatus
from repro.smt.oracle import OracleQuery, RankDecisionOracle
from repro.solvers.row_packing import PackingOptions, row_packing
from repro.utils.rng import RngLike
from repro.utils.timing import Deadline, Stopwatch


class SapStatus(Enum):
    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # valid partition, optimality not proven


DESCENT_MODES = ("linear", "binary", "assumption")


@dataclass
class SapOptions:
    """Configuration for :func:`sap_solve`.

    ``descent='linear'`` is the paper's Algorithm 1 (decrement ``b`` by
    one per query, incremental narrowing).  ``descent='binary'`` bisects
    the ``[lower, depth-1]`` interval instead — fewer queries when the
    heuristic is far from optimal, but each query starts a fresh solver
    (bounds may move up, which incremental narrowing cannot).
    ``descent='assumption'`` also bisects but keeps one incremental
    solver alive for the whole search: the bound becomes a one-literal
    assumption over monotone label-usage indicators, so learned clauses
    carry across queries in both directions (requires the direct
    encoding).
    """

    trials: int = 100
    seed: RngLike = None
    encoding: str = "direct"
    symmetry: str = "precedence"
    amo_encoding: str = "auto"
    incremental: bool = True
    reduce: bool = True
    use_fooling_bound: bool = False
    use_lp_bound: bool = False
    descent: str = "linear"
    time_budget: Optional[float] = None
    conflict_budget_per_query: Optional[int] = None
    packing: Optional[PackingOptions] = None
    cancel: Optional[object] = None
    """Cooperative cancellation flag (``is_set() -> bool``); checked at
    the same points as the time budget, so setting it aborts the SMT
    descent between oracle queries while keeping the best partition."""

    def __post_init__(self) -> None:
        if self.descent not in DESCENT_MODES:
            raise ValueError(
                f"descent must be one of {DESCENT_MODES}, "
                f"got {self.descent!r}"
            )

    def packing_options(self) -> PackingOptions:
        if self.packing is not None:
            return self.packing
        return PackingOptions(trials=self.trials, seed=self.seed)


@dataclass
class SapResult:
    """Outcome of a SAP run."""

    partition: Partition
    status: SapStatus
    lower_bound: int
    heuristic_depth: int
    queries: List[OracleQuery] = field(default_factory=list)
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def depth(self) -> int:
        return self.partition.depth

    @property
    def proved_optimal(self) -> bool:
        return self.status is SapStatus.OPTIMAL

    @property
    def binary_rank(self) -> Optional[int]:
        """``r_B(M)`` if proven, else ``None``."""
        return self.partition.depth if self.proved_optimal else None

    @property
    def smt_seconds(self) -> float:
        return self.phase_seconds.get("smt", 0.0)

    @property
    def packing_seconds(self) -> float:
        return self.phase_seconds.get("packing", 0.0)


def sap_solve(
    matrix: BinaryMatrix,
    *,
    options: Optional[SapOptions] = None,
    **kwargs,
) -> SapResult:
    """Run Algorithm 1 on ``matrix``."""
    if options is None:
        options = SapOptions(**kwargs)
    elif kwargs:
        raise ValueError("pass either options or keyword arguments, not both")

    watch = Stopwatch()
    deadline = Deadline(options.time_budget, cancel=options.cancel)

    if matrix.is_zero():
        return SapResult(
            partition=Partition([], matrix.shape),
            status=SapStatus.OPTIMAL,
            lower_bound=0,
            heuristic_depth=0,
        )

    # Line 1: the heuristic upper bound.
    with watch.time("packing"):
        best = row_packing(matrix, options=options.packing_options())
    heuristic_depth = best.depth

    # Eq. 3 lower bound (optionally strengthened by fooling sets and/or
    # the fractional-cover LP).
    with watch.time("bounds"):
        lower = rank_lower_bound(matrix)
        if options.use_fooling_bound:
            lower = max(
                lower, fooling_lower_bound(matrix, seed=options.seed)
            )
        if options.use_lp_bound:
            from repro.cover.lp import lp_lower_bound

            lower = max(lower, lp_lower_bound(matrix))

    if best.depth <= lower:
        return SapResult(
            partition=best,
            status=SapStatus.OPTIMAL,
            lower_bound=lower,
            heuristic_depth=heuristic_depth,
            phase_seconds=dict(watch.totals),
        )

    # Solve on the compressed matrix; lift models back.
    if options.reduce:
        reduced = reduce_matrix(matrix)
        smt_matrix = reduced.matrix
    else:
        reduced = None
        smt_matrix = matrix

    # Binary descent needs fresh solvers: bisection can raise the bound,
    # which the incremental narrowing clauses cannot undo.  Assumption
    # descent bisects too but stays incremental via indicator literals.
    if options.descent == "assumption":
        incremental = True
        query_mode = "assumption"
    else:
        incremental = options.incremental and options.descent == "linear"
        query_mode = "narrow"
    oracle = RankDecisionOracle(
        smt_matrix,
        encoding=options.encoding,
        symmetry=options.symmetry,
        amo_encoding=options.amo_encoding,
        incremental=incremental,
        query_mode=query_mode,
    )

    def query(bound: int):
        with watch.time("smt"):
            return oracle.check_at_most(
                bound,
                conflict_budget=options.conflict_budget_per_query,
                time_budget=deadline.remaining(),
            )

    def accept(partition: Partition) -> Partition:
        if reduced is not None:
            partition = reduced.lift(partition)
        partition.validate(matrix)
        return partition

    status = SapStatus.FEASIBLE
    if options.descent == "linear":
        bound = best.depth - 1
        while bound >= lower:
            if deadline.expired():
                break
            query_status, partition = query(bound)
            if query_status is SolveStatus.SAT:
                assert partition is not None
                best = accept(partition)
                bound = best.depth - 1
            elif query_status is SolveStatus.UNSAT:
                status = SapStatus.OPTIMAL
                break
            else:  # budget exhausted inside the solver
                break
        else:
            # Loop fell through: bound < lower, |best| == lower: optimal.
            status = SapStatus.OPTIMAL
    else:  # binary | assumption: bisect [lower, depth-1]
        low, high = lower, best.depth - 1  # r_B known to be in [low, high+1]
        interrupted = False
        if options.descent == "assumption" and low <= high:
            # Build the formula once at the widest bound the search can
            # ask about; later queries only tighten it by assumption.
            with watch.time("smt"):
                oracle.prime(high)
        while low <= high:
            if deadline.expired():
                interrupted = True
                break
            middle = (low + high) // 2
            query_status, partition = query(middle)
            if query_status is SolveStatus.SAT:
                assert partition is not None
                best = accept(partition)
                high = best.depth - 1
            elif query_status is SolveStatus.UNSAT:
                low = middle + 1
            else:
                interrupted = True
                break
        if not interrupted:
            status = SapStatus.OPTIMAL

    return SapResult(
        partition=best,
        status=status,
        lower_bound=lower,
        heuristic_depth=heuristic_depth,
        queries=list(oracle.queries),
        phase_seconds=dict(watch.totals),
    )


def binary_rank(
    matrix: BinaryMatrix,
    *,
    options: Optional[SapOptions] = None,
    **kwargs,
) -> int:
    """Convenience: the exact binary rank via SAP (must prove optimality)."""
    result = sap_solve(matrix, options=options, **kwargs)
    if not result.proved_optimal:
        raise TimeoutError(
            "SAP could not prove optimality within budget; "
            f"best depth {result.depth}, lower bound {result.lower_bound}"
        )
    return result.depth
