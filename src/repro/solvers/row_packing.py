"""Row packing — Algorithm 2 of the paper.

The matrix is processed row by row, maintaining a *basis* of column sets:

* decomposition (lines 4-7): every basis vector contained in the current
  row is subtracted, and the corresponding rectangle grows vertically to
  include this row;
* basis update (lines 9-16): a non-zero residue becomes a new basis
  vector; any existing basis vector *containing* the residue shrinks
  horizontally (its rectangle gives up the residue's columns, which the
  new rectangle takes over, spanning the shrunk rectangles' rows).

Row order matters (Figure 3), so the heuristic reshuffles and retries;
the best result over all trials — run on both the matrix and its
transpose — is returned.  Each trial adds at most one rectangle per
distinct non-empty row, so the result is never worse than the trivial
heuristic's bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import SolverError
from repro.core.partition import Partition
from repro.core.rectangle import Rectangle
from repro.utils.bitops import popcount
from repro.utils.rng import RngLike, ensure_rng

TraceCallback = Callable[[str, dict], None]

ORDERINGS = ("shuffle", "given", "sparse_first")


@dataclass
class PackingOptions:
    """Knobs for :func:`row_packing`.

    ``ordering='sparse_first'`` and ``basis_update=False`` are the two
    "compromises" Section III-B discusses (and rejects); they are kept as
    options for the ablation benchmarks.
    """

    trials: int = 10
    seed: RngLike = None
    use_transpose: bool = True
    basis_update: bool = True
    ordering: str = "shuffle"

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise SolverError(f"trials must be >= 1, got {self.trials}")
        if self.ordering not in ORDERINGS:
            raise SolverError(
                f"unknown ordering {self.ordering!r}; expected {ORDERINGS}"
            )


def pack_rows_once(
    matrix: BinaryMatrix,
    order: Sequence[int],
    *,
    basis_update: bool = True,
    trace: Optional[TraceCallback] = None,
) -> Partition:
    """One deterministic pass of Algorithm 2 over rows in ``order``.

    ``order`` lists original row indices in processing sequence; the
    resulting partition is expressed directly in original coordinates
    (subsuming the paper's shuffle/undo-shuffle bookkeeping).
    """
    if sorted(order) != list(range(matrix.num_rows)):
        raise SolverError(f"{order!r} is not a permutation of the rows")

    basis: List[int] = []  # v_j: column mask of rectangle j
    rect_rows: List[int] = []  # row mask of rectangle j

    for i in order:
        remaining = matrix.row_mask(i)
        if remaining == 0:
            continue
        # Lines 4-7: decompose the row over the existing basis.
        for j, vector in enumerate(basis):
            if vector and vector & ~remaining == 0:
                rect_rows[j] |= 1 << i
                remaining &= ~vector
                if trace:
                    trace(
                        "grow",
                        {"row": i, "rectangle": j, "columns": vector},
                    )
        if remaining == 0:
            continue
        # Lines 9-16: the residue founds a new basis vector; basis
        # vectors containing it shrink and cede their rows to it.
        new_rows = 1 << i
        if basis_update:
            for k, vector in enumerate(basis):
                if vector and remaining & ~vector == 0:
                    if vector == remaining:
                        raise SolverError(
                            "residue equal to a basis vector should have "
                            "been consumed during decomposition"
                        )
                    basis[k] = vector & ~remaining
                    new_rows |= rect_rows[k]
                    if trace:
                        trace(
                            "shrink",
                            {
                                "row": i,
                                "rectangle": k,
                                "removed_columns": remaining,
                                "new_columns": basis[k],
                            },
                        )
        basis.append(remaining)
        rect_rows.append(new_rows)
        if trace:
            trace(
                "new_rectangle",
                {
                    "row": i,
                    "rectangle": len(basis) - 1,
                    "columns": remaining,
                    "rows": new_rows,
                },
            )

    rects = [
        Rectangle(rows, cols)
        for rows, cols in zip(rect_rows, basis)
        if rows and cols
    ]
    partition = Partition(rects, matrix.shape)
    partition.validate(matrix)
    return partition


def _trial_orders(
    matrix: BinaryMatrix, options: PackingOptions
) -> List[List[int]]:
    rng = ensure_rng(options.seed)
    identity = list(range(matrix.num_rows))
    orders: List[List[int]] = []
    for trial in range(options.trials):
        if options.ordering == "given":
            orders.append(identity)
        elif options.ordering == "sparse_first":
            orders.append(
                sorted(identity, key=lambda i: popcount(matrix.row_mask(i)))
            )
        else:
            order = identity[:]
            rng.shuffle(order)
            orders.append(order)
    return orders


def row_packing(
    matrix: BinaryMatrix,
    *,
    options: Optional[PackingOptions] = None,
    **kwargs,
) -> Partition:
    """Best-of-``trials`` row packing on the matrix and its transpose."""
    if options is None:
        options = PackingOptions(**kwargs)
    elif kwargs:
        raise SolverError("pass either options or keyword arguments, not both")

    best: Optional[Partition] = None
    for candidate_matrix, transposed in _candidate_matrices(matrix, options):
        for order in _trial_orders(candidate_matrix, options):
            partition = pack_rows_once(
                candidate_matrix, order, basis_update=options.basis_update
            )
            if transposed:
                partition = partition.transpose()
            if best is None or partition.depth < best.depth:
                best = partition
    assert best is not None
    best.validate(matrix)
    return best


def _candidate_matrices(
    matrix: BinaryMatrix, options: PackingOptions
) -> List[Tuple[BinaryMatrix, bool]]:
    candidates: List[Tuple[BinaryMatrix, bool]] = [(matrix, False)]
    if options.use_transpose:
        candidates.append((matrix.transpose(), True))
    return candidates


@dataclass
class PackingTrace:
    """Recorded events of one packing pass (drives the Figure 3 example)."""

    events: List[Tuple[str, dict]] = field(default_factory=list)

    def __call__(self, kind: str, payload: dict) -> None:
        self.events.append((kind, payload))

    def render(self, matrix: BinaryMatrix) -> str:
        """Human-readable replay of the pass."""
        lines: List[str] = []
        for kind, payload in self.events:
            if kind == "grow":
                lines.append(
                    f"row {payload['row']}: contains basis vector of "
                    f"rectangle {payload['rectangle']} "
                    f"(cols {_mask_str(payload['columns'], matrix.num_cols)}) "
                    f"-> grow vertically"
                )
            elif kind == "shrink":
                lines.append(
                    f"row {payload['row']}: residue splits rectangle "
                    f"{payload['rectangle']}; it keeps cols "
                    f"{_mask_str(payload['new_columns'], matrix.num_cols)}"
                )
            elif kind == "new_rectangle":
                lines.append(
                    f"row {payload['row']}: new rectangle "
                    f"{payload['rectangle']} on cols "
                    f"{_mask_str(payload['columns'], matrix.num_cols)}"
                )
        return "\n".join(lines)


def _mask_str(mask: int, width: int) -> str:
    return "".join("1" if (mask >> j) & 1 else "0" for j in range(width))
