"""EBMF solvers: heuristics, the exact SAP pipeline, and cross-checks."""

from repro.solvers.branch_bound import (
    BranchBoundResult,
    binary_rank_branch_bound,
)
from repro.solvers.greedy_rect import greedy_rectangle, greedy_rectangle_once
from repro.solvers.postopt import improve_partition, merge_rectangles
from repro.solvers.registry import (
    KNOWN_KINDS,
    TABLE1_HEURISTICS,
    make_heuristic,
)
from repro.solvers.row_packing import (
    ORDERINGS,
    PackingOptions,
    PackingTrace,
    pack_rows_once,
    row_packing,
)
from repro.solvers.row_packing_x import pack_rows_once_x, row_packing_x
from repro.solvers.sap import (
    SapOptions,
    SapResult,
    SapStatus,
    binary_rank,
    sap_solve,
)
from repro.solvers.trivial import trivial_partition

__all__ = [
    "BranchBoundResult",
    "KNOWN_KINDS",
    "ORDERINGS",
    "PackingOptions",
    "PackingTrace",
    "SapOptions",
    "SapResult",
    "SapStatus",
    "TABLE1_HEURISTICS",
    "binary_rank",
    "binary_rank_branch_bound",
    "greedy_rectangle",
    "greedy_rectangle_once",
    "improve_partition",
    "make_heuristic",
    "merge_rectangles",
    "pack_rows_once",
    "pack_rows_once_x",
    "row_packing",
    "row_packing_x",
    "sap_solve",
    "trivial_partition",
]
