"""The trivial heuristic (paper Section III-B).

Upper-bounds ``r_B(M)`` by the smaller of the matrix's width and height
after removing empty and duplicated rows and columns: partition into
single (consolidated) rows, or single columns, whichever is fewer.
"""

from __future__ import annotations

from repro.core.binary_matrix import BinaryMatrix
from repro.core.partition import Partition
from repro.core.rectangle import Rectangle
from repro.core.reductions import reduce_matrix


def trivial_partition(matrix: BinaryMatrix) -> Partition:
    """Row-or-column partition with duplicates consolidated."""
    reduced = reduce_matrix(matrix)
    inner = reduced.matrix
    if inner.num_rows <= inner.num_cols:
        rects = [
            Rectangle(1 << k, inner.row_mask(k))
            for k in range(inner.num_rows)
        ]
    else:
        rects = [
            Rectangle(inner.col_mask(k), 1 << k)
            for k in range(inner.num_cols)
        ]
    partition = reduced.lift(Partition(rects, inner.shape))
    partition.validate(matrix)
    return partition
