"""Exact binary rank by combinatorial branch and bound.

An SMT-independent exact solver used to cross-validate the SAT pipeline
on small matrices (the tests compare the two on every tiny instance).

The search assigns 1-cells to rectangle labels in row-major order with
eager closure propagation: a label class is kept *span-closed* at all
times — whenever a cell joins a class, the full row-span x column-span
of the class is recomputed and every cell in the span is pulled in
(pruning if any span cell is a 0 or belongs to another class).  Classes
are therefore always genuine rectangles, and a complete assignment is a
valid EBMF.  Standard dominance: a new class may only be opened as class
``len(classes)`` (first-occurrence labelling), and branches are cut at
the best known depth; the real-rank lower bound prunes the root.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.binary_matrix import BinaryMatrix
from repro.core.bounds import rank_lower_bound
from repro.core.exceptions import BudgetExceeded
from repro.core.partition import Partition
from repro.solvers.row_packing import PackingOptions, row_packing
from repro.utils.bitops import bit_indices
from repro.utils.timing import Deadline

Cell = Tuple[int, int]


@dataclass
class BranchBoundResult:
    partition: Partition
    binary_rank: int
    optimal: bool
    nodes: int


def _closure(
    matrix: BinaryMatrix,
    row_mask: int,
    col_mask: int,
) -> Optional[Tuple[int, int]]:
    """Span-closure of a candidate rectangle; ``None`` if it hits a 0.

    For EBMF the span of a label class is exactly rows x cols of its
    members, so closure only needs to check that the span is all-1s.
    """
    for i in bit_indices(row_mask):
        if col_mask & ~matrix.row_mask(i):
            return None
    return row_mask, col_mask


def binary_rank_branch_bound(
    matrix: BinaryMatrix,
    *,
    upper_hint: Optional[Partition] = None,
    time_budget: Optional[float] = None,
    node_budget: Optional[int] = None,
    cancel: Optional[object] = None,
) -> BranchBoundResult:
    """Compute ``r_B(M)`` exactly (small matrices; exponential worst case).

    Raises :class:`BudgetExceeded` if a budget runs out before the search
    space is exhausted, or if ``cancel`` (an ``is_set()``-style flag,
    polled every 64 nodes alongside the time budget) is raised — the
    hook that lets a concurrent portfolio race kill the exponential tail
    the moment another backend certifies optimality.
    """
    cells: List[Cell] = list(matrix.ones())
    if not cells:
        return BranchBoundResult(
            Partition([], matrix.shape), 0, True, nodes=0
        )

    if upper_hint is None:
        upper_hint = row_packing(
            matrix, options=PackingOptions(trials=8, seed=0)
        )
    lower = rank_lower_bound(matrix)
    deadline = Deadline(time_budget, cancel=cancel)

    best: Dict[str, object] = {
        "partition": upper_hint,
        "depth": upper_hint.depth,
    }
    nodes = {"count": 0}

    cell_of_index = {cell: t for t, cell in enumerate(cells)}
    num_cells = len(cells)

    def search(
        assigned: List[int],  # label per cell index, -1 = unassigned
        classes: List[Tuple[int, int]],  # (row_mask, col_mask) per label
        next_cell: int,
    ) -> None:
        nodes["count"] += 1
        if node_budget is not None and nodes["count"] > node_budget:
            raise BudgetExceeded(f"node budget {node_budget} exhausted")
        if nodes["count"] % 64 == 0 and deadline.expired():
            if deadline.cancelled():
                raise BudgetExceeded("cancelled")
            raise BudgetExceeded("time budget exhausted")
        if best["depth"] == lower:
            return
        while next_cell < num_cells and assigned[next_cell] != -1:
            next_cell += 1
        if next_cell == num_cells:
            labels = {cells[t]: assigned[t] for t in range(num_cells)}
            partition = Partition.from_assignment(matrix, labels)
            partition.validate(matrix)
            if partition.depth < best["depth"]:
                best["partition"] = partition
                best["depth"] = partition.depth
            return

        i, j = cells[next_cell]
        # Try each existing class, then (if depth allows) a new one.
        options = list(range(len(classes)))
        if len(classes) + 1 < best["depth"]:
            options.append(len(classes))
        for label in options:
            if label < len(classes):
                row_mask, col_mask = classes[label]
                merged = _closure(
                    matrix, row_mask | (1 << i), col_mask | (1 << j)
                )
            else:
                merged = _closure(matrix, 1 << i, 1 << j)
            if merged is None:
                continue
            new_row_mask, new_col_mask = merged
            # Pull every span cell into the class; conflict -> prune.
            pulled: List[int] = []
            conflict = False
            for si in bit_indices(new_row_mask):
                for sj in bit_indices(new_col_mask):
                    t = cell_of_index[(si, sj)]
                    if assigned[t] == -1:
                        assigned[t] = label
                        pulled.append(t)
                    elif assigned[t] != label:
                        conflict = True
                        break
                if conflict:
                    break
            if not conflict:
                if label < len(classes):
                    saved = classes[label]
                    classes[label] = merged
                    search(assigned, classes, next_cell + 1)
                    classes[label] = saved
                else:
                    classes.append(merged)
                    search(assigned, classes, next_cell + 1)
                    classes.pop()
            for t in pulled:
                assigned[t] = -1

    search([-1] * num_cells, [], 0)
    depth = int(best["depth"])  # type: ignore[arg-type]
    return BranchBoundResult(
        partition=best["partition"],  # type: ignore[assignment]
        binary_rank=depth,
        optimal=True,
        nodes=nodes["count"],
    )
