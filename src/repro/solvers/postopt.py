"""Partition post-optimization: merging compatible rectangles.

Two rectangles of a partition can be fused into one whenever they share
their row set or their column set — the union is then itself a
combinatorial rectangle covering exactly the union of their cells, so
validity is preserved and the depth drops by one.  Heuristics sometimes
emit such pairs (e.g. row packing after basis shrinks); this cheap pass
cleans them up.  It runs to a fixed point, so the result has no two
rectangles sharing a row set or a column set.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.binary_matrix import BinaryMatrix
from repro.core.partition import Partition
from repro.core.rectangle import Rectangle


def merge_rectangles(partition: Partition) -> Partition:
    """Fuse rectangles sharing a row mask or a column mask (fixed point)."""
    rects = list(partition.rectangles)
    changed = True
    while changed:
        changed = False
        # Group by row mask: same rows -> union the columns.
        by_rows: Dict[int, List[Rectangle]] = {}
        for rect in rects:
            by_rows.setdefault(rect.row_mask, []).append(rect)
        merged: List[Rectangle] = []
        for row_mask, group in by_rows.items():
            if len(group) > 1:
                changed = True
                col_mask = 0
                for rect in group:
                    col_mask |= rect.col_mask
                merged.append(Rectangle(row_mask, col_mask))
            else:
                merged.append(group[0])
        rects = merged
        # Group by column mask: same columns -> union the rows.
        by_cols: Dict[int, List[Rectangle]] = {}
        for rect in rects:
            by_cols.setdefault(rect.col_mask, []).append(rect)
        merged = []
        for col_mask, group in by_cols.items():
            if len(group) > 1:
                changed = True
                row_mask = 0
                for rect in group:
                    row_mask |= rect.row_mask
                merged.append(Rectangle(row_mask, col_mask))
            else:
                merged.append(group[0])
        rects = merged
    return Partition(rects, partition.shape)


def improve_partition(
    partition: Partition, matrix: BinaryMatrix
) -> Partition:
    """Validated merge pass; returns the input if no merge applies."""
    improved = merge_rectangles(partition)
    if improved.depth == partition.depth:
        return partition
    improved.validate(matrix)
    return improved
