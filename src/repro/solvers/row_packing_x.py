"""Row packing with Algorithm X decomposition (paper future work).

Section VI suggests the per-row decomposition step "might benefit from
ideas in existing works such as Knuth's Algorithm X for exact cover
instead of purely relying on shuffling".  This variant asks, for each
row, whether the *exact* set of 1s can be partitioned by existing basis
vectors (an exact-cover query over the subset-basis), and only falls
back to the greedy first-fit subtraction when no exact cover exists.

A perfect cover leaves no residue, so rectangles grow and the basis does
not; rows that greedy ordering would have fragmented (Observation 4's
failure mode is *not* addressed — only one new basis vector per row is
ever introduced, as in the original algorithm).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import SolverError
from repro.core.partition import Partition
from repro.core.rectangle import Rectangle
from repro.exact_cover.dlx import exact_cover_masks
from repro.solvers.row_packing import PackingOptions, _trial_orders
from repro.utils.rng import ensure_rng


def pack_rows_once_x(
    matrix: BinaryMatrix,
    order: Sequence[int],
    *,
    basis_update: bool = True,
) -> Partition:
    """One pass of Algorithm 2 with exact-cover decomposition."""
    if sorted(order) != list(range(matrix.num_rows)):
        raise SolverError(f"{order!r} is not a permutation of the rows")

    basis: List[int] = []
    rect_rows: List[int] = []

    for i in order:
        row = matrix.row_mask(i)
        if row == 0:
            continue
        subset_basis = {
            j: vector
            for j, vector in enumerate(basis)
            if vector and vector & ~row == 0
        }
        cover = exact_cover_masks(row, subset_basis) if subset_basis else None
        if cover is not None:
            for j in cover:
                rect_rows[j] |= 1 << i
            continue
        # No exact cover: greedy subtraction as in the base algorithm.
        remaining = row
        for j, vector in sorted(subset_basis.items()):
            if vector & ~remaining == 0:
                rect_rows[j] |= 1 << i
                remaining &= ~vector
        if remaining == 0:
            continue
        new_rows = 1 << i
        if basis_update:
            for k, vector in enumerate(basis):
                if vector and remaining & ~vector == 0:
                    basis[k] = vector & ~remaining
                    new_rows |= rect_rows[k]
        basis.append(remaining)
        rect_rows.append(new_rows)

    rects = [
        Rectangle(rows, cols)
        for rows, cols in zip(rect_rows, basis)
        if rows and cols
    ]
    partition = Partition(rects, matrix.shape)
    partition.validate(matrix)
    return partition


def row_packing_x(
    matrix: BinaryMatrix,
    *,
    options: Optional[PackingOptions] = None,
    **kwargs,
) -> Partition:
    """Best-of-trials Algorithm X row packing (matrix and transpose)."""
    if options is None:
        options = PackingOptions(**kwargs)
    elif kwargs:
        raise SolverError("pass either options or keyword arguments, not both")

    candidates = [(matrix, False)]
    if options.use_transpose:
        candidates.append((matrix.transpose(), True))

    best: Optional[Partition] = None
    for candidate_matrix, transposed in candidates:
        for order in _trial_orders(candidate_matrix, options):
            partition = pack_rows_once_x(
                candidate_matrix, order, basis_update=options.basis_update
            )
            if transposed:
                partition = partition.transpose()
            if best is None or partition.depth < best.depth:
                best = partition
    assert best is not None
    best.validate(matrix)
    return best
