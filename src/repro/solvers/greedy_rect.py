"""Greedy maximal-rectangle heuristic — an additional baseline.

Not part of the paper's algorithm suite, but the natural "other"
heuristic for rectangle partitioning (greedy set cover specialized to
disjoint rectangles): repeatedly grow a large rectangle inside the
still-uncovered 1s and remove it.  Included so the ablation benchmarks
can show where row packing's basis mechanism actually earns its keep.

Growing works row-wise: seed at an uncovered 1, take the seed row's
uncovered columns, then admit further rows greedily whenever shrinking
the column set to the intersection still increases the covered area.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import SolverError
from repro.core.partition import Partition
from repro.core.rectangle import Rectangle
from repro.solvers.postopt import merge_rectangles
from repro.utils.bitops import popcount
from repro.utils.rng import RngLike, ensure_rng


def _grow_rectangle(
    uncovered: List[int], seed_row: int, num_rows: int, rng
) -> Rectangle:
    """Grow a rectangle from ``seed_row`` within the uncovered cells."""
    cols = uncovered[seed_row]
    rows_mask = 1 << seed_row
    candidates = [
        i for i in range(num_rows) if i != seed_row and uncovered[i] & cols
    ]
    rng.shuffle(candidates)
    # Greedy admission ordered by how much of the current column set the
    # candidate preserves.
    candidates.sort(
        key=lambda i: -popcount(uncovered[i] & cols)
    )
    row_count = 1
    for i in candidates:
        shrunk = cols & uncovered[i]
        if shrunk == 0:
            continue
        # Admit if total area does not decrease.
        if (row_count + 1) * popcount(shrunk) >= row_count * popcount(cols):
            cols = shrunk
            rows_mask |= 1 << i
            row_count += 1
    return Rectangle(rows_mask, cols)


def greedy_rectangle_once(
    matrix: BinaryMatrix, *, seed: RngLike = None
) -> Partition:
    """One greedy pass: repeatedly carve the grown rectangle out."""
    rng = ensure_rng(seed)
    num_rows = matrix.num_rows
    uncovered = list(matrix.row_masks)
    rects: List[Rectangle] = []
    while any(uncovered):
        seed_candidates = [i for i in range(num_rows) if uncovered[i]]
        seed_row = rng.choice(seed_candidates)
        rect = _grow_rectangle(uncovered, seed_row, num_rows, rng)
        rects.append(rect)
        for i in rect.rows:
            uncovered[i] &= ~rect.col_mask
    partition = merge_rectangles(Partition(rects, matrix.shape))
    partition.validate(matrix)
    return partition


def greedy_rectangle(
    matrix: BinaryMatrix,
    *,
    trials: int = 10,
    seed: RngLike = None,
    use_transpose: bool = True,
) -> Partition:
    """Best-of-``trials`` greedy rectangle partitioning."""
    if trials < 1:
        raise SolverError(f"trials must be >= 1, got {trials}")
    rng = ensure_rng(seed)
    best: Optional[Partition] = None
    candidates = [(matrix, False)]
    if use_transpose:
        candidates.append((matrix.transpose(), True))
    for candidate, transposed in candidates:
        for _ in range(trials):
            partition = greedy_rectangle_once(
                candidate, seed=rng.getrandbits(62)
            )
            if transposed:
                partition = partition.transpose()
            if best is None or partition.depth < best.depth:
                best = partition
    assert best is not None
    best.validate(matrix)
    return best
