"""JSON (de)serialization of matrices, partitions, and schedules.

Lets solve results move between processes/toolchains: a compiled
schedule can be exported for a control-stack consumer, and regression
baselines can be stored next to benchmarks.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.atoms.aod import AodConfiguration
from repro.atoms.schedule import (
    AddressingOperation,
    AddressingSchedule,
    RzPulse,
)
from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import ReproError
from repro.core.partition import Partition
from repro.core.rectangle import Rectangle

FORMAT_VERSION = 1


class SerializationError(ReproError):
    """Raised on malformed serialized payloads."""


# ----------------------------------------------------------------------
# Matrices
# ----------------------------------------------------------------------
def matrix_to_dict(matrix: BinaryMatrix) -> Dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "type": "binary_matrix",
        "shape": list(matrix.shape),
        "rows": matrix.to_strings(),
    }


def matrix_from_dict(payload: Dict[str, Any]) -> BinaryMatrix:
    _expect(payload, "binary_matrix")
    matrix = BinaryMatrix.from_strings(payload["rows"])
    if list(matrix.shape) != list(payload["shape"]):
        raise SerializationError(
            f"shape field {payload['shape']} does not match rows "
            f"{list(matrix.shape)}"
        )
    return matrix


# ----------------------------------------------------------------------
# Partitions
# ----------------------------------------------------------------------
def partition_to_dict(partition: Partition) -> Dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "type": "partition",
        "shape": list(partition.shape),
        "rectangles": [
            {"rows": list(rect.rows), "cols": list(rect.cols)}
            for rect in partition
        ],
    }


def partition_from_dict(payload: Dict[str, Any]) -> Partition:
    _expect(payload, "partition")
    shape = tuple(payload["shape"])
    if len(shape) != 2:
        raise SerializationError(f"bad shape {payload['shape']}")
    rects = [
        Rectangle.from_sets(entry["rows"], entry["cols"])
        for entry in payload["rectangles"]
    ]
    return Partition(rects, shape)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
def schedule_to_dict(schedule: AddressingSchedule) -> Dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "type": "schedule",
        "shape": list(schedule.shape),
        "operations": [
            {
                "rows": sorted(op.configuration.rows),
                "cols": sorted(op.configuration.cols),
                "theta": op.pulse.theta,
            }
            for op in schedule
        ],
    }


def schedule_from_dict(payload: Dict[str, Any]) -> AddressingSchedule:
    _expect(payload, "schedule")
    shape = tuple(payload["shape"])
    if len(shape) != 2:
        raise SerializationError(f"bad shape {payload['shape']}")
    operations = [
        AddressingOperation(
            AodConfiguration(entry["rows"], entry["cols"]),
            RzPulse(entry["theta"]),
        )
        for entry in payload["operations"]
    ]
    return AddressingSchedule(operations, shape)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------
_SERIALIZERS = {
    BinaryMatrix: matrix_to_dict,
    Partition: partition_to_dict,
    AddressingSchedule: schedule_to_dict,
}

_DESERIALIZERS = {
    "binary_matrix": matrix_from_dict,
    "partition": partition_from_dict,
    "schedule": schedule_from_dict,
}


def dumps(obj: Any) -> str:
    serializer = _SERIALIZERS.get(type(obj))
    if serializer is None:
        raise SerializationError(f"cannot serialize {type(obj).__name__}")
    return json.dumps(serializer(obj), indent=2)


def loads(text: str) -> Any:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(f"invalid JSON: {error}") from error
    if not isinstance(payload, dict) or "type" not in payload:
        raise SerializationError("payload is not a tagged object")
    deserializer = _DESERIALIZERS.get(payload["type"])
    if deserializer is None:
        raise SerializationError(f"unknown type {payload['type']!r}")
    return deserializer(payload)


def save(obj: Any, path: str) -> None:
    with open(path, "w") as stream:
        stream.write(dumps(obj))
        stream.write("\n")


def load(path: str) -> Any:
    with open(path) as stream:
        return loads(stream.read())


def _expect(payload: Dict[str, Any], expected_type: str) -> None:
    if payload.get("type") != expected_type:
        raise SerializationError(
            f"expected type {expected_type!r}, got {payload.get('type')!r}"
        )
    version = payload.get("version", FORMAT_VERSION)
    if version > FORMAT_VERSION:
        raise SerializationError(
            f"payload version {version} newer than supported "
            f"{FORMAT_VERSION}"
        )
