"""Fooling sets — the classical lower bound on the partition number.

A fooling set ``S`` is a set of 1-cells such that for any two distinct
``(i, j), (i', j')`` in ``S``, ``M[i', j] = 0`` or ``M[i, j'] = 0``
(Section II of the paper).  No two fooling cells can share a rectangle,
hence ``|S| <= r_B(M)``.  Two fooling cells can never share a row or a
column (both cross entries would be 1s), so a fooling set is a clique in
the graph whose vertices are 1-cells and whose edges join fooling pairs.

This module provides the pair test, a randomized greedy, and an exact
maximum-clique branch-and-bound with a greedy-coloring upper bound
(Tomita-style), suitable for the paper-scale matrices (<= ~100 cells for
the exact search).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.binary_matrix import BinaryMatrix
from repro.utils.bitops import bit_indices, popcount
from repro.utils.rng import RngLike, ensure_rng

Cell = Tuple[int, int]


def is_fooling_pair(matrix: BinaryMatrix, a: Cell, b: Cell) -> bool:
    """True if 1-cells ``a`` and ``b`` can coexist in a fooling set."""
    (i, j), (i2, j2) = a, b
    if i == i2 or j == j2:
        return False
    return matrix[i, j2] == 0 or matrix[i2, j] == 0


def _fooling_adjacency(
    matrix: BinaryMatrix, cells: Sequence[Cell]
) -> List[int]:
    """Bit-mask adjacency of the fooling graph over ``cells``."""
    n = len(cells)
    adjacency = [0] * n
    for a in range(n):
        for b in range(a + 1, n):
            if is_fooling_pair(matrix, cells[a], cells[b]):
                adjacency[a] |= 1 << b
                adjacency[b] |= 1 << a
    return adjacency


def greedy_fooling_set(
    matrix: BinaryMatrix,
    *,
    trials: int = 16,
    seed: RngLike = None,
) -> List[Cell]:
    """Randomized greedy fooling set; returns the best over ``trials``."""
    cells = list(matrix.ones())
    if not cells:
        return []
    rng = ensure_rng(seed)
    adjacency = _fooling_adjacency(matrix, cells)
    n = len(cells)
    best_mask = 0
    for _ in range(max(1, trials)):
        order = list(range(n))
        rng.shuffle(order)
        # Prefer vertices of high fooling-degree: they tend to extend.
        order.sort(key=lambda v: -popcount(adjacency[v]))
        chosen = 0
        candidates = (1 << n) - 1
        for v in order:
            if (candidates >> v) & 1:
                chosen |= 1 << v
                candidates &= adjacency[v] | (1 << v)
                candidates &= ~(1 << v)
        if popcount(chosen) > popcount(best_mask):
            best_mask = chosen
    return [cells[v] for v in bit_indices(best_mask)]


def max_clique_mask(adjacency: List[int], *, seed_mask: int = 0) -> int:
    """Exact maximum clique of a bit-mask adjacency (Tomita-style B&B).

    ``adjacency[v]`` is the neighbour mask of vertex ``v``; ``seed_mask``
    optionally primes the incumbent with a known clique.  Returns the
    vertex mask of a maximum clique.  Exponential worst case — callers
    bound the vertex count.
    """
    n = len(adjacency)
    if n == 0:
        return 0
    state = {"best_mask": seed_mask, "best_size": popcount(seed_mask)}

    def color_bound(candidates: int) -> List[Tuple[int, int]]:
        """Greedy coloring: returns (vertex, color_number) in an order such
        that color_number is an upper bound on the clique extension size."""
        ordered: List[Tuple[int, int]] = []
        color = 0
        remaining = candidates
        while remaining:
            color += 1
            available = remaining
            while available:
                v = (available & -available).bit_length() - 1
                ordered.append((v, color))
                available &= ~adjacency[v]
                available &= ~(1 << v)
                remaining &= ~(1 << v)
        return ordered

    def expand(current: int, size: int, candidates: int) -> None:
        ordered = color_bound(candidates)
        # Branch in decreasing color order (standard Tomita traversal).
        for v, color in reversed(ordered):
            if size + color <= state["best_size"]:
                return
            new_current = current | (1 << v)
            new_candidates = candidates & adjacency[v]
            if new_candidates:
                expand(new_current, size + 1, new_candidates)
            elif size + 1 > state["best_size"]:
                state["best_size"] = size + 1
                state["best_mask"] = new_current
            candidates &= ~(1 << v)

    expand(0, 0, (1 << n) - 1)
    return state["best_mask"]


def max_fooling_set(
    matrix: BinaryMatrix,
    *,
    max_cells: int = 128,
    seed: RngLike = None,
) -> List[Cell]:
    """Exact maximum fooling set via branch-and-bound max clique.

    Falls back to the greedy result when the matrix has more than
    ``max_cells`` 1-cells (the exact search is exponential in the worst
    case).  Paper-scale 10x10 instances are well within reach.
    """
    cells = list(matrix.ones())
    if not cells:
        return []
    if len(cells) > max_cells:
        return greedy_fooling_set(matrix, seed=seed)
    adjacency = _fooling_adjacency(matrix, cells)

    seed_clique = greedy_fooling_set(matrix, trials=8, seed=seed)
    cell_index = {cell: v for v, cell in enumerate(cells)}
    seed_mask = 0
    for cell in seed_clique:
        seed_mask |= 1 << cell_index[cell]

    best_mask = max_clique_mask(adjacency, seed_mask=seed_mask)
    return [cells[v] for v in bit_indices(best_mask)]


def fooling_number(
    matrix: BinaryMatrix,
    *,
    exact: bool = True,
    max_cells: int = 128,
    seed: RngLike = None,
) -> int:
    """``phi(M)``: the (maximum, if ``exact``) fooling set size."""
    if exact:
        return len(max_fooling_set(matrix, max_cells=max_cells, seed=seed))
    return len(greedy_fooling_set(matrix, seed=seed))


def verify_fooling_set(matrix: BinaryMatrix, cells: Sequence[Cell]) -> bool:
    """Check that ``cells`` are 1s and pairwise fooling."""
    for i, j in cells:
        if matrix[i, j] != 1:
            return False
    for a in range(len(cells)):
        for b in range(a + 1, len(cells)):
            if not is_fooling_pair(matrix, cells[a], cells[b]):
                return False
    return True
