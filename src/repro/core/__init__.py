"""Core data model: binary matrices, rectangles, partitions, bounds."""

from repro.core.binary_matrix import BinaryMatrix
from repro.core.bounds import (
    BinaryRankBounds,
    binary_rank_bounds,
    fooling_lower_bound,
    rank_lower_bound,
    trivial_upper_bound,
)
from repro.core.exceptions import (
    BudgetExceeded,
    EncodingError,
    InvalidMatrixError,
    InvalidPartitionError,
    InvalidRectangleError,
    ReproError,
    ScheduleError,
    SolverError,
)
from repro.core.fooling import (
    fooling_number,
    greedy_fooling_set,
    is_fooling_pair,
    max_fooling_set,
    verify_fooling_set,
)
from repro.core.partition import Partition
from repro.core.rectangle import Rectangle
from repro.core.render import (
    render_matrix,
    render_partition,
    render_side_by_side,
)
from repro.core.reductions import (
    ReducedMatrix,
    distinct_nonzero_cols,
    distinct_nonzero_rows,
    reduce_matrix,
)

__all__ = [
    "BinaryMatrix",
    "BinaryRankBounds",
    "BudgetExceeded",
    "EncodingError",
    "InvalidMatrixError",
    "InvalidPartitionError",
    "InvalidRectangleError",
    "Partition",
    "Rectangle",
    "ReducedMatrix",
    "ReproError",
    "ScheduleError",
    "SolverError",
    "binary_rank_bounds",
    "distinct_nonzero_cols",
    "distinct_nonzero_rows",
    "fooling_lower_bound",
    "fooling_number",
    "greedy_fooling_set",
    "is_fooling_pair",
    "max_fooling_set",
    "rank_lower_bound",
    "reduce_matrix",
    "trivial_upper_bound",
    "verify_fooling_set",
]
