"""Lower and upper bounds on the binary rank ``r_B(M)``.

The SAP loop (Algorithm 1 of the paper) brackets the optimum between the
real-rank lower bound of Eq. 3 and the row-packing upper bound; fooling
sets give an alternative lower bound (Section II) that is sometimes
strictly weaker (Eq. 2) and sometimes the only multiplicative handle in
the tensor-product setting (Eq. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.binary_matrix import BinaryMatrix
from repro.core.fooling import fooling_number
from repro.core.reductions import distinct_nonzero_cols, distinct_nonzero_rows
from repro.linalg.exact_rank import real_rank
from repro.utils.rng import RngLike


def rank_lower_bound(matrix: BinaryMatrix) -> int:
    """Eq. 3: ``rank_R(M) <= r_B(M)``, computed exactly over Q."""
    return real_rank(matrix)


def fooling_lower_bound(
    matrix: BinaryMatrix,
    *,
    exact: bool = True,
    max_cells: int = 128,
    seed: RngLike = None,
) -> int:
    """``phi(M) <= r_B(M)`` via (maximum) fooling sets."""
    return fooling_number(matrix, exact=exact, max_cells=max_cells, seed=seed)


def trivial_upper_bound(matrix: BinaryMatrix) -> int:
    """Section III-B: min(#distinct non-empty rows, #distinct non-empty
    columns) — partition into single (consolidated) rows or columns."""
    return min(distinct_nonzero_rows(matrix), distinct_nonzero_cols(matrix))


@dataclass(frozen=True)
class BinaryRankBounds:
    """A bracket ``lower <= r_B(M) <= upper`` with provenance."""

    lower: int
    upper: int
    rank_bound: int
    fooling_bound: Optional[int]
    lp_bound: Optional[int] = None

    @property
    def is_tight(self) -> bool:
        return self.lower == self.upper


def binary_rank_bounds(
    matrix: BinaryMatrix,
    *,
    use_fooling: bool = False,
    fooling_exact: bool = True,
    use_lp: bool = False,
    seed: RngLike = None,
) -> BinaryRankBounds:
    """Bracket ``r_B(M)`` with the cheap bounds used by SAP.

    The fooling bound is optional because the exact maximum fooling set
    is itself NP-hard; the LP bound (fractional rectangle cover, see
    :mod:`repro.cover.lp`) enumerates maximal rectangles, so it is for
    paper-scale matrices only.  SAP requires just the rank bound (Eq. 3).
    """
    rank_bound = rank_lower_bound(matrix)
    fooling_bound: Optional[int] = None
    lp_bound: Optional[int] = None
    lower = rank_bound
    if use_fooling:
        fooling_bound = fooling_lower_bound(
            matrix, exact=fooling_exact, seed=seed
        )
        lower = max(lower, fooling_bound)
    if use_lp:
        from repro.cover.lp import lp_lower_bound

        lp_bound = lp_lower_bound(matrix)
        lower = max(lower, lp_bound)
    upper = trivial_upper_bound(matrix)
    if matrix.is_zero():
        lower, upper = 0, 0
    return BinaryRankBounds(
        lower=lower,
        upper=upper,
        rank_bound=rank_bound,
        fooling_bound=fooling_bound,
        lp_bound=lp_bound,
    )
