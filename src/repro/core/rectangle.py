"""Combinatorial rectangles.

A rectangle is a set of the form ``X' x Y'`` with ``X'`` a subset of rows
and ``Y'`` a subset of columns — exactly what one AOD configuration can
address (Section I of the paper), and exactly a rank-1 binary submatrix
(Section II).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

import numpy as np

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidRectangleError
from repro.utils.bitops import bits_from_indices, mask_to_tuple, popcount


class Rectangle:
    """A non-empty combinatorial rectangle, stored as two bit masks."""

    __slots__ = ("_row_mask", "_col_mask")

    def __init__(self, row_mask: int, col_mask: int) -> None:
        if row_mask <= 0 or col_mask <= 0:
            raise InvalidRectangleError(
                f"rectangle must have at least one row and one column "
                f"(row_mask={row_mask:#x}, col_mask={col_mask:#x})"
            )
        self._row_mask = row_mask
        self._col_mask = col_mask

    @classmethod
    def from_sets(
        cls, rows: Iterable[int], cols: Iterable[int]
    ) -> "Rectangle":
        return cls(bits_from_indices(rows), bits_from_indices(cols))

    @classmethod
    def single(cls, i: int, j: int) -> "Rectangle":
        """The 1x1 rectangle containing only cell ``(i, j)``."""
        return cls(1 << i, 1 << j)

    # ------------------------------------------------------------------
    @property
    def row_mask(self) -> int:
        return self._row_mask

    @property
    def col_mask(self) -> int:
        return self._col_mask

    @property
    def rows(self) -> Tuple[int, ...]:
        return mask_to_tuple(self._row_mask)

    @property
    def cols(self) -> Tuple[int, ...]:
        return mask_to_tuple(self._col_mask)

    @property
    def num_rows(self) -> int:
        return popcount(self._row_mask)

    @property
    def num_cols(self) -> int:
        return popcount(self._col_mask)

    @property
    def num_cells(self) -> int:
        return self.num_rows * self.num_cols

    # ------------------------------------------------------------------
    def cells(self) -> Iterator[Tuple[int, int]]:
        for i in self.rows:
            for j in self.cols:
                yield (i, j)

    def contains(self, i: int, j: int) -> bool:
        return bool((self._row_mask >> i) & 1 and (self._col_mask >> j) & 1)

    def overlaps(self, other: "Rectangle") -> bool:
        """True if the two rectangles share at least one cell."""
        return bool(
            self._row_mask & other._row_mask
            and self._col_mask & other._col_mask
        )

    def within(self, matrix: BinaryMatrix) -> bool:
        """True if every cell of the rectangle is a 1 of ``matrix``."""
        if self._row_mask >> matrix.num_rows:
            return False
        if self._col_mask >> matrix.num_cols:
            return False
        for i in self.rows:
            if self._col_mask & ~matrix.row_mask(i):
                return False
        return True

    def transpose(self) -> "Rectangle":
        return Rectangle(self._col_mask, self._row_mask)

    # ------------------------------------------------------------------
    def to_matrix(self, shape: Tuple[int, int]) -> BinaryMatrix:
        """The rank-1 indicator matrix ``P_i`` of this rectangle."""
        num_rows, num_cols = shape
        if self._row_mask >> num_rows or self._col_mask >> num_cols:
            raise InvalidRectangleError(
                f"rectangle {self!r} does not fit in shape {shape}"
            )
        masks = [
            self._col_mask if (self._row_mask >> i) & 1 else 0
            for i in range(num_rows)
        ]
        return BinaryMatrix(masks, num_cols)

    def h_column(self, num_rows: int) -> np.ndarray:
        """Indicator column of rows — one column of ``H`` in ``M = HW``."""
        out = np.zeros(num_rows, dtype=np.int64)
        for i in self.rows:
            out[i] = 1
        return out

    def w_row(self, num_cols: int) -> np.ndarray:
        """Indicator row of columns — one row of ``W`` in ``M = HW``."""
        out = np.zeros(num_cols, dtype=np.int64)
        for j in self.cols:
            out[j] = 1
        return out

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rectangle):
            return NotImplemented
        return (
            self._row_mask == other._row_mask
            and self._col_mask == other._col_mask
        )

    def __hash__(self) -> int:
        return hash((self._row_mask, self._col_mask))

    def __repr__(self) -> str:
        return f"Rectangle(rows={list(self.rows)}, cols={list(self.cols)})"
