"""ASCII rendering of matrices and partitions.

Mirrors the paper's figures: each rectangle of a partition gets a
distinct marker, zeros render as '.', so the rectangle structure of a
pattern is visible at a glance in a terminal.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidPartitionError
from repro.core.partition import Partition

MARKERS = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"


def render_matrix(matrix: BinaryMatrix, *, one: str = "#", zero: str = ".") -> str:
    """Plain rendering: '#' for 1, '.' for 0."""
    return "\n".join(
        "".join(
            one if matrix[i, j] else zero for j in range(matrix.num_cols)
        )
        for i in range(matrix.num_rows)
    )


def render_partition(
    partition: Partition,
    matrix: Optional[BinaryMatrix] = None,
    *,
    zero: str = ".",
) -> str:
    """Render a partition with one marker character per rectangle.

    If ``matrix`` is given, cells covered by no rectangle render as
    ``zero`` (and a cell covered by several rectangles renders as '!').
    """
    num_rows, num_cols = partition.shape
    grid: List[List[str]] = [
        [zero] * num_cols for _ in range(num_rows)
    ]
    for index, rect in enumerate(partition):
        marker = MARKERS[index % len(MARKERS)]
        for i, j in rect.cells():
            if grid[i][j] != zero:
                grid[i][j] = "!"
            else:
                grid[i][j] = marker
    if matrix is not None:
        if matrix.shape != partition.shape:
            raise InvalidPartitionError(
                f"matrix shape {matrix.shape} != partition shape "
                f"{partition.shape}"
            )
        for i in range(num_rows):
            for j in range(num_cols):
                if matrix[i, j] and grid[i][j] == zero:
                    grid[i][j] = "?"  # an uncovered 1
    return "\n".join("".join(row) for row in grid)


def render_side_by_side(*blocks: str, gap: str = "   ") -> str:
    """Join multi-line blocks horizontally (for before/after displays)."""
    split_blocks = [block.splitlines() for block in blocks]
    height = max(len(lines) for lines in split_blocks)
    widths = [
        max((len(line) for line in lines), default=0)
        for lines in split_blocks
    ]
    out_lines = []
    for row in range(height):
        parts = []
        for lines, width in zip(split_blocks, widths):
            line = lines[row] if row < len(lines) else ""
            parts.append(line.ljust(width))
        out_lines.append(gap.join(parts).rstrip())
    return "\n".join(out_lines)
