"""Matrix reductions: removing empty and duplicate rows/columns.

The paper's trivial upper bound (Section III-B) is the smaller of width
and height *after removing empty and duplicated rows and columns*.  The
reduction here performs that compression and remembers enough to lift a
partition of the reduced matrix back to the original.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidPartitionError
from repro.core.partition import Partition
from repro.core.rectangle import Rectangle


@dataclass(frozen=True)
class ReducedMatrix:
    """A compressed matrix plus the bookkeeping to undo the compression.

    ``row_groups[k]`` lists the original row indices collapsed into reduced
    row ``k`` (all identical, non-empty); likewise ``col_groups``.
    """

    matrix: BinaryMatrix
    row_groups: Tuple[Tuple[int, ...], ...]
    col_groups: Tuple[Tuple[int, ...], ...]
    original_shape: Tuple[int, int]

    def lift(self, partition: Partition) -> Partition:
        """Lift a partition of the reduced matrix to the original matrix.

        Each reduced row/column expands to its whole duplicate group —
        valid because duplicated rows have identical 1-patterns, so a
        rectangle covering one covers all simultaneously.
        """
        if partition.shape != self.matrix.shape:
            raise InvalidPartitionError(
                f"partition shape {partition.shape} != reduced shape "
                f"{self.matrix.shape}"
            )
        rects: List[Rectangle] = []
        for rect in partition:
            rows: List[int] = []
            for k in rect.rows:
                rows.extend(self.row_groups[k])
            cols: List[int] = []
            for k in rect.cols:
                cols.extend(self.col_groups[k])
            rects.append(Rectangle.from_sets(rows, cols))
        return Partition(rects, self.original_shape)


def reduce_matrix(matrix: BinaryMatrix) -> ReducedMatrix:
    """Drop empty rows/columns and merge duplicates (rows first, then
    columns of the row-reduced matrix).

    Duplicate merging is rank-preserving and binary-rank-preserving, so
    solving on the reduced matrix and lifting is always sound.
    """
    # --- rows ---
    row_order: Dict[int, int] = {}
    row_groups: List[List[int]] = []
    for i, mask in enumerate(matrix.row_masks):
        if mask == 0:
            continue
        if mask in row_order:
            row_groups[row_order[mask]].append(i)
        else:
            row_order[mask] = len(row_groups)
            row_groups.append([i])
    kept_row_masks = list(row_order.keys())

    # --- columns (on the row-reduced matrix) ---
    col_signature: Dict[Tuple[int, ...], int] = {}
    col_groups: List[List[int]] = []
    for j in range(matrix.num_cols):
        signature = tuple((mask >> j) & 1 for mask in kept_row_masks)
        if not any(signature):
            continue
        if signature in col_signature:
            col_groups[col_signature[signature]].append(j)
        else:
            col_signature[signature] = len(col_groups)
            col_groups.append([j])

    # Rebuild each kept row against the kept-column order.
    reduced_masks = []
    for mask in kept_row_masks:
        new_mask = 0
        for new_j, group in enumerate(col_groups):
            if (mask >> group[0]) & 1:
                new_mask |= 1 << new_j
        reduced_masks.append(new_mask)

    reduced = BinaryMatrix(reduced_masks, len(col_groups))
    return ReducedMatrix(
        matrix=reduced,
        row_groups=tuple(tuple(g) for g in row_groups),
        col_groups=tuple(tuple(g) for g in col_groups),
        original_shape=matrix.shape,
    )


def distinct_nonzero_rows(matrix: BinaryMatrix) -> int:
    """Count of distinct non-empty rows."""
    return len({mask for mask in matrix.row_masks if mask != 0})


def distinct_nonzero_cols(matrix: BinaryMatrix) -> int:
    """Count of distinct non-empty columns."""
    return len({mask for mask in matrix.col_masks() if mask != 0})
