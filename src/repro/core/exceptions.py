"""Exception hierarchy for the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class InvalidMatrixError(ReproError):
    """Raised when constructing a malformed binary matrix."""


class InvalidPartitionError(ReproError):
    """Raised when a rectangle set is not a valid EBMF of a matrix."""


class InvalidRectangleError(ReproError):
    """Raised when constructing a malformed combinatorial rectangle."""


class SolverError(ReproError):
    """Raised on internal solver failures (inconsistent state, bad input)."""


class BudgetExceeded(SolverError):
    """Raised (or reported) when a solver hits its time/conflict budget."""


class EncodingError(ReproError):
    """Raised by the SMT-style encoders on malformed encoding requests."""


class ProofError(SolverError):
    """Raised when an UNSAT proof log fails independent verification."""


class ScheduleError(ReproError):
    """Raised by the neutral-atom substrate for invalid AOD schedules."""


class AnalysisError(ReproError):
    """Raised on *internal* static-analysis failures (a rule crashing,
    an unreadable baseline) — never for findings, which are data.  The
    CLI maps this to exit 2, keeping it distinct from exit 1 =
    non-baselined findings."""
