"""Immutable binary matrices with bit-mask row storage.

The library's central data type.  Each row is stored as a Python integer
mask (bit ``j`` set means entry ``(i, j)`` is 1), which makes the inner
loops of the row-packing heuristic — subset tests, set differences,
unions — single integer operations, and makes matrices hashable so they
can key caches and benchmark dictionaries.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.core.exceptions import InvalidMatrixError
from repro.utils.bitops import bit_indices, popcount


class BinaryMatrix:
    """An immutable ``m x n`` matrix over {0, 1}.

    Construct via the ``from_*`` classmethods or directly from row masks::

        >>> M = BinaryMatrix.from_strings(["110", "011"])
        >>> M[0, 0], M[1, 0]
        (1, 0)
    """

    __slots__ = ("_rows", "_num_cols")

    def __init__(self, row_masks: Sequence[int], num_cols: int) -> None:
        if num_cols < 0:
            raise InvalidMatrixError(f"num_cols must be >= 0, got {num_cols}")
        rows = tuple(int(mask) for mask in row_masks)
        limit = 1 << num_cols
        for i, mask in enumerate(rows):
            if mask < 0 or mask >= limit:
                raise InvalidMatrixError(
                    f"row {i} mask {mask:#x} out of range for {num_cols} columns"
                )
        self._rows: Tuple[int, ...] = rows
        self._num_cols = num_cols

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Iterable[Iterable[int]]) -> "BinaryMatrix":
        """Build from nested 0/1 iterables (row-major)."""
        masks: List[int] = []
        num_cols = -1
        for i, row in enumerate(rows):
            entries = list(row)
            if num_cols == -1:
                num_cols = len(entries)
            elif len(entries) != num_cols:
                raise InvalidMatrixError(
                    f"row {i} has {len(entries)} entries, expected {num_cols}"
                )
            mask = 0
            for j, value in enumerate(entries):
                if value not in (0, 1):
                    raise InvalidMatrixError(
                        f"entry ({i}, {j}) is {value!r}, expected 0 or 1"
                    )
                if value:
                    mask |= 1 << j
            masks.append(mask)
        if num_cols == -1:
            num_cols = 0
        return cls(masks, num_cols)

    @classmethod
    def from_strings(cls, lines: Iterable[str]) -> "BinaryMatrix":
        """Build from strings of '0'/'1' characters, one per row.

        Spaces and underscores are ignored so matrices can be written
        readably: ``"1011_0010"``.
        """
        rows: List[List[int]] = []
        for i, line in enumerate(lines):
            cleaned = line.replace(" ", "").replace("_", "")
            row: List[int] = []
            for j, char in enumerate(cleaned):
                if char not in "01":
                    raise InvalidMatrixError(
                        f"row {i} position {j}: {char!r} is not '0' or '1'"
                    )
                row.append(int(char))
            rows.append(row)
        return cls.from_rows(rows)

    @classmethod
    def from_numpy(cls, array: np.ndarray) -> "BinaryMatrix":
        """Build from a 2D numpy array of 0s and 1s (any integer dtype)."""
        arr = np.asarray(array)
        if arr.ndim != 2:
            raise InvalidMatrixError(f"expected 2D array, got shape {arr.shape}")
        if arr.size and not np.isin(arr, (0, 1)).all():
            raise InvalidMatrixError("array contains entries other than 0/1")
        return cls.from_rows(arr.astype(int).tolist())

    @classmethod
    def from_cells(
        cls, cells: Iterable[Tuple[int, int]], shape: Tuple[int, int]
    ) -> "BinaryMatrix":
        """Build an ``shape`` matrix that is 1 exactly on ``cells``."""
        num_rows, num_cols = shape
        masks = [0] * num_rows
        for i, j in cells:
            if not (0 <= i < num_rows and 0 <= j < num_cols):
                raise InvalidMatrixError(
                    f"cell ({i}, {j}) outside shape {shape}"
                )
            masks[i] |= 1 << j
        return cls(masks, num_cols)

    @classmethod
    def zeros(cls, num_rows: int, num_cols: int) -> "BinaryMatrix":
        return cls([0] * num_rows, num_cols)

    @classmethod
    def all_ones(cls, num_rows: int, num_cols: int) -> "BinaryMatrix":
        full = (1 << num_cols) - 1
        return cls([full] * num_rows, num_cols)

    @classmethod
    def identity(cls, size: int) -> "BinaryMatrix":
        return cls([1 << i for i in range(size)], size)

    # ------------------------------------------------------------------
    # Shape and element access
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return len(self._rows)

    @property
    def num_cols(self) -> int:
        return self._num_cols

    @property
    def shape(self) -> Tuple[int, int]:
        return (len(self._rows), self._num_cols)

    @property
    def row_masks(self) -> Tuple[int, ...]:
        """All row masks; the fundamental representation."""
        return self._rows

    def row_mask(self, i: int) -> int:
        return self._rows[i]

    def col_mask(self, j: int) -> int:
        """Mask over *rows*: bit ``i`` set iff entry ``(i, j)`` is 1."""
        if not 0 <= j < self._num_cols:
            raise IndexError(f"column {j} out of range [0, {self._num_cols})")
        bit = 1 << j
        mask = 0
        for i, row in enumerate(self._rows):
            if row & bit:
                mask |= 1 << i
        return mask

    def col_masks(self) -> Tuple[int, ...]:
        """All column masks (masks over rows), computed in one pass."""
        masks = [0] * self._num_cols
        for i, row in enumerate(self._rows):
            bit = 1 << i
            for j in bit_indices(row):
                masks[j] |= bit
        return tuple(masks)

    def __getitem__(self, key: Tuple[int, int]) -> int:
        i, j = key
        if not 0 <= j < self._num_cols:
            raise IndexError(f"column {j} out of range [0, {self._num_cols})")
        return (self._rows[i] >> j) & 1

    # ------------------------------------------------------------------
    # Content queries
    # ------------------------------------------------------------------
    def ones(self) -> Iterator[Tuple[int, int]]:
        """Yield the coordinates of all 1-entries in row-major order."""
        for i, row in enumerate(self._rows):
            for j in bit_indices(row):
                yield (i, j)

    def count_ones(self) -> int:
        return sum(popcount(row) for row in self._rows)

    def occupancy(self) -> float:
        """Fraction of entries that are 1 (0.0 for an empty matrix)."""
        total = len(self._rows) * self._num_cols
        if total == 0:
            return 0.0
        return self.count_ones() / total

    def is_zero(self) -> bool:
        return all(row == 0 for row in self._rows)

    def row_is_zero(self, i: int) -> bool:
        return self._rows[i] == 0

    # ------------------------------------------------------------------
    # Derived matrices
    # ------------------------------------------------------------------
    def transpose(self) -> "BinaryMatrix":
        cols = self.col_masks()
        return BinaryMatrix(cols, len(self._rows))

    def submatrix(
        self, rows: Sequence[int], cols: Sequence[int]
    ) -> "BinaryMatrix":
        """Select the given rows and columns (in the given order)."""
        col_list = list(cols)
        masks = []
        for i in rows:
            source = self._rows[i]
            mask = 0
            for new_j, old_j in enumerate(col_list):
                if not 0 <= old_j < self._num_cols:
                    raise IndexError(f"column {old_j} out of range")
                if (source >> old_j) & 1:
                    mask |= 1 << new_j
            masks.append(mask)
        return BinaryMatrix(masks, len(col_list))

    def permute_rows(self, order: Sequence[int]) -> "BinaryMatrix":
        """New matrix whose row ``k`` is this matrix's row ``order[k]``."""
        if sorted(order) != list(range(len(self._rows))):
            raise InvalidMatrixError(f"{order!r} is not a row permutation")
        return BinaryMatrix([self._rows[i] for i in order], self._num_cols)

    def tensor(self, other: "BinaryMatrix") -> "BinaryMatrix":
        """Kronecker product ``self (x) other`` (both binary, so exact)."""
        m2, n2 = other.shape
        masks: List[int] = []
        for a_row in self._rows:
            for b_row in other.row_masks:
                mask = 0
                for j in bit_indices(a_row):
                    mask |= b_row << (j * n2)
                masks.append(mask)
        return BinaryMatrix(masks, self._num_cols * n2)

    def elementwise_or(self, other: "BinaryMatrix") -> "BinaryMatrix":
        self._require_same_shape(other)
        return BinaryMatrix(
            [a | b for a, b in zip(self._rows, other.row_masks)],
            self._num_cols,
        )

    def elementwise_and(self, other: "BinaryMatrix") -> "BinaryMatrix":
        self._require_same_shape(other)
        return BinaryMatrix(
            [a & b for a, b in zip(self._rows, other.row_masks)],
            self._num_cols,
        )

    def complement(self) -> "BinaryMatrix":
        full = (1 << self._num_cols) - 1
        return BinaryMatrix([row ^ full for row in self._rows], self._num_cols)

    def _require_same_shape(self, other: "BinaryMatrix") -> None:
        if self.shape != other.shape:
            raise InvalidMatrixError(
                f"shape mismatch: {self.shape} vs {other.shape}"
            )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_numpy(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.int64)
        for i, j in self.ones():
            out[i, j] = 1
        return out

    def to_lists(self) -> List[List[int]]:
        return [
            [(row >> j) & 1 for j in range(self._num_cols)]
            for row in self._rows
        ]

    def to_strings(self) -> List[str]:
        return [
            "".join(str((row >> j) & 1) for j in range(self._num_cols))
            for row in self._rows
        ]

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BinaryMatrix):
            return NotImplemented
        return self._num_cols == other._num_cols and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._rows, self._num_cols))

    def __repr__(self) -> str:
        return f"BinaryMatrix({self.num_rows}x{self.num_cols}, ones={self.count_ones()})"

    def to_pretty(self) -> str:
        """Multi-line rendering with '.' for 0 and '#' for 1."""
        return "\n".join(
            "".join("#" if (row >> j) & 1 else "." for j in range(self._num_cols))
            for row in self._rows
        )
