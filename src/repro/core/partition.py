"""Rectangle partitions — EBMF certificates.

A :class:`Partition` is an ordered collection of rectangles claimed to be
an exact binary matrix factorization of some matrix: pairwise disjoint,
jointly covering exactly the 1s.  ``validate`` checks the claim; the
``to_factors``/``from_factors`` pair maps to and from the ``M = H W``
formulation of Section II of the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidPartitionError
from repro.core.rectangle import Rectangle


class Partition:
    """An ordered set of rectangles over a fixed matrix shape."""

    __slots__ = ("_rectangles", "_shape")

    def __init__(
        self, rectangles: Iterable[Rectangle], shape: Tuple[int, int]
    ) -> None:
        num_rows, num_cols = shape
        if num_rows < 0 or num_cols < 0:
            raise InvalidPartitionError(f"invalid shape {shape}")
        rects = tuple(rectangles)
        for rect in rects:
            if rect.row_mask >> num_rows or rect.col_mask >> num_cols:
                raise InvalidPartitionError(
                    f"{rect!r} does not fit in shape {shape}"
                )
        self._rectangles = rects
        self._shape = (num_rows, num_cols)

    # ------------------------------------------------------------------
    @property
    def rectangles(self) -> Tuple[Rectangle, ...]:
        return self._rectangles

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def depth(self) -> int:
        """Number of rectangles == number of AOD configurations needed."""
        return len(self._rectangles)

    def __len__(self) -> int:
        return len(self._rectangles)

    def __iter__(self) -> Iterator[Rectangle]:
        return iter(self._rectangles)

    def __getitem__(self, index: int) -> Rectangle:
        return self._rectangles[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return self._shape == other._shape and set(self._rectangles) == set(
            other._rectangles
        )

    def __hash__(self) -> int:
        return hash((self._shape, frozenset(self._rectangles)))

    def __repr__(self) -> str:
        return f"Partition(depth={self.depth}, shape={self._shape})"

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def cover_counts(self) -> np.ndarray:
        """How many rectangles cover each cell (for diagnostics)."""
        counts = np.zeros(self._shape, dtype=np.int64)
        for rect in self._rectangles:
            for i in rect.rows:
                for j in rect.cols:
                    counts[i, j] += 1
        return counts

    def covered_matrix(self) -> BinaryMatrix:
        """The union of all rectangles as a binary matrix."""
        masks = [0] * self._shape[0]
        for rect in self._rectangles:
            for i in rect.rows:
                masks[i] |= rect.col_mask
        return BinaryMatrix(masks, self._shape[1])

    def validate(self, matrix: BinaryMatrix) -> None:
        """Raise :class:`InvalidPartitionError` unless this is an EBMF of
        ``matrix``: rectangles pairwise disjoint and covering exactly the 1s.
        """
        if matrix.shape != self._shape:
            raise InvalidPartitionError(
                f"partition shape {self._shape} != matrix shape {matrix.shape}"
            )
        cover = [0] * self._shape[0]
        for index, rect in enumerate(self._rectangles):
            for i in rect.rows:
                overlap = cover[i] & rect.col_mask
                if overlap:
                    raise InvalidPartitionError(
                        f"rectangle #{index} {rect!r} overlaps earlier "
                        f"rectangles on row {i} (cols mask {overlap:#x})"
                    )
                cover[i] |= rect.col_mask
        for i in range(self._shape[0]):
            if cover[i] != matrix.row_mask(i):
                missing = matrix.row_mask(i) & ~cover[i]
                spurious = cover[i] & ~matrix.row_mask(i)
                raise InvalidPartitionError(
                    f"row {i}: missing cols mask {missing:#x}, "
                    f"spurious cols mask {spurious:#x}"
                )

    def is_valid_for(self, matrix: BinaryMatrix) -> bool:
        try:
            self.validate(matrix)
        except InvalidPartitionError:
            return False
        return True

    # ------------------------------------------------------------------
    # Factorization view (M = H W)
    # ------------------------------------------------------------------
    def to_factors(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(H, W)`` with ``H`` of shape ``(m, r)`` and ``W`` of
        shape ``(r, n)`` such that ``H @ W`` equals the covered matrix.
        """
        num_rows, num_cols = self._shape
        r = len(self._rectangles)
        h = np.zeros((num_rows, r), dtype=np.int64)
        w = np.zeros((r, num_cols), dtype=np.int64)
        for k, rect in enumerate(self._rectangles):
            h[:, k] = rect.h_column(num_rows)
            w[k, :] = rect.w_row(num_cols)
        return h, w

    @classmethod
    def from_factors(
        cls, h: np.ndarray, w: np.ndarray
    ) -> "Partition":
        """Build a partition from binary factors ``H`` (m x r), ``W`` (r x n).

        Zero columns of ``H`` / zero rows of ``W`` contribute empty
        rectangles and are skipped.
        """
        h = np.asarray(h)
        w = np.asarray(w)
        if h.ndim != 2 or w.ndim != 2 or h.shape[1] != w.shape[0]:
            raise InvalidPartitionError(
                f"incompatible factor shapes {h.shape} and {w.shape}"
            )
        if h.size and not np.isin(h, (0, 1)).all():
            raise InvalidPartitionError("H contains entries other than 0/1")
        if w.size and not np.isin(w, (0, 1)).all():
            raise InvalidPartitionError("W contains entries other than 0/1")
        rects: List[Rectangle] = []
        for k in range(h.shape[1]):
            rows = np.flatnonzero(h[:, k])
            cols = np.flatnonzero(w[k, :])
            if rows.size and cols.size:
                rects.append(
                    Rectangle.from_sets(rows.tolist(), cols.tolist())
                )
        return cls(rects, (h.shape[0], w.shape[1]))

    # ------------------------------------------------------------------
    # Label assignment view (the SMT model shape)
    # ------------------------------------------------------------------
    @classmethod
    def from_assignment(
        cls,
        matrix: BinaryMatrix,
        labels: Mapping[Tuple[int, int], int],
    ) -> "Partition":
        """Build a partition from a cell -> rectangle-index labelling.

        This is how SAT/SMT models are decoded: the rectangle with label
        ``k`` spans the union of rows and columns of its cells.  The result
        is *not* validated here; callers validate against the matrix.
        """
        groups: Dict[int, Tuple[int, int]] = {}
        for (i, j), label in labels.items():
            row_mask, col_mask = groups.get(label, (0, 0))
            groups[label] = (row_mask | (1 << i), col_mask | (1 << j))
        rects = [
            Rectangle(row_mask, col_mask)
            for _, (row_mask, col_mask) in sorted(groups.items())
        ]
        return cls(rects, matrix.shape)

    def to_assignment(self) -> Dict[Tuple[int, int], int]:
        """Inverse of :meth:`from_assignment` (labels = rectangle indices)."""
        out: Dict[Tuple[int, int], int] = {}
        for k, rect in enumerate(self._rectangles):
            for cell in rect.cells():
                out[cell] = k
        return out

    # ------------------------------------------------------------------
    def transpose(self) -> "Partition":
        """The partition of the transposed matrix."""
        return Partition(
            [rect.transpose() for rect in self._rectangles],
            (self._shape[1], self._shape[0]),
        )

    def permute_rows(self, order: Sequence[int]) -> "Partition":
        """Partition of ``matrix.permute_rows(order)`` given this partition
        of the original: new row ``k`` is old row ``order[k]``.
        """
        num_rows = self._shape[0]
        if sorted(order) != list(range(num_rows)):
            raise InvalidPartitionError(f"{order!r} is not a row permutation")
        inverse = [0] * num_rows
        for new_index, old_index in enumerate(order):
            inverse[old_index] = new_index
        rects = [
            Rectangle.from_sets(
                (inverse[i] for i in rect.rows), rect.cols
            )
            for rect in self._rectangles
        ]
        return Partition(rects, self._shape)
