"""The concrete matrices that appear in the paper's figures and equations.

Used by tests, examples, and the sanity-check experiment so that every
worked example in the paper is executable here.
"""

from __future__ import annotations

from repro.core.binary_matrix import BinaryMatrix


def figure_1b() -> BinaryMatrix:
    """The 6x6 motivating pattern of Figure 1b / Figure 2a.

    Partitionable into 5 rectangles, with a fooling set of size 5 proving
    optimality (``r_B = phi = 5``).
    """
    return BinaryMatrix.from_strings(
        [
            "101100",
            "010011",
            "101010",
            "010101",
            "111000",
            "000111",
        ]
    )


def equation_2() -> BinaryMatrix:
    """The 3x3 matrix of Eq. 2: ``phi = 2`` but ``r_B = 3``.

    Shows the fooling-set bound is not always tight.
    """
    return BinaryMatrix.from_strings(["110", "011", "111"])


def figure_3() -> BinaryMatrix:
    """The 5x5 matrix of Figure 3 (row-packing worked example).

    Processing rows top-down yields 5 rectangles; the shuffled order
    ``[4, 2, 3, 0, 1]`` yields 4.
    """
    return BinaryMatrix.from_strings(
        [
            "11000",
            "00110",
            "01100",
            "10011",
            "11111",
        ]
    )


FIGURE_3_GOOD_ORDER = (4, 2, 3, 0, 1)
"""Row order used in Figure 3b, which packs into 4 rectangles."""


def section_2_nonbinary_example() -> BinaryMatrix:
    """The 3x3 matrix used in Section II to show EBMF addition is over R.

    ``[[0,1,1],[1,0,1],[1,1,0]]`` — the complement of the identity; its
    binary rank is 3 while the mod-2 'factorization' with two rectangles
    double-covers the (0,0) entry and is therefore not an EBMF.
    """
    return BinaryMatrix.from_strings(["011", "101", "110"])
