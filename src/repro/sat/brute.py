"""Brute-force SAT solving over small variable counts.

A ground-truth oracle for testing the CDCL solver: enumerates all
assignments, so strictly limited to ~25 variables.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.exceptions import SolverError
from repro.sat.formula import CnfFormula

_MAX_BRUTE_VARS = 25


def brute_force_model(formula: CnfFormula) -> Optional[Dict[int, bool]]:
    """Return some satisfying assignment, or ``None`` if unsatisfiable."""
    n = formula.num_vars
    if n > _MAX_BRUTE_VARS:
        raise SolverError(
            f"brute force limited to {_MAX_BRUTE_VARS} vars, got {n}"
        )
    clauses = [
        [(abs(lit) - 1, lit > 0) for lit in clause]
        for clause in formula.clauses
    ]
    for bits in range(1 << n):
        satisfied = True
        for clause in clauses:
            if not any(
                bool((bits >> var) & 1) == positive
                for var, positive in clause
            ):
                satisfied = False
                break
        if satisfied:
            return {v + 1: bool((bits >> v) & 1) for v in range(n)}
    return None


def brute_force_count(formula: CnfFormula) -> int:
    """Count satisfying assignments (model counting for tiny formulas)."""
    n = formula.num_vars
    if n > _MAX_BRUTE_VARS:
        raise SolverError(
            f"brute force limited to {_MAX_BRUTE_VARS} vars, got {n}"
        )
    clauses = [
        [(abs(lit) - 1, lit > 0) for lit in clause]
        for clause in formula.clauses
    ]
    count = 0
    for bits in range(1 << n):
        if all(
            any(bool((bits >> var) & 1) == positive for var, positive in clause)
            for clause in clauses
        ):
            count += 1
    return count
