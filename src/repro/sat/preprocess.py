"""CNF preprocessing: subsumption and self-subsuming resolution.

Classic SatELite-style simplifications (without variable elimination):

* **subsumption** — a clause ``C`` subsumes ``D`` when ``C ⊆ D``; ``D``
  is redundant and removed;
* **self-subsuming resolution (strengthening)** — when ``C \\ {l} ⊆ D``
  and ``¬l ∈ D``, resolving on ``l`` shows ``D`` can drop ``¬l``.

Both preserve equivalence (not just equisatisfiability), so models of
the reduced formula are models of the original.  The EBMF encodings
generate families of structurally similar clauses where these rules
fire often; preprocessing is optional and off by default (the CDCL
solver is fast enough for paper-scale instances either way).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.sat.formula import CnfFormula


def _signature(clause: FrozenSet[int]) -> int:
    """Cheap subset filter: bitwise-or of per-literal hashes."""
    sig = 0
    for lit in clause:
        sig |= 1 << (hash(lit) & 63)
    return sig


class _ClauseDb:
    def __init__(self, clauses: List[FrozenSet[int]]) -> None:
        self.clauses: Dict[int, FrozenSet[int]] = dict(enumerate(clauses))
        self.signatures: Dict[int, int] = {
            index: _signature(clause)
            for index, clause in self.clauses.items()
        }
        self.occurrences: Dict[int, Set[int]] = {}
        for index, clause in self.clauses.items():
            for lit in clause:
                self.occurrences.setdefault(lit, set()).add(index)

    def remove(self, index: int) -> None:
        for lit in self.clauses[index]:
            self.occurrences.get(lit, set()).discard(index)
        del self.clauses[index]
        del self.signatures[index]

    def replace(self, index: int, new_clause: FrozenSet[int]) -> None:
        for lit in self.clauses[index]:
            self.occurrences.get(lit, set()).discard(index)
        self.clauses[index] = new_clause
        self.signatures[index] = _signature(new_clause)
        for lit in new_clause:
            self.occurrences.setdefault(lit, set()).add(index)

    def candidates_superset(self, clause: FrozenSet[int]) -> Set[int]:
        """Indices of clauses that could be supersets of ``clause``:
        those containing its rarest literal."""
        rarest = min(
            clause,
            key=lambda lit: len(self.occurrences.get(lit, ())),
        )
        return set(self.occurrences.get(rarest, ()))


def preprocess(
    formula: CnfFormula, *, strengthen: bool = True, max_rounds: int = 10
) -> Tuple[CnfFormula, Dict[str, int]]:
    """Subsumption (+ optional strengthening) to a fixed point.

    Returns ``(reduced_formula, stats)`` with counters ``subsumed`` and
    ``strengthened``.  Tautologies and duplicate clauses are always
    removed.  The variable count is preserved.
    """
    seen: Set[FrozenSet[int]] = set()
    unique: List[FrozenSet[int]] = []
    for clause in formula.clauses:
        frozen = frozenset(clause)
        if any(-lit in frozen for lit in frozen):
            continue  # tautology
        if frozen in seen:
            continue
        seen.add(frozen)
        unique.append(frozen)

    db = _ClauseDb(unique)
    stats = {"subsumed": len(formula.clauses) - len(unique), "strengthened": 0}

    changed = True
    rounds = 0
    while changed and rounds < max_rounds:
        changed = False
        rounds += 1
        for index in sorted(
            db.clauses, key=lambda k: len(db.clauses[k])
        ):
            if index not in db.clauses:
                continue
            clause = db.clauses[index]
            if not clause:
                # Empty clause derived: the formula is unsatisfiable.
                result = CnfFormula()
                result.new_vars(formula.num_vars)
                result.add_clause([])
                return result, stats
            signature = db.signatures[index]
            # --- subsumption: remove supersets of `clause`.
            for other_index in db.candidates_superset(clause):
                if other_index == index or other_index not in db.clauses:
                    continue
                other = db.clauses[other_index]
                if len(other) <= len(clause):
                    continue
                if signature & ~db.signatures[other_index]:
                    continue
                if clause <= other:
                    db.remove(other_index)
                    stats["subsumed"] += 1
                    changed = True
            if not strengthen:
                continue
            # --- self-subsuming resolution: for each literal l of the
            # clause, find D with (clause - l) subset of D and -l in D.
            for lit in list(clause):
                reduced = clause - {lit}
                for other_index in list(
                    db.occurrences.get(-lit, ())
                ):
                    if other_index not in db.clauses:
                        continue
                    other = db.clauses[other_index]
                    if len(other) < len(clause):
                        continue
                    if reduced <= other:
                        strengthened = other - {-lit}
                        if strengthened in seen and strengthened != other:
                            db.remove(other_index)
                            stats["subsumed"] += 1
                        else:
                            seen.add(strengthened)
                            db.replace(other_index, strengthened)
                            stats["strengthened"] += 1
                        changed = True

    result = CnfFormula()
    result.new_vars(formula.num_vars)
    for clause in db.clauses.values():
        result.add_clause(sorted(clause, key=abs))
    return result, stats
