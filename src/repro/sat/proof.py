"""Clausal (DRUP-style) proof logging and independent verification.

The paper's Observation 5 notes that the dominant SAP cost is *proving
UNSAT* — the step that certifies a partition optimal.  An optimality
claim is therefore only as trustworthy as the solver's UNSAT answers.
This module lets :class:`~repro.sat.solver.CdclSolver` emit a clausal
proof while it runs, and re-checks that proof with a small, independent
reverse-unit-propagation (RUP) verifier that shares no code with the
solver's search loop.

A proof log is an ordered event stream:

* ``axiom`` — a clause handed to the solver via ``add_clause`` (logged
  verbatim, before any internal simplification), including the
  incremental narrowing clauses SAP adds between queries;
* ``learn`` — a clause the solver derived by conflict analysis; every
  first-UIP learned clause (after minimization) is RUP with respect to
  the clauses logged before it;
* ``delete`` — a learned clause dropped by database reduction (kept for
  export symmetry; ignoring deletions is sound for verification since
  every database clause is entailed by the axioms);
* ``empty`` — the top-level refutation.

``check_refutation`` replays the stream: axioms are admitted, learned
clauses must pass the RUP test against everything admitted so far, and
the final ``empty`` event must follow from unit propagation alone.  On
success the UNSAT claim holds for the axioms regardless of any bug in
the CDCL search itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.exceptions import ProofError

AXIOM = "axiom"
LEARN = "learn"
DELETE = "delete"
EMPTY = "empty"


@dataclass(frozen=True)
class ProofEvent:
    """One step of a clausal proof (external DIMACS literals)."""

    kind: str
    literals: Tuple[int, ...]

    def __str__(self) -> str:
        body = " ".join(str(lit) for lit in self.literals) + " 0"
        if self.kind == AXIOM:
            return f"i {body}"
        if self.kind == DELETE:
            return f"d {body}"
        if self.kind == EMPTY:
            return "0"
        return body


class ProofLog:
    """Ordered clausal proof trace produced by a solver run.

    Pass an instance to ``CdclSolver(proof=log)``; after an unconditional
    UNSAT answer, ``log.refuted`` is true and :func:`check_refutation`
    can validate the derivation independently.
    """

    def __init__(self) -> None:
        self.events: List[ProofEvent] = []
        self.refuted = False

    # ------------------------------------------------------------------
    # Recording (called by the solver)
    # ------------------------------------------------------------------
    def axiom(self, literals: Sequence[int]) -> None:
        self.events.append(ProofEvent(AXIOM, tuple(literals)))

    def learn(self, literals: Sequence[int]) -> None:
        self.events.append(ProofEvent(LEARN, tuple(literals)))

    def delete(self, literals: Sequence[int]) -> None:
        self.events.append(ProofEvent(DELETE, tuple(literals)))

    def empty(self) -> None:
        if not self.refuted:
            self.events.append(ProofEvent(EMPTY, ()))
            self.refuted = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ProofEvent]:
        return iter(self.events)

    def axioms(self) -> List[Tuple[int, ...]]:
        return [e.literals for e in self.events if e.kind == AXIOM]

    def learned(self) -> List[Tuple[int, ...]]:
        return [e.literals for e in self.events if e.kind == LEARN]

    @property
    def num_axioms(self) -> int:
        return sum(1 for e in self.events if e.kind == AXIOM)

    @property
    def num_learned(self) -> int:
        return sum(1 for e in self.events if e.kind == LEARN)

    def to_drup(self) -> str:
        """The derivation part (learn/delete/empty) in DRUP text format.

        Axiom events are omitted — a DRUP file accompanies a DIMACS CNF
        that already lists the axioms.  Use :meth:`axioms` (or DIMACS
        export of the original formula) alongside this.
        """
        lines = [
            str(event)
            for event in self.events
            if event.kind in (LEARN, DELETE, EMPTY)
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dimacs(self) -> str:
        """The axioms as a standalone DIMACS CNF file.

        Together with :meth:`to_drup` this forms the standard
        (formula, proof) pair consumed by external checkers such as
        ``drat-trim`` — every DRUP proof is also a valid DRAT proof.
        Axioms added incrementally (after earlier solve calls) are
        hoisted to the front; that only enlarges the clause set each
        lemma is checked against, so refutation validity is preserved
        (all hoisted clauses are axioms, not derived).
        """
        axioms = self.axioms()
        num_vars = max(
            (abs(lit) for clause in axioms for lit in clause), default=0
        )
        lines = [
            "c axioms exported from repro.sat.proof.ProofLog",
            f"p cnf {num_vars} {len(axioms)}",
        ]
        lines.extend(
            " ".join(str(lit) for lit in clause) + " 0" for clause in axioms
        )
        return "\n".join(lines) + "\n"

    def write_files(self, cnf_path: str, drup_path: str) -> None:
        """Write the (DIMACS, DRUP) pair for external verification."""
        with open(cnf_path, "w", encoding="utf-8") as stream:
            stream.write(self.to_dimacs())
        with open(drup_path, "w", encoding="utf-8") as stream:
            stream.write(self.to_drup())

    def __repr__(self) -> str:
        return (
            f"ProofLog(axioms={self.num_axioms}, "
            f"learned={self.num_learned}, refuted={self.refuted})"
        )


class RupChecker:
    """Incremental reverse-unit-propagation clause checker.

    Maintains a clause database with two-watched-literal propagation, a
    *persistent* root-level assignment (literals forced by unit clauses
    and their closure), and a scratch trail for per-clause RUP tests.
    Deliberately independent of :class:`~repro.sat.solver.CdclSolver`:
    no activities, no learning, no restarts — just propagation.
    """

    def __init__(self) -> None:
        self._num_vars = 0
        self._assigns: List[int] = [0]  # +1 true, -1 false, 0 unassigned
        self._watches: List[List[List[int]]] = [[], []]
        self._trail: List[int] = []  # root assignments, in order
        self._root_conflict = False

    # -- literals ------------------------------------------------------
    def _ensure_var(self, var: int) -> None:
        while self._num_vars < var:
            self._num_vars += 1
            self._assigns.append(0)
            self._watches.append([])
            self._watches.append([])

    @staticmethod
    def _internal(lit: int) -> int:
        return (lit << 1) if lit > 0 else ((-lit) << 1 | 1)

    def _value(self, ilit: int) -> int:
        value = self._assigns[ilit >> 1]
        return -value if ilit & 1 else value

    def _assign(self, ilit: int) -> None:
        self._assigns[ilit >> 1] = -1 if ilit & 1 else 1
        self._trail.append(ilit)

    # -- database ------------------------------------------------------
    def add_clause(self, literals: Sequence[int]) -> None:
        """Admit a clause (axiom or verified lemma) into the database."""
        if self._root_conflict:
            return
        seen = set()
        clause: List[int] = []
        for lit in literals:
            if lit == 0:
                raise ProofError("literal 0 in proof clause")
            self._ensure_var(abs(lit))
            ilit = self._internal(lit)
            if ilit ^ 1 in seen:
                return  # tautology: never propagates, safe to drop
            if ilit in seen:
                continue
            seen.add(ilit)
            clause.append(ilit)
        if any(self._value(ilit) > 0 for ilit in clause):
            return  # satisfied at the root forever: never propagates
        # Keep root-false literals out of the watch slots but in the
        # clause (root assignments are permanent, so they stay false).
        clause.sort(key=lambda l: self._value(l) < 0)
        if not clause:
            self._root_conflict = True
            return
        if self._value(clause[0]) < 0:  # all literals root-false
            self._root_conflict = True
            return
        if len(clause) == 1 or self._value(clause[1]) < 0:
            # Unit at the root (outright or after the sort): propagate
            # permanently.
            if self._value(clause[0]) == 0:
                self._assign(clause[0])
                if self._propagate(len(self._trail) - 1) is not None:
                    self._root_conflict = True
            if len(clause) >= 2:
                self._attach(clause)
            return
        self._attach(clause)

    def _attach(self, clause: List[int]) -> None:
        self._watches[clause[0]].append(clause)
        self._watches[clause[1]].append(clause)

    # -- propagation ---------------------------------------------------
    def _propagate(self, qhead: int) -> Optional[List[int]]:
        """Unit propagation from trail position ``qhead``; returns the
        conflicting clause or ``None``."""
        while qhead < len(self._trail):
            false_lit = self._trail[qhead] ^ 1
            qhead += 1
            watchers = self._watches[false_lit]
            kept: List[List[int]] = []
            index = 0
            total = len(watchers)
            while index < total:
                clause = watchers[index]
                index += 1
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) > 0:
                    kept.append(clause)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) >= 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches[clause[1]].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(clause)
                if self._value(first) < 0:
                    kept.extend(watchers[index:])
                    self._watches[false_lit] = kept
                    return clause
                self._assign(first)
            self._watches[false_lit] = kept
        return None

    def _undo_to(self, mark: int) -> None:
        for index in range(len(self._trail) - 1, mark - 1, -1):
            self._assigns[self._trail[index] >> 1] = 0
        del self._trail[mark:]

    # -- RUP test ------------------------------------------------------
    def check_rup(self, literals: Sequence[int]) -> bool:
        """Does unit propagation refute the negation of this clause?"""
        if self._root_conflict:
            return True
        mark = len(self._trail)
        for lit in literals:
            self._ensure_var(abs(lit))
            ilit = self._internal(lit)
            value = self._value(ilit)
            if value > 0:
                # Some literal of the clause already holds at the root:
                # the negation is immediately contradictory.
                self._undo_to(mark)
                return True
            if value == 0:
                self._assign(ilit ^ 1)
        conflict = self._propagate(mark)
        self._undo_to(mark)
        return conflict is not None

    def admit_checked(self, literals: Sequence[int]) -> bool:
        """RUP-check a lemma and, if valid, add it to the database."""
        if not self.check_rup(literals):
            return False
        self.add_clause(literals)
        return True

    @property
    def refuted(self) -> bool:
        return self._root_conflict


def check_refutation(log: ProofLog) -> None:
    """Verify that ``log`` is a valid refutation of its axioms.

    Raises :class:`~repro.core.exceptions.ProofError` on the first event
    that fails; returns normally when the stream ends in a justified
    ``empty`` event.
    """
    if not log.refuted:
        raise ProofError("proof log does not claim a refutation")
    checker = RupChecker()
    for position, event in enumerate(log.events):
        if event.kind == AXIOM:
            checker.add_clause(event.literals)
        elif event.kind == LEARN:
            if not checker.admit_checked(event.literals):
                raise ProofError(
                    f"event {position}: learned clause "
                    f"{list(event.literals)} is not RUP"
                )
        elif event.kind == DELETE:
            continue  # sound to ignore (database stays a superset)
        elif event.kind == EMPTY:
            if not checker.refuted and not checker.check_rup(()):
                raise ProofError(
                    f"event {position}: empty clause does not follow "
                    "by unit propagation"
                )
            return
        else:  # pragma: no cover - defensive
            raise ProofError(f"unknown proof event kind {event.kind!r}")
    raise ProofError("proof log ended without an empty-clause event")


def is_valid_refutation(log: ProofLog) -> bool:
    """Boolean convenience wrapper around :func:`check_refutation`."""
    try:
        check_refutation(log)
    except ProofError:
        return False
    return True


def proof_stats(log: ProofLog) -> Dict[str, int]:
    """Summary counters for reporting (axioms/learned/deleted sizes)."""
    deleted = sum(1 for e in log.events if e.kind == DELETE)
    literals = sum(len(e.literals) for e in log.events if e.kind == LEARN)
    return {
        "axioms": log.num_axioms,
        "learned": log.num_learned,
        "deleted": deleted,
        "learned_literals": literals,
        "refuted": int(log.refuted),
    }
