"""A CDCL SAT solver in pure Python.

This is the stand-in for z3 in the paper's toolchain (DESIGN.md,
substitution table): SAP only needs a complete decision oracle for the
CNF-encoded question ``r_B(M) <= b``, solved repeatedly with added
narrowing clauses, so the solver supports incremental use — clauses may
be added between ``solve`` calls and learned clauses are kept.

Implemented techniques (MiniSat lineage):

* two-watched-literal propagation,
* first-UIP conflict analysis with self-subsumption clause minimization,
* VSIDS variable activities with a lazy heap and phase saving,
* Luby-sequence restarts,
* activity-based learned-clause database reduction,
* solving under assumptions,
* conflict and wall-clock budgets (returns ``UNKNOWN``).

Literals follow the DIMACS convention externally (``+v`` / ``-v``);
internally a literal is ``v << 1 | sign`` with ``sign = 1`` for negation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.exceptions import SolverError
from repro.utils.timing import Deadline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sat.proof import ProofLog


class SolveStatus(Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolverStats:
    """Counters accumulated across all ``solve`` calls."""

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0
    solve_calls: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "learned_clauses": self.learned_clauses,
            "deleted_clauses": self.deleted_clauses,
            "solve_calls": self.solve_calls,
        }


def luby(base: int, index: int) -> int:
    """The Luby restart sequence: 1,1,2,1,1,2,4,... times ``base``."""
    size, sequence = 1, 0
    while size < index + 1:
        sequence += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        sequence -= 1
        index %= size
    return base * (2**sequence)


_UNASSIGNED = 0


class CdclSolver:
    """Conflict-driven clause-learning SAT solver.

    Usage::

        solver = CdclSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        solver.add_clause([-a, b])
        assert solver.solve() is SolveStatus.SAT
        assert solver.model_value(b) is True
    """

    def __init__(
        self,
        *,
        var_decay: float = 0.95,
        clause_decay: float = 0.999,
        restart_base: int = 100,
        max_learned: int = 4000,
        proof: Optional["ProofLog"] = None,
    ) -> None:
        self.stats = SolverStats()
        self._proof = proof
        self._num_vars = 0
        self._ok = True  # False once a top-level conflict is derived

        # Per-variable state (index 0 unused).
        self._assigns: List[int] = [0]  # +1 true, -1 false, 0 unassigned
        self._levels: List[int] = [0]
        self._reasons: List[Optional[List[int]]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._seen: List[bool] = [False]

        # Per-literal watch lists (index lit = v<<1 | sign).
        self._watches: List[List[List[int]]] = [[], []]

        self._clauses: List[List[int]] = []
        self._learned: List[List[int]] = []
        self._clause_activity: Dict[int, float] = {}  # id(clause) -> activity

        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0

        self._heap: List[tuple] = []  # lazy max-heap of (-activity, var)
        self._var_inc = 1.0
        self._var_decay = var_decay
        self._clause_inc = 1.0
        self._clause_decay = clause_decay
        self._restart_base = restart_base
        self._max_learned = max_learned

        self._model: List[int] = []
        self.unsat_due_to_assumptions = False
        self._core: List[int] = []

    # ------------------------------------------------------------------
    # Variable and clause management
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    def new_var(self) -> int:
        self._num_vars += 1
        self._assigns.append(0)
        self._levels.append(0)
        self._reasons.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        self._seen.append(False)
        self._watches.append([])
        self._watches.append([])
        heapq.heappush(self._heap, (0.0, self._num_vars))
        return self._num_vars

    def new_vars(self, count: int) -> List[int]:
        return [self.new_var() for _ in range(count)]

    @staticmethod
    def _to_internal(lit: int) -> int:
        if lit > 0:
            return lit << 1
        return (-lit) << 1 | 1

    @staticmethod
    def _to_external(ilit: int) -> int:
        var = ilit >> 1
        return -var if ilit & 1 else var

    def _lit_value(self, ilit: int) -> int:
        value = self._assigns[ilit >> 1]
        return -value if ilit & 1 else value

    def add_clause(self, literals: Sequence[int]) -> bool:
        """Add a clause (external literals).  Only legal at decision level
        0 (i.e., between ``solve`` calls).  Returns ``False`` if the solver
        is now known unsatisfiable at the top level.
        """
        if self._trail_lim:
            raise SolverError("clauses may only be added at decision level 0")
        if self._proof is not None:
            self._proof.axiom(list(literals))
        if not self._ok:
            return False
        seen_lits = set()
        clause: List[int] = []
        tautology = False
        for lit in literals:
            if lit == 0 or abs(lit) > self._num_vars:
                raise SolverError(f"invalid literal {lit}")
            ilit = self._to_internal(lit)
            if ilit ^ 1 in seen_lits:
                tautology = True
                break
            if ilit in seen_lits:
                continue
            value = self._lit_value(ilit)
            if value > 0:
                tautology = True  # already satisfied at level 0
                break
            if value < 0:
                continue  # falsified at level 0: drop the literal
            seen_lits.add(ilit)
            clause.append(ilit)
        if tautology:
            return True
        if not clause:
            self._ok = False
            if self._proof is not None:
                self._proof.empty()
            return False
        if len(clause) == 1:
            self._enqueue(clause[0], None)
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                if self._proof is not None:
                    self._proof.empty()
                return False
            return True
        self._clauses.append(clause)
        self._attach(clause)
        return True

    def _attach(self, clause: List[int]) -> None:
        self._watches[clause[0]].append(clause)
        self._watches[clause[1]].append(clause)

    # ------------------------------------------------------------------
    # Assignment trail
    # ------------------------------------------------------------------
    @property
    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, ilit: int, reason: Optional[List[int]]) -> None:
        var = ilit >> 1
        self._assigns[var] = -1 if ilit & 1 else 1
        self._levels[var] = self._decision_level
        self._reasons[var] = reason
        self._trail.append(ilit)

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _backtrack(self, level: int) -> None:
        if self._decision_level <= level:
            return
        boundary = self._trail_lim[level]
        for index in range(len(self._trail) - 1, boundary - 1, -1):
            ilit = self._trail[index]
            var = ilit >> 1
            self._phase[var] = not (ilit & 1)
            self._assigns[var] = 0
            self._reasons[var] = None
            heapq.heappush(self._heap, (-self._activity[var], var))
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[List[int]]:
        """Unit propagation; returns the conflicting clause or ``None``."""
        while self._qhead < len(self._trail):
            ilit = self._trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            false_lit = ilit ^ 1
            watchers = self._watches[false_lit]
            kept: List[List[int]] = []
            index = 0
            total = len(watchers)
            while index < total:
                clause = watchers[index]
                index += 1
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                first_value = self._lit_value(first)
                if first_value > 0:
                    kept.append(clause)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) >= 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches[clause[1]].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(clause)
                if first_value < 0:
                    # Conflict: retain the untraversed watchers.
                    kept.extend(watchers[index:])
                    self._watches[false_lit] = kept
                    self._qhead = len(self._trail)
                    return clause
                self._enqueue(first, clause)
            self._watches[false_lit] = kept
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        if self._assigns[var] == 0:
            heapq.heappush(self._heap, (-self._activity[var], var))

    def _bump_clause(self, clause: List[int]) -> None:
        key = id(clause)
        if key not in self._clause_activity:
            return
        self._clause_activity[key] += self._clause_inc
        if self._clause_activity[key] > 1e20:
            for k in self._clause_activity:
                self._clause_activity[k] *= 1e-20
            self._clause_inc *= 1e-20

    def _analyze(self, conflict: List[int]) -> tuple:
        """First-UIP analysis.  Returns (learnt_clause, backtrack_level)."""
        learnt: List[int] = [0]  # slot 0 for the asserting literal
        seen = self._seen
        to_clear: List[int] = []
        path_count = 0
        p: Optional[int] = None
        index = len(self._trail)
        reason = conflict
        current_level = self._decision_level

        while True:
            self._bump_clause(reason)
            start = 0 if p is None else 1
            for q in reason[start:]:
                var = q >> 1
                if not seen[var] and self._levels[var] > 0:
                    seen[var] = True
                    to_clear.append(var)
                    self._bump_var(var)
                    if self._levels[var] >= current_level:
                        path_count += 1
                    else:
                        learnt.append(q)
            while True:
                index -= 1
                if seen[self._trail[index] >> 1]:
                    break
            p = self._trail[index]
            var = p >> 1
            path_count -= 1
            if path_count == 0:
                break
            reason = self._reasons[var]
            if reason is None:
                raise SolverError("decision literal reached before UIP")
            seen[var] = False
        learnt[0] = p ^ 1
        seen[p >> 1] = True
        if (p >> 1) not in to_clear:
            to_clear.append(p >> 1)

        # Self-subsumption minimization: a literal is redundant if its
        # reason clause is covered by the rest of the learnt clause.
        def redundant(q: int) -> bool:
            reason_q = self._reasons[q >> 1]
            if reason_q is None:
                return False
            for other in reason_q[1:]:
                var_o = other >> 1
                if not seen[var_o] and self._levels[var_o] > 0:
                    return False
            return True

        minimized = [learnt[0]]
        minimized.extend(q for q in learnt[1:] if not redundant(q))
        learnt = minimized

        # Find backtrack level and move its literal to the watch slot.
        if len(learnt) == 1:
            backtrack_level = 0
        else:
            max_index = 1
            for k in range(2, len(learnt)):
                if self._levels[learnt[k] >> 1] > self._levels[learnt[max_index] >> 1]:
                    max_index = k
            learnt[1], learnt[max_index] = learnt[max_index], learnt[1]
            backtrack_level = self._levels[learnt[1] >> 1]

        for var in to_clear:
            seen[var] = False
        return learnt, backtrack_level

    # ------------------------------------------------------------------
    # Learned-clause database reduction
    # ------------------------------------------------------------------
    def _reduce_db(self) -> None:
        locked = set()
        for ilit in self._trail:
            reason = self._reasons[ilit >> 1]
            if reason is not None:
                locked.add(id(reason))
        candidates = [
            clause
            for clause in self._learned
            if len(clause) > 2 and id(clause) not in locked
        ]
        candidates.sort(key=lambda c: self._clause_activity.get(id(c), 0.0))
        to_remove = set(id(c) for c in candidates[: len(candidates) // 2])
        if not to_remove:
            return
        survivors = []
        for clause in self._learned:
            if id(clause) in to_remove:
                self._detach(clause)
                self._clause_activity.pop(id(clause), None)
                self.stats.deleted_clauses += 1
                if self._proof is not None:
                    self._proof.delete(
                        [self._to_external(lit) for lit in clause]
                    )
            else:
                survivors.append(clause)
        self._learned = survivors

    def _detach(self, clause: List[int]) -> None:
        for watched in (clause[0], clause[1]):
            watchlist = self._watches[watched]
            for k, entry in enumerate(watchlist):
                if entry is clause:
                    watchlist[k] = watchlist[-1]
                    watchlist.pop()
                    break

    # ------------------------------------------------------------------
    # Final conflict analysis (unsat core over assumptions)
    # ------------------------------------------------------------------
    def _analyze_final(self, failed: int) -> List[int]:
        """The subset of assumptions that falsified assumption ``failed``.

        Standard MiniSat ``analyzeFinal``: walk the implication trail
        backwards from the negation of ``failed``, expanding reasons;
        decision literals reached this way are earlier assumptions.
        Returns external literals, ``failed`` included — a jointly
        inconsistent subset of the assumptions passed to ``solve``.
        """
        core = [self._to_external(failed)]
        var0 = failed >> 1
        if self._levels[var0] == 0:
            return core  # formula alone already implies the negation
        seen = self._seen
        seen[var0] = True
        to_clear = [var0]
        for index in range(len(self._trail) - 1, -1, -1):
            ilit = self._trail[index]
            var = ilit >> 1
            if not seen[var] or self._levels[var] == 0:
                continue
            reason = self._reasons[var]
            if reason is None:
                # A decision below the assumption levels is an earlier
                # assumption (for var0 itself: the contradictory twin).
                core.append(self._to_external(ilit))
            else:
                for q in reason[1:]:
                    q_var = q >> 1
                    if not seen[q_var] and self._levels[q_var] > 0:
                        seen[q_var] = True
                        to_clear.append(q_var)
        for var in to_clear:
            seen[var] = False
        return core

    def core(self) -> List[int]:
        """Unsat core of the last assumption-refuted ``solve`` call.

        Only populated when ``solve`` returned UNSAT with
        ``unsat_due_to_assumptions``; a subset of those assumptions that
        is already inconsistent with the formula.
        """
        if not self.unsat_due_to_assumptions:
            raise SolverError(
                "no core available (last solve was not assumption-UNSAT)"
            )
        return list(self._core)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _pick_branch_var(self) -> int:
        while self._heap:
            _, var = heapq.heappop(self._heap)
            if self._assigns[var] == 0:
                return var
        return 0

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_budget: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> SolveStatus:
        """Decide satisfiability under ``assumptions``.

        Returns :data:`SolveStatus.UNKNOWN` when a budget is exhausted; the
        solver remains usable afterwards (learned clauses are kept).
        """
        self.stats.solve_calls += 1
        self.unsat_due_to_assumptions = False
        self._model = []
        if not self._ok:
            if self._proof is not None:
                self._proof.empty()
            return SolveStatus.UNSAT

        deadline = Deadline(time_budget)
        internal_assumptions = [self._to_internal(a) for a in assumptions]
        conflicts_at_start = self.stats.conflicts
        restart_count = 0
        limit = luby(self._restart_base, restart_count)
        conflicts_this_restart = 0

        status = SolveStatus.UNKNOWN
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_this_restart += 1
                if self._decision_level == 0:
                    self._ok = False
                    if self._proof is not None:
                        self._proof.empty()
                    status = SolveStatus.UNSAT
                    break
                learnt, backtrack_level = self._analyze(conflict)
                if self._proof is not None:
                    self._proof.learn(
                        [self._to_external(lit) for lit in learnt]
                    )
                self._backtrack(backtrack_level)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], None)
                else:
                    self._learned.append(learnt)
                    self._clause_activity[id(learnt)] = self._clause_inc
                    self.stats.learned_clauses += 1
                    self._attach(learnt)
                    self._enqueue(learnt[0], learnt)
                self._var_inc /= self._var_decay
                self._clause_inc /= self._clause_decay
                if conflict_budget is not None and (
                    self.stats.conflicts - conflicts_at_start >= conflict_budget
                ):
                    status = SolveStatus.UNKNOWN
                    break
                if self.stats.conflicts % 64 == 0 and deadline.expired():
                    status = SolveStatus.UNKNOWN
                    break
                if len(self._learned) >= self._max_learned:
                    self._reduce_db()
                    self._max_learned += 500
            else:
                if conflicts_this_restart >= limit:
                    restart_count += 1
                    self.stats.restarts += 1
                    limit = luby(self._restart_base, restart_count)
                    conflicts_this_restart = 0
                    self._backtrack(0)
                    continue
                # Re-establish assumptions as the first decision levels.
                if self._decision_level < len(internal_assumptions):
                    next_assumption = internal_assumptions[self._decision_level]
                    value = self._lit_value(next_assumption)
                    if value < 0:
                        self.unsat_due_to_assumptions = True
                        self._core = self._analyze_final(next_assumption)
                        status = SolveStatus.UNSAT
                        break
                    self._new_decision_level()
                    if value == 0:
                        self._enqueue(next_assumption, None)
                    continue
                var = self._pick_branch_var()
                if var == 0:
                    self._model = list(self._assigns)
                    status = SolveStatus.SAT
                    break
                self.stats.decisions += 1
                self._new_decision_level()
                ilit = var << 1 | (0 if self._phase[var] else 1)
                self._enqueue(ilit, None)

        self._backtrack(0)
        if status is SolveStatus.UNSAT and self.unsat_due_to_assumptions:
            # Solver itself may still be satisfiable without assumptions.
            self._ok = True
        return status

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------
    def model_value(self, var: int) -> bool:
        """Value of ``var`` in the last satisfying model."""
        if not self._model:
            raise SolverError("no model available (last solve was not SAT)")
        if not 1 <= var <= self._num_vars:
            raise SolverError(f"unknown variable {var}")
        return self._model[var] > 0

    def model(self) -> Dict[int, bool]:
        """The last model as a var -> bool mapping."""
        if not self._model:
            raise SolverError("no model available (last solve was not SAT)")
        return {v: self._model[v] > 0 for v in range(1, self._num_vars + 1)}

    # ------------------------------------------------------------------
    @classmethod
    def from_formula(cls, formula, **kwargs) -> "CdclSolver":
        """Preload a solver with a :class:`~repro.sat.formula.CnfFormula`."""
        solver = cls(**kwargs)
        solver.new_vars(formula.num_vars)
        for clause in formula.clauses:
            solver.add_clause(clause)
        return solver
