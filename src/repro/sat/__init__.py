"""From-scratch SAT solving substrate (the z3 stand-in, see DESIGN.md)."""

from repro.sat.brute import brute_force_count, brute_force_model
from repro.sat.cardinality import (
    at_least_one,
    at_most_k_sequential,
    at_most_one,
    at_most_one_commander,
    at_most_one_pairwise,
    at_most_one_sequential,
    exactly_one,
)
from repro.sat.dimacs import parse_dimacs, to_dimacs, write_dimacs
from repro.sat.formula import ClauseSink, CnfFormula
from repro.sat.instances import pigeonhole, random_ksat, xor_chain
from repro.sat.proof import (
    ProofEvent,
    ProofLog,
    RupChecker,
    check_refutation,
    is_valid_refutation,
    proof_stats,
)
from repro.sat.solver import CdclSolver, SolverStats, SolveStatus, luby
from repro.sat.tseitin import (
    encode_less_than_constant,
    gate_and,
    gate_equals,
    gate_iff,
    gate_or,
    gate_xor,
    implies,
)

__all__ = [
    "CdclSolver",
    "ClauseSink",
    "CnfFormula",
    "SolveStatus",
    "SolverStats",
    "at_least_one",
    "at_most_k_sequential",
    "at_most_one",
    "at_most_one_commander",
    "at_most_one_pairwise",
    "at_most_one_sequential",
    "brute_force_count",
    "brute_force_model",
    "encode_less_than_constant",
    "exactly_one",
    "gate_and",
    "gate_equals",
    "gate_iff",
    "gate_or",
    "gate_xor",
    "implies",
    "luby",
    "parse_dimacs",
    "pigeonhole",
    "ProofEvent",
    "ProofLog",
    "RupChecker",
    "check_refutation",
    "is_valid_refutation",
    "proof_stats",
    "random_ksat",
    "xor_chain",
    "to_dimacs",
    "write_dimacs",
]
