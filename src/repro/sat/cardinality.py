"""Cardinality constraint encodings.

The EBMF encoder needs exactly-one constraints (each 1-cell belongs to
exactly one rectangle).  Three at-most-one encodings are provided; the
sequential (ladder) encoding is the default for larger groups, pairwise
for small ones.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.exceptions import EncodingError
from repro.sat.formula import ClauseSink


def at_least_one(sink: ClauseSink, literals: Sequence[int]) -> None:
    if not literals:
        raise EncodingError("at_least_one of an empty set is unsatisfiable")
    sink.add_clause(list(literals))


def at_most_one_pairwise(sink: ClauseSink, literals: Sequence[int]) -> None:
    """O(n^2) binomial encoding; best for n <= ~6."""
    for a in range(len(literals)):
        for b in range(a + 1, len(literals)):
            sink.add_clause([-literals[a], -literals[b]])


def at_most_one_sequential(sink: ClauseSink, literals: Sequence[int]) -> None:
    """Sinz's sequential (ladder) encoding: O(n) clauses, n-1 aux vars.

    ``s_i`` means "some literal among the first i+1 is true".
    """
    n = len(literals)
    if n <= 1:
        return
    registers = [sink.new_var() for _ in range(n - 1)]
    sink.add_clause([-literals[0], registers[0]])
    for i in range(1, n - 1):
        sink.add_clause([-literals[i], registers[i]])
        sink.add_clause([-registers[i - 1], registers[i]])
        sink.add_clause([-literals[i], -registers[i - 1]])
    sink.add_clause([-literals[n - 1], -registers[n - 2]])


def at_most_one_commander(
    sink: ClauseSink, literals: Sequence[int], *, group_size: int = 3
) -> None:
    """Commander encoding: recursive grouping with commander variables."""
    if group_size < 2:
        raise EncodingError("commander group size must be >= 2")
    literals = list(literals)
    if len(literals) <= group_size + 1:
        at_most_one_pairwise(sink, literals)
        return
    commanders: List[int] = []
    for start in range(0, len(literals), group_size):
        group = literals[start : start + group_size]
        if len(group) == 1:
            commanders.append(group[0])
            continue
        commander = sink.new_var()
        commanders.append(commander)
        at_most_one_pairwise(sink, group)
        # commander is true iff some group member is true (-> suffices
        # for at-most-one; <- keeps the commander meaningful).
        for lit in group:
            sink.add_clause([-lit, commander])
        sink.add_clause([-commander] + group)
    at_most_one_commander(sink, commanders, group_size=group_size)


def at_most_one(
    sink: ClauseSink,
    literals: Sequence[int],
    *,
    encoding: str = "auto",
) -> None:
    """Dispatch on ``encoding``: pairwise | sequential | commander | auto."""
    literals = list(literals)
    if len(literals) <= 1:
        return
    if encoding == "auto":
        encoding = "pairwise" if len(literals) <= 6 else "sequential"
    if encoding == "pairwise":
        at_most_one_pairwise(sink, literals)
    elif encoding == "sequential":
        at_most_one_sequential(sink, literals)
    elif encoding == "commander":
        at_most_one_commander(sink, literals)
    else:
        raise EncodingError(f"unknown at-most-one encoding {encoding!r}")


def exactly_one(
    sink: ClauseSink,
    literals: Sequence[int],
    *,
    encoding: str = "auto",
) -> None:
    at_least_one(sink, literals)
    at_most_one(sink, literals, encoding=encoding)


def at_most_k_sequential(
    sink: ClauseSink, literals: Sequence[int], k: int
) -> None:
    """Sinz's sequential counter generalized to at-most-k."""
    n = len(literals)
    if k < 0:
        raise EncodingError(f"k must be >= 0, got {k}")
    if k == 0:
        for lit in literals:
            sink.add_clause([-lit])
        return
    if n <= k:
        return
    # registers[i][j]: among literals[0..i], at least j+1 are true.
    registers = [[sink.new_var() for _ in range(k)] for _ in range(n)]
    sink.add_clause([-literals[0], registers[0][0]])
    for j in range(1, k):
        sink.add_clause([-registers[0][j]])
    for i in range(1, n):
        sink.add_clause([-literals[i], registers[i][0]])
        sink.add_clause([-registers[i - 1][0], registers[i][0]])
        for j in range(1, k):
            sink.add_clause(
                [-literals[i], -registers[i - 1][j - 1], registers[i][j]]
            )
            sink.add_clause([-registers[i - 1][j], registers[i][j]])
        sink.add_clause([-literals[i], -registers[i - 1][k - 1]])
