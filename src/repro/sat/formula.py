"""CNF formula container and the clause-sink protocol.

Encoders (cardinality constraints, Tseitin gates, the EBMF encoder) write
into anything exposing ``new_var``/``add_clause`` — either a
:class:`CnfFormula` for inspection/DIMACS export or a live
:class:`~repro.sat.solver.CdclSolver` for incremental solving.
"""

from __future__ import annotations

from typing import Iterable, List, Protocol, Sequence, runtime_checkable

from repro.core.exceptions import EncodingError


@runtime_checkable
class ClauseSink(Protocol):
    """Anything that can receive fresh variables and clauses."""

    def new_var(self) -> int: ...

    def add_clause(self, literals: Sequence[int]) -> None: ...


class CnfFormula:
    """A plain CNF formula in DIMACS literal convention.

    Variables are positive integers ``1..num_vars``; a literal is ``+v``
    or ``-v``.
    """

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[List[int]] = []

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> List[int]:
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals: Sequence[int]) -> None:
        clause = list(literals)
        for lit in clause:
            if lit == 0:
                raise EncodingError("literal 0 is reserved in DIMACS")
            if abs(lit) > self.num_vars:
                raise EncodingError(
                    f"literal {lit} references unknown variable "
                    f"(num_vars={self.num_vars})"
                )
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return f"CnfFormula(vars={self.num_vars}, clauses={len(self.clauses)})"
