"""Tseitin gate encodings: fresh variables defined as boolean functions.

Used by the binary-label EBMF encoder, where per-cell labels are
bit-vectors and rectangle-sharing is an equality circuit — the same shape
z3 would build internally for the paper's bit-vector formulation.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.exceptions import EncodingError
from repro.sat.formula import ClauseSink


def gate_and(sink: ClauseSink, inputs: Sequence[int]) -> int:
    """Fresh g with ``g <-> AND(inputs)``."""
    if not inputs:
        raise EncodingError("AND of zero inputs (use a constant instead)")
    g = sink.new_var()
    for lit in inputs:
        sink.add_clause([-g, lit])
    sink.add_clause([g] + [-lit for lit in inputs])
    return g


def gate_or(sink: ClauseSink, inputs: Sequence[int]) -> int:
    """Fresh g with ``g <-> OR(inputs)``."""
    if not inputs:
        raise EncodingError("OR of zero inputs (use a constant instead)")
    g = sink.new_var()
    for lit in inputs:
        sink.add_clause([g, -lit])
    sink.add_clause([-g] + list(inputs))
    return g


def gate_xor(sink: ClauseSink, a: int, b: int) -> int:
    """Fresh g with ``g <-> a XOR b``."""
    g = sink.new_var()
    sink.add_clause([-g, a, b])
    sink.add_clause([-g, -a, -b])
    sink.add_clause([g, -a, b])
    sink.add_clause([g, a, -b])
    return g


def gate_iff(sink: ClauseSink, a: int, b: int) -> int:
    """Fresh g with ``g <-> (a <-> b)``."""
    g = sink.new_var()
    sink.add_clause([-g, -a, b])
    sink.add_clause([-g, a, -b])
    sink.add_clause([g, a, b])
    sink.add_clause([g, -a, -b])
    return g


def gate_equals(sink: ClauseSink, xs: Sequence[int], ys: Sequence[int]) -> int:
    """Fresh g with ``g <-> (bit-vector xs == bit-vector ys)``."""
    if len(xs) != len(ys):
        raise EncodingError(
            f"bit-vector width mismatch: {len(xs)} vs {len(ys)}"
        )
    if not xs:
        raise EncodingError("equality of zero-width bit-vectors")
    bit_eqs = [gate_iff(sink, x, y) for x, y in zip(xs, ys)]
    if len(bit_eqs) == 1:
        return bit_eqs[0]
    return gate_and(sink, bit_eqs)


def implies(sink: ClauseSink, antecedents: Sequence[int], consequent: int) -> None:
    """Clause form of ``AND(antecedents) -> consequent``."""
    sink.add_clause([-lit for lit in antecedents] + [consequent])


def encode_less_than_constant(
    sink: ClauseSink, bits: Sequence[int], constant: int
) -> None:
    """Constrain bit-vector ``bits`` (LSB first) to be ``< constant``.

    Used to forbid label values >= b in the binary-label encoding.
    """
    width = len(bits)
    if constant >= (1 << width):
        return
    if constant <= 0:
        raise EncodingError("cannot force a bit-vector below 0")
    bound = constant - 1  # encode bits <= bound
    # For every position where the bound has a 0 bit: if all higher 1-bits
    # of the bound are set in the vector, this bit must be 0.
    prefix: list = []
    for position in range(width - 1, -1, -1):
        if (bound >> position) & 1:
            prefix.append(bits[position])
        else:
            sink.add_clause([-lit for lit in prefix] + [-bits[position]])
