"""DIMACS CNF serialization, for interoperability and debugging."""

from __future__ import annotations

from typing import Iterable, List, TextIO

from repro.core.exceptions import SolverError
from repro.sat.formula import CnfFormula


def to_dimacs(formula: CnfFormula, *, comments: Iterable[str] = ()) -> str:
    """Render a formula in DIMACS CNF format."""
    lines: List[str] = [f"c {comment}" for comment in comments]
    lines.append(f"p cnf {formula.num_vars} {formula.num_clauses}")
    for clause in formula.clauses:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"


def write_dimacs(formula: CnfFormula, stream: TextIO) -> None:
    stream.write(to_dimacs(formula))


def parse_dimacs(text: str) -> CnfFormula:
    """Parse DIMACS CNF text into a :class:`CnfFormula`.

    Tolerates comments anywhere and clauses spanning multiple lines.
    """
    formula = CnfFormula()
    declared_vars = None
    declared_clauses = None
    pending: List[int] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise SolverError(f"malformed problem line: {line!r}")
            declared_vars = int(parts[2])
            declared_clauses = int(parts[3])
            formula.new_vars(declared_vars)
            continue
        for token in line.split():
            lit = int(token)
            if lit == 0:
                formula.add_clause(pending)
                pending = []
            else:
                if declared_vars is None:
                    raise SolverError("clause before problem line")
                pending.append(lit)
    if pending:
        raise SolverError("final clause not terminated with 0")
    if declared_clauses is not None and formula.num_clauses != declared_clauses:
        raise SolverError(
            f"expected {declared_clauses} clauses, parsed {formula.num_clauses}"
        )
    return formula
