"""Canonical CNF instance generators.

Small, well-understood formula families used to exercise the SAT
substrate and the proof checker: pigeonhole (classically hard UNSAT),
parity/XOR chains (UNSAT with an odd parity mismatch), and uniform
random k-SAT around the satisfiability threshold.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.exceptions import EncodingError
from repro.sat.formula import CnfFormula
from repro.utils.rng import RngLike, ensure_rng


def pigeonhole(holes: int, pigeons: Optional[int] = None) -> CnfFormula:
    """PHP(pigeons, holes): every pigeon in a hole, no hole shared.

    With the default ``pigeons = holes + 1`` the formula is UNSAT and
    requires exponentially long resolution proofs — a worst case for
    clause learning and a stress test for proof logging.
    """
    if holes < 1:
        raise EncodingError(f"holes must be >= 1, got {holes}")
    if pigeons is None:
        pigeons = holes + 1
    formula = CnfFormula()
    # var(p, h): pigeon p sits in hole h.
    grid = [[formula.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for p in range(pigeons):
        formula.add_clause(grid[p])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                formula.add_clause([-grid[p1][h], -grid[p2][h]])
    return formula


def xor_chain(length: int, *, parity: int = 1) -> CnfFormula:
    """A chain of XOR constraints ``x_i ^ x_{i+1} = 0`` with the two
    chain ends forced to differ by ``parity``.

    ``parity = 1`` makes the formula UNSAT (the chain forces equality
    end to end); ``parity = 0`` makes it SAT.
    """
    if length < 2:
        raise EncodingError(f"length must be >= 2, got {length}")
    if parity not in (0, 1):
        raise EncodingError(f"parity must be 0 or 1, got {parity}")
    formula = CnfFormula()
    xs = formula.new_vars(length)
    for a, b in zip(xs, xs[1:]):
        # a == b, clause form.
        formula.add_clause([-a, b])
        formula.add_clause([a, -b])
    if parity == 1:
        # Ends must differ: contradiction with the chain.
        formula.add_clause([xs[0], xs[-1]])
        formula.add_clause([-xs[0], -xs[-1]])
    else:
        formula.add_clause([xs[0], -xs[-1]])
        formula.add_clause([-xs[0], xs[-1]])
    return formula


def random_ksat(
    num_vars: int,
    num_clauses: int,
    *,
    k: int = 3,
    seed: RngLike = None,
) -> CnfFormula:
    """Uniform random k-SAT (distinct variables per clause).

    Around ``num_clauses / num_vars ~ 4.27`` (for k=3) instances sit at
    the SAT/UNSAT phase transition, giving a balanced diet of both
    answers for differential testing.
    """
    if num_vars < k:
        raise EncodingError(f"need at least k={k} variables, got {num_vars}")
    rng = ensure_rng(seed)
    formula = CnfFormula()
    formula.new_vars(num_vars)
    for _ in range(num_clauses):
        chosen = rng.sample(range(1, num_vars + 1), k)
        clause: List[int] = [
            var if rng.random() < 0.5 else -var for var in chosen
        ]
        formula.add_clause(clause)
    return formula
