"""Injectable wall-clock source for timestamp-bearing artifacts.

Most of the repo is forbidden wall-clock reads outright (lint rule
REP002): budget and benchmark math must use monotonic clocks.  But a
few artifacts legitimately need a *calendar* stamp — quarantine file
names, cache-entry creation/access times, TTL expiry — and hard-coding
``time.time()`` at those sites makes them untestable (a TTL test would
have to sleep) and unfixable under clock skew.

This module is the one sanctioned wall-clock door.  Production code
calls :func:`wall_now`; tests (and the clock-skew fault seam) swap the
source with :func:`installed` / :class:`FixedClock` instead of
monkeypatching ``time`` or sleeping through TTL windows.

``utils/`` is deliberately outside REP002's scope, so the single
``time.time()`` read below is the only one the lint baseline has to
know about — which is to say, none: the baseline is empty.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class Clock:
    """Wall-clock protocol: ``now()`` returns seconds since the epoch."""

    def now(self) -> float:
        raise NotImplementedError


class SystemClock(Clock):
    """The real wall clock."""

    def now(self) -> float:
        return time.time()


class FixedClock(Clock):
    """A settable clock for tests: frozen until ``advance``/``set``."""

    def __init__(self, start: float = 1_700_000_000.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def set(self, value: float) -> None:
        self._now = float(value)

    def advance(self, seconds: float) -> float:
        self._now += seconds
        return self._now


_ACTIVE: Clock = SystemClock()


def wall_now() -> float:
    """The current wall-clock time from the installed source."""
    return _ACTIVE.now()


def install_clock(clock: Clock) -> Clock:
    """Swap the process-wide clock source; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = clock
    return previous


@contextmanager
def installed(clock: Clock) -> Iterator[Clock]:
    """Install ``clock`` for the block, restoring the previous source."""
    previous = install_clock(clock)
    try:
        yield clock
    finally:
        install_clock(previous)
