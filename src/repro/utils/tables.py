"""Plain-text table rendering for experiment reports (Table I et al.)."""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
    align_right_from: int = 1,
) -> str:
    """Render ``rows`` under ``headers`` as a monospace table.

    Columns from index ``align_right_from`` onward are right-aligned
    (numeric columns); earlier columns are left-aligned (labels).
    """
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    str_headers = [str(h) for h in headers]
    width = len(str_headers)
    for row in str_rows:
        if len(row) != width:
            raise ValueError(
                f"row has {len(row)} cells, expected {width}: {row!r}"
            )

    col_widths = [
        max(len(str_headers[c]), *(len(r[c]) for r in str_rows))
        if str_rows
        else len(str_headers[c])
        for c in range(width)
    ]

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for c, cell in enumerate(cells):
            if c >= align_right_from:
                parts.append(cell.rjust(col_widths[c]))
            else:
                parts.append(cell.ljust(col_widths[c]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(str_headers))
    lines.append("  ".join("-" * w for w in col_widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def format_percent(numerator: int, denominator: int) -> str:
    """``"93%"``-style percentage used throughout Table I."""
    if denominator <= 0:
        return "n/a"
    return f"{round(100.0 * numerator / denominator)}%"
