"""Deterministic random number handling.

Every stochastic entry point in the library accepts a ``seed`` (or an
already-constructed :class:`random.Random`).  Experiments derive per-case
seeds with :func:`spawn_seeds` so results are reproducible and independent
of execution order.
"""

from __future__ import annotations

import random
from typing import List, Optional, Union

RngLike = Union[int, random.Random, None]


def ensure_rng(seed: RngLike = None) -> random.Random:
    """Coerce ``seed`` into a :class:`random.Random` instance.

    ``None`` produces a fresh nondeterministically-seeded generator; an int
    seeds a new generator; an existing generator is returned unchanged.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn_seeds(root_seed: int, count: int, *, salt: str = "") -> List[int]:
    """Derive ``count`` independent child seeds from ``root_seed``.

    The derivation hashes the root seed, the child index, and an optional
    ``salt`` string so different experiment phases draw from disjoint
    streams even when they share a root seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = random.Random(f"{root_seed}/{salt}")
    return [rng.getrandbits(62) for _ in range(count)]
