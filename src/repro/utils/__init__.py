"""Shared utilities: bit operations, RNG handling, clocks, timing, tables."""

from repro.utils.bitops import (
    bit_indices,
    bits_from_indices,
    is_subset,
    iter_submasks,
    lowest_set_bit,
    mask_to_tuple,
    popcount,
)
from repro.utils.clock import Clock, FixedClock, installed, wall_now
from repro.utils.rng import ensure_rng, spawn_seeds
from repro.utils.tables import format_percent, format_table
from repro.utils.timing import Deadline, Stopwatch

__all__ = [
    "Clock",
    "Deadline",
    "FixedClock",
    "Stopwatch",
    "bit_indices",
    "bits_from_indices",
    "ensure_rng",
    "format_percent",
    "format_table",
    "installed",
    "is_subset",
    "iter_submasks",
    "lowest_set_bit",
    "mask_to_tuple",
    "popcount",
    "spawn_seeds",
    "wall_now",
]
