"""Crash-safe file primitives shared by the cache tiers.

Layer-neutral home for the two invariants every on-disk tier relies
on: writes are atomic (readers see the old file or the new one, never a
prefix) and cross-process critical sections lock a stable inode.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

try:  # pragma: no cover - always present on the POSIX targets
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]


@contextmanager
def locked_file(lock_path: Path) -> Iterator[None]:
    """Exclusive advisory lock held for the duration of the block.

    The lock file is created on demand and never removed or replaced,
    so every process locks the same inode (locking a file that gets
    ``os.replace``-d protects nothing).  Blocking is fine here:
    critical sections are a single small-file read-merge-write.  On
    platforms without ``fcntl`` this degrades to no locking.
    """
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    with open(lock_path, "a+") as handle:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


@contextmanager
def try_locked_file(lock_path: Path) -> Iterator[bool]:
    """Non-blocking variant of :func:`locked_file`.

    Yields ``True`` with the lock held, or ``False`` immediately if
    another process holds it — callers that merely *want* a maintenance
    pass (cap-triggered GC) skip instead of queueing behind the pass
    already running.  Without ``fcntl`` this degrades to "always
    acquired", matching :func:`locked_file`.
    """
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    with open(lock_path, "a+") as handle:
        if fcntl is None:
            yield True
            return
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            yield False
            return
        try:
            yield True
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def atomic_write_json(
    path: Path, payload: Any, *, sort_keys: bool = False
) -> None:
    """Write ``payload`` as JSON via tempfile + ``os.replace``.

    Readers either see the old file or the new one, never a torn
    prefix — so a crash mid-write cannot corrupt a cache file.
    ``sort_keys`` makes the byte stream independent of dict insertion
    order — required for artifacts with a byte-identical-reproduction
    contract (scoreboard baselines).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(handle, "w") as stream:
            json.dump(payload, stream, indent=2, sort_keys=sort_keys)
            stream.write("\n")
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
