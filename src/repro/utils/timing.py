"""Wall-clock timing helpers used by SAP and the experiment harnesses."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class Stopwatch:
    """Accumulates named wall-clock phases.

    Used by SAP to attribute runtime to the packing heuristic versus the
    exact (SMT-style) solving phase, mirroring Figure 4 of the paper.
    """

    totals: Dict[str, float] = field(default_factory=dict)
    _started: Dict[str, float] = field(default_factory=dict, repr=False)

    def start(self, phase: str) -> None:
        if phase in self._started:
            raise RuntimeError(f"phase {phase!r} already running")
        self._started[phase] = time.perf_counter()

    def stop(self, phase: str) -> float:
        try:
            began = self._started.pop(phase)
        except KeyError:
            raise RuntimeError(f"phase {phase!r} was never started") from None
        elapsed = time.perf_counter() - began
        self.totals[phase] = self.totals.get(phase, 0.0) + elapsed
        return elapsed

    def time(self, phase: str) -> "_PhaseContext":
        """Context manager form: ``with watch.time("smt"): ...``."""
        return _PhaseContext(self, phase)

    def total(self, phase: Optional[str] = None) -> float:
        """Accumulated seconds for ``phase``, or for all phases if None."""
        if phase is None:
            return sum(self.totals.values())
        return self.totals.get(phase, 0.0)


class _PhaseContext:
    def __init__(self, watch: Stopwatch, phase: str) -> None:
        self._watch = watch
        self._phase = phase

    def __enter__(self) -> "_PhaseContext":
        self._watch.start(self._phase)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._watch.stop(self._phase)


class Deadline:
    """A soft wall-clock budget, optionally tied to a cancellation flag.

    ``None`` seconds means "no limit".  Solvers poll :meth:`expired` at
    convenient points; this is cooperative, not preemptive.  ``cancel``
    is any object with an ``is_set() -> bool`` method (e.g. a
    ``threading.Event`` or :class:`repro.server.racing.RaceToken`); once
    it reads true the deadline counts as expired with zero time left,
    which lets a portfolio race or a streaming server abort a solver
    mid-flight through the same polling points the time budget uses.
    """

    def __init__(
        self, seconds: Optional[float], *, cancel: Optional[object] = None
    ) -> None:
        if seconds is not None and seconds < 0:
            raise ValueError(f"budget must be non-negative, got {seconds}")
        self._end = None if seconds is None else time.perf_counter() + seconds
        self._cancel = cancel

    def cancelled(self) -> bool:
        return self._cancel is not None and self._cancel.is_set()

    def expired(self) -> bool:
        if self.cancelled():
            return True
        return self._end is not None and time.perf_counter() > self._end

    def remaining(self) -> Optional[float]:
        if self.cancelled():
            return 0.0
        if self._end is None:
            return None
        return max(0.0, self._end - time.perf_counter())
