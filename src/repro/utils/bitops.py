"""Bit-mask helpers.

Rows and column sets throughout the library are represented as Python
integers used as bit masks: bit ``j`` set means column ``j`` (or row ``j``)
is present.  Python integers are arbitrary precision, so a single mask
covers matrices of any width, and subset tests / unions / differences are
single machine-friendly operations.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple


def popcount(mask: int) -> int:
    """Number of set bits in ``mask``."""
    return mask.bit_count()


def bit_indices(mask: int) -> Iterator[int]:
    """Yield the indices of set bits in ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_to_tuple(mask: int) -> Tuple[int, ...]:
    """Set bits of ``mask`` as a sorted tuple of indices."""
    return tuple(bit_indices(mask))


def bits_from_indices(indices: Iterable[int]) -> int:
    """Build a mask with the given bit indices set."""
    mask = 0
    for index in indices:
        if index < 0:
            raise ValueError(f"bit index must be non-negative, got {index}")
        mask |= 1 << index
    return mask


def is_subset(inner: int, outer: int) -> bool:
    """True if every set bit of ``inner`` is also set in ``outer``."""
    return inner & ~outer == 0


def iter_submasks(mask: int) -> Iterator[int]:
    """Yield every submask of ``mask`` (including 0 and ``mask`` itself).

    Uses the standard ``(sub - 1) & mask`` enumeration, descending order.
    The number of submasks is ``2**popcount(mask)`` — callers are expected
    to keep ``popcount(mask)`` small.
    """
    sub = mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask


def lowest_set_bit(mask: int) -> int:
    """Index of the lowest set bit; raises ``ValueError`` on 0."""
    if mask == 0:
        raise ValueError("mask has no set bits")
    return (mask & -mask).bit_length() - 1
